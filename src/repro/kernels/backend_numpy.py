"""The reference backend: registers the vectorised NumPy hot-path functions.

This is not a reimplementation — the registry entries *are* the original
functions from :mod:`repro.hydro` and :mod:`repro.chemistry`, so selecting
``REPRO_KERNELS=numpy`` (the default) runs byte-for-byte the code the repo
has always run.  Compiled backends are parity-gated against these.
"""

from __future__ import annotations

from repro.chemistry import rates as _rates
from repro.hydro import reconstruction as _reconstruction
from repro.hydro import riemann as _riemann
from repro.hydro import tracing as _tracing
from repro.kernels import dispatch

dispatch.register("numpy", "riemann.two_shock", _riemann.two_shock_flux)
dispatch.register("numpy", "riemann.hllc", _riemann.hllc_flux)
dispatch.register("numpy", "riemann.hll", _riemann.hll_flux)
dispatch.register("numpy", "reconstruct.ppm", _reconstruction.ppm_reconstruct)
dispatch.register("numpy", "reconstruct.plm", _reconstruction.plm_reconstruct)
dispatch.register("numpy", "trace.states", _tracing.trace_states_numpy)
dispatch.register("numpy", "chem.blend", _rates.blend_table_numpy)
