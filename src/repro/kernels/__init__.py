"""Compiled kernel tier for the hydro/chemistry inner loops.

Public surface re-exported from :mod:`repro.kernels.dispatch`; see that
module's docstring for backend selection and the parity policy.
"""

from repro.kernels.dispatch import (  # noqa: F401
    BACKENDS,
    COMPILED_BACKENDS,
    ENV_KERNELS,
    KERNEL_NAMES,
    active_backend,
    available_backends,
    counters_delta,
    counters_totals,
    get,
    merge_counters,
    register,
    reset_counters,
    resolve_backend,
    set_backend,
    warm,
)
