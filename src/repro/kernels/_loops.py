"""Flat-loop kernel bodies: the compiled tier's source of truth.

Each function here is a straight per-element transcription of the
vectorised NumPy reference (``hydro/riemann.py``, ``hydro/reconstruction.py``,
``hydro/tracing.py``, ``chemistry/rates.py``) written in the restricted
style numba's ``@njit`` accepts: flat ``for`` loops over preallocated
output arrays, scalar math only, no dicts/closures.  The functions are
plain Python — importable and testable without numba — and are consumed
two ways:

* :mod:`repro.kernels.backend_numba` wraps them with ``njit`` verbatim;
* :mod:`repro.kernels.backend_cffi` mirrors them line-for-line in C.

Bitwise-parity rules (why the bodies look pedantic):

* op order and association match the NumPy expressions exactly —
  e.g. ``0.5 * (u_l - A + u_r + B)`` stays left-associated;
* ``_nmax``/``_nmin`` replicate ``np.maximum``/``np.minimum`` NaN
  propagation; bare ``max()``/``min()`` would not;
* every ``np.where(cond, a, b)`` becomes a branch whose *condition*
  evaluates identically for NaN (NaN comparisons are false both ways);
* multiplications by literal ``0.0``/``1.0`` from the characteristic
  eigenvectors are kept, because ``inf * 0.0`` must still produce NaN;
* ``math.sqrt``/division are IEEE-754 correctly rounded, so looping them
  is bit-identical to the ufunc (``exp`` is *not* — which is why the
  chemistry kernel stops at the linear blend and the caller keeps
  ``np.exp``).
"""

from __future__ import annotations

import math


def _nmax(a, b):
    """``np.maximum`` semantics: NaN in either operand propagates."""
    if a != a:
        return a
    if b != b:
        return b
    return a if a > b else b


def _nmin(a, b):
    """``np.minimum`` semantics: NaN in either operand propagates."""
    if a != a:
        return a
    if b != b:
        return b
    return a if a < b else b


def _minmod(a, b):
    # np.where(a * b > 0, where(|a| < |b|, a, b), 0.0); NaN product -> 0.0
    if a * b > 0.0:
        return a if abs(a) < abs(b) else b
    return 0.0


def _mc(dq_minus, dq_plus):
    dq_c = 0.5 * (dq_minus + dq_plus)
    lim = _minmod(2.0 * dq_minus, 2.0 * dq_plus)
    return _minmod(dq_c, lim)


# --------------------------------------------------------------------------
# Riemann solvers — all signatures take flattened face arrays plus the five
# preallocated flux component outputs.
# --------------------------------------------------------------------------


def two_shock(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
              gamma, iterations, rtol, f0, f1, f2, f3, f4):
    """Two-shock flux with residual early exit (see riemann.two_shock_flux).

    At ``rtol == 0`` the exit fires only when the Newton update is an exact
    fixed point (``p_new == p_star``), making the early exit bitwise
    equivalent to running all ``iterations`` — a converged face re-derives
    the same ``p_star`` forever.  Positive ``rtol`` exits on
    ``|dp| <= rtol * p_star`` (documented as non-bitwise, opt-in);
    negative ``rtol`` disables the exit (fixed-count reference mode).
    """
    gp = 0.5 * (gamma + 1.0)
    gm = 0.5 * (gamma - 1.0)
    n = rho_l.shape[0]
    for i in range(n):
        rl = rho_l[i]
        ul = u_l[i]
        pl = p_l[i]
        rr = rho_r[i]
        ur = u_r[i]
        pr = p_r[i]

        p_star = _nmax(0.5 * (pl + pr), 1e-300)
        for _ in range(iterations):
            w_lft = math.sqrt(rl * (gp * p_star + gm * pl))
            w_rgt = math.sqrt(rr * (gp * p_star + gm * pr))
            us_l = ul - (p_star - pl) / w_lft
            us_r = ur + (p_star - pr) / w_rgt
            dp = (us_l - us_r) * (w_lft * w_rgt) / (w_lft + w_rgt)
            p_new = _nmax(p_star + dp, 1e-300)
            if rtol > 0.0:
                p_star = p_new
                if abs(dp) <= rtol * p_star:
                    break
            elif rtol == 0.0:
                if p_new == p_star:
                    break
                p_star = p_new
            else:  # rtol < 0: no early exit (fixed-count reference loop)
                p_star = p_new
        w_lft = math.sqrt(rl * (gp * p_star + gm * pl))
        w_rgt = math.sqrt(rr * (gp * p_star + gm * pr))
        u_star = 0.5 * (ul - (p_star - pl) / w_lft + ur + (p_star - pr) / w_rgt)

        rho_sl = rl / (1.0 - rl * (p_star - pl) / _nmax(w_lft * w_lft, 1e-300))
        rho_sr = rr / (1.0 - rr * (p_star - pr) / _nmax(w_rgt * w_rgt, 1e-300))
        rho_sl = _nmax(rho_sl, 1e-12)
        rho_sr = _nmax(rho_sr, 1e-12)

        s_l = ul - w_lft / rl
        s_r = ur + w_rgt / rr

        if u_star >= 0.0:
            if s_l >= 0.0:
                rho_i = rl
                u_i = ul
                p_i = pl
            else:
                rho_i = rho_sl
                u_i = u_star
                p_i = p_star
            v_i = v_l[i]
            w_i = w_l[i]
        else:
            if s_r <= 0.0:
                rho_i = rr
                u_i = ur
                p_i = pr
            else:
                rho_i = rho_sr
                u_i = u_star
                p_i = p_star
            v_i = v_r[i]
            w_i = w_r[i]

        e_total = p_i / ((gamma - 1.0) * rho_i) + 0.5 * (
            u_i * u_i + v_i * v_i + w_i * w_i
        )
        f0[i] = rho_i * u_i
        f1[i] = rho_i * u_i * u_i + p_i
        f2[i] = rho_i * u_i * v_i
        f3[i] = rho_i * u_i * w_i
        f4[i] = u_i * (rho_i * e_total + p_i)


def hllc(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
         gamma, f0, f1, f2, f3, f4):
    """HLLC flux (see riemann.hllc_flux) with Einfeldt wave speeds."""
    n = rho_l.shape[0]
    for i in range(n):
        rl = rho_l[i]
        ul = u_l[i]
        vl = v_l[i]
        wl = w_l[i]
        pl = p_l[i]
        rr = rho_r[i]
        ur = u_r[i]
        vr = v_r[i]
        wr = w_r[i]
        pr = p_r[i]

        # Einfeldt wave-speed estimates (== riemann._wave_speed_estimates)
        cl = math.sqrt(gamma * pl / rl)
        cr = math.sqrt(gamma * pr / rr)
        sqrt_l = math.sqrt(rl)
        sqrt_r = math.sqrt(rr)
        u_roe = (sqrt_l * ul + sqrt_r * ur) / (sqrt_l + sqrt_r)
        h_l = (gamma * pl / ((gamma - 1.0) * rl)) + 0.5 * ul * ul
        h_r = (gamma * pr / ((gamma - 1.0) * rr)) + 0.5 * ur * ur
        h_roe = (sqrt_l * h_l + sqrt_r * h_r) / (sqrt_l + sqrt_r)
        c_roe = math.sqrt(
            _nmax((gamma - 1.0) * (h_roe - 0.5 * u_roe * u_roe), 1e-300)
        )
        s_l = _nmin(ul - cl, u_roe - c_roe)
        s_r = _nmax(ur + cr, u_roe + c_roe)

        num = pr - pl + rl * ul * (s_l - ul) - rr * ur * (s_r - ur)
        den = rl * (s_l - ul) - rr * (s_r - ur)
        if abs(den) < 1e-300:
            den = 1e-300
        s_m = num / den
        s_m = _nmin(_nmax(s_m, s_l), s_r)

        e_l = pl / ((gamma - 1.0) * rl) + 0.5 * (ul * ul + vl * vl + wl * wl)
        e_r = pr / ((gamma - 1.0) * rr) + 0.5 * (ur * ur + vr * vr + wr * wr)
        fl0 = rl * ul
        fl1 = rl * ul * ul + pl
        fl2 = rl * ul * vl
        fl3 = rl * ul * wl
        fl4 = ul * (rl * e_l + pl)
        fr0 = rr * ur
        fr1 = rr * ur * ur + pr
        fr2 = rr * ur * vr
        fr3 = rr * ur * wr
        fr4 = ur * (rr * e_r + pr)

        if s_l >= 0.0:
            f0[i] = fl0
            f1[i] = fl1
            f2[i] = fl2
            f3[i] = fl3
            f4[i] = fl4
        elif s_m >= 0.0:
            smu = s_l - s_m
            if abs(smu) < 1e-300:
                smu = 1e-300
            factor = rl * (s_l - ul) / smu
            su = s_l - ul
            if abs(su) > 1e-300:
                p_term = pl / (rl * (1.0 if su == 0 else su))
            else:
                p_term = 0.0
            cs0 = factor
            cs1 = factor * s_m
            cs2 = factor * vl
            cs3 = factor * wl
            cs4 = factor * (e_l + (s_m - ul) * (s_m + p_term))
            f0[i] = fl0 + s_l * (cs0 - rl)
            f1[i] = fl1 + s_l * (cs1 - rl * ul)
            f2[i] = fl2 + s_l * (cs2 - rl * vl)
            f3[i] = fl3 + s_l * (cs3 - rl * wl)
            f4[i] = fl4 + s_l * (cs4 - rl * e_l)
        elif s_r >= 0.0:
            smu = s_r - s_m
            if abs(smu) < 1e-300:
                smu = 1e-300
            factor = rr * (s_r - ur) / smu
            su = s_r - ur
            if abs(su) > 1e-300:
                p_term = pr / (rr * (1.0 if su == 0 else su))
            else:
                p_term = 0.0
            cs0 = factor
            cs1 = factor * s_m
            cs2 = factor * vr
            cs3 = factor * wr
            cs4 = factor * (e_r + (s_m - ur) * (s_m + p_term))
            f0[i] = fr0 + s_r * (cs0 - rr)
            f1[i] = fr1 + s_r * (cs1 - rr * ur)
            f2[i] = fr2 + s_r * (cs2 - rr * vr)
            f3[i] = fr3 + s_r * (cs3 - rr * wr)
            f4[i] = fr4 + s_r * (cs4 - rr * e_r)
        else:
            f0[i] = fr0
            f1[i] = fr1
            f2[i] = fr2
            f3[i] = fr3
            f4[i] = fr4


def hll(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
        gamma, f0, f1, f2, f3, f4):
    """HLL two-wave flux (see riemann.hll_flux)."""
    n = rho_l.shape[0]
    for i in range(n):
        rl = rho_l[i]
        ul = u_l[i]
        vl = v_l[i]
        wl = w_l[i]
        pl = p_l[i]
        rr = rho_r[i]
        ur = u_r[i]
        vr = v_r[i]
        wr = w_r[i]
        pr = p_r[i]

        cl = math.sqrt(gamma * pl / rl)
        cr = math.sqrt(gamma * pr / rr)
        sqrt_l = math.sqrt(rl)
        sqrt_r = math.sqrt(rr)
        u_roe = (sqrt_l * ul + sqrt_r * ur) / (sqrt_l + sqrt_r)
        h_l = (gamma * pl / ((gamma - 1.0) * rl)) + 0.5 * ul * ul
        h_r = (gamma * pr / ((gamma - 1.0) * rr)) + 0.5 * ur * ur
        h_roe = (sqrt_l * h_l + sqrt_r * h_r) / (sqrt_l + sqrt_r)
        c_roe = math.sqrt(
            _nmax((gamma - 1.0) * (h_roe - 0.5 * u_roe * u_roe), 1e-300)
        )
        s_l = _nmin(ul - cl, u_roe - c_roe)
        s_r = _nmax(ur + cr, u_roe + c_roe)

        e_l = pl / ((gamma - 1.0) * rl) + 0.5 * (ul * ul + vl * vl + wl * wl)
        e_r = pr / ((gamma - 1.0) * rr) + 0.5 * (ur * ur + vr * vr + wr * wr)
        fl0 = rl * ul
        fl1 = rl * ul * ul + pl
        fl2 = rl * ul * vl
        fl3 = rl * ul * wl
        fl4 = ul * (rl * e_l + pl)
        fr0 = rr * ur
        fr1 = rr * ur * ur + pr
        fr2 = rr * ur * vr
        fr3 = rr * ur * wr
        fr4 = ur * (rr * e_r + pr)

        denom = s_r - s_l
        if s_l >= 0.0:
            f0[i] = fl0
            f1[i] = fl1
            f2[i] = fl2
            f3[i] = fl3
            f4[i] = fl4
        elif s_r <= 0.0:
            f0[i] = fr0
            f1[i] = fr1
            f2[i] = fr2
            f3[i] = fr3
            f4[i] = fr4
        else:
            f0[i] = (s_r * fl0 - s_l * fr0 + s_l * s_r * (rr - rl)) / denom
            f1[i] = (s_r * fl1 - s_l * fr1
                     + s_l * s_r * (rr * ur - rl * ul)) / denom
            f2[i] = (s_r * fl2 - s_l * fr2
                     + s_l * s_r * (rr * vr - rl * vl)) / denom
            f3[i] = (s_r * fl3 - s_l * fr3
                     + s_l * s_r * (rr * wr - rl * wl)) / denom
            f4[i] = (s_r * fl4 - s_l * fr4
                     + s_l * s_r * (rr * e_r - rl * e_l)) / denom


# --------------------------------------------------------------------------
# reconstruction — arrays are 2-d (n, m): sweep axis flattened against the
# transverse axes.  ql/qr are (n-1, m) face outputs.
# --------------------------------------------------------------------------


def plm(q, ql, qr):
    """PLM/MC interface states (see reconstruction.plm_reconstruct)."""
    n = q.shape[0]
    m = q.shape[1]
    for f in range(n - 1):
        for j in range(m):
            ql[f, j] = q[f, j]
            qr[f, j] = q[f + 1, j]
    if n >= 4:
        for c in range(1, n - 1):
            for j in range(m):
                dq_minus = q[c, j] - q[c - 1, j]
                dq_plus = q[c + 1, j] - q[c, j]
                slope = _mc(dq_minus, dq_plus)
                ql[c, j] = q[c, j] + 0.5 * slope
                qr[c - 1, j] = q[c, j] - 0.5 * slope


def ppm(q, ql, qr, dq, qf):
    """PPM/CW84 interface states (see reconstruction.ppm_reconstruct).

    Scratch: ``dq`` of shape (n, m) for the limited slopes and ``qf`` of
    shape (n-3, m) for the fourth-order face values.  Caller guarantees
    n >= 6 (smaller stencils stay on :func:`plm`, matching the reference).
    """
    n = q.shape[0]
    m = q.shape[1]
    plm(q, ql, qr)
    for c in range(1, n - 1):
        for j in range(m):
            dq[c, j] = _mc(q[c, j] - q[c - 1, j], q[c + 1, j] - q[c, j])
    for t in range(n - 3):
        for j in range(m):
            qf[t, j] = 0.5 * (q[t + 1, j] + q[t + 2, j]) - (
                dq[t + 2, j] - dq[t + 1, j]
            ) / 6.0
    for c in range(n - 4):
        for j in range(m):
            qc = q[c + 2, j]
            ql_edge = qf[c, j]
            qr_edge = qf[c + 1, j]
            if (qr_edge - qc) * (qc - ql_edge) <= 0.0:
                ql_edge = qc
                qr_edge = qc
            dqe = qr_edge - ql_edge
            q6 = 6.0 * (qc - 0.5 * (ql_edge + qr_edge))
            overshoot_l = dqe * q6 > dqe * dqe
            overshoot_r = -(dqe * dqe) > dqe * q6
            if overshoot_l:
                ql_edge = 3.0 * qc - 2.0 * qr_edge
            if overshoot_r:
                # uses the possibly-updated ql_edge, like the reference
                qr_edge = 3.0 * qc - 2.0 * ql_edge
            q_im1 = q[c + 1, j]
            q_ip1 = q[c + 3, j]
            ql_edge = _nmin(_nmax(ql_edge, _nmin(q_im1, qc)), _nmax(q_im1, qc))
            qr_edge = _nmin(_nmax(qr_edge, _nmin(qc, q_ip1)), _nmax(qc, q_ip1))
            ql[c + 2, j] = qr_edge
            qr[c + 1, j] = ql_edge


# --------------------------------------------------------------------------
# characteristic tracing — the per-face algebra after the parabola edges
# have been assembled (cell-edge arrays, shape (n, m)).
# --------------------------------------------------------------------------


def _iplus(ql, qr, q, sigma):
    dq = qr - ql
    q6 = 6.0 * (q - 0.5 * (ql + qr))
    s = _nmin(_nmax(sigma, 0.0), 1.0)
    return qr - 0.5 * s * (dq - (1.0 - 2.0 * s / 3.0) * q6)


def _iminus(ql, qr, q, sigma):
    dq = qr - ql
    q6 = 6.0 * (q - 0.5 * (ql + qr))
    s = _nmin(_nmax(sigma, 0.0), 1.0)
    return ql + 0.5 * s * (dq + (1.0 - 2.0 * s / 3.0) * q6)


def trace(rho, u, v, w, p,
          el_rho, er_rho, el_u, er_u, el_v, er_v, el_w, er_w, el_p, er_p,
          dtdx, gamma,
          out_l_rho, out_l_u, out_l_v, out_l_w, out_l_p,
          out_r_rho, out_r_u, out_r_v, out_r_w, out_r_p):
    """Characteristic tracing (see tracing.trace_interface_states).

    Inputs: primitive cell arrays (n, m) and their parabola edge arrays
    ``el_*``/``er_*`` (cell left/right edges, from the PPM face states).
    Outputs: the ten (n-1, m) face-state components.  Face ``f`` takes its
    left state from cell ``f`` (right-going waves) and its right state
    from cell ``f+1`` (left-going waves).
    """
    n = rho.shape[0]
    m = rho.shape[1]
    for f in range(n - 1):
        for j in range(m):
            # ---- left state from cell i = f ------------------------------
            i = f
            rho_i = rho[i, j]
            u_i = u[i, j]
            p_i = p[i, j]
            c_i = math.sqrt(
                gamma * _nmax(p_i, 1e-300) / _nmax(rho_i, 1e-300)
            )
            c2 = c_i * c_i
            lam_m = u_i - c_i
            lam_0 = u_i
            lam_p = u_i + c_i

            lam_max = _nmax(lam_p, 0.0)
            ref_rho = _iplus(el_rho[i, j], er_rho[i, j], rho_i,
                             lam_max * dtdx)
            ref_u = _iplus(el_u[i, j], er_u[i, j], u_i, lam_max * dtdx)
            ref_p = _iplus(el_p[i, j], er_p[i, j], p_i, lam_max * dtdx)
            wl_rho = ref_rho
            wl_u = ref_u
            wl_p = ref_p

            # lam_m family
            sig = _nmax(lam_m, 0.0) * dtdx
            d_rho = ref_rho - _iplus(el_rho[i, j], er_rho[i, j], rho_i, sig)
            d_u = ref_u - _iplus(el_u[i, j], er_u[i, j], u_i, sig)
            d_p = ref_p - _iplus(el_p[i, j], er_p[i, j], p_i, sig)
            alpha = (d_p - rho_i * c_i * d_u) / (2.0 * c2)
            mask = 1.0 if lam_m > 0.0 else 0.0
            wl_rho -= mask * alpha * 1.0
            wl_u -= mask * alpha * (-c_i / rho_i)
            wl_p -= mask * alpha * c2

            # lam_0 family
            sig = _nmax(lam_0, 0.0) * dtdx
            d_rho = ref_rho - _iplus(el_rho[i, j], er_rho[i, j], rho_i, sig)
            d_u = ref_u - _iplus(el_u[i, j], er_u[i, j], u_i, sig)
            d_p = ref_p - _iplus(el_p[i, j], er_p[i, j], p_i, sig)
            alpha = d_rho - d_p / c2
            mask = 1.0 if lam_0 > 0.0 else 0.0
            wl_rho -= mask * alpha * 1.0
            wl_u -= mask * alpha * 0.0
            wl_p -= mask * alpha * 0.0

            sig0 = _nmax(lam_0, 0.0) * dtdx
            out_l_rho[f, j] = wl_rho
            out_l_u[f, j] = wl_u
            out_l_v[f, j] = _iplus(el_v[i, j], er_v[i, j], v[i, j], sig0)
            out_l_w[f, j] = _iplus(el_w[i, j], er_w[i, j], w[i, j], sig0)
            out_l_p[f, j] = wl_p

            # ---- right state from cell i = f + 1 -------------------------
            i = f + 1
            rho_i = rho[i, j]
            u_i = u[i, j]
            p_i = p[i, j]
            c_i = math.sqrt(
                gamma * _nmax(p_i, 1e-300) / _nmax(rho_i, 1e-300)
            )
            c2 = c_i * c_i
            lam_m = u_i - c_i
            lam_0 = u_i
            lam_p = u_i + c_i

            lam_min = _nmin(lam_m, 0.0)
            ref_rho = _iminus(el_rho[i, j], er_rho[i, j], rho_i,
                              -lam_min * dtdx)
            ref_u = _iminus(el_u[i, j], er_u[i, j], u_i, -lam_min * dtdx)
            ref_p = _iminus(el_p[i, j], er_p[i, j], p_i, -lam_min * dtdx)
            wr_rho = ref_rho
            wr_u = ref_u
            wr_p = ref_p

            # lam_p family
            sig = -_nmin(lam_p, 0.0) * dtdx
            d_rho = ref_rho - _iminus(el_rho[i, j], er_rho[i, j], rho_i, sig)
            d_u = ref_u - _iminus(el_u[i, j], er_u[i, j], u_i, sig)
            d_p = ref_p - _iminus(el_p[i, j], er_p[i, j], p_i, sig)
            alpha = (d_p + rho_i * c_i * d_u) / (2.0 * c2)
            mask = 1.0 if lam_p < 0.0 else 0.0
            wr_rho -= mask * alpha * 1.0
            wr_u -= mask * alpha * (c_i / rho_i)
            wr_p -= mask * alpha * c2

            # lam_0 family
            sig = -_nmin(lam_0, 0.0) * dtdx
            d_rho = ref_rho - _iminus(el_rho[i, j], er_rho[i, j], rho_i, sig)
            d_u = ref_u - _iminus(el_u[i, j], er_u[i, j], u_i, sig)
            d_p = ref_p - _iminus(el_p[i, j], er_p[i, j], p_i, sig)
            alpha = d_rho - d_p / c2
            mask = 1.0 if lam_0 < 0.0 else 0.0
            wr_rho -= mask * alpha * 1.0
            wr_u -= mask * alpha * 0.0
            wr_p -= mask * alpha * 0.0

            sig0 = -_nmin(lam_0, 0.0) * dtdx
            out_r_rho[f, j] = wr_rho
            out_r_u[f, j] = wr_u
            out_r_v[f, j] = _iminus(el_v[i, j], er_v[i, j], v[i, j], sig0)
            out_r_w[f, j] = _iminus(el_w[i, j], er_w[i, j], w[i, j], sig0)
            out_r_p[f, j] = wr_p


# --------------------------------------------------------------------------
# chemistry — log-table gather + linear blend (the exp stays in NumPy)
# --------------------------------------------------------------------------


def chem_blend(logtab, idx, weight, out):
    """Gather + lerp over the channel-major log-rate table.

    ``(hi - lo) * w + lo`` matches the reference's in-place
    ``out -= lo; out *= w; out += lo`` exactly (no FMA contraction).
    """
    n_ch = logtab.shape[0]
    n_t = idx.shape[0]
    for c in range(n_ch):
        for j in range(n_t):
            lo = logtab[c, idx[j]]
            hi = logtab[c, idx[j] + 1]
            out[c, j] = (hi - lo) * weight[j] + lo
