"""Backend registry for the compiled kernel tier.

The hot inner loops (Riemann fluxes, PPM reconstruction, characteristic
tracing, the chemistry rate-table blend) are registered here once per
*backend*:

``numpy``
    The always-available reference — the exact vectorised code the repo
    has always run.  Every other backend is parity-gated against it.
``numba``
    ``@njit``-compiled flat loops (:mod:`repro.kernels._loops`), used when
    numba imports cleanly.  Preferred compiled tier.
``cffi``
    The same loops hand-written in C, compiled once per machine with the
    system compiler through cffi (:mod:`repro.kernels.backend_cffi`).
    Covers hosts without numba but with a C toolchain.

Selection: ``REPRO_KERNELS=numpy|numba|cffi|auto`` in the environment,
``--kernels`` on the CLI, or ``SimulationConfig(kernels=...)``; ``auto``
picks the first compiled backend that loads, ``numpy`` (the default) keeps
the reference path.  A backend that fails to import or compile degrades to
NumPy with a single :class:`RuntimeWarning` — never an error, so a broken
numba install cannot take down test collection or a production run.

Every registered kernel is wrapped with a per-kernel call/seconds counter;
the evolver drains the deltas into the ``"kernels"`` timer section and the
step-record telemetry, so ``repro tail`` shows which tier actually ran.

Parity policy (enforced by ``tests/test_kernels.py``): compiled kernels
preserve the NumPy op order element-for-element and are therefore required
to be **bitwise** identical — the compile flags forbid FP contraction and
every ``np.where``/``np.maximum`` NaN semantic is replicated.  The one op
the compiled tier does not take over is the final ``exp`` of the chemistry
blend, which stays in NumPy precisely so the tier never depends on libm
vs. SIMD ``exp`` agreeing to the last ulp.
"""

from __future__ import annotations

import os
import threading
import warnings
from time import perf_counter

ENV_KERNELS = "REPRO_KERNELS"

#: compiled backends in ``auto`` preference order
COMPILED_BACKENDS = ("numba", "cffi")
BACKENDS = ("numpy",) + COMPILED_BACKENDS

#: every kernel the tier can take over (numpy registers all of them; a
#: compiled backend may register a subset — missing ones fall back)
KERNEL_NAMES = (
    "riemann.two_shock",
    "riemann.hllc",
    "riemann.hll",
    "reconstruct.ppm",
    "reconstruct.plm",
    "trace.states",
    "chem.blend",
)

_lock = threading.Lock()
_impls: dict = {}  # (backend, kernel_name) -> wrapped callable
_load_attempted: dict = {}  # backend -> bool
_available: dict = {}  # backend -> bool
_active: str | None = None
_counters: dict = {}  # kernel_name -> [calls, seconds]


# ----------------------------------------------------------------- registry
def register(backend: str, name: str, fn) -> None:
    """Register one kernel implementation (wrapped with call counters)."""

    def timed(*args, __fn=fn, __name=name, **kwargs):
        t0 = perf_counter()
        out = __fn(*args, **kwargs)
        dt = perf_counter() - t0
        with _lock:
            slot = _counters.get(__name)
            if slot is None:
                slot = _counters[__name] = [0, 0.0]
            slot[0] += 1
            slot[1] += dt
        return out

    timed.__name__ = f"{backend}:{name}"
    timed.raw = fn
    _impls[(backend, name)] = timed


def _load(backend: str) -> bool:
    """Import (and for compiled tiers, build) one backend; warn-once on
    failure and report availability."""
    if backend in _load_attempted:
        return _available[backend]
    _load_attempted[backend] = True
    try:
        if backend not in BACKENDS:
            raise ValueError(f"unknown kernel backend {backend!r}")
        # import_module (not ``from repro.kernels import ...``) so a
        # module dropped from sys.modules by _reset_for_tests really is
        # re-imported and re-registers its kernels
        import importlib

        importlib.import_module(f"repro.kernels.backend_{backend}")
        _available[backend] = True
    except Exception as exc:  # ImportError, compile failure, ...
        _available[backend] = False
        if backend != "numpy":
            warnings.warn(
                f"repro.kernels: backend '{backend}' unavailable "
                f"({type(exc).__name__}: {exc}); falling back to NumPy",
                RuntimeWarning,
                stacklevel=3,
            )
        else:  # the reference tier must never be missing
            raise
    return _available[backend]


def available_backends() -> tuple:
    """Backends that load cleanly on this host (probes each once)."""
    return tuple(b for b in BACKENDS if _load(b))


# ---------------------------------------------------------------- selection
def resolve_backend(name: str | None = None) -> str:
    """Normalise a requested backend name to one that actually loads.

    ``None`` reads ``REPRO_KERNELS`` (default ``numpy``); ``auto`` probes
    the compiled tiers in preference order; an unavailable explicit choice
    degrades to ``numpy`` (with the load-time warning already emitted).
    """
    if name is None:
        name = os.environ.get(ENV_KERNELS, "").strip() or "numpy"
    name = name.lower()
    if name == "auto":
        for cand in COMPILED_BACKENDS:
            if _load(cand):
                return cand
        return "numpy"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{BACKENDS + ('auto',)}"
        )
    if name != "numpy" and not _load(name):
        return "numpy"
    return name


def set_backend(name: str | None = None, env: bool = True) -> str:
    """Select the active backend; returns the resolved name.

    With ``env`` true the resolution is exported to ``REPRO_KERNELS`` so
    spawned worker processes resolve identically (fork workers inherit the
    live module state as well).
    """
    global _active
    resolved = resolve_backend(name)
    _load("numpy")
    _active = resolved
    if env:
        os.environ[ENV_KERNELS] = resolved
    return resolved


def active_backend() -> str:
    """The currently selected backend (resolved lazily from the env)."""
    global _active
    if _active is None:
        set_backend(None, env=False)
    return _active


def get(name: str):
    """The active backend's implementation of one kernel (NumPy fallback
    per kernel when the backend does not provide it)."""
    backend = active_backend()
    fn = _impls.get((backend, name))
    if fn is None:
        _load("numpy")
        fn = _impls[("numpy", name)]
    return fn


def warm() -> None:
    """Force-compile every kernel of the active backend (tiny inputs).

    Process pools call this from their worker initializer so the njit /
    cffi compile cost is paid once per worker process, not on the first
    task that happens to land there.
    """
    backend = active_backend()
    if backend == "numpy":
        return
    import numpy as np

    one = np.full(2, 1.0)
    zero = np.zeros(2)
    face = (one, zero, zero, zero, one)
    for solver in ("two_shock", "hllc", "hll"):
        fn = _impls.get((backend, f"riemann.{solver}"))
        if fn is not None:
            fn(face, face, 5.0 / 3.0)
    q = np.linspace(1.0, 2.0, 8).reshape(8, 1)
    for rec in ("ppm", "plm"):
        fn = _impls.get((backend, f"reconstruct.{rec}"))
        if fn is not None:
            fn(q)
    fn = _impls.get((backend, "trace.states"))
    if fn is not None:
        col = np.linspace(1.0, 2.0, 8)
        fn(col, 0.0 * col, 0.0 * col, 0.0 * col, col, 0.1, 5.0 / 3.0)
    fn = _impls.get((backend, "chem.blend"))
    if fn is not None:
        tab = np.zeros((2, 4))
        fn(tab, np.zeros(3, dtype=np.intp), np.full(3, 0.5))


# ----------------------------------------------------------------- counters
def counters_totals() -> dict:
    """Monotonic absolute counters: ``{kernel: (calls, seconds)}``."""
    with _lock:
        return {k: (v[0], v[1]) for k, v in _counters.items()}


def counters_delta(mark: dict) -> dict:
    """Per-kernel activity since ``mark`` (a ``counters_totals`` snapshot)."""
    out = {}
    for name, (calls, seconds) in counters_totals().items():
        c0, s0 = mark.get(name, (0, 0.0))
        if calls > c0:
            out[name] = {"calls": calls - c0,
                         "seconds": round(seconds - s0, 6)}
    return out


def merge_counters(delta: dict) -> None:
    """Fold worker-process counter deltas into this process's totals.

    The process exec backend runs kernels in pool workers; each task ships
    its counter delta home in the result payload so telemetry still sees
    every call regardless of where it executed.
    """
    if not delta:
        return
    with _lock:
        for name, d in delta.items():
            slot = _counters.get(name)
            if slot is None:
                slot = _counters[name] = [0, 0.0]
            slot[0] += int(d.get("calls", 0))
            slot[1] += float(d.get("seconds", 0.0))


def reset_counters() -> None:
    with _lock:
        _counters.clear()


def _reset_for_tests() -> None:
    """Forget load state and selection (test helper, not public API).

    Backend modules register their kernels at import time, so they are
    also dropped from ``sys.modules`` — the next ``_load`` re-imports and
    re-registers (the cffi tier re-imports its cached extension, so this
    is cheap).
    """
    global _active
    import sys

    with _lock:
        _counters.clear()
    for key in [k for k in _impls]:
        del _impls[key]
    _load_attempted.clear()
    _available.clear()
    _active = None
    for backend in BACKENDS:
        sys.modules.pop(f"repro.kernels.backend_{backend}", None)
