"""numba backend: ``@njit`` over the flat-loop kernel bodies.

Importing this module raises when numba is missing or broken; the dispatch
registry catches that, warns once, and stays on NumPy (see
``tests/test_kernels.py::test_broken_numba_falls_back``).

The loop bodies live in :mod:`repro.kernels._loops`.  Their helper
functions (``_nmax``, ``_mc``, ...) are rebound on the module to their
jitted versions before the kernels are compiled, so the compiled kernels
resolve them as numba Dispatchers — the standard pattern for jitting a
module that must stay importable without numba.  Dispatchers remain
plain-callable, so the rebinding is behaviour-neutral for everyone else.

``nogil=True`` lets the thread exec backend run kernels concurrently;
``fastmath`` stays off so LLVM cannot contract or reorder FP ops — that is
what keeps the numba tier bitwise-identical to the NumPy reference.
"""

from __future__ import annotations

from types import SimpleNamespace

from numba import njit  # raises ImportError -> dispatch falls back

from repro.kernels import _loops, _wrap, dispatch

_JIT_OPTS = dict(cache=True, nogil=True, fastmath=False)

# helpers first (kernels call them through module globals), then plm
# (called by ppm), then the kernel bodies themselves
for _name in ("_nmax", "_nmin", "_minmod", "_mc", "_iplus", "_iminus",
              "plm"):
    setattr(_loops, _name, njit(**_JIT_OPTS)(getattr(_loops, _name).py_func
                                             if hasattr(getattr(_loops, _name), "py_func")
                                             else getattr(_loops, _name)))

_jitted = SimpleNamespace(
    two_shock=njit(**_JIT_OPTS)(_loops.two_shock),
    hllc=njit(**_JIT_OPTS)(_loops.hllc),
    hll=njit(**_JIT_OPTS)(_loops.hll),
    plm=_loops.plm,
    ppm=njit(**_JIT_OPTS)(_loops.ppm),
    trace=njit(**_JIT_OPTS)(_loops.trace),
    chem_blend=njit(**_JIT_OPTS)(_loops.chem_blend),
)

for _kname, _impl in _wrap.make_impls(_jitted).items():
    dispatch.register("numba", _kname, _impl)
