"""Adapt flat-loop kernels to the dispatch-registry call contracts.

The registry contracts mirror the NumPy reference signatures exactly:

* ``riemann.*``       ``fn(left, right, gamma, ...) -> 5-tuple of fluxes``
* ``reconstruct.*``   ``fn(q) -> (q_l, q_r)`` with face shape ``(n-1, ...)``
* ``trace.states``    ``fn(rho, u, v, w, p, dtdx, gamma) -> (l, r) tuples``
* ``chem.blend``      ``fn(logtab, idx, weight) -> (channels, n) rates``

The loop bodies (:mod:`repro.kernels._loops` or their njit/C twins) want
flat contiguous arrays and preallocated outputs; :func:`make_impls` builds
the contract functions around any namespace exposing the loop signatures,
so the plain-Python loops, the numba backend, and (for the reconstruction
helpers) the cffi backend all share one normalisation path.
"""

from __future__ import annotations

import numpy as np


def _face_arrays(left, right):
    """Broadcast + flatten the ten face-state arrays to contiguous 1-d."""
    arrs = [np.asarray(a, dtype=float) for a in (*left, *right)]
    shape = np.broadcast_shapes(*(a.shape for a in arrs))
    flat = [
        np.ascontiguousarray(np.broadcast_to(a, shape)).reshape(-1)
        for a in arrs
    ]
    return flat, shape


def _to_2d(q):
    """View/copy ``q`` as contiguous (n, m): sweep axis × flattened rest."""
    q = np.asarray(q, dtype=float)
    n = q.shape[0]
    rest = q.shape[1:]
    m = 1
    for s in rest:
        m *= s
    return np.ascontiguousarray(q).reshape(n, m), rest


def make_impls(loops) -> dict:
    """Build the dispatch-contract callables around one loop namespace."""

    def _riemann(kernel, left, right, gamma, *extra):
        flat, shape = _face_arrays(left, right)
        n = flat[0].size
        outs = tuple(np.empty(n) for _ in range(5))
        kernel(*flat, float(gamma), *extra, *outs)
        return tuple(o.reshape(shape) for o in outs)

    def two_shock(left, right, gamma, iterations: int = 20,
                  rtol: float = 0.0):
        return _riemann(loops.two_shock, left, right, gamma,
                        int(iterations), float(rtol))

    def hllc(left, right, gamma):
        return _riemann(loops.hllc, left, right, gamma)

    def hll(left, right, gamma):
        return _riemann(loops.hll, left, right, gamma)

    def _recon_2d(q2):
        """Face states on an already-2-d array (shared with tracing)."""
        n, m = q2.shape
        if n < 2:
            raise ValueError("need at least 2 cells along the sweep axis")
        ql = np.empty((n - 1, m))
        qr = np.empty((n - 1, m))
        if n < 6:
            loops.plm(q2, ql, qr)
        else:
            dq = np.empty((n, m))
            qf = np.empty((n - 3, m))
            loops.ppm(q2, ql, qr, dq, qf)
        return ql, qr

    def ppm(q):
        q2, rest = _to_2d(q)
        ql, qr = _recon_2d(q2)
        n = q2.shape[0]
        return ql.reshape((n - 1,) + rest), qr.reshape((n - 1,) + rest)

    def plm(q):
        q2, rest = _to_2d(q)
        n, m = q2.shape
        if n < 2:
            raise ValueError("need at least 2 cells along the sweep axis")
        ql = np.empty((n - 1, m))
        qr = np.empty((n - 1, m))
        loops.plm(q2, ql, qr)
        return ql.reshape((n - 1,) + rest), qr.reshape((n - 1,) + rest)

    def trace_states(rho, u, v, w, p, dtdx, gamma):
        prims = []
        rest = None
        for q in (rho, u, v, w, p):
            q2, rest = _to_2d(q)
            prims.append(q2)
        n, m = prims[0].shape
        # cell-edge parabolas assembled from the PPM face states, exactly
        # like tracing._parabola: cell i's left edge is face i-1's right
        # state, its right edge face i's left state.
        edges = []
        for q2 in prims:
            fl, fr = _recon_2d(q2)
            ql = np.empty_like(q2)
            qr = np.empty_like(q2)
            ql[1:] = fr
            ql[0] = q2[0]
            qr[:-1] = fl
            qr[-1] = q2[-1]
            edges.append(ql)
            edges.append(qr)
        outs = tuple(np.empty((n - 1, m)) for _ in range(10))
        loops.trace(*prims, *edges, float(dtdx), float(gamma), *outs)
        fshape = (n - 1,) + rest
        states_l = tuple(o.reshape(fshape) for o in outs[:5])
        states_r = tuple(o.reshape(fshape) for o in outs[5:])
        return states_l, states_r

    def chem_blend(logtab, idx, weight):
        logtab = np.ascontiguousarray(logtab, dtype=float)
        idx = np.ascontiguousarray(idx, dtype=np.intp)
        weight = np.ascontiguousarray(weight, dtype=float)
        out = np.empty((logtab.shape[0], idx.shape[0]))
        loops.chem_blend(logtab, idx, weight, out)
        np.exp(out, out=out)  # stays a ufunc: SIMD exp != libm exp bitwise
        return out

    return {
        "riemann.two_shock": two_shock,
        "riemann.hllc": hllc,
        "riemann.hll": hll,
        "reconstruct.ppm": ppm,
        "reconstruct.plm": plm,
        "trace.states": trace_states,
        "chem.blend": chem_blend,
    }
