"""cffi/C backend: the flat-loop kernels hand-written in C.

A line-for-line mirror of :mod:`repro.kernels._loops`, compiled once per
machine with the system C compiler through cffi (API mode) and cached as a
shared object under ``REPRO_KERNELS_CACHE`` (default
``~/.cache/repro-kernels``).  Importing this module triggers the build the
first time; any failure (no cffi, no compiler, sandboxed cache dir)
surfaces as an exception the dispatch registry turns into the standard
warn-once NumPy fallback.

Bitwise parity with the NumPy reference is a hard requirement, so the
compile flags matter:

* ``-ffp-contract=off`` — no FMA contraction; every multiply and add
  rounds separately, exactly like the NumPy ufuncs;
* no ``-ffast-math`` (ever) — keeps IEEE semantics, NaN propagation, and
  division/sqrt correctly rounded;
* ``-fno-math-errno`` is safe (it only drops the errno bookkeeping).

The helpers ``nmax``/``nmin`` replicate ``np.maximum``/``np.minimum`` NaN
propagation; conditionals replicate ``np.where`` NaN-falls-false
semantics — see the _loops docstring for the full parity rulebook.
"""

from __future__ import annotations

import importlib
import os
import sys
import tempfile

import numpy as np

from repro.kernels import _wrap, dispatch

_CDEF = """
void rk_two_shock(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma, long iterations, double rtol,
    double *f0, double *f1, double *f2, double *f3, double *f4);
void rk_hllc(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma,
    double *f0, double *f1, double *f2, double *f3, double *f4);
void rk_hll(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma,
    double *f0, double *f1, double *f2, double *f3, double *f4);
void rk_plm(long n, long m, const double *q, double *ql, double *qr);
void rk_ppm(long n, long m, const double *q, double *ql, double *qr,
    double *dq, double *qf);
void rk_trace(long n, long m,
    const double *rho, const double *u, const double *v,
    const double *w, const double *p,
    const double *el_rho, const double *er_rho,
    const double *el_u, const double *er_u,
    const double *el_v, const double *er_v,
    const double *el_w, const double *er_w,
    const double *el_p, const double *er_p,
    double dtdx, double gamma,
    double *ol_rho, double *ol_u, double *ol_v, double *ol_w, double *ol_p,
    double *or_rho, double *or_u, double *or_v, double *or_w, double *or_p);
void rk_chem_blend(long n_ch, long n_bins, long n_t, const double *logtab,
    const int64_t *idx, const double *weight, double *out);
"""

_CSOURCE = r"""
#include <math.h>
#include <stdint.h>

/* np.maximum / np.minimum: NaN in either operand propagates */
static double nmax(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a > b ? a : b;
}

static double nmin(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a < b ? a : b;
}

static double minmod(double a, double b) {
    if (a * b > 0.0)
        return fabs(a) < fabs(b) ? a : b;
    return 0.0;
}

static double mc(double dq_minus, double dq_plus) {
    double dq_c = 0.5 * (dq_minus + dq_plus);
    double lim = minmod(2.0 * dq_minus, 2.0 * dq_plus);
    return minmod(dq_c, lim);
}

void rk_two_shock(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma, long iterations, double rtol,
    double *f0, double *f1, double *f2, double *f3, double *f4)
{
    double gp = 0.5 * (gamma + 1.0);
    double gm = 0.5 * (gamma - 1.0);
    /* Faces are processed in blocks: the Newton sweep iterates over a
       block of independent faces, so the dependent sqrt chains of many
       faces are in flight at once (ILP / vectorisation) instead of one
       face's chain serialising the loop.  The per-face update sequence
       is unchanged — a converged face re-derives the same p_star, so the
       block-level early exit stays bitwise. */
    enum { TS_BLK = 64 };
    double ps[TS_BLK];
    for (long base = 0; base < n; base += TS_BLK) {
        long m = (n - base < (long)TS_BLK) ? (n - base) : (long)TS_BLK;
        for (long j = 0; j < m; j++) {
            long i = base + j;
            ps[j] = nmax(0.5 * (p_l[i] + p_r[i]), 1e-300);
        }
        for (long it = 0; it < iterations; it++) {
            int all_done = 1;
            /* branchless body so the face loop if-converts/vectorises:
               the floor is nmax() inlined as a ternary (values are
               >= 1e-300 > 0, so no signed-zero ambiguity, and NaN
               propagates through the first-operand test exactly like
               np.maximum); storing an equal p_new is a bitwise no-op,
               so the store is unconditional.  The simd pragma runs
               lanes elementwise with IEEE-exact vector sqrt/div — no
               cross-lane FP arithmetic, so results stay bitwise. */
            #pragma omp simd reduction(&:all_done)
            for (long j = 0; j < m; j++) {
                long i = base + j;
                double p_star = ps[j];
                double w_lft = sqrt(rho_l[i] * (gp * p_star + gm * p_l[i]));
                double w_rgt = sqrt(rho_r[i] * (gp * p_star + gm * p_r[i]));
                double us_l = u_l[i] - (p_star - p_l[i]) / w_lft;
                double us_r = u_r[i] + (p_star - p_r[i]) / w_rgt;
                double dp = (us_l - us_r) * (w_lft * w_rgt)
                            / (w_lft + w_rgt);
                double sum = p_star + dp;
                double p_new = (sum > 1e-300 || sum != sum) ? sum : 1e-300;
                int conv = (rtol > 0.0)
                    ? (fabs(dp) <= rtol * p_new)
                    : ((rtol == 0.0) ? (p_new == p_star) : 0);
                ps[j] = p_new;
                all_done &= conv;
            }
            if (all_done) break;
        }
        for (long j = 0; j < m; j++) {
            long i = base + j;
            double rl = rho_l[i], ul = u_l[i], pl = p_l[i];
            double rr = rho_r[i], ur = u_r[i], pr = p_r[i];
            double p_star = ps[j];
            double w_lft = sqrt(rl * (gp * p_star + gm * pl));
            double w_rgt = sqrt(rr * (gp * p_star + gm * pr));
            double u_star = 0.5 * (ul - (p_star - pl) / w_lft
                                   + ur + (p_star - pr) / w_rgt);

            double rho_sl = rl / (1.0 - rl * (p_star - pl)
                                  / nmax(w_lft * w_lft, 1e-300));
            double rho_sr = rr / (1.0 - rr * (p_star - pr)
                                  / nmax(w_rgt * w_rgt, 1e-300));
            rho_sl = nmax(rho_sl, 1e-12);
            rho_sr = nmax(rho_sr, 1e-12);

            double s_l = ul - w_lft / rl;
            double s_r = ur + w_rgt / rr;

            double rho_i, u_i, p_i, v_i, w_i;
            if (u_star >= 0.0) {
                if (s_l >= 0.0) { rho_i = rl; u_i = ul; p_i = pl; }
                else { rho_i = rho_sl; u_i = u_star; p_i = p_star; }
                v_i = v_l[i]; w_i = w_l[i];
            } else {
                if (s_r <= 0.0) { rho_i = rr; u_i = ur; p_i = pr; }
                else { rho_i = rho_sr; u_i = u_star; p_i = p_star; }
                v_i = v_r[i]; w_i = w_r[i];
            }

            double e_total = p_i / ((gamma - 1.0) * rho_i)
                + 0.5 * (u_i * u_i + v_i * v_i + w_i * w_i);
            f0[i] = rho_i * u_i;
            f1[i] = rho_i * u_i * u_i + p_i;
            f2[i] = rho_i * u_i * v_i;
            f3[i] = rho_i * u_i * w_i;
            f4[i] = u_i * (rho_i * e_total + p_i);
        }
    }
}

void rk_hllc(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma,
    double *f0, double *f1, double *f2, double *f3, double *f4)
{
    for (long i = 0; i < n; i++) {
        double rl = rho_l[i], ul = u_l[i], vl = v_l[i], wl = w_l[i],
               pl = p_l[i];
        double rr = rho_r[i], ur = u_r[i], vr = v_r[i], wr = w_r[i],
               pr = p_r[i];

        double cl = sqrt(gamma * pl / rl);
        double cr = sqrt(gamma * pr / rr);
        double sqrt_l = sqrt(rl);
        double sqrt_r = sqrt(rr);
        double u_roe = (sqrt_l * ul + sqrt_r * ur) / (sqrt_l + sqrt_r);
        double h_l = (gamma * pl / ((gamma - 1.0) * rl)) + 0.5 * ul * ul;
        double h_r = (gamma * pr / ((gamma - 1.0) * rr)) + 0.5 * ur * ur;
        double h_roe = (sqrt_l * h_l + sqrt_r * h_r) / (sqrt_l + sqrt_r);
        double c_roe = sqrt(nmax((gamma - 1.0)
                                 * (h_roe - 0.5 * u_roe * u_roe), 1e-300));
        double s_l = nmin(ul - cl, u_roe - c_roe);
        double s_r = nmax(ur + cr, u_roe + c_roe);

        double num = pr - pl + rl * ul * (s_l - ul) - rr * ur * (s_r - ur);
        double den = rl * (s_l - ul) - rr * (s_r - ur);
        if (fabs(den) < 1e-300) den = 1e-300;
        double s_m = num / den;
        s_m = nmin(nmax(s_m, s_l), s_r);

        double e_l = pl / ((gamma - 1.0) * rl)
            + 0.5 * (ul * ul + vl * vl + wl * wl);
        double e_r = pr / ((gamma - 1.0) * rr)
            + 0.5 * (ur * ur + vr * vr + wr * wr);
        double fl0 = rl * ul, fl1 = rl * ul * ul + pl, fl2 = rl * ul * vl,
               fl3 = rl * ul * wl, fl4 = ul * (rl * e_l + pl);
        double fr0 = rr * ur, fr1 = rr * ur * ur + pr, fr2 = rr * ur * vr,
               fr3 = rr * ur * wr, fr4 = ur * (rr * e_r + pr);

        if (s_l >= 0.0) {
            f0[i] = fl0; f1[i] = fl1; f2[i] = fl2; f3[i] = fl3; f4[i] = fl4;
        } else if (s_m >= 0.0) {
            double smu = s_l - s_m;
            if (fabs(smu) < 1e-300) smu = 1e-300;
            double factor = rl * (s_l - ul) / smu;
            double su = s_l - ul;
            double p_term;
            if (fabs(su) > 1e-300)
                p_term = pl / (rl * (su == 0 ? 1.0 : su));
            else
                p_term = 0.0;
            double cs0 = factor;
            double cs1 = factor * s_m;
            double cs2 = factor * vl;
            double cs3 = factor * wl;
            double cs4 = factor * (e_l + (s_m - ul) * (s_m + p_term));
            f0[i] = fl0 + s_l * (cs0 - rl);
            f1[i] = fl1 + s_l * (cs1 - rl * ul);
            f2[i] = fl2 + s_l * (cs2 - rl * vl);
            f3[i] = fl3 + s_l * (cs3 - rl * wl);
            f4[i] = fl4 + s_l * (cs4 - rl * e_l);
        } else if (s_r >= 0.0) {
            double smu = s_r - s_m;
            if (fabs(smu) < 1e-300) smu = 1e-300;
            double factor = rr * (s_r - ur) / smu;
            double su = s_r - ur;
            double p_term;
            if (fabs(su) > 1e-300)
                p_term = pr / (rr * (su == 0 ? 1.0 : su));
            else
                p_term = 0.0;
            double cs0 = factor;
            double cs1 = factor * s_m;
            double cs2 = factor * vr;
            double cs3 = factor * wr;
            double cs4 = factor * (e_r + (s_m - ur) * (s_m + p_term));
            f0[i] = fr0 + s_r * (cs0 - rr);
            f1[i] = fr1 + s_r * (cs1 - rr * ur);
            f2[i] = fr2 + s_r * (cs2 - rr * vr);
            f3[i] = fr3 + s_r * (cs3 - rr * wr);
            f4[i] = fr4 + s_r * (cs4 - rr * e_r);
        } else {
            f0[i] = fr0; f1[i] = fr1; f2[i] = fr2; f3[i] = fr3; f4[i] = fr4;
        }
    }
}

void rk_hll(long n,
    const double *rho_l, const double *u_l, const double *v_l,
    const double *w_l, const double *p_l,
    const double *rho_r, const double *u_r, const double *v_r,
    const double *w_r, const double *p_r,
    double gamma,
    double *f0, double *f1, double *f2, double *f3, double *f4)
{
    for (long i = 0; i < n; i++) {
        double rl = rho_l[i], ul = u_l[i], vl = v_l[i], wl = w_l[i],
               pl = p_l[i];
        double rr = rho_r[i], ur = u_r[i], vr = v_r[i], wr = w_r[i],
               pr = p_r[i];

        double cl = sqrt(gamma * pl / rl);
        double cr = sqrt(gamma * pr / rr);
        double sqrt_l = sqrt(rl);
        double sqrt_r = sqrt(rr);
        double u_roe = (sqrt_l * ul + sqrt_r * ur) / (sqrt_l + sqrt_r);
        double h_l = (gamma * pl / ((gamma - 1.0) * rl)) + 0.5 * ul * ul;
        double h_r = (gamma * pr / ((gamma - 1.0) * rr)) + 0.5 * ur * ur;
        double h_roe = (sqrt_l * h_l + sqrt_r * h_r) / (sqrt_l + sqrt_r);
        double c_roe = sqrt(nmax((gamma - 1.0)
                                 * (h_roe - 0.5 * u_roe * u_roe), 1e-300));
        double s_l = nmin(ul - cl, u_roe - c_roe);
        double s_r = nmax(ur + cr, u_roe + c_roe);

        double e_l = pl / ((gamma - 1.0) * rl)
            + 0.5 * (ul * ul + vl * vl + wl * wl);
        double e_r = pr / ((gamma - 1.0) * rr)
            + 0.5 * (ur * ur + vr * vr + wr * wr);
        double fl0 = rl * ul, fl1 = rl * ul * ul + pl, fl2 = rl * ul * vl,
               fl3 = rl * ul * wl, fl4 = ul * (rl * e_l + pl);
        double fr0 = rr * ur, fr1 = rr * ur * ur + pr, fr2 = rr * ur * vr,
               fr3 = rr * ur * wr, fr4 = ur * (rr * e_r + pr);

        double denom = s_r - s_l;
        if (s_l >= 0.0) {
            f0[i] = fl0; f1[i] = fl1; f2[i] = fl2; f3[i] = fl3; f4[i] = fl4;
        } else if (s_r <= 0.0) {
            f0[i] = fr0; f1[i] = fr1; f2[i] = fr2; f3[i] = fr3; f4[i] = fr4;
        } else {
            f0[i] = (s_r * fl0 - s_l * fr0 + s_l * s_r * (rr - rl)) / denom;
            f1[i] = (s_r * fl1 - s_l * fr1
                     + s_l * s_r * (rr * ur - rl * ul)) / denom;
            f2[i] = (s_r * fl2 - s_l * fr2
                     + s_l * s_r * (rr * vr - rl * vl)) / denom;
            f3[i] = (s_r * fl3 - s_l * fr3
                     + s_l * s_r * (rr * wr - rl * wl)) / denom;
            f4[i] = (s_r * fl4 - s_l * fr4
                     + s_l * s_r * (rr * e_r - rl * e_l)) / denom;
        }
    }
}

void rk_plm(long n, long m, const double *q, double *ql, double *qr)
{
    for (long f = 0; f < n - 1; f++) {
        for (long j = 0; j < m; j++) {
            ql[f * m + j] = q[f * m + j];
            qr[f * m + j] = q[(f + 1) * m + j];
        }
    }
    if (n >= 4) {
        for (long c = 1; c < n - 1; c++) {
            for (long j = 0; j < m; j++) {
                double dq_minus = q[c * m + j] - q[(c - 1) * m + j];
                double dq_plus = q[(c + 1) * m + j] - q[c * m + j];
                double slope = mc(dq_minus, dq_plus);
                ql[c * m + j] = q[c * m + j] + 0.5 * slope;
                qr[(c - 1) * m + j] = q[c * m + j] - 0.5 * slope;
            }
        }
    }
}

void rk_ppm(long n, long m, const double *q, double *ql, double *qr,
    double *dq, double *qf)
{
    rk_plm(n, m, q, ql, qr);
    for (long c = 1; c < n - 1; c++)
        for (long j = 0; j < m; j++)
            dq[c * m + j] = mc(q[c * m + j] - q[(c - 1) * m + j],
                               q[(c + 1) * m + j] - q[c * m + j]);
    for (long t = 0; t < n - 3; t++)
        for (long j = 0; j < m; j++)
            qf[t * m + j] = 0.5 * (q[(t + 1) * m + j] + q[(t + 2) * m + j])
                - (dq[(t + 2) * m + j] - dq[(t + 1) * m + j]) / 6.0;
    for (long c = 0; c < n - 4; c++) {
        for (long j = 0; j < m; j++) {
            double qc = q[(c + 2) * m + j];
            double ql_edge = qf[c * m + j];
            double qr_edge = qf[(c + 1) * m + j];
            if ((qr_edge - qc) * (qc - ql_edge) <= 0.0) {
                ql_edge = qc;
                qr_edge = qc;
            }
            double dqe = qr_edge - ql_edge;
            double q6 = 6.0 * (qc - 0.5 * (ql_edge + qr_edge));
            int overshoot_l = dqe * q6 > dqe * dqe;
            int overshoot_r = -(dqe * dqe) > dqe * q6;
            if (overshoot_l) ql_edge = 3.0 * qc - 2.0 * qr_edge;
            if (overshoot_r) qr_edge = 3.0 * qc - 2.0 * ql_edge;
            double q_im1 = q[(c + 1) * m + j];
            double q_ip1 = q[(c + 3) * m + j];
            ql_edge = nmin(nmax(ql_edge, nmin(q_im1, qc)), nmax(q_im1, qc));
            qr_edge = nmin(nmax(qr_edge, nmin(qc, q_ip1)), nmax(qc, q_ip1));
            ql[(c + 2) * m + j] = qr_edge;
            qr[(c + 1) * m + j] = ql_edge;
        }
    }
}

static double iplus(double ql, double qr, double q, double sigma)
{
    double dq = qr - ql;
    double q6 = 6.0 * (q - 0.5 * (ql + qr));
    double s = nmin(nmax(sigma, 0.0), 1.0);
    return qr - 0.5 * s * (dq - (1.0 - 2.0 * s / 3.0) * q6);
}

static double iminus(double ql, double qr, double q, double sigma)
{
    double dq = qr - ql;
    double q6 = 6.0 * (q - 0.5 * (ql + qr));
    double s = nmin(nmax(sigma, 0.0), 1.0);
    return ql + 0.5 * s * (dq + (1.0 - 2.0 * s / 3.0) * q6);
}

void rk_trace(long n, long m,
    const double *rho, const double *u, const double *v,
    const double *w, const double *p,
    const double *el_rho, const double *er_rho,
    const double *el_u, const double *er_u,
    const double *el_v, const double *er_v,
    const double *el_w, const double *er_w,
    const double *el_p, const double *er_p,
    double dtdx, double gamma,
    double *ol_rho, double *ol_u, double *ol_v, double *ol_w, double *ol_p,
    double *or_rho, double *or_u, double *or_v, double *or_w, double *or_p)
{
    for (long f = 0; f < n - 1; f++) {
        for (long j = 0; j < m; j++) {
            /* ---- left state from cell i = f ---- */
            long k = f * m + j;
            double rho_i = rho[k], u_i = u[k], p_i = p[k];
            double c_i = sqrt(gamma * nmax(p_i, 1e-300)
                              / nmax(rho_i, 1e-300));
            double c2 = c_i * c_i;
            double lam_m = u_i - c_i;
            double lam_0 = u_i;
            double lam_p = u_i + c_i;

            double lam_max = nmax(lam_p, 0.0);
            double ref_rho = iplus(el_rho[k], er_rho[k], rho_i,
                                   lam_max * dtdx);
            double ref_u = iplus(el_u[k], er_u[k], u_i, lam_max * dtdx);
            double ref_p = iplus(el_p[k], er_p[k], p_i, lam_max * dtdx);
            double wl_rho = ref_rho, wl_u = ref_u, wl_p = ref_p;

            double sig = nmax(lam_m, 0.0) * dtdx;
            double d_rho = ref_rho - iplus(el_rho[k], er_rho[k], rho_i, sig);
            double d_u = ref_u - iplus(el_u[k], er_u[k], u_i, sig);
            double d_p = ref_p - iplus(el_p[k], er_p[k], p_i, sig);
            double alpha = (d_p - rho_i * c_i * d_u) / (2.0 * c2);
            double mask = lam_m > 0.0 ? 1.0 : 0.0;
            wl_rho -= mask * alpha * 1.0;
            wl_u -= mask * alpha * (-c_i / rho_i);
            wl_p -= mask * alpha * c2;

            sig = nmax(lam_0, 0.0) * dtdx;
            d_rho = ref_rho - iplus(el_rho[k], er_rho[k], rho_i, sig);
            d_u = ref_u - iplus(el_u[k], er_u[k], u_i, sig);
            d_p = ref_p - iplus(el_p[k], er_p[k], p_i, sig);
            alpha = d_rho - d_p / c2;
            mask = lam_0 > 0.0 ? 1.0 : 0.0;
            wl_rho -= mask * alpha * 1.0;
            wl_u -= mask * alpha * 0.0;
            wl_p -= mask * alpha * 0.0;

            double sig0 = nmax(lam_0, 0.0) * dtdx;
            long o = f * m + j;
            ol_rho[o] = wl_rho;
            ol_u[o] = wl_u;
            ol_v[o] = iplus(el_v[k], er_v[k], v[k], sig0);
            ol_w[o] = iplus(el_w[k], er_w[k], w[k], sig0);
            ol_p[o] = wl_p;

            /* ---- right state from cell i = f + 1 ---- */
            k = (f + 1) * m + j;
            rho_i = rho[k]; u_i = u[k]; p_i = p[k];
            c_i = sqrt(gamma * nmax(p_i, 1e-300) / nmax(rho_i, 1e-300));
            c2 = c_i * c_i;
            lam_m = u_i - c_i;
            lam_0 = u_i;
            lam_p = u_i + c_i;

            double lam_min = nmin(lam_m, 0.0);
            ref_rho = iminus(el_rho[k], er_rho[k], rho_i, -lam_min * dtdx);
            ref_u = iminus(el_u[k], er_u[k], u_i, -lam_min * dtdx);
            ref_p = iminus(el_p[k], er_p[k], p_i, -lam_min * dtdx);
            double wr_rho = ref_rho, wr_u = ref_u, wr_p = ref_p;

            sig = -nmin(lam_p, 0.0) * dtdx;
            d_rho = ref_rho - iminus(el_rho[k], er_rho[k], rho_i, sig);
            d_u = ref_u - iminus(el_u[k], er_u[k], u_i, sig);
            d_p = ref_p - iminus(el_p[k], er_p[k], p_i, sig);
            alpha = (d_p + rho_i * c_i * d_u) / (2.0 * c2);
            mask = lam_p < 0.0 ? 1.0 : 0.0;
            wr_rho -= mask * alpha * 1.0;
            wr_u -= mask * alpha * (c_i / rho_i);
            wr_p -= mask * alpha * c2;

            sig = -nmin(lam_0, 0.0) * dtdx;
            d_rho = ref_rho - iminus(el_rho[k], er_rho[k], rho_i, sig);
            d_u = ref_u - iminus(el_u[k], er_u[k], u_i, sig);
            d_p = ref_p - iminus(el_p[k], er_p[k], p_i, sig);
            alpha = d_rho - d_p / c2;
            mask = lam_0 < 0.0 ? 1.0 : 0.0;
            wr_rho -= mask * alpha * 1.0;
            wr_u -= mask * alpha * 0.0;
            wr_p -= mask * alpha * 0.0;

            sig0 = -nmin(lam_0, 0.0) * dtdx;
            or_rho[o] = wr_rho;
            or_u[o] = wr_u;
            or_v[o] = iminus(el_v[k], er_v[k], v[k], sig0);
            or_w[o] = iminus(el_w[k], er_w[k], w[k], sig0);
            or_p[o] = wr_p;
        }
    }
}

void rk_chem_blend(long n_ch, long n_bins, long n_t, const double *logtab,
    const int64_t *idx, const double *weight, double *out)
{
    for (long c = 0; c < n_ch; c++) {
        const double *row = logtab + c * n_bins;
        double *orow = out + c * n_t;
        for (long j = 0; j < n_t; j++) {
            double lo = row[idx[j]];
            double hi = row[idx[j] + 1];
            orow[j] = (hi - lo) * weight[j] + lo;
        }
    }
}
"""


def _cache_dir() -> str:
    d = os.environ.get("REPRO_KERNELS_CACHE")
    if not d:
        d = os.path.join(os.path.expanduser("~"), ".cache", "repro-kernels")
    os.makedirs(d, exist_ok=True)
    return d


def _build_module():
    """Compile (or reuse) the C extension; returns the imported module."""
    import hashlib

    from cffi import FFI

    tag = hashlib.sha1((_CDEF + _CSOURCE).encode()).hexdigest()[:12]
    modname = f"_repro_kernels_c_{tag}"
    cache = _cache_dir()
    if cache not in sys.path:
        sys.path.insert(0, cache)
    try:
        return importlib.import_module(modname)
    except ImportError:
        pass

    ffibuilder = FFI()
    ffibuilder.cdef(_CDEF)
    ffibuilder.set_source(
        modname,
        _CSOURCE,
        # -ffp-contract=off: no FMA contraction (bitwise parity with the
        # NumPy op sequence); -fno-math-errno: lets sqrt vectorise;
        # -fopenmp-simd: honour the `#pragma omp simd` on the two-shock
        # Newton sweep without pulling in the OpenMP runtime.  Never
        # -ffast-math — it licenses reassociation and breaks parity.
        extra_compile_args=["-O3", "-ffp-contract=off", "-fno-math-errno",
                            "-fopenmp-simd"],
    )
    # build in a private tmpdir, then atomically publish the .so — two
    # processes racing the first build both succeed
    with tempfile.TemporaryDirectory(dir=cache) as build_dir:
        so_path = ffibuilder.compile(tmpdir=build_dir, verbose=False)
        target = os.path.join(cache, os.path.basename(so_path))
        os.replace(so_path, target)
    importlib.invalidate_caches()
    return importlib.import_module(modname)


_mod = _build_module()
ffi = _mod.ffi
_lib = _mod.lib


def _p(arr):
    return ffi.from_buffer("double[]", arr)


def _pc(arr):
    return ffi.from_buffer("double[]", arr, require_writable=False)


class _CLoops:
    """Namespace matching the _loops signatures, backed by the C library."""

    @staticmethod
    def two_shock(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
                  gamma, iterations, rtol, f0, f1, f2, f3, f4):
        _lib.rk_two_shock(
            rho_l.shape[0],
            _pc(rho_l), _pc(u_l), _pc(v_l), _pc(w_l), _pc(p_l),
            _pc(rho_r), _pc(u_r), _pc(v_r), _pc(w_r), _pc(p_r),
            gamma, iterations, rtol,
            _p(f0), _p(f1), _p(f2), _p(f3), _p(f4),
        )

    @staticmethod
    def hllc(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
             gamma, f0, f1, f2, f3, f4):
        _lib.rk_hllc(
            rho_l.shape[0],
            _pc(rho_l), _pc(u_l), _pc(v_l), _pc(w_l), _pc(p_l),
            _pc(rho_r), _pc(u_r), _pc(v_r), _pc(w_r), _pc(p_r),
            gamma,
            _p(f0), _p(f1), _p(f2), _p(f3), _p(f4),
        )

    @staticmethod
    def hll(rho_l, u_l, v_l, w_l, p_l, rho_r, u_r, v_r, w_r, p_r,
            gamma, f0, f1, f2, f3, f4):
        _lib.rk_hll(
            rho_l.shape[0],
            _pc(rho_l), _pc(u_l), _pc(v_l), _pc(w_l), _pc(p_l),
            _pc(rho_r), _pc(u_r), _pc(v_r), _pc(w_r), _pc(p_r),
            gamma,
            _p(f0), _p(f1), _p(f2), _p(f3), _p(f4),
        )

    @staticmethod
    def plm(q, ql, qr):
        n, m = q.shape
        _lib.rk_plm(n, m, _pc(q), _p(ql), _p(qr))

    @staticmethod
    def ppm(q, ql, qr, dq, qf):
        n, m = q.shape
        _lib.rk_ppm(n, m, _pc(q), _p(ql), _p(qr), _p(dq), _p(qf))

    @staticmethod
    def trace(rho, u, v, w, p,
              el_rho, er_rho, el_u, er_u, el_v, er_v, el_w, er_w,
              el_p, er_p, dtdx, gamma,
              ol_rho, ol_u, ol_v, ol_w, ol_p,
              or_rho, or_u, or_v, or_w, or_p):
        n, m = rho.shape
        _lib.rk_trace(
            n, m,
            _pc(rho), _pc(u), _pc(v), _pc(w), _pc(p),
            _pc(el_rho), _pc(er_rho), _pc(el_u), _pc(er_u),
            _pc(el_v), _pc(er_v), _pc(el_w), _pc(er_w),
            _pc(el_p), _pc(er_p),
            dtdx, gamma,
            _p(ol_rho), _p(ol_u), _p(ol_v), _p(ol_w), _p(ol_p),
            _p(or_rho), _p(or_u), _p(or_v), _p(or_w), _p(or_p),
        )

    @staticmethod
    def chem_blend(logtab, idx, weight, out):
        n_ch, n_bins = logtab.shape
        n_t = idx.shape[0]
        idx64 = np.ascontiguousarray(idx, dtype=np.int64)
        _lib.rk_chem_blend(
            n_ch, n_bins, n_t, _pc(logtab),
            ffi.from_buffer("int64_t[]", idx64, require_writable=False),
            _pc(weight), _p(out),
        )


for _kname, _impl in _wrap.make_impls(_CLoops).items():
    dispatch.register("cffi", _kname, _impl)
