"""RunController: the fault-tolerant advance loop.

Owns the outer loop that used to be inlined in ``Simulation.run`` /
``PrimordialCollapse.run_to_redshift`` and wraps every root step with the
run-control services a weeks-long job needs:

* **durable checkpoints** — atomic hierarchy dumps plus a
  :class:`~repro.runtime.checkpoint_policy.RunState` record (clock words,
  per-level subcycle counters, CFL, RNG state, problem config) written as
  a pair, rotated to a keep-count, so ``resume()`` continues *bit-exactly*
  where ``run()`` stopped;
* **crash recovery** — a :class:`~repro.runtime.recovery.Watchdog` scans
  the state after each root step; on NaN/Inf (or a NaN timestep raised by
  the evolver) the controller rolls back to the newest loadable
  checkpoint, retries with a reduced CFL, and gives up only after
  ``RecoveryPolicy.max_retries`` consecutive trips without progress;
* **clean drains** — SIGINT/SIGTERM set a flag that is honoured at the
  next root-step boundary: checkpoint, telemetry epilogue, orderly return;
* **structured telemetry** — one JSONL record per root step (see
  :mod:`repro.runtime.telemetry`) plus checkpoint/recovery/lifecycle
  events.

Bit-exactness contract: ``run(2N steps)`` and ``run(N) -> resume(N)``
produce identical hierarchies because (a) the hierarchy npz round-trips
every array and every DoubleDouble word pair exactly, (b) the RunState
restores the evolver's per-level step counters (which drive the hydro
sweep permutation), CFL, gravity mean density and the global RNG, and
(c) both paths advance through the same ``advance_root_step`` code path.
"""

from __future__ import annotations

import os
import threading
import time
from collections import defaultdict

from repro.gravity.multigrid import MultigridConvergenceError
from repro.io.checkpoint import (
    CheckpointError,
    load_hierarchy,
    save_hierarchy,
)
from repro.precision.doubledouble import DoubleDouble
from repro.runtime.faults import (
    apply_checkpoint_bitflip as _apply_bitflip,
    maybe_sleep as _sleep_fault,
    take as _take_fault,
)
from repro.runtime.checkpoint_policy import (
    CheckpointPolicy,
    RunState,
    digest_path,
    restore_rng_state,
    verify_digest,
    write_digest,
)
from repro.runtime.recovery import (
    NonFiniteStateError,
    RecoveryPolicy,
    RunFailedError,
    SignalGuard,
    Watchdog,
)
from repro.runtime.supervision import HeartbeatWriter
from repro.runtime.telemetry import (
    TelemetryWriter,
    step_record,
    telemetry_path,
)


class RunController:
    """Fault-tolerant driver around a :class:`HierarchyEvolver`.

    Parameters
    ----------
    evolver:
        The configured :class:`repro.amr.evolve.HierarchyEvolver`.
    run_dir:
        Directory for checkpoints and ``telemetry.jsonl`` (created).
    policy / recovery / watchdog:
        Optional overrides of :class:`CheckpointPolicy`,
        :class:`RecoveryPolicy`, :class:`Watchdog`.
    problem:
        Optional owner object (``Simulation`` / ``PrimordialCollapse``)
        whose ``hierarchy`` attribute is kept in sync across rollbacks.
    pre_step:
        Optional callback ``pre_step(controller)`` invoked before every
        root step (e.g. to track ``criteria.a`` with the expansion).
    config:
        JSON-serialisable problem spec stored in every RunState so the
        CLI can rebuild the evolver on ``resume``.
    """

    def __init__(self, evolver, run_dir: str, *, policy=None, recovery=None,
                 watchdog=None, problem=None, pre_step=None, config=None):
        self.evolver = evolver
        self.run_dir = str(run_dir)
        self.policy = policy or CheckpointPolicy()
        self.recovery = recovery or RecoveryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.problem = problem
        self.pre_step = pre_step
        self.config = dict(config or {})
        self.step = 0
        self.t_end: float = 0.0
        self.max_root_steps: int | None = None
        self.recoveries = 0
        self._retries = 0
        self._highest_failed_step = -1
        self._last_checkpoint_step = -1
        #: checkpoint step a resume() restarted from; pinned against
        #: rotation until a newer checkpoint is durably on disk
        self._resume_anchor: int | None = None
        self._drain = threading.Event()
        self._drain_reason: str | None = None
        self.telemetry: TelemetryWriter | None = None
        #: liveness sidecar (repro.runtime.supervision); the service
        #: daemon reads it every tick to judge staleness externally
        self.heartbeat: HeartbeatWriter | None = None

    # ---------------------------------------------------------------- drain
    def request_drain(self, reason: str = "drain") -> None:
        """Ask the loop to stop at the next root-step boundary.

        This is the same code path a SIGINT takes — checkpoint, telemetry
        epilogue, orderly ``"interrupted"`` return — but callable from
        another thread, which is how the run service preempts a job it
        wants to checkpoint and requeue.  Safe to call at any time,
        including before ``run()``/``resume()``.
        """
        self._drain_reason = str(reason)
        self._drain.set()

    @property
    def drain_requested(self) -> bool:
        return self._drain.is_set()

    # ------------------------------------------------------------ accessors
    @property
    def hierarchy(self):
        return self.evolver.hierarchy

    # ------------------------------------------------------------ heartbeat
    def _start_heartbeat(self, phase: str) -> None:
        """Create the liveness sidecar and hook sub-step phase beats.

        Heartbeats never touch simulation state — a supervised run is
        bitwise identical to an unsupervised one; they only make its
        progress externally observable.
        """
        self.heartbeat = HeartbeatWriter(self.run_dir)
        self.heartbeat.beat(step=self.step, phase=phase, force=True)
        if hasattr(self.evolver, "phase_hook"):
            self.evolver.phase_hook = self._phase_beat

    def _phase_beat(self, section: str) -> None:
        """Rate-limited beat at an evolver sub-step phase boundary."""
        if self.heartbeat is not None:
            self.heartbeat.beat(phase=section)

    def _beat(self, phase: str) -> None:
        if self.heartbeat is not None:
            self.heartbeat.beat(step=self.step, phase=phase, force=True)

    # -------------------------------------------------------------- control
    def run(self, t_end: float, max_root_steps: int | None = None) -> dict:
        """Fresh start: checkpoint the initial state, then advance."""
        os.makedirs(self.run_dir, exist_ok=True)
        self.t_end = float(t_end)
        self.max_root_steps = max_root_steps
        self.step = 0
        self.telemetry = TelemetryWriter(telemetry_path(self.run_dir))
        self._start_heartbeat("start")
        self.telemetry.emit("start", t_end=self.t_end,
                            max_root_steps=max_root_steps,
                            config=self.config)
        self._checkpoint()
        return self._loop()

    def resume(self, max_root_steps: int | None = None,
               t_end: float | None = None) -> dict:
        """Continue from the newest *verified* checkpoint in ``run_dir``."""
        # telemetry first: _latest_loadable emits checkpoint_rejected
        # events for any pair it has to skip over
        self.telemetry = TelemetryWriter(telemetry_path(self.run_dir))
        self._start_heartbeat("resume")
        step, hierarchy, state = self._latest_loadable()
        self._install(hierarchy, state)
        # rotation must never delete the pair we just restarted from until
        # a newer checkpoint exists: a preempt right after resume would
        # otherwise have nothing bit-exact to fall back to
        self._resume_anchor = step
        self.t_end = float(t_end) if t_end is not None else float(state.t_end)
        self.max_root_steps = (
            max_root_steps if max_root_steps is not None
            else state.max_root_steps
        )
        self.recoveries = int(state.recoveries)
        if state.config and not self.config:
            self.config = dict(state.config)
        self.telemetry.emit("resume", step=self.step, t=float(state.t_hi),
                            t_end=self.t_end,
                            max_root_steps=self.max_root_steps)
        return self._loop()

    # ----------------------------------------------------------------- loop
    def _loop(self) -> dict:
        ev = self.evolver
        wall_start = time.monotonic()
        status = "finished"
        with SignalGuard() as guard:
            while True:
                if self.max_root_steps is not None and \
                        self.step >= self.max_root_steps:
                    status = "max_steps"
                    break
                if guard.triggered or self._drain.is_set():
                    status = "interrupted"
                    break
                if self.pre_step is not None:
                    self.pre_step(self)
                self._beat("root_step")
                try:
                    dt = ev.advance_root_step(self.t_end)
                    if dt is not None:
                        self.watchdog.check(ev.hierarchy, dt)
                except (FloatingPointError, NonFiniteStateError,
                        MultigridConvergenceError) as exc:
                    self._recover(str(exc))
                    continue
                if dt is None:  # root clock has reached t_end
                    break
                self.step += 1
                if self.step > self._highest_failed_step:
                    self._retries = 0
                self._beat("step_done")
                self.telemetry.emit("step", **step_record(ev, self.step, dt))
                self._drain_defense(self.step)
                if self.policy.due(self.step):
                    self._checkpoint()
                if guard.triggered or self._drain.is_set():
                    status = "interrupted"
                    break
            self._checkpoint()
            summary = {
                "status": status,
                "steps": self.step,
                "t": float(ev.hierarchy.root.time),
                "recoveries": self.recoveries,
                "wall": round(time.monotonic() - wall_start, 3),
                "run_dir": self.run_dir,
            }
            if guard.triggered:
                summary["signal"] = guard.triggered
            if self._drain.is_set() and self._drain_reason is not None:
                summary["drain"] = self._drain_reason
            self._beat(f"exit:{status}")
            self.telemetry.emit(
                "interrupted" if status == "interrupted" else "finish",
                **summary,
            )
            self.telemetry.close()
        return summary

    def _drain_defense(self, step: int) -> None:
        """Forward queued defense-ladder events into the telemetry stream."""
        defense = getattr(self.evolver, "defense", None)
        if defense is None or self.telemetry is None:
            return
        for event in defense.drain_events():
            self.telemetry.emit("defense", step=step, **event)

    # ----------------------------------------------------------- checkpoint
    def _checkpoint(self) -> str:
        """Write the (hierarchy, RunState) pair + sha256 sidecars."""
        data_path = self.policy.data_path(self.run_dir, self.step)
        if self._last_checkpoint_step == self.step:
            return data_path  # already durable for this step
        state_path = self.policy.state_path(self.run_dir, self.step)
        self._beat("checkpoint")
        # injected dead-storage stall: the write blocks and the heartbeat
        # goes stale, which is how the daemon's supervisor catches it
        _sleep_fault("io_stall", step=self.step)
        save_hierarchy(self.evolver.hierarchy, data_path,
                       timers=self.evolver.timers)
        # digest the *good* bytes before any injected post-write rot, so
        # the corruption faults below are exactly what verification catches
        write_digest(data_path)
        if _take_fault("checkpoint_truncate", step=self.step) is not None:
            # injected disk-full/torn-write: chop the npz in half so
            # recovery must skip this pair and fall back to an older one
            size = os.path.getsize(data_path)
            with open(data_path, "r+b") as fh:
                fh.truncate(max(size // 2, 1))
        if _take_fault("checkpoint_bitflip", step=self.step) is not None:
            # injected silent corruption: the npz still loads cleanly;
            # only the digest sidecar can tell it has rotted
            _apply_bitflip(data_path)
        state = RunState.capture(
            self.evolver,
            step=self.step,
            t_end=self.t_end,
            max_root_steps=self.max_root_steps,
            config=self.config,
            checkpoint=os.path.basename(data_path),
            recoveries=self.recoveries,
        )
        state.save(state_path)
        write_digest(state_path)
        self._last_checkpoint_step = self.step
        if self._resume_anchor is not None and self.step > self._resume_anchor:
            self._resume_anchor = None  # a newer durable pair supersedes it
        removed = self.policy.rotate(self.run_dir, pin=self._resume_anchor)
        if self.telemetry is not None:
            self.telemetry.emit("checkpoint", step=self.step,
                                path=os.path.basename(data_path),
                                rotated_out=removed)
        return data_path

    def _latest_loadable(self) -> tuple[int, object, RunState]:
        """Newest checkpoint pair that verifies and loads (skips corrupt ones).

        Digest verification runs first: a bitflipped npz still loads
        cleanly, so the sha256 sidecars are the only thing standing
        between silent corruption and a poisoned trajectory.  Pairs
        written before digests existed (no sidecar) verify by default.
        """
        pairs = CheckpointPolicy.list_checkpoints(self.run_dir)
        last_error: Exception | None = None
        for step, npz, state_path in reversed(pairs):
            bad = None
            if not verify_digest(npz):
                bad = os.path.basename(npz)
            elif not verify_digest(state_path):
                bad = os.path.basename(state_path)
            if bad is not None:
                last_error = CheckpointError(f"digest mismatch: {bad}")
                if self.telemetry is not None:
                    self.telemetry.emit("checkpoint_rejected", step=step,
                                        path=bad, reason="digest_mismatch")
                continue
            try:
                hierarchy = load_hierarchy(npz, timers=self.evolver.timers)
                state = RunState.load(state_path)
            except (CheckpointError, OSError, ValueError) as exc:
                last_error = exc
                if self.telemetry is not None:
                    self.telemetry.emit("checkpoint_rejected", step=step,
                                        path=os.path.basename(npz),
                                        reason=str(exc))
                continue
            return step, hierarchy, state
        raise CheckpointError(
            f"no loadable checkpoint in {self.run_dir!r}"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def _install(self, hierarchy, state: RunState,
                 cfl: float | None = None) -> None:
        """Swap a restored hierarchy + RunState into the live objects."""
        ev = self.evolver
        ev.hierarchy = hierarchy
        if ev.timers is not None:
            hierarchy.timers = ev.timers
        ev.step_counter = defaultdict(
            int, {int(k): int(v) for k, v in state.step_counter.items()}
        )
        ev.cfl = float(cfl) if cfl is not None else float(state.cfl)
        if ev.gravity is not None and state.gravity_mean_density is not None:
            ev.gravity.mean_density = float(state.gravity_mean_density)
        if state.rng_state:
            restore_rng_state(state.rng_state)
        if self.problem is not None and hasattr(self.problem, "hierarchy"):
            self.problem.hierarchy = hierarchy
        self.step = int(state.step)
        # any checkpoint beyond the restored step belongs to the abandoned
        # trajectory — never dedup against it
        self._last_checkpoint_step = -1

    # ------------------------------------------------------------- recovery
    def _recover(self, reason: str) -> None:
        """Roll back to the last good checkpoint and retry, CFL reduced."""
        failed_step = self.step + 1
        # events queued by the failed step must not be attributed to the
        # replayed one
        self._drain_defense(failed_step)
        self._highest_failed_step = max(self._highest_failed_step,
                                        failed_step)
        if self._retries >= self.recovery.max_retries:
            if self.telemetry is not None:
                self.telemetry.emit("failed", step=failed_step,
                                    reason=reason,
                                    retries=self._retries)
                self.telemetry.close()
            raise RunFailedError(
                f"run failed at root step {failed_step} after "
                f"{self._retries} rollback retries: {reason}"
            )
        self._retries += 1
        self.recoveries += 1
        step, hierarchy, state = self._latest_loadable()
        new_cfl = self.recovery.reduced_cfl(self.evolver.cfl)
        self._install(hierarchy, state, cfl=new_cfl)
        self._resume_anchor = step
        # drop checkpoints ahead of the rollback point: they belong to the
        # abandoned trajectory and must never be restored from again
        for s, npz, state_path in CheckpointPolicy.list_checkpoints(
                self.run_dir):
            if s > step:
                for path in (npz, state_path,
                             digest_path(npz), digest_path(state_path)):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        if self.telemetry is not None:
            self.telemetry.emit("recovery", step=failed_step, reason=reason,
                                rollback_step=step, cfl=new_cfl,
                                attempt=self._retries)
