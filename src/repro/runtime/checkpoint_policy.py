"""Durable checkpoint policy: naming, rotation, and the RunState record.

A run directory holds paired files per checkpoint::

    chk_0000012.npz    — the full hierarchy (atomic, see repro.io.checkpoint)
    chk_0000012.json   — the RunState: everything *outside* the hierarchy
                         that the trajectory depends on (clock words, step
                         counters, CFL, RNG state, problem config)

Both halves are written atomically (temp file + ``os.replace``), the state
file second, so a pair is complete iff its ``.json`` exists.  Rotation
keeps the newest ``keep`` pairs; recovery walks pairs newest-first and
uses the first one that still loads.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field

import numpy as np

STATE_FORMAT_VERSION = 1

_CHK_RE = re.compile(r"^chk_(\d+)\.json$")

DIGEST_SUFFIX = ".sha256"


def digest_path(path: str) -> str:
    """The sha256 sidecar next to a checkpoint half (npz or state json)."""
    return str(path) + DIGEST_SUFFIX


def file_sha256(path: str) -> str:
    """Streamed sha256 hex digest of a file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def write_digest(path: str) -> str:
    """Hash ``path`` and atomically write its ``.sha256`` sidecar.

    Written inside the same atomic-replace protocol as the checkpoint
    halves themselves (temp + fsync + ``os.replace``), *after* the data
    file is durably in place — so a sidecar never vouches for bytes that
    were not fully written.  Returns the hex digest.
    """
    digest = file_sha256(path)
    _atomic_write_text(
        digest_path(path),
        f"{digest}  {os.path.basename(path)}\n",
    )
    return digest


def verify_digest(path: str, missing_ok: bool = True) -> bool:
    """Re-hash ``path`` against its sidecar; False means corruption.

    A missing sidecar verifies (``missing_ok``) by default so checkpoint
    pairs written before digests existed stay loadable; pass
    ``missing_ok=False`` for strict scrubs.
    """
    try:
        with open(digest_path(path), encoding="utf-8") as fh:
            expected = fh.read().split()[0]
    except OSError:
        return missing_ok
    except IndexError:
        return False  # torn/empty sidecar vouches for nothing
    try:
        return file_sha256(path) == expected
    except OSError:
        return False


def _atomic_write_text(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def serialize_rng_state(state=None) -> dict:
    """JSON-encode the legacy global numpy RNG state (MT19937)."""
    if state is None:
        state = np.random.get_state()
    name, keys, pos, has_gauss, cached = state
    return {
        "name": str(name),
        "keys": [int(k) for k in keys],
        "pos": int(pos),
        "has_gauss": int(has_gauss),
        "cached_gaussian": float(cached),
    }


def restore_rng_state(record: dict) -> None:
    np.random.set_state((
        record["name"],
        np.asarray(record["keys"], dtype=np.uint32),
        int(record["pos"]),
        int(record["has_gauss"]),
        float(record["cached_gaussian"]),
    ))


@dataclass
class RunState:
    """Everything besides the hierarchy that ``resume()`` needs to continue
    bit-exactly where ``run()`` left off."""

    step: int = 0
    t_hi: float = 0.0
    t_lo: float = 0.0
    t_end: float = 0.0
    max_root_steps: int | None = None
    cfl: float = 0.4
    #: per-level root-subcycle counters (drive the hydro sweep permutation)
    step_counter: dict = field(default_factory=dict)
    #: per-level clock words: [{"level", "time_hi", "time_lo", "n_grids"}]
    level_times: list = field(default_factory=list)
    rng_state: dict = field(default_factory=serialize_rng_state)
    gravity_mean_density: float | None = None
    #: problem spec the CLI uses to rebuild the evolver on resume
    config: dict = field(default_factory=dict)
    checkpoint: str = ""
    recoveries: int = 0
    wall_time: float = 0.0
    format_version: int = STATE_FORMAT_VERSION

    @classmethod
    def capture(cls, evolver, **overrides) -> "RunState":
        """Snapshot an evolver's run-relevant state."""
        h = evolver.hierarchy
        level_times = [
            {
                "level": lvl,
                "time_hi": float(grids[0].time.hi),
                "time_lo": float(grids[0].time.lo),
                "n_grids": len(grids),
            }
            for lvl, grids in enumerate(h.levels)
            if grids
        ]
        state = cls(
            t_hi=float(h.root.time.hi),
            t_lo=float(h.root.time.lo),
            cfl=float(evolver.cfl),
            step_counter={str(k): int(v)
                          for k, v in evolver.step_counter.items()},
            level_times=level_times,
            rng_state=serialize_rng_state(),
            gravity_mean_density=(
                float(evolver.gravity.mean_density)
                if evolver.gravity is not None else None
            ),
        )
        for key, val in overrides.items():
            setattr(state, key, val)
        return state

    def save(self, path: str) -> None:
        _atomic_write_text(path, json.dumps(self.__dict__, indent=1))

    @classmethod
    def load(cls, path: str) -> "RunState":
        with open(path, encoding="utf-8") as fh:
            record = json.load(fh)
        version = record.pop("format_version", STATE_FORMAT_VERSION)
        if version != STATE_FORMAT_VERSION:
            raise ValueError(f"run-state format {version} not supported")
        state = cls(**record)
        state.format_version = version
        return state


class CheckpointPolicy:
    """When to checkpoint and how many to keep.

    Parameters
    ----------
    every_steps:
        Write a checkpoint every this many root steps (plus one at step 0
        and one at exit, written by the controller regardless).
    keep_last:
        Newest pairs retained after rotation; older ones are deleted.
        ``keep`` is accepted as a legacy alias.  Independently of the
        count, :meth:`rotate` never deletes a *pinned* step — the
        controller pins the checkpoint a preempted/resumed run restarted
        from until a newer one is durably on disk.
    """

    def __init__(self, every_steps: int = 10, keep: int | None = None,
                 keep_last: int | None = None):
        if every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        if keep_last is None:
            keep_last = 3 if keep is None else keep
        elif keep is not None and keep != keep_last:
            raise ValueError("pass either keep_last or its alias keep, "
                             "not conflicting values of both")
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.every_steps = int(every_steps)
        self.keep_last = int(keep_last)

    @property
    def keep(self) -> int:
        """Legacy alias of :attr:`keep_last`."""
        return self.keep_last

    @keep.setter
    def keep(self, value: int) -> None:
        self.keep_last = int(value)

    def due(self, step: int) -> bool:
        return step % self.every_steps == 0

    # ------------------------------------------------------------- layout
    @staticmethod
    def data_path(run_dir: str, step: int) -> str:
        return os.path.join(run_dir, f"chk_{step:07d}.npz")

    @staticmethod
    def state_path(run_dir: str, step: int) -> str:
        return os.path.join(run_dir, f"chk_{step:07d}.json")

    @staticmethod
    def list_checkpoints(run_dir: str) -> list[tuple[int, str, str]]:
        """Complete (step, npz_path, state_path) pairs, oldest first."""
        out = []
        try:
            names = os.listdir(run_dir)
        except FileNotFoundError:
            return out
        for name in names:
            m = _CHK_RE.match(name)
            if m is None:
                continue
            step = int(m.group(1))
            npz = CheckpointPolicy.data_path(run_dir, step)
            if os.path.exists(npz):
                out.append((step, npz, os.path.join(run_dir, name)))
        out.sort()
        return out

    @staticmethod
    def latest(run_dir: str) -> tuple[int, str, str] | None:
        pairs = CheckpointPolicy.list_checkpoints(run_dir)
        return pairs[-1] if pairs else None

    def rotate(self, run_dir: str, pin: int | None = None) -> list[int]:
        """Delete the oldest pairs beyond ``keep_last``; returns removed steps.

        A pair whose step equals ``pin`` is never deleted, whatever the
        count says: it is the checkpoint a preempted run will resume from
        (or just resumed from), and losing it would turn a clean preempt
        into data loss.
        """
        pairs = self.list_checkpoints(run_dir)
        removed = []
        for step, npz, state in pairs[: max(0, len(pairs) - self.keep_last)]:
            if pin is not None and step == pin:
                continue
            for path in (npz, state, digest_path(npz), digest_path(state)):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
            removed.append(step)
        return removed
