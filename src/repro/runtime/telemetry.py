"""Structured run telemetry: a JSONL event stream plus a monitor API.

One record per root-level step (the cadence an operator actually follows a
multi-week AMR run at), plus lifecycle / checkpoint / recovery events.
Records are append-only JSON lines flushed per write, so ``tail -f`` — or
``python -m repro tail`` — works on a live run, and a crash mid-line loses
at most that line (the reader tolerates a torn final record).

Step record schema (all numbers JSON-native)::

    {"event": "step", "step": 12, "t": ..., "dt": ..., "a": ..., "z": ...,
     "levels": [{"level": 0, "grids": 1, "cells": 4096}, ...],
     "max_density": ..., "timers": {"hydro": 0.41, ...},
     "exec": {"backend": "thread", "workers": 4, "dispatches": 12,
              "tasks": 310, "overhead": 0.004, "utilisation": 0.87,
              "imbalance": {"0": 1.0, "1": 1.18}},
     "chemistry": {"tasks": 9, "cells": 36864, "substeps_total": 112640,
                   "substeps_max": 57, "active_fraction_mean": 0.23},
     "kernels": {"backend": "cffi",
                 "per_kernel": {"riemann.hllc": {"calls": 96,
                                                 "seconds": 0.031}, ...}},
     "rebuild": {"created": 12, "destroyed": 9, "reused": 480,
                 "reuse_rate": 0.9756},
     "wall": ...}

The ``exec`` block comes from the execution engine (:mod:`repro.exec`):
per-root-step dispatch counts, scheduling/dispatch overhead seconds,
worker utilisation, and the per-level load-imbalance ratio (max/mean
worker busy time; 1.0 is perfect balance).

The ``chemistry`` block (present when a chemistry network is attached)
aggregates the active-set integrator's per-grid diagnostics over the
root step: total/maximum substep counts and the cell-weighted mean
fraction of cells still active per substep iteration (lower = more cells
converging early and dropping out of the integration).

The ``kernels`` block (present once any registered inner-loop kernel has
run this step) reports which :mod:`repro.kernels` backend tier executed
the hydro/chemistry inner loops plus per-kernel call counts and
CPU-seconds (worker-process time merged in, so the seconds can exceed
the step's wall time) — the live answer to "is the compiled tier
actually running?".

The ``rebuild`` block (present once the hierarchy has rebuilt at least
once) counts the root step's grid churn: ``created``/``destroyed`` are
real allocator traffic, ``reused`` the grids the incremental rebuild
(:mod:`repro.amr.rebuild`) kept alive, and ``reuse_rate`` =
reused / (reused + created) — the paper-Fig. 5 alloc/free pressure an
operator watches at hero-run scale.
"""

from __future__ import annotations

import json
import os
import time

TELEMETRY_NAME = "telemetry.jsonl"


def telemetry_path(run_dir: str) -> str:
    return os.path.join(run_dir, TELEMETRY_NAME)


class TelemetryWriter:
    """Append-only JSONL emitter with per-record flush."""

    def __init__(self, path: str):
        self.path = str(path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._t0 = time.monotonic()

    def emit(self, event: str, **payload) -> dict:
        record = {"event": event,
                  "wall": round(time.monotonic() - self._t0, 6)}
        record.update(payload)
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def step_record(evolver, step: int, dt: float) -> dict:
    """Build the per-root-step payload from live simulation objects."""
    h = evolver.hierarchy
    t = float(h.root.time)
    a = evolver.clock.a_of(h.root.time)
    record = {
        "step": int(step),
        "t": t,
        "dt": float(dt),
        "a": float(a),
        "levels": [
            {
                "level": lvl,
                "grids": len(grids),
                "cells": int(sum(
                    int(d0) * int(d1) * int(d2) for (d0, d1, d2) in
                    (g.dims for g in grids)
                )),
            }
            for lvl, grids in enumerate(h.levels) if grids
        ],
        "max_density": float(
            max(g.field_view("density").max() for g in h.all_grids())
        ),
    }
    if hasattr(evolver.clock, "redshift_of"):
        record["z"] = float(evolver.clock.redshift_of(h.root.time))
    engine = getattr(evolver, "engine", None)
    if engine is not None:
        record["exec"] = engine.step_snapshot()
    chem_stats = getattr(evolver, "chem_stats", None)
    if chem_stats is not None and chem_stats.tasks:
        snap = chem_stats.snapshot()
        snap["active_fraction_mean"] = round(snap["active_fraction_mean"], 6)
        record["chemistry"] = snap
    rebuild_stats = getattr(evolver, "rebuild_step_stats", None)
    if rebuild_stats is not None:
        snap = rebuild_stats()
        if snap is not None:
            record["rebuild"] = snap
    kernel_stats = getattr(evolver, "last_kernel_stats", None)
    if kernel_stats is not None and kernel_stats.get("per_kernel"):
        record["kernels"] = kernel_stats
    defense = getattr(evolver, "defense", None)
    if defense is not None:
        snap = defense.snapshot()
        if snap:
            record["defense"] = snap
    if evolver.timers is not None:
        record["timers"] = {
            k: round(v, 6) for k, v in evolver.timers.fractions().items()
        }
    return record


# ------------------------------------------------------------------ monitor
def read_events(path: str) -> list[dict]:
    """Parse a telemetry stream, returning every *complete* record.

    Torn lines are skipped wherever they appear, not only at the end of
    the file: a live writer leaves a partial final line, and a crashed
    writer that was later resumed (the writer opens in append mode) leaves
    the torn record mid-file with complete records after it.  Live
    monitors — ``ps``, ``logs``, ``tail -f`` — read concurrently with the
    writer, so raising on a torn line would make them flaky by design.
    """
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn write (crash or in-flight writer)
    return events


class JsonlFollower:
    """Incremental reader over a growing JSONL file.

    Keeps a byte offset and a partial-line buffer between polls, so each
    :meth:`poll` returns only the records appended since the last call —
    a half-written final line stays buffered until its newline arrives.
    The file may not exist yet; ``poll`` then returns nothing.  One
    implementation serves ``repro tail --follow``, ``repro service logs
    -f`` and the daemon's per-run telemetry multiplexer.
    """

    def __init__(self, path: str, from_start: bool = True):
        self.path = str(path)
        self._offset = 0
        self._buffer = ""
        if not from_start:
            try:
                self._offset = os.path.getsize(self.path)
            except OSError:
                self._offset = 0

    def poll(self) -> list[dict]:
        """Complete records appended since the previous poll."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except OSError:
            return []
        if not chunk:
            return []
        self._buffer += chunk
        records: list[dict] = []
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write from a crashed earlier writer
        return records


def follow_events(path: str, poll_interval: float = 0.25, stop=None,
                  from_start: bool = True):
    """Yield telemetry records as they are appended (``tail -f``).

    ``stop``: optional zero-argument callable checked between polls; the
    generator returns once it is truthy *and* the file has been drained.
    """
    follower = JsonlFollower(path, from_start=from_start)
    while True:
        records = follower.poll()
        yield from records
        if not records and stop is not None and stop():
            return
        if not records:
            time.sleep(poll_interval)


def summarise(run_dir_or_path: str) -> dict:
    """Digest of a run directory's telemetry for dashboards / `repro tail`."""
    path = run_dir_or_path
    if os.path.isdir(path):
        path = telemetry_path(path)
    events = read_events(path)
    steps = [e for e in events if e.get("event") == "step"]
    checkpoints = [e for e in events if e.get("event") == "checkpoint"]
    recoveries = [e for e in events if e.get("event") == "recovery"]
    defenses = [e for e in events if e.get("event") == "defense"]
    out = {
        "events": len(events),
        "steps": len(steps),
        "checkpoints": len(checkpoints),
        "recoveries": len(recoveries),
        "defense_events": len(defenses),
        "lifecycle": [e["event"] for e in events
                      if e.get("event") in ("start", "resume", "finish",
                                            "interrupted", "failed")],
    }
    if steps:
        last = steps[-1]
        out.update({
            "t": last.get("t"),
            "dt": last.get("dt"),
            "a": last.get("a"),
            "z": last.get("z"),
            "max_density": last.get("max_density"),
            "levels": len(last.get("levels", [])),
            "grids": sum(l["grids"] for l in last.get("levels", [])),
            "cells": sum(l["cells"] for l in last.get("levels", [])),
            "wall": last.get("wall"),
        })
    return out


def format_events(events: list[dict]) -> str:
    """Human-readable rendering of telemetry records (newest last)."""
    lines = []
    for e in events:
        kind = e.get("event", "?")
        if kind == "step":
            levels = e.get("levels", [])
            grids = sum(l["grids"] for l in levels)
            zbit = f" z={e['z']:.2f}" if "z" in e else ""
            kern = e.get("kernels", {})
            kbit = (f"  kernels={kern['backend']}"
                    if kern.get("backend") else "")
            lines.append(
                f"step {e.get('step', '?'):>6}  t={e.get('t', 0.0):.6g}  "
                f"dt={e.get('dt', 0.0):.3g}{zbit}  levels={len(levels)}  "
                f"grids={grids}  max_rho={e.get('max_density', 0.0):.4g}"
                f"{kbit}"
            )
        elif kind == "checkpoint":
            lines.append(
                f"checkpoint @ step {e.get('step', '?')} -> {e.get('path')}"
            )
        elif kind == "checkpoint_rejected":
            lines.append(
                f"CHECKPOINT REJECTED @ step {e.get('step', '?')}: "
                f"{e.get('path')} ({e.get('reason')})"
            )
        elif kind == "recovery":
            lines.append(
                f"RECOVERY @ step {e.get('step', '?')}: {e.get('reason')} "
                f"(rolled back to step {e.get('rollback_step')}, "
                f"cfl -> {e.get('cfl')})"
            )
        elif kind == "defense":
            if e.get("escalate"):
                lines.append(
                    f"DEFENSE @ step {e.get('step', '?')}: grid "
                    f"{e.get('grid')} (level {e.get('level')}) exhausted "
                    f"rungs {e.get('rungs')} -> rollback"
                )
            elif e.get("worker_restart"):
                lines.append(
                    f"DEFENSE @ step {e.get('step', '?')}: worker died, "
                    f"pool rebuilt, {e.get('retried_tasks')} task(s) retried"
                )
            else:
                status = "rescued" if e.get("ok") else "failed"
                lines.append(
                    f"DEFENSE @ step {e.get('step', '?')}: grid "
                    f"{e.get('grid')} (level {e.get('level')}) rung "
                    f"{e.get('rung')} {status}"
                )
        else:
            extras = {k: v for k, v in e.items()
                      if k not in ("event", "wall")}
            lines.append(f"{kind}  {json.dumps(extras)}")
    return "\n".join(lines)
