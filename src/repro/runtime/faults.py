"""Deterministic, seeded fault injection for chaos-testing the defense ladder.

Production AMR runs die in a handful of well-known ways: a hydro update
goes NaN on a deep subgrid, the multigrid solver burns its cycle budget
without converging, the chemistry integrator blows up on a pathological
cell, a pool worker is OOM-killed mid-task, a checkpoint is truncated by a
full disk.  This module lets CI *cause* each of those failures on demand —
at an exact (level, grid id, per-level step) site, a deterministic number
of times — so every rung of the grid-scoped defense ladder
(:mod:`repro.amr.defense`) can be proven to fire and recover.

Fault kinds
-----------
``nan_cell``
    Corrupt one deterministic interior cell of a grid's density field with
    NaN after the hydro task completes.  Repeated firings at the same site
    drive the ladder up one rung per firing (see ``docs/ROBUSTNESS.md``).
``mg_diverge``
    Force one multigrid solve to report non-convergence (budget exhausted)
    so the doubled-budget retry path runs.
``chem_blowup``
    Raise :class:`InjectedFaultError` from a chemistry task before the
    network integrates (the state is untouched, as with a real stiff-solver
    overflow raised from :func:`numpy.linalg.solve`).
``worker_kill``
    SIGKILL the process-backend worker that picks up the task, exercising
    the engine's reschedule-on-worker-death path.
``checkpoint_truncate``
    Truncate the checkpoint npz written for a matching root step, so
    recovery must skip it and fall back to an older checkpoint.
``hang``
    Block inside a level step for ``seconds`` (default: an hour) —
    a deadlocked worker.  The controller's SIGINT drain cannot interrupt
    it (the signal handler only sets a flag and ``time.sleep`` resumes),
    which is exactly why the service daemon's supervisor escalates from
    soft drain to hard kill (see :mod:`repro.runtime.supervision`).
``slow_step``
    Inject a per-step delay of ``seconds`` (default 0.25) — degraded
    hardware.  Purely timing: results stay bitwise identical.
``io_stall``
    Block the checkpoint write for ``seconds`` (default: an hour) —
    dead or hung storage.
``checkpoint_bitflip``
    Silently corrupt one float64 payload bit of the checkpoint written
    for a matching root step.  The corrupted npz is *re-encoded*, so it
    still loads cleanly without digest verification — the failure mode
    sha256 sidecars exist to catch.

Configuration
-------------
Programmatic::

    from repro.runtime import faults
    faults.install(faults.FaultInjector([
        faults.FaultSpec("nan_cell", level=0, grid_id=0, step=1, count=2),
    ]))

or from the environment (read lazily on first use)::

    REPRO_FAULTS="nan_cell:level=0,grid=0,step=1,count=2;mg_diverge:level=1"
    REPRO_FAULTS_SEED=42

Determinism: which cell a ``nan_cell`` firing corrupts depends only on the
injector seed, the site, and how many times that site has fired — never on
scheduling order — so serial/thread/process backends corrupt the *same*
cell.  Specs should pin ``level``/``grid``/``step`` for full determinism
under parallel dispatch; an unpinned spec is consumed by whichever matching
site queries first.

This module deliberately imports nothing from the rest of ``repro`` so any
layer (hydro tasks, the multigrid solver, the exec engine, the run
controller) can hook into it without import cycles.  With no injector
installed every hook is a single ``is None`` check.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

ENV_FAULTS = "REPRO_FAULTS"
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"
#: RUNNING-episode number (1-based) the launcher exports so specs can be
#: scoped to a single attempt ("hang only the first episode")
ENV_FAULT_ATTEMPT = "REPRO_FAULT_ATTEMPT"

#: fault kinds the hooks understand (parse-time validation)
FAULT_KINDS = (
    "nan_cell",
    "mg_diverge",
    "chem_blowup",
    "worker_kill",
    "checkpoint_truncate",
    "hang",
    "slow_step",
    "io_stall",
    "checkpoint_bitflip",
)

#: default sleep payloads for the timing faults (seconds); a ``hang`` or
#: ``io_stall`` without an explicit duration blocks long enough that only
#: external supervision ends the run
DEFAULT_SLEEP_SECONDS = {
    "hang": 3600.0,
    "io_stall": 3600.0,
    "slow_step": 0.25,
}


class InjectedFaultError(RuntimeError):
    """Raised by hooks that simulate a component blowing up."""

    def __init__(self, kind: str, site: tuple):
        self.kind = kind
        self.site = site
        super().__init__(f"injected fault {kind!r} at site {site}")


@dataclass
class FaultSpec:
    """One addressable fault: kind + optional site filter + firing budget.

    ``level``/``grid_id``/``step`` of ``None`` match any value; ``step`` is
    the *per-level* step counter for in-step faults and the root-step
    number for controller-level faults (``checkpoint_truncate``,
    ``io_stall``, ``checkpoint_bitflip``).
    ``count`` is the total number of firings before the spec goes inert.
    ``seconds`` is the sleep payload for the timing faults (``hang``,
    ``slow_step``, ``io_stall``).  ``attempt`` pins the spec to one
    RUNNING-episode number (the launcher exports ``REPRO_FAULT_ATTEMPT``),
    so a chaos test can hang the first episode and let the supervised
    requeue-and-resume run clean.
    """

    kind: str
    level: int | None = None
    grid_id: int | None = None
    step: int | None = None
    count: int = 1
    seconds: float | None = None
    attempt: int | None = None
    remaining: int = field(init=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.count < 1:
            raise ValueError("fault count must be >= 1")
        self.remaining = int(self.count)

    def matches(self, level, grid_id, step) -> bool:
        if self.remaining <= 0:
            return False
        if self.level is not None and level != self.level:
            return False
        if self.grid_id is not None and grid_id != self.grid_id:
            return False
        if self.step is not None and step != self.step:
            return False
        return True


class FaultInjector:
    """Holds the live fault specs and answers "does X fail here, now?".

    The injector also keeps a per-site fire counter so payloads that need
    randomness (the ``nan_cell`` target cell) can derive a fresh,
    order-independent RNG per firing.
    """

    def __init__(self, specs=(), seed: int | None = None,
                 attempt: int | None = None):
        self.specs = list(specs)
        if seed is None:
            env = os.environ.get(ENV_FAULTS_SEED, "").strip()
            seed = int(env) if env else 0
        self.seed = int(seed)
        if attempt is None:
            env = os.environ.get(ENV_FAULT_ATTEMPT, "").strip()
            attempt = int(env) if env else None
        #: RUNNING-episode number attempt-scoped specs match against
        self.attempt = attempt
        #: (kind, level, grid_id) -> number of firings so far
        self.site_fires: dict[tuple, int] = {}
        #: every firing, in order, for test assertions
        self.fired: list[dict] = []
        #: level -> current per-level step counter (set by the evolver)
        self._step_ctx: dict[int, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- context
    def set_step(self, level: int, step: int) -> None:
        """Publish the per-level step counter in-step hooks match against."""
        self._step_ctx[int(level)] = int(step)

    # -------------------------------------------------------------- firing
    def take(self, kind: str, level=None, grid_id=None, step=None):
        """Consume one firing of a matching spec, or return ``None``.

        ``step`` defaults to the published per-level step context for
        ``level``; controller-level hooks pass it explicitly.
        """
        if step is None and level is not None:
            step = self._step_ctx.get(int(level))
        with self._lock:
            for spec in self.specs:
                if spec.attempt is not None and spec.attempt != self.attempt:
                    continue
                if spec.kind == kind and spec.matches(level, grid_id, step):
                    spec.remaining -= 1
                    site = (kind, level, grid_id)
                    fire_index = self.site_fires.get(site, 0)
                    self.site_fires[site] = fire_index + 1
                    record = {
                        "kind": kind,
                        "level": level,
                        "grid_id": grid_id,
                        "step": step,
                        "fire_index": fire_index,
                        "seconds": spec.seconds,
                    }
                    self.fired.append(record)
                    return record
        return None

    # ------------------------------------------------------------ payloads
    def plan_nan_cell(self, level, grid_id, interior_shape, nghost: int):
        """Decide the absolute (ghost-inclusive) cell a firing corrupts.

        Returns ``{"field": name, "index": (i, j, k)}`` or ``None``.  The
        cell is drawn from an RNG seeded by (injector seed, site, firing
        number), so it does not depend on dispatch order or backend.
        """
        fire = self.take("nan_cell", level=level, grid_id=grid_id)
        if fire is None:
            return None
        rng = np.random.default_rng(
            [self.seed, fire["fire_index"],
             (level if level is not None else -1) + 1,
             (grid_id if grid_id is not None else -1) + 1]
        )
        ijk = tuple(
            int(rng.integers(0, s)) + int(nghost) for s in interior_shape
        )
        return {"field": "density", "index": ijk}


# ------------------------------------------------------------- global state
_UNSET = object()
_INJECTOR = _UNSET
_INSTALL_LOCK = threading.Lock()


def install(injector: FaultInjector | None) -> None:
    """Install (or clear, with ``None``) the process-wide injector."""
    global _INJECTOR
    with _INSTALL_LOCK:
        _INJECTOR = injector


def clear() -> None:
    install(None)


def active() -> FaultInjector | None:
    """The installed injector, lazily built from ``REPRO_FAULTS`` once."""
    global _INJECTOR
    if _INJECTOR is _UNSET:
        with _INSTALL_LOCK:
            if _INJECTOR is _UNSET:
                _INJECTOR = from_env()
    return _INJECTOR


def from_env() -> FaultInjector | None:
    spec = os.environ.get(ENV_FAULTS, "").strip()
    if not spec:
        return None
    return FaultInjector(parse_spec(spec))


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse the compact CLI/env fault syntax.

    ``kind[:key=value,...]`` tokens joined by ``;`` — keys are ``level``,
    ``grid``, ``step``, ``count``, ``attempt`` (ints) and ``seconds``
    (float, for the timing faults).  Example::

        nan_cell:level=1,grid=3,step=2,count=4;hang:step=3,seconds=60,attempt=1
    """
    specs: list[FaultSpec] = []
    for token in text.split(";"):
        token = token.strip()
        if not token:
            continue
        kind, _, rest = token.partition(":")
        kwargs: dict = {}
        for item in filter(None, (p.strip() for p in rest.split(","))):
            key, _, value = item.partition("=")
            key = {"grid": "grid_id"}.get(key.strip(), key.strip())
            if key == "seconds":
                kwargs[key] = float(value)
            elif key in ("level", "grid_id", "step", "count", "attempt"):
                kwargs[key] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r} in {token!r}")
        specs.append(FaultSpec(kind.strip(), **kwargs))
    return specs


# ----------------------------------------------------------- hook shortcuts
def take(kind: str, level=None, grid_id=None, step=None):
    """Module-level ``take`` against the active injector (``None`` if none)."""
    inj = active()
    if inj is None:
        return None
    return inj.take(kind, level=level, grid_id=grid_id, step=step)


def maybe_raise(kind: str, level=None, grid_id=None) -> None:
    """Raise :class:`InjectedFaultError` if a matching spec fires."""
    fire = take(kind, level=level, grid_id=grid_id)
    if fire is not None:
        raise InjectedFaultError(kind, (level, grid_id, fire.get("step")))


def maybe_sleep(kind: str, level=None, grid_id=None, step=None):
    """Sleep out a matching timing fault (``hang``/``slow_step``/
    ``io_stall``); returns the fire record, or ``None`` if nothing fired.
    """
    fire = take(kind, level=level, grid_id=grid_id, step=step)
    if fire is not None:
        seconds = fire.get("seconds")
        if seconds is None:
            seconds = DEFAULT_SLEEP_SECONDS.get(kind, 1.0)
        time.sleep(float(seconds))
    return fire


def plan_nan_cell(level, grid_id, interior_shape, nghost: int):
    inj = active()
    if inj is None:
        return None
    return inj.plan_nan_cell(level, grid_id, interior_shape, nghost)


def apply_checkpoint_bitflip(path: str) -> dict:
    """Silently corrupt one payload bit of a saved npz checkpoint.

    Flipping raw file bytes would be caught by the zip CRC long before
    any digest check, so this models the scarier failure: the npz is
    decoded, one mantissa bit of the first float64 array's first element
    is flipped, and the file is re-encoded in place.  The result loads
    cleanly and carries silently-wrong physics — detectable only by the
    sha256 sidecar written over the original bytes.  Deterministic:
    same file, same corruption.
    """
    with np.load(path) as data:
        arrays = {key: np.array(data[key]) for key in data.files}
    target = None
    for key in sorted(arrays):
        arr = arrays[key]
        if arr.dtype == np.float64 and arr.size > 0:
            target = key
            break
    if target is None:
        raise ValueError(f"no float64 payload to corrupt in {path!r}")
    flat = arrays[target].reshape(-1)
    bits = flat.view(np.uint64)
    bits[0] ^= np.uint64(1) << np.uint64(51)  # high mantissa bit
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)
    return {"path": path, "array": target, "bit": 51}


def apply_nan_cell(fields, plan: dict | None) -> None:
    """Apply a planned corruption to a FieldSet / dict of ndarrays."""
    if plan is None:
        return
    fields[plan["field"]][tuple(plan["index"])] = np.nan
