"""Run supervision: heartbeats, staleness deadlines, the escalation ladder.

The PR-5 defense ladder and PR-2 watchdog handle *wrong values*; nothing
below this module handles *absence of progress* — a worker deadlocked in
a step, a checkpoint write stalled on dead storage, a controller whose
own accounting is wedged.  This module makes liveness externally
observable and externally enforced:

* :class:`HeartbeatWriter` — the controller's side.  Writes a small,
  monotonically-sequenced JSON record (step, sub-step phase, wall-clock,
  rss) to ``<run_dir>/heartbeat.json`` after every root step and at
  sub-step phase boundaries.  Each write is a temp-file +
  ``os.replace``, so a concurrent reader sees either the previous record
  or the new one, never a torn file.  No fsync: a heartbeat needs
  atomicity, not durability — a lost-on-crash heartbeat is indistinguishable
  from a crashed run, which is exactly what it should look like.
* :func:`read_heartbeat` — the daemon's side; tolerant of a missing or
  mid-replace file (returns ``None``).
* :class:`SupervisionPolicy` — deadline derivation (a configurable
  multiple of the measured per-step cost, clamped to a floor/ceiling),
  the kill grace period, the strike budget, and the exponential
  requeue backoff.
* :class:`Supervisor` — the daemon-side state machine.  Progress is
  judged by *observed sequence-number changes on the daemon's own
  monotonic clock*, never by trusting the worker's timestamps, so a
  worker with a wedged clock is still caught.  One
  :meth:`Supervisor.check` call per tick per RUNNING run returns the
  next escalation action: ``("drain", info)`` at the staleness deadline
  (soft SIGINT drain-to-checkpoint), then ``("kill", info)`` once the
  grace period expires without the drain landing.  Strike accounting and
  requeue-vs-quarantine live in the daemon (they are registry
  transitions); the policy math lives here.

See ``docs/ROBUSTNESS.md`` for the full escalation ladder.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

HEARTBEAT_NAME = "heartbeat.json"


def heartbeat_path(run_dir: str) -> str:
    return os.path.join(str(run_dir), HEARTBEAT_NAME)


def _rss_kb() -> int | None:
    """Resident set size of this process in kB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # non-unix
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class HeartbeatWriter:
    """Atomic, rate-limited heartbeat sidecar for one run directory.

    ``beat(force=True)`` always writes (root-step boundaries, lifecycle
    moments); unforced beats (sub-step phase boundaries, which can fire
    thousands of times per root step on a deep hierarchy) are dropped
    unless ``min_interval`` seconds have passed since the last write, so
    heartbeating never becomes measurable I/O load.

    The sequence number continues from whatever record is already on
    disk, so the daemon sees one monotonic sequence across build →
    episode → resume-episode writer hand-offs.
    """

    def __init__(self, run_dir: str, min_interval: float = 0.25):
        self.path = heartbeat_path(run_dir)
        os.makedirs(str(run_dir), exist_ok=True)
        self.min_interval = float(min_interval)
        self._step = 0
        self._phase = ""
        self._last_write = 0.0
        existing = read_heartbeat(run_dir)
        self._seq = int(existing.get("seq", 0)) if existing else 0

    def beat(self, step: int | None = None, phase: str | None = None,
             force: bool = False, **extra) -> bool:
        """Record liveness; returns True if a record was written."""
        now = time.monotonic()
        if not force and (now - self._last_write) < self.min_interval:
            return False
        if step is not None:
            self._step = int(step)
        if phase is not None:
            self._phase = str(phase)
        self._seq += 1
        record = {
            "seq": self._seq,
            "step": self._step,
            "phase": self._phase,
            "wall": time.time(),
            "pid": os.getpid(),
            "rss_kb": _rss_kb(),
        }
        record.update(extra)
        # atomic replace, no fsync: a reader must never see a torn record,
        # but losing the very last beat in a crash is fine (and correct)
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record))
        os.replace(tmp, self.path)
        self._last_write = now
        return True


def read_heartbeat(run_dir: str) -> dict | None:
    """The newest heartbeat record, or None (missing / unreadable)."""
    try:
        with open(heartbeat_path(run_dir), encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def heartbeat_age(record: dict | None, now: float | None = None) -> float | None:
    """Seconds since the record's wall-clock stamp (display only — the
    supervisor itself never trusts worker clocks)."""
    if not record or "wall" not in record:
        return None
    if now is None:
        now = time.time()
    return max(float(now) - float(record["wall"]), 0.0)


@dataclass
class SupervisionPolicy:
    """Tunables for the stall/budget escalation ladder.

    The staleness deadline for a run is
    ``clamp(deadline_multiplier × measured_per_step_seconds,
    deadline_floor, deadline_ceiling)`` — and simply the ceiling before
    any per-step cost has been measured.  The defaults are deliberately
    generous: supervision exists to catch runs that are *hours* wrong,
    and a false kill costs a full rollback-and-replay.
    """

    #: staleness allowance as a multiple of the measured per-step cost
    deadline_multiplier: float = 10.0
    #: never demand heartbeats faster than this (seconds)
    deadline_floor: float = 30.0
    #: never wait longer than this, measured cost or not (seconds)
    deadline_ceiling: float = 900.0
    #: seconds between the soft drain and the hard kill
    grace_seconds: float = 10.0
    #: stall strikes before the run is quarantined (FAILED reason=stalled)
    max_strikes: int = 3
    #: requeue backoff: min(base * 2^(strikes-1), cap) seconds
    backoff_base: float = 1.0
    backoff_cap: float = 60.0

    def deadline(self, per_step_seconds: float | None) -> float:
        if per_step_seconds is None or per_step_seconds <= 0.0:
            return float(self.deadline_ceiling)
        return min(
            max(per_step_seconds * self.deadline_multiplier,
                self.deadline_floor),
            self.deadline_ceiling,
        )

    def backoff(self, strikes: int) -> float:
        if strikes <= 0:
            return 0.0
        return min(self.backoff_base * 2.0 ** (strikes - 1),
                   self.backoff_cap)


class Supervisor:
    """Per-run staleness tracking and the drain → kill escalation.

    The clock is injectable so the escalation sequence is unit-testable
    without sleeping.  All judgements use *this* process's monotonic
    clock and the observation "did the heartbeat sequence number
    change?", so neither a skewed worker clock nor a worker that keeps
    rewriting an identical record can fake progress.
    """

    def __init__(self, policy: SupervisionPolicy | None = None,
                 clock=time.monotonic):
        self.policy = policy or SupervisionPolicy()
        self.clock = clock
        #: run_id -> {"seq", "step", "progress_at", "drain_at", "reason"}
        self._tracks: dict[str, dict] = {}

    def watch(self, run_id: str) -> None:
        """Start (or restart) tracking a RUNNING episode."""
        self._tracks[run_id] = {
            "seq": None, "step": None,
            "progress_at": self.clock(),
            "drain_at": None, "reason": None, "killed": False,
        }

    def forget(self, run_id: str) -> None:
        self._tracks.pop(run_id, None)

    def staleness(self, run_id: str) -> float | None:
        track = self._tracks.get(run_id)
        if track is None:
            return None
        return self.clock() - track["progress_at"]

    def check(self, run_id: str, heartbeat: dict | None,
              deadline: float | None,
              budget_reason: str | None = None):
        """One supervision round for one RUNNING run.

        Returns ``None`` (healthy, or already escalating within grace),
        ``("drain", info)`` exactly once when the run crosses its
        staleness deadline or a budget is exceeded, or ``("kill", info)``
        exactly once when the grace period after the drain expires.
        """
        track = self._tracks.get(run_id)
        if track is None:
            self.watch(run_id)
            track = self._tracks[run_id]
        now = self.clock()
        if heartbeat is not None and heartbeat.get("seq") != track["seq"]:
            track["seq"] = heartbeat.get("seq")
            track["step"] = heartbeat.get("step")
            track["progress_at"] = now
        stale = now - track["progress_at"]
        if track["killed"]:
            return None
        if track["drain_at"] is not None:
            if now - track["drain_at"] >= self.policy.grace_seconds:
                track["killed"] = True
                return ("kill", {"reason": track["reason"],
                                 "stale_seconds": round(stale, 3)})
            return None
        reason = budget_reason
        if reason is None and deadline is not None and stale > deadline:
            reason = "stalled"
        if reason is not None:
            track["drain_at"] = now
            track["reason"] = reason
            info = {"reason": reason, "stale_seconds": round(stale, 3)}
            if deadline is not None:
                info["deadline"] = round(float(deadline), 3)
            return ("drain", info)
        return None
