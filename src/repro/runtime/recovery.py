"""Crash recovery: state watchdog, rollback policy, and signal handling.

The paper's hero run survived weeks of wall-clock only because every
failure mode had an answer: a solution gone non-finite rolls back to the
last good dump with a smaller timestep, and an operator's SIGTERM drains
to a clean checkpoint instead of killing the job mid-write.  This module
supplies those answers to :class:`repro.runtime.RunController`.
"""

from __future__ import annotations

import signal
import threading

import numpy as np


class NonFiniteStateError(RuntimeError):
    """The watchdog found NaN/Inf in the evolved state (or in dt)."""


class StateCorruptionError(NonFiniteStateError):
    """Every rung of the grid-scoped defense ladder failed on one grid.

    Raised by :class:`repro.amr.defense.DefenseLadder` only after the
    half-dt retry, the first-order retry, the ZEUS fallback *and* the
    conservative floor repair all left the grid invalid — the signal for
    the controller to fall back to PR-2 root-step rollback.  Subclasses
    :class:`NonFiniteStateError` so the controller's recovery path catches
    it without special-casing.
    """

    def __init__(self, message: str, level: int | None = None,
                 grid_id: int | None = None, rungs=()):
        super().__init__(message)
        self.level = level
        self.grid_id = grid_id
        #: the rungs that were attempted before giving up
        self.rungs = tuple(rungs)


class RunFailedError(RuntimeError):
    """Recovery retries are exhausted; the run cannot make progress."""


class Watchdog:
    """Post-step sanity check over the whole hierarchy.

    Scans every grid's fields (and phi) for non-finite values after each
    root step, plus the root dt itself.  Raising here — rather than letting
    NaNs advect for thousands of subcycles — is what makes rollback cheap:
    the damage is at most one root step old.
    """

    def __init__(self, check_fields=("density", "energy", "internal"),
                 check_all: bool = False, check_phi: bool = True):
        self.check_fields = tuple(check_fields)
        self.check_all = bool(check_all)
        self.check_phi = bool(check_phi)

    def check(self, hierarchy, dt: float | None = None) -> None:
        if dt is not None and not np.isfinite(dt):
            raise NonFiniteStateError(f"non-finite root dt {dt!r}")
        for g in hierarchy.all_grids():
            names = (
                [n for n, _ in g.fields.array_items()]
                if self.check_all else
                [n for n in self.check_fields if n in g.fields]
            )
            for name in names:
                if not np.all(np.isfinite(g.fields[name])):
                    raise NonFiniteStateError(
                        f"non-finite '{name}' on level-{g.level} grid "
                        f"{g.grid_id}"
                    )
            if self.check_phi and not np.all(np.isfinite(g.phi)):
                raise NonFiniteStateError(
                    f"non-finite phi on level-{g.level} grid {g.grid_id}"
                )


class RecoveryPolicy:
    """Rollback-and-retry knobs.

    On each watchdog trip the controller reloads the newest loadable
    checkpoint and retries with ``cfl * cfl_backoff`` (floored at
    ``min_cfl``).  After ``max_retries`` consecutive trips without a new
    successful checkpoint it raises :class:`RunFailedError`.
    """

    def __init__(self, max_retries: int = 3, cfl_backoff: float = 0.5,
                 min_cfl: float = 0.02):
        self.max_retries = int(max_retries)
        self.cfl_backoff = float(cfl_backoff)
        self.min_cfl = float(min_cfl)

    def reduced_cfl(self, cfl: float) -> float:
        return max(self.min_cfl, cfl * self.cfl_backoff)


class SignalGuard:
    """Context manager: catch SIGINT/SIGTERM and expose them as a flag.

    The controller polls ``triggered`` at root-step boundaries — the only
    safe drain points — then checkpoints and exits cleanly.  Outside the
    main thread (where ``signal.signal`` is unavailable) it degrades to an
    inert no-op so library users can still embed the controller.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = tuple(signals)
        self.triggered: str | None = None
        self._previous: dict = {}
        self.active = False

    def _handler(self, signum, frame):
        self.triggered = signal.Signals(signum).name

    def __enter__(self) -> "SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in self.signals:
                try:
                    self._previous[sig] = signal.signal(sig, self._handler)
                except (ValueError, OSError):
                    continue
            self.active = bool(self._previous)
        return self

    def __exit__(self, *exc) -> None:
        for sig, old in self._previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        self.active = False
