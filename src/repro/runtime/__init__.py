"""Fault-tolerant run control: checkpoints, crash recovery, telemetry.

The paper's hero run evolved 34 levels of refinement over weeks of
wall-clock — survivable only with disciplined checkpoint/restart and
per-cycle logs an operator can tail.  This package is that layer:

* :class:`RunController` — owns the root-step advance loop; durable
  atomic checkpoints with rotation, bit-exact ``resume()``, watchdog
  rollback-and-retry on non-finite state, SIGINT/SIGTERM drain-to-
  checkpoint, and a JSONL telemetry stream.
* :class:`CheckpointPolicy` / :class:`RunState` — cadence, rotation, and
  the saved-alongside-the-hierarchy record (clock words, per-level step
  counters, CFL, RNG state, problem config).
* :class:`Watchdog` / :class:`RecoveryPolicy` — NaN detection and the
  reduced-CFL retry schedule.
* :mod:`repro.runtime.telemetry` — the event stream and the monitor API
  (``summarise``, ``read_events``) behind ``python -m repro tail``.
* :mod:`repro.runtime.supervision` — heartbeat sidecars plus the
  daemon-side staleness/budget escalation ladder (see
  ``docs/ROBUSTNESS.md``).
"""

from repro.runtime import faults
from repro.runtime.checkpoint_policy import (
    CheckpointPolicy,
    RunState,
    restore_rng_state,
    serialize_rng_state,
)
from repro.runtime.recovery import (
    NonFiniteStateError,
    RecoveryPolicy,
    RunFailedError,
    SignalGuard,
    StateCorruptionError,
    Watchdog,
)
from repro.runtime.supervision import (
    HeartbeatWriter,
    SupervisionPolicy,
    Supervisor,
    heartbeat_age,
    heartbeat_path,
    read_heartbeat,
)
from repro.runtime.telemetry import (
    JsonlFollower,
    TelemetryWriter,
    follow_events,
    read_events,
    summarise,
    telemetry_path,
)

__all__ = [
    "RunController",
    "CheckpointPolicy",
    "RunState",
    "RecoveryPolicy",
    "Watchdog",
    "SignalGuard",
    "NonFiniteStateError",
    "RunFailedError",
    "StateCorruptionError",
    "TelemetryWriter",
    "JsonlFollower",
    "faults",
    "follow_events",
    "read_events",
    "summarise",
    "telemetry_path",
    "serialize_rng_state",
    "restore_rng_state",
    "HeartbeatWriter",
    "Supervisor",
    "SupervisionPolicy",
    "heartbeat_age",
    "heartbeat_path",
    "read_heartbeat",
]


def __getattr__(name: str):
    # RunController pulls in repro.io.checkpoint, which imports repro.amr —
    # whose exec layer imports this package for the fault-injection hooks.
    # Resolving it lazily keeps the package init dependency-light so either
    # side of that cycle can be imported first.
    if name == "RunController":
        from repro.runtime.controller import RunController

        return RunController
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
