"""Hierarchy statistics recorder (paper Fig. 5 and the Sec. 5 discussion).

Tracks, per root-grid step (or on demand):

* maximum refinement level vs time (Fig. 5 top-left),
* total number of grids vs time (top-right),
* grids per level at chosen snapshot times (bottom-left),
* estimated computational work per level (bottom-right) — cells x substeps,
  with each level stepping ~r^level times per root step,
* memory usage and the cumulative allocation/free event count
  ("the entire grid hierarchy is rebuilt thousands of times").
"""

from __future__ import annotations

import numpy as np


class HierarchyStats:
    """Recorder with the ``record_step`` hook the evolver calls."""

    def __init__(self):
        self.times: list[float] = []
        self.max_levels: list[int] = []
        self.n_grids: list[int] = []
        self.memory_bytes: list[int] = []
        self.alloc_events: list[int] = []
        self.reuse_events: list[int] = []
        self.snapshots: dict[float, list[int]] = {}
        self.level_steps: dict[int, int] = {}

    # ------------------------------------------------------------- recording
    def record_step(self, hierarchy, level: int, dt: float, time: float) -> None:
        self.level_steps[level] = self.level_steps.get(level, 0) + 1
        if level != 0:
            return
        self.times.append(time)
        self.max_levels.append(hierarchy.max_level)
        self.n_grids.append(hierarchy.n_grids)
        self.memory_bytes.append(hierarchy.total_memory_bytes())
        # created + destroyed is real allocator traffic; grids the
        # incremental rebuild kept alive are tracked separately so the
        # Fig. 5-style alloc/free series stays truthful under reuse
        self.alloc_events.append(
            hierarchy.grids_created + hierarchy.grids_destroyed
        )
        self.reuse_events.append(getattr(hierarchy, "grids_reused", 0))

    def snapshot_levels(self, hierarchy, time: float) -> None:
        """Store grids-per-level at a chosen time (Fig. 5 bottom-left)."""
        self.snapshots[time] = hierarchy.grids_per_level()

    # --------------------------------------------------------------- queries
    def work_per_level(self, hierarchy) -> np.ndarray:
        """Relative computational work per level, normalised to max 1.

        Work(l) ~ (cells on level l) x (substeps per root step ~ r^l), the
        estimate behind the paper's bottom-right panel.
        """
        r = hierarchy.refine_factor
        work = []
        for lvl, grids in enumerate(hierarchy.levels):
            cells = sum(g.n_cells for g in grids)
            work.append(cells * r**lvl)
        work = np.asarray(work, dtype=float)
        if work.max() > 0:
            work /= work.max()
        return work

    def grids_per_level_now(self, hierarchy) -> list[int]:
        return hierarchy.grids_per_level()

    def series(self) -> dict:
        return {
            "time": np.asarray(self.times),
            "max_level": np.asarray(self.max_levels),
            "n_grids": np.asarray(self.n_grids),
            "memory_bytes": np.asarray(self.memory_bytes),
            "alloc_events": np.asarray(self.alloc_events),
            "reuse_events": np.asarray(self.reuse_events),
        }

    def report(self) -> str:
        s = self.series()
        if len(s["time"]) == 0:
            return "no steps recorded"
        lines = [
            f"root steps recorded : {len(s['time'])}",
            f"final max level     : {s['max_level'][-1]}",
            f"peak grid count     : {s['n_grids'].max()}",
            f"peak memory         : {s['memory_bytes'].max() / 1e6:.1f} MB",
            f"alloc/free events   : {s['alloc_events'][-1]}",
            f"grid reuse events   : {s['reuse_events'][-1]}",
        ]
        return "\n".join(lines)
