"""Per-component wall-clock accounting (the paper's Sec. 5 usage table)."""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

#: canonical section names used by the evolver and hierarchy, in the order
#: of the paper's Sec. 5 component table.  "topology" is the hierarchy's
#: cached-sibling-map / particle-level bookkeeping (rebuilt once per
#: structural epoch) — the cost Enzo's boundary lists amortise; a separate
#: section lets the component table attribute it instead of folding it
#: into "other overhead".  "io" is checkpoint save/load — material once the
#: run-control layer checkpoints every few root steps.  "exec" is the
#: execution engine's scheduling + dispatch overhead (task planning, data
#: staging, worker synchronisation) — everything the engine spends that is
#: not physics-kernel time; see :mod:`repro.exec`.
SECTIONS = (
    "hydro",
    "gravity",
    "chemistry",
    "nbody",
    "rebuild",
    "boundary",
    "flux_correction",
    "projection",
    "topology",
    "io",
    "exec",
    # time spent inside registered inner-loop kernels (repro.kernels),
    # summed across whichever backend tier ran them; a *subset* of the
    # hydro/chemistry sections above, recorded separately so speedups of
    # the compiled tier are visible without re-deriving them from BENCH
    # runs.  Worker-process kernel time is merged in, so (like "exec"
    # CPU-seconds) it can exceed the step's wall time.
    "kernels",
)

#: sections that measure time *inside* other sections rather than a slice
#: of the exclusive partition.  They accumulate in ``totals``/``counts``
#: (and telemetry reports them with real seconds, e.g. the step-record
#: "kernels" block) but are excluded from :meth:`ComponentTimers.fractions`
#: so the serial per-component fractions still sum to 1.
OVERLAY_SECTIONS = frozenset({"kernels"})


class ComponentTimers:
    """Nested-safe section timers with fraction reporting.

    Nested sections attribute time to the innermost section only (like the
    paper's exclusive per-component fractions), so fractions sum to <= 1
    with the remainder as "other overhead".
    """

    def __init__(self):
        self.totals = defaultdict(float)
        self.counts = defaultdict(int)
        #: per-section auxiliary scalar stats, (section, key) -> value;
        #: written via :meth:`add_stat` (e.g. chemistry substep counts)
        self.stats: dict[tuple[str, str], float] = {}
        self._stack: list[tuple[str, float]] = []
        self._t0 = time.perf_counter()

    @contextmanager
    def section(self, name: str):
        now = time.perf_counter()
        if self._stack:
            # pause the enclosing section
            parent, started = self._stack[-1]
            self.totals[parent] += now - started
        self._stack.append((name, now))
        try:
            yield
        finally:
            end = time.perf_counter()
            name_, started = self._stack.pop()
            self.totals[name_] += end - started
            self.counts[name_] += 1
            if self._stack:
                parent, _ = self._stack[-1]
                self._stack[-1] = (parent, end)

    def add_seconds(self, name: str, seconds: float, count: int = 1) -> None:
        """Attribute externally-measured seconds to a section.

        The parallel execution backends measure kernel time inside their
        workers (the ``section`` context manager is not thread-safe) and
        report it here.  Note that worker-measured seconds are CPU-seconds:
        with more than one worker the per-component fractions can sum to
        more than 1 while "exec" (dispatch overhead) stays wall-based.
        """
        if seconds > 0.0:
            self.totals[name] += float(seconds)
        self.counts[name] += int(count)

    def add_stat(self, section: str, key: str, value, mode: str = "set") -> None:
        """Record an auxiliary scalar stat for a section.

        ``mode``: ``"set"`` overwrites (latest value wins), ``"sum"``
        accumulates, ``"max"`` keeps the running maximum.  Used by the
        evolver for non-time diagnostics that belong with a component —
        e.g. the chemistry integrator's substep totals and mean
        active-cell fraction.
        """
        value = float(value)
        slot = (section, key)
        if mode == "sum":
            self.stats[slot] = self.stats.get(slot, 0.0) + value
        elif mode == "max":
            self.stats[slot] = max(self.stats.get(slot, value), value)
        elif mode == "set":
            self.stats[slot] = value
        else:
            raise ValueError(f"unknown add_stat mode {mode!r}")

    def section_stats(self, section: str) -> dict[str, float]:
        """All auxiliary stats recorded for one section."""
        return {k: v for (s, k), v in self.stats.items() if s == section}

    @property
    def wall_time(self) -> float:
        return time.perf_counter() - self._t0

    def fractions(self, include_other: bool = True) -> dict[str, float]:
        """Fraction of total wall time per component (paper-table format).

        Overlay sections (``OVERLAY_SECTIONS``) are excluded: their time is
        already inside hydro/chemistry, and including them would
        double-count the partition.
        """
        wall = max(self.wall_time, 1e-12)
        out = {k: v / wall for k, v in self.totals.items()
               if k not in OVERLAY_SECTIONS}
        if include_other:
            out["other overhead"] = max(0.0, 1.0 - sum(out.values()))
        return out

    def report(self) -> str:
        """Formatted like the paper's table."""
        lines = ["component            usage"]
        for name, frac in sorted(self.fractions().items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<20s} {100 * frac:5.1f} %")
        for (section, key), value in sorted(self.stats.items()):
            lines.append(f"{section + '.' + key:<20s} {value:g}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()
        self.stats.clear()
        self._stack.clear()
        self._t0 = time.perf_counter()
