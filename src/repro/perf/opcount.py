"""Per-module operation counting, live during a run.

The paper: "One solution ... would be to instrument each module to return
its operation count ... However, the code is nearly 100,000 lines, so this
remains a future project."  Here the modules *are* instrumented: the
recorder hooks the evolver's per-step callback and tallies the analytic
per-module costs of the work actually performed, giving the live flop
estimate the paper could only approximate from one timed section.
"""

from __future__ import annotations

import time

from repro.perf.flops import OperationCounts, sustained_flop_rate


class OperationRecorder:
    """Stats-interface recorder accumulating per-module operation counts.

    Plug into :class:`HierarchyEvolver` as ``stats`` (or inside a
    :class:`MultiStats`); read ``counts`` / ``sustained_rate()`` afterwards.
    """

    def __init__(self, chemistry_substeps: int = 10):
        self.counts = OperationCounts()
        self.chemistry_substeps = int(chemistry_substeps)
        self._t0 = time.perf_counter()
        self.steps_recorded = 0

    def record_step(self, hierarchy, level: int, dt: float, t: float) -> None:
        cells = sum(g.n_cells for g in hierarchy.level_grids(level))
        self.counts.add_hydro(cells)
        self.counts.add_gravity(cells)
        self.counts.add_boundary(cells)
        self.counts.add_chemistry(cells, self.chemistry_substeps)
        if len(hierarchy.particles):
            owners = hierarchy.finest_level_of_particles()
            self.counts.add_particles(int((owners == level).sum()))
        self.steps_recorded += 1

    def record_rebuild(self, hierarchy, level: int) -> None:
        self.counts.add_rebuild(
            sum(g.n_cells for g in hierarchy.all_grids())
        )

    @property
    def wall_time(self) -> float:
        return time.perf_counter() - self._t0

    def sustained_rate(self) -> float:
        """Estimated flop/s over the recorder's lifetime (paper Sec. 5)."""
        return sustained_flop_rate(self.counts.total, self.wall_time)

    def report(self) -> str:
        lines = [f"estimated operations: {self.counts.total:.3e}",
                 f"wall time           : {self.wall_time:.2f} s",
                 f"sustained rate      : {self.sustained_rate() / 1e6:.1f} Mflop/s"]
        for name, frac in sorted(self.counts.fractions().items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"  {name:<16s} {100 * frac:5.1f} %")
        return "\n".join(lines)


class MultiStats:
    """Fan a single evolver stats slot out to several recorders."""

    def __init__(self, *recorders):
        self.recorders = list(recorders)

    def record_step(self, hierarchy, level, dt, t) -> None:
        for r in self.recorders:
            if hasattr(r, "record_step"):
                r.record_step(hierarchy, level, dt, t)

    def record_rebuild(self, hierarchy, level) -> None:
        for r in self.recorders:
            if hasattr(r, "record_rebuild"):
                r.record_rebuild(hierarchy, level)
