"""Performance instrumentation (paper Sec. 5).

* :mod:`repro.perf.timers` — per-component wall-time fractions (the paper's
  usage table: hydro 36 %, Poisson 17 %, chemistry 11 %, ...).
* :mod:`repro.perf.hierarchy_stats` — time series of hierarchy depth, grid
  counts, grids/level, work/level and memory-allocation events (Fig. 5).
* :mod:`repro.perf.flops` — the paper's operation-count methodology:
  per-module analytic op counts, the sustained-rate estimate, and the
  "virtual flop rate" arithmetic for an equivalent unigrid calculation.
"""

from repro.perf.timers import ComponentTimers, SECTIONS
from repro.perf.hierarchy_stats import HierarchyStats
from repro.perf.flops import OperationCounts, virtual_flop_rate, sustained_flop_rate
from repro.perf.opcount import OperationRecorder, MultiStats

__all__ = [
    "ComponentTimers",
    "SECTIONS",
    "HierarchyStats",
    "OperationCounts",
    "OperationRecorder",
    "MultiStats",
    "virtual_flop_rate",
    "sustained_flop_rate",
]
