"""Operation-count model and the paper's flop-rate arithmetic (Sec. 5).

The paper estimates sustained performance by (a) counting floating-point
operations for a representative section with a hardware counter, then (b)
dividing by the wall-clock time of the same section on the production
machine.  We reproduce the *methodology*: per-module analytic operation
counts (calibrated constants per cell/particle/update), summed over the
work actually performed, divided by measured wall time.

It also reproduces the "virtual flop rate" exercise: the operations an
equivalent unigrid run would need (1e12^3 cells, 1e10 steps -> ~1e50 flop)
over the actual runtime (~1e6 s) -> ~1e44 flop/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: calibrated flop-per-unit-work constants (order-of-magnitude figures for
#: the kernels implemented here; exact values only shift the absolute rate,
#: not the fractions or the methodology).
FLOPS_PER_CELL_HYDRO = 750.0  # PPM reconstruction + Riemann + update, 3 sweeps
FLOPS_PER_CELL_GRAVITY = 120.0  # FFT/multigrid amortised per cell per solve
FLOPS_PER_CELL_CHEMISTRY = 450.0  # 23 rates + 12 species updates per substep
FLOPS_PER_PARTICLE = 80.0  # CIC deposit + gather + KDK
FLOPS_PER_CELL_BOUNDARY = 40.0
FLOPS_PER_CELL_REBUILD = 25.0


@dataclass
class OperationCounts:
    """Accumulates estimated operation counts per component."""

    counts: dict = field(default_factory=dict)

    def add(self, component: str, amount: float) -> None:
        self.counts[component] = self.counts.get(component, 0.0) + amount

    def add_hydro(self, n_cells: int) -> None:
        self.add("hydrodynamics", n_cells * FLOPS_PER_CELL_HYDRO)

    def add_gravity(self, n_cells: int) -> None:
        self.add("poisson", n_cells * FLOPS_PER_CELL_GRAVITY)

    def add_chemistry(self, n_cells: int, substeps: int = 1) -> None:
        self.add("chemistry", n_cells * substeps * FLOPS_PER_CELL_CHEMISTRY)

    def add_particles(self, n_particles: int) -> None:
        self.add("nbody", n_particles * FLOPS_PER_PARTICLE)

    def add_boundary(self, n_cells: int) -> None:
        self.add("boundary", n_cells * FLOPS_PER_CELL_BOUNDARY)

    def add_rebuild(self, n_cells: int) -> None:
        self.add("rebuild", n_cells * FLOPS_PER_CELL_REBUILD)

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def fractions(self) -> dict:
        t = max(self.total, 1e-300)
        return {k: v / t for k, v in self.counts.items()}


def sustained_flop_rate(op_count: float, wall_seconds: float) -> float:
    """The paper's estimate: hardware-counted ops / measured wall time."""
    return op_count / max(wall_seconds, 1e-300)


def virtual_flop_rate(
    sdr: float = 1e12,
    n_steps: float = 1e10,
    flops_per_cell_step: float = 1e4,
    wall_seconds: float = 1e6,
) -> float:
    """The paper's equivalent-unigrid exercise.

    A static grid resolving the same SDR needs sdr^3 cells for n_steps
    steps; at ~1e4 flop per multiphysics cell-update (the figure implied by
    the paper's "approximately 1e50 floating point operations") done in
    ~1e6 s of actual AMR runtime -> ~1e44 virtual flop/s.
    """
    return sdr**3 * n_steps * flops_per_cell_step / wall_seconds


def unigrid_infeasibility(sdr: float = 1e12, bytes_per_cell: float = 200.0,
                          moore_doubling_years: float = 1.5,
                          memory_today_bytes: float = 1e13) -> float:
    """Years until a unigrid of this SDR fits in memory under Moore's law.

    The paper: "it would not be until about 2200 that a problem of this
    dynamic range could even fit into memory of the largest systems."
    Returns the number of years from the baseline.
    """
    import math

    required = sdr**3 * bytes_per_cell
    if required <= memory_today_bytes:
        return 0.0
    doublings = math.log2(required / memory_today_bytes)
    return doublings * moore_doubling_years
