"""Top-level Simulation facade.

Wires a Hierarchy to its physics with one configuration object — the
entry point the examples use.  For the paper's specific workload see
:class:`repro.problems.collapse.PrimordialCollapse`, which layers the
cosmological initial conditions on top of this machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amr import Hierarchy, HierarchyEvolver, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.evolve import CosmologyClock, StaticClock
from repro.amr.gravity import HierarchyGravity
from repro.amr.rebuild import rebuild_hierarchy
from repro.hydro import PPMSolver, ZeusSolver
from repro.perf import ComponentTimers, HierarchyStats


@dataclass
class SimulationConfig:
    """Knobs for a generic AMR run."""

    n_root: int = 16
    max_level: int = 3
    refine_factor: int = 2
    solver: str = "ppm"  # or 'zeus'
    #: extra keyword arguments for the solver constructor (e.g.
    #: ``{"characteristic_tracing": True}``); empty leaves the solver
    #: exactly as before
    solver_options: dict = field(default_factory=dict)
    cfl: float = 0.4
    self_gravity: bool = False
    g_code: float = 1.0
    refine_overdensity: float | None = None
    refine_gas_mass: float | None = None
    jeans_number: float | None = None
    #: flow-feature refinement (docs/VALIDATION.md): relative pressure-jump
    #: threshold for shock detection and |curl v| dx / c_s for vorticity;
    #: None disables each
    refine_shock: float | None = None
    refine_vorticity: float | None = None
    advected: tuple = ()
    #: generic passive scalars: adds ``scalar00..`` to the advected list
    #: (transported conservatively by both solvers, flux-corrected,
    #: projected and prolonged); 0 leaves runs bitwise identical
    n_scalars: int = 0
    max_grid_dims: int = 16
    #: execution backend for per-grid work ('serial' | 'thread' | 'process');
    #: None resolves from REPRO_EXEC_BACKEND / REPRO_WORKERS (see repro.exec)
    exec_backend: str | None = None
    workers: int | None = None
    #: kernel tier for the hydro/chemistry inner loops
    #: ('numpy' | 'numba' | 'cffi' | 'auto'); None resolves from
    #: REPRO_KERNELS (default numpy).  An unavailable compiled backend
    #: degrades to numpy with a warning (see repro.kernels)
    kernels: str | None = None
    #: in-step defense ladder (see docs/ROBUSTNESS.md); False disables the
    #: per-grid validation/rescue machinery entirely
    defense: bool = True
    #: controlled-run checkpoint cadence (root steps between checkpoints)
    #: and retention — forwarded into the default
    #: :class:`repro.runtime.CheckpointPolicy` built by
    #: :meth:`Simulation.make_controller`; rotation keeps the newest
    #: ``checkpoint_keep_last`` pairs, never the one a preempted run will
    #: resume from
    checkpoint_every: int = 10
    checkpoint_keep_last: int = 3


class Simulation:
    """A configured hierarchy + evolver with a small convenience API.

    Typical use::

        sim = Simulation(SimulationConfig(n_root=16, self_gravity=True,
                                          refine_overdensity=4.0, max_level=3))
        sim.set_density(lambda x, y, z: 1 + 10*np.exp(-((x-.5)**2+...)/0.01))
        sim.initialize()
        sim.run(t_end=0.5)
    """

    def __init__(self, config: SimulationConfig | None = None, units=None,
                 friedmann=None):
        self.config = config or SimulationConfig()
        c = self.config
        if c.kernels is not None:
            from repro import kernels as _kernels

            _kernels.set_backend(c.kernels)
        advected = tuple(c.advected)
        if c.n_scalars:
            from repro.hydro.state import scalar_names

            advected = advected + scalar_names(c.n_scalars)
        self.hierarchy = Hierarchy(
            n_root=c.n_root, refine_factor=c.refine_factor, advected=advected
        )
        self.timers = ComponentTimers()
        self.stats = HierarchyStats()
        solver = (
            PPMSolver(**c.solver_options)
            if c.solver == "ppm"
            else ZeusSolver(**c.solver_options)
        )
        clock = (
            CosmologyClock(friedmann, units)
            if (friedmann is not None and units is not None)
            else StaticClock()
        )
        self.gravity = (
            HierarchyGravity(g_code=c.g_code, mean_density=1.0)
            if c.self_gravity
            else None
        )
        self.criteria = None
        if any(
            v is not None
            for v in (c.refine_overdensity, c.refine_gas_mass, c.jeans_number,
                      c.refine_shock, c.refine_vorticity)
        ):
            self.criteria = RefinementCriteria(
                gas_mass_threshold=c.refine_gas_mass,
                jeans_number=c.jeans_number,
                overdensity_threshold=c.refine_overdensity,
                shock_threshold=c.refine_shock,
                vorticity_threshold=c.refine_vorticity,
                units=units,
                max_level=c.max_level,
            )
        exec_config = None
        if c.exec_backend is not None or c.workers is not None:
            from repro.exec import ExecConfig

            exec_config = ExecConfig.resolve(
                backend=c.exec_backend, workers=c.workers
            )
        self.evolver = HierarchyEvolver(
            self.hierarchy, solver, gravity=self.gravity, criteria=self.criteria,
            clock=clock, units=units, cfl=c.cfl, max_level=c.max_level,
            stats=self.stats, timers=self.timers, exec_config=exec_config,
            defense=None if c.defense else False,
        )

    # ----------------------------------------------------------------- setup
    def set_density(self, fn) -> None:
        """Set the root density from fn(x, y, z) on cell centres."""
        root = self.hierarchy.root
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        root.fields["density"][root.interior] = fn(x, y, z)

    def set_field(self, name: str, fn) -> None:
        root = self.hierarchy.root
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        root.fields[name][root.interior] = fn(x, y, z)
        if name in ("internal", "vx", "vy", "vz"):
            from repro.hydro.state import total_energy

            root.fields["energy"][root.interior] = total_energy(root.fields)[
                root.interior
            ]

    def initialize(self) -> None:
        """Fill ghosts, update gravity mean, build the initial hierarchy."""
        set_boundary_values(self.hierarchy, 0)
        if self.gravity is not None:
            self.gravity.mean_density = float(
                self.hierarchy.root.field_view("density").mean()
            )
        if self.criteria is not None:
            rebuild_hierarchy(
                self.hierarchy, 1, self.criteria,
                self.evolver._dm_density, max_level=self.config.max_level,
                max_dims=self.config.max_grid_dims,
            )

    # ------------------------------------------------------------------- run
    def run(self, t_end: float) -> dict:
        self.evolver.advance_to(t_end)
        return self.summary()

    def make_controller(self, run_dir: str, **opts):
        """A fault-tolerant :class:`repro.runtime.RunController` for this sim.

        The controller owns the advance loop: atomic rotated checkpoints,
        bit-exact ``resume()``, watchdog rollback on non-finite state, and
        JSONL telemetry in ``run_dir``.  Keyword options are forwarded
        (``policy``, ``recovery``, ``watchdog``, ``pre_step``, ``config``).
        """
        from dataclasses import asdict

        from repro.runtime import CheckpointPolicy, RunController

        opts.setdefault(
            "config", {"problem": "simulation", "kwargs": asdict(self.config)}
        )
        opts.setdefault("policy", CheckpointPolicy(
            every_steps=self.config.checkpoint_every,
            keep_last=self.config.checkpoint_keep_last,
        ))
        return RunController(self.evolver, run_dir, problem=self, **opts)

    def run_controlled(self, t_end: float, run_dir: str,
                       max_root_steps: int | None = None, **opts) -> dict:
        """Like :meth:`run`, but under run control (checkpoint/recover)."""
        controller = self.make_controller(run_dir, **opts)
        out = controller.run(t_end, max_root_steps=max_root_steps)
        out.update(self.summary())
        return out

    def summary(self) -> dict:
        return {
            "time": float(self.hierarchy.root.time),
            "max_level": self.hierarchy.max_level,
            "n_grids": self.hierarchy.n_grids,
            "sdr": self.hierarchy.spatial_dynamic_range(),
            "component_fractions": self.timers.fractions(),
        }
