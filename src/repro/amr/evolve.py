"""The recursive EvolveLevel control algorithm (paper Sec. 3.2).

Direct transcription of the paper's pseudo-code::

    EvolveLevel(level, ParentTime):
        SetBoundaryValues(all grids)
        while (Time < ParentTime):
            dt = ComputeTimeStep(all grids)
            SolveHydroEquations(all grids, dt)
            Time += dt
            SetBoundaryValues(all grids)
            EvolveLevel(level+1, Time)
            FluxCorrection
            Projection
            RebuildHierarchy(level+1)

plus the physics the paper couples on every level: the Poisson solve
(before the hydro step, so gas and particles feel the same potential),
dark-matter particle kicks/drifts for the particles this level owns (the
finest level containing them), and the sub-cycled chemistry/cooling update.
Per-grid times are extended-precision (Sec. 3.5: absolute time is one of
the quantities that genuinely needs 128-bit once dt/t ~ 1e-12).
"""

from __future__ import annotations

import warnings
from collections import defaultdict

import numpy as np

from repro.amr.boundary import set_boundary_values
from repro.amr.defense import DefenseLadder
from repro.amr.flux_correction import accumulate_boundary_fluxes, correct_level
from repro.amr.projection import project_level
from repro.amr.rebuild import rebuild_hierarchy
from repro.chemistry.network import ChemistryStepStats
from repro.exec import ChemistryTask, ExecutionEngine, GravityAccelTask, HydroTask
from repro.hydro.timestep import accel_timestep, expansion_timestep, hydro_timestep, particle_timestep
from repro.kernels import dispatch as kernel_dispatch
from repro.nbody.cic import cic_deposit
from repro.precision.doubledouble import DoubleDouble
from repro.runtime.faults import active as _active_faults
from repro.runtime.faults import maybe_sleep as _maybe_sleep_fault


class StaticClock:
    """Non-cosmological runs: a = 1, adot = 0 forever."""

    def a_of(self, time_code) -> float:
        return 1.0

    def adot_of(self, time_code) -> float:
        return 0.0


class CosmologyClock:
    """Maps extended-precision code time to (a, da/dt_code).

    Code t=0 corresponds to the initial redshift of the unit system.
    """

    def __init__(self, friedmann, units):
        self.friedmann = friedmann
        self.units = units
        self.t0_cgs = float(friedmann.time_of_a(units.a_initial))

    def _t_cgs(self, time_code) -> float:
        return self.t0_cgs + float(time_code) * self.units.time_unit

    def a_of(self, time_code) -> float:
        return float(self.friedmann.a_of_time(self._t_cgs(time_code)))

    def adot_of(self, time_code) -> float:
        a = self.a_of(time_code)
        return float(self.friedmann.adot(a)) * self.units.time_unit

    def redshift_of(self, time_code) -> float:
        return 1.0 / self.a_of(time_code) - 1.0


class EvolveLevel:
    """Callable transcription of the pseudo-code (see HierarchyEvolver)."""

    def __init__(self, evolver: "HierarchyEvolver"):
        self.evolver = evolver

    def __call__(self, level: int, parent_time) -> None:
        self.evolver.evolve_level(level, parent_time)


class HierarchyEvolver:
    """Binds the hierarchy to its physics modules and runs the W-cycle.

    Parameters
    ----------
    hierarchy: Hierarchy
    solver:
        A PPMSolver / ZeusSolver (anything with .step(fields, dx, dt, ...)).
    gravity:
        Optional :class:`repro.amr.gravity.HierarchyGravity`.
    chemistry:
        Optional :class:`repro.chemistry.ChemistryNetwork` (requires units).
    criteria:
        Optional :class:`repro.amr.refinement.RefinementCriteria`;
        None freezes the current grid structure.
    clock:
        StaticClock (default) or CosmologyClock.
    units:
        CodeUnits; required when chemistry is active.
    stats:
        Optional recorder; any of the methods ``record_step(hierarchy,
        level, dt, time)`` / ``record_rebuild(hierarchy, level)`` it defines
        are invoked.
    timers:
        Optional :class:`repro.perf.timers.ComponentTimers`.
    exec_config:
        Optional :class:`repro.exec.ExecConfig` (or dict) selecting the
        execution backend for independent per-grid work; None resolves
        from ``REPRO_EXEC_BACKEND`` / ``REPRO_WORKERS`` (default: serial).
        Results are bitwise identical across backends and worker counts.
    defense:
        ``None`` (default) attaches a :class:`repro.amr.defense
        .DefenseLadder` that validates every per-grid task result and
        rescues invalid grids in place before escalating to the run
        controller; ``False`` disables validation entirely (seed
        semantics: a task error aborts the step); or pass a configured
        ladder instance.  With no escalations the ladder is read-only, so
        results stay bitwise identical either way.
    incremental_rebuild:
        ``True`` (default) lets ``rebuild_hierarchy`` reuse the subgrids
        of parents whose flagged-cell sets are unchanged since the last
        rebuild; ``False`` forces every rebuild through the from-scratch
        path.  Both produce bitwise-identical hierarchies — the switch
        exists for the correctness gate and the deep-run benchmark.
    """

    def __init__(self, hierarchy, solver, gravity=None, chemistry=None,
                 criteria=None, clock=None, units=None, cfl: float = 0.4,
                 max_level: int | None = None, rebuild_every: int = 1,
                 stats=None, timers=None, jeans_floor_cells: float = 0.0,
                 exec_config=None, defense=None,
                 incremental_rebuild: bool = True):
        self.hierarchy = hierarchy
        self.solver = solver
        self.gravity = gravity
        self.chemistry = chemistry
        self.criteria = criteria
        self.clock = clock or StaticClock()
        self.units = units
        self.cfl = cfl
        self.max_level = max_level
        self.rebuild_every = max(int(rebuild_every), 1)
        #: parents with unchanged flag sets keep their subgrids across
        #: rebuilds (repro.amr.rebuild); False forces the from-scratch
        #: path — bitwise identical, used by the bitwise gate and benches
        self.incremental_rebuild = bool(incremental_rebuild)
        #: hierarchy counter snapshot at root-step start (telemetry deltas)
        self._rebuild_counters0 = (hierarchy.grids_created,
                                   hierarchy.grids_destroyed,
                                   hierarchy.grids_reused)
        self.stats = stats
        self.timers = timers
        #: if > 0: pressure-support floor so the local Jeans length never
        #: falls below this many cell widths on the *finest allowed* level —
        #: the standard remedy (Machacek et al. 2001 lineage) for artificial
        #: fragmentation once the depth cap stops the paper's "refine
        #: forever" strategy.
        self.jeans_floor_cells = float(jeans_floor_cells)
        #: grid-scoped defense ladder (repro.amr.defense); validates task
        #: results and rescues sick grids locally before any rollback
        if defense is None:
            defense = DefenseLadder()
        elif defense is False:
            defense = None
        self.defense = defense
        if gravity is not None and getattr(gravity, "defense", None) is None:
            gravity.defense = self.defense
        #: execution engine for independent per-grid work (hydro sweeps,
        #: chemistry advances, gravity accelerations); see repro.exec
        self.engine = ExecutionEngine(exec_config)
        if self.defense is not None:
            self.engine.on_event = self.defense.record_event
        #: per-root-step aggregate of the chemistry integrator diagnostics
        #: (substep counts, active-set occupancy); snapshotted by telemetry
        self.chem_stats = ChemistryStepStats()
        self.step_counter = defaultdict(int)
        #: optional liveness callback — called with the section name at
        #: every timed sub-step boundary (the RunController points this at
        #: its HeartbeatWriter so the daemon can tell "slow" from "hung")
        self.phase_hook = None
        if timers is not None:
            # let the hierarchy attribute its cache rebuilds to "topology"
            hierarchy.timers = timers

    # ------------------------------------------------------------------ time
    def compute_timestep(self, level: int, a: float, adot: float,
                         remaining: float | None = None) -> float:
        """min over the level's grids of every constraint (paper Sec. 3.1)."""
        h = self.hierarchy
        dts = [expansion_timestep(a, adot)]
        for g in h.level_grids(level):
            # scan the full array (ghosts included): ghost-band cells are
            # advanced transversally by the sweeps, so their signal speeds
            # bind the CFL too
            dts.append(hydro_timestep(g.fields, g.dx, a, self.cfl))
        if len(h.particles) and level == 0:
            dts.append(particle_timestep(h.particles.velocities,
                                         h.root.dx, a, self.cfl))
        dt = float(min(dts))
        if np.isnan(dt):
            raise FloatingPointError(
                f"NaN timestep on level {level}: the solution has gone bad"
            )
        if not np.isfinite(dt):
            # no constraint bites (vacuum / zero-signal state, and the
            # expansion timestep — already part of the min — is unbounded
            # too): fall back to the time left to the parent, never a
            # silent magic constant
            if remaining is not None and np.isfinite(remaining) and remaining > 0.0:
                dt, fallback = float(remaining), "remaining time to parent"
            else:
                dt, fallback = 1.0, "unit code time"
            warnings.warn(
                f"non-finite timestep on level {level} (zero signal speed "
                f"everywhere — vacuum or empty level?); falling back to "
                f"{fallback} dt={dt:.6g}",
                RuntimeWarning,
                stacklevel=2,
            )
        return dt

    # -------------------------------------------------------------- evolve
    def advance_to(self, stop_time: float) -> None:
        """Top-level driver: evolve the whole hierarchy to stop_time."""
        self._kernel_mark = kernel_dispatch.counters_totals()
        try:
            self.evolve_level(0, DoubleDouble(stop_time))
        finally:
            # library drivers (run_to_redshift etc.) come through here
            # rather than advance_root_step; close out kernel accounting
            # so the "kernels" timer section and last_kernel_stats stay
            # populated on both entry points
            self._finish_kernel_stats()

    def advance_root_step(self, stop_time) -> float | None:
        """Take exactly one root-level step toward ``stop_time``.

        The run-control layer (:mod:`repro.runtime`) drives the hierarchy
        through this entry point so it can checkpoint, emit telemetry, and
        watchdog-check the state at every root-step boundary — the only
        points where the whole hierarchy is time-synchronised.  Returns the
        root dt taken, or ``None`` if the root is already at ``stop_time``.
        """
        h = self.hierarchy
        target = (
            stop_time
            if isinstance(stop_time, DoubleDouble)
            else DoubleDouble(stop_time)
        )
        if not bool(h.root.time < target):
            return None
        self.engine.begin_root_step()
        self._rebuild_counters0 = (h.grids_created, h.grids_destroyed,
                                   h.grids_reused)
        self.chem_stats.reset()
        self._kernel_mark = kernel_dispatch.counters_totals()
        if self.defense is not None:
            self.defense.begin_root_step()
        self._timed("boundary", set_boundary_values, h, 0)
        dt = self._step_level(0, target)
        self._finish_kernel_stats()
        return dt

    def _finish_kernel_stats(self) -> None:
        """Close out one root step's kernel-tier accounting.

        Folds the per-kernel call/time deltas (including worker-process
        activity merged in by the exec engine) into the ``"kernels"`` timer
        section and stashes them for the telemetry step record.
        """
        delta = kernel_dispatch.counters_delta(
            getattr(self, "_kernel_mark", {})
        )
        self.last_kernel_stats = {
            "backend": kernel_dispatch.active_backend(),
            "per_kernel": delta,
        }
        if self.timers is not None and delta:
            seconds = sum(d["seconds"] for d in delta.values())
            calls = sum(d["calls"] for d in delta.values())
            self.timers.add_seconds("kernels", seconds, count=calls)

    def evolve_level(self, level: int, parent_time) -> None:
        h = self.hierarchy
        grids = h.level_grids(level)
        if not grids:
            return
        self._timed("boundary", set_boundary_values, h, level)

        while grids and bool(grids[0].time < parent_time):
            if self._step_level(level, parent_time) is None:
                return
            grids = h.level_grids(level)

    def _step_level(self, level: int, parent_time) -> float | None:
        """One step of the EvolveLevel body; returns the dt taken."""
        h = self.hierarchy
        grids = h.level_grids(level)
        if not grids:
            return None
        inj = _active_faults()
        if inj is not None:
            # publish the step context in-step fault specs match against
            inj.set_step(level, self.step_counter[level])
            # injected liveness faults: a worker wedged mid-step (hang) or
            # merely dragging (slow_step) — sleeps happen between phase
            # beats so only the daemon-side supervisor can catch a hang
            _maybe_sleep_fault("hang", level=level,
                               step=self.step_counter[level])
            _maybe_sleep_fault("slow_step", level=level,
                               step=self.step_counter[level])
        time_now = grids[0].time
        a = self.clock.a_of(time_now)
        adot = self.clock.adot_of(time_now)
        remaining = float(parent_time - time_now)
        dt = self.compute_timestep(level, a, adot, remaining)

        # gravity first: gas and particles feel the same potential, and
        # the acceleration constrains the timestep (free-fall through a
        # cell must be resolved)
        accel = {}
        if self.gravity is not None:
            self._timed("gravity", self.gravity.solve_level, h, level, a)
            gravity_tasks = [GravityAccelTask(g, self.gravity, a)
                             for g in grids]
            self.engine.run(gravity_tasks, level=level, timers=self.timers)
            for g, task in zip(grids, gravity_tasks):
                acc = task.result
                accel[g.grid_id] = acc
                dt = min(
                    dt,
                    accel_timestep(acc[(slice(None),) + g.interior], g.dx, a),
                )

        dt = min(dt, remaining)
        dt = max(dt, remaining * 1e-12)
        a_mid = self.clock.a_of(float(time_now) + 0.5 * dt)
        adot_mid = self.clock.adot_of(float(time_now) + 0.5 * dt)

        # per-grid work between here and the next boundary exchange is
        # independent (no task reads another grid), so the engine may run
        # it on any backend/worker count with bitwise-identical results;
        # all cross-grid effects (flux accumulation, clock updates) are
        # applied below in deterministic grid order
        permute = self.step_counter[level] % 3
        for g in grids:
            g.save_old_state()
        hydro_tasks = [
            HydroTask(g, self.solver, dt, a_mid, adot_mid,
                      accel.get(g.grid_id), permute)
            for g in grids
        ]
        self.engine.run(hydro_tasks, level=level, timers=self.timers)
        for g, task in zip(grids, hydro_tasks):
            result = task.result
            if self.defense is not None:
                result = self._defend_hydro(g, task, dt, a_mid, adot_mid,
                                            accel.get(g.grid_id), permute)
            elif task.error is not None:
                raise task.error
            g.last_fluxes = result
            if level > 0 and result is not None:
                accumulate_boundary_fluxes(g, result)
            g.time = DoubleDouble(g.time + dt)

        self._timed("nbody", self._advance_particles, level, dt, a_mid,
                    adot_mid, accel)

        if self.chemistry is not None and self.units is not None:
            chemistry_tasks = [
                ChemistryTask(g, self.chemistry, dt, self.units, a_mid)
                for g in grids
            ]
            self.engine.run(chemistry_tasks, level=level, timers=self.timers)
            # aggregate integrator diagnostics serially after the engine
            # joins — identical result on every backend / worker count
            for g, task in zip(grids, chemistry_tasks):
                stats = task.result
                if self.defense is not None:
                    stats = self._defend_chemistry(g, task, dt, a_mid)
                elif task.error is not None:
                    raise task.error
                self.chem_stats.absorb(stats)
            if self.timers is not None:
                snap = self.chem_stats
                self.timers.add_stat("chemistry", "substeps", snap.substeps_total,
                                     mode="set")
                self.timers.add_stat("chemistry", "max_substeps",
                                     snap.substeps_max, mode="max")
                self.timers.add_stat("chemistry", "active_fraction",
                                     snap.active_fraction_mean, mode="set")

        if (
            self.jeans_floor_cells > 0.0
            and self.gravity is not None
            and self.max_level is not None
            and level >= self.max_level
        ):
            for g in grids:
                self._apply_jeans_floor(g, a_mid)

        self._timed("boundary", set_boundary_values, h, level)
        self.evolve_level(level + 1, grids[0].time)
        self._timed("flux_correction", correct_level, h, level + 1)
        self._timed("projection", project_level, h, level + 1)

        self.step_counter[level] += 1
        if (
            self.criteria is not None
            and (self.max_level is None or level + 1 <= self.max_level)
            and self.step_counter[level] % self.rebuild_every == 0
        ):
            self._timed("rebuild", lambda: rebuild_hierarchy(
                h, level + 1, self.criteria, self._dm_density,
                max_level=self.max_level,
                incremental=self.incremental_rebuild))
            if self.stats is not None and hasattr(self.stats, "record_rebuild"):
                self.stats.record_rebuild(h, level + 1)
        if self.stats is not None and hasattr(self.stats, "record_step"):
            self.stats.record_step(h, level, dt, float(grids[0].time))
        return dt

    def rebuild_step_stats(self) -> dict | None:
        """Grid-churn counters since the last root-step start.

        ``created``/``destroyed`` are allocator traffic, ``reused`` the
        grids the incremental rebuild kept alive; ``reuse_rate`` is
        reused / (reused + created) over the root step.  Returns ``None``
        when no rebuild has ever run (nothing to report).
        """
        h = self.hierarchy
        if h.last_rebuild_stats is None:
            return None
        c0, d0, r0 = self._rebuild_counters0
        created = h.grids_created - c0
        destroyed = h.grids_destroyed - d0
        reused = h.grids_reused - r0
        total = created + reused
        out = {
            "created": created,
            "destroyed": destroyed,
            "reused": reused,
            "reuse_rate": round(reused / total, 6) if total else 0.0,
        }
        flags = h.last_rebuild_stats.get("flags")
        if flags:
            out["flags"] = dict(flags)
        return out

    # -------------------------------------------------------------- defense
    def _defend_hydro(self, g, task, dt, a, adot, accel, permute):
        """Validate one grid's hydro result; rescue through the ladder.

        The no-fault fast path is read-only (interior isfinite/positivity
        checks plus floor-counter bookkeeping), which is what keeps
        defended runs bitwise identical to undefended ones.
        """
        d = self.defense
        if task.error is None:
            d.note_floors(task.result.diagnostics)
            problems = d.validate_grid(g)
            if not problems:
                return task.result
        else:
            problems = [f"task_error:{type(task.error).__name__}"]
        return self._timed(
            "defense", d.rescue_hydro, g, self.solver, dt, a, adot,
            accel, permute, problems,
        )

    def _defend_chemistry(self, g, task, dt, a):
        d = self.defense
        if task.error is None:
            problems = d.validate_grid(g)
            if not problems:
                return task.result
        else:
            problems = [f"task_error:{type(task.error).__name__}"]
        return self._timed(
            "defense", d.rescue_chemistry, g, self.chemistry, dt,
            self.units, a, task.error, problems,
        )

    # ------------------------------------------------------------- particles
    def _advance_particles(self, level: int, dt: float, a: float, adot: float,
                           accel: dict) -> None:
        h = self.hierarchy
        parts = h.particles
        if len(parts) == 0 or self.gravity is None:
            return
        owner = h.finest_level_of_particles()
        mask = owner == level
        if not mask.any():
            return
        # assign every particle to exactly one grid from its *pre-step*
        # position (first containing grid wins): a particle drifting across
        # a sibling face mid-step must not be advanced again by the
        # later-iterated grid it lands in
        unassigned = mask.copy()
        assignments: list[tuple] = []
        for g in h.level_grids(level):
            if not unassigned.any():
                break
            sel = np.nonzero(
                parts.in_region(g.left_edge, g.right_edge) & unassigned
            )[0]
            if len(sel) == 0:
                continue
            unassigned[sel] = False
            assignments.append((g, sel))
        moved = False
        for g, sel in assignments:
            acc_field = accel.get(g.grid_id)
            if acc_field is None:
                continue
            pa = self.gravity.particle_accelerations(
                g, acc_field, parts.positions.hi[sel], parts.positions.lo[sel]
            )
            drag = np.exp(-(adot / a) * 0.5 * dt) if adot else 1.0
            v = parts.velocities[sel]
            v = v * drag + pa * 0.5 * dt
            # drift
            dx = v * (dt / a)
            pos = parts.positions[sel]
            pos.translate_inplace(dx)
            pos = pos.wrap_periodic(0.0, 1.0)
            parts.positions[sel] = pos
            # second half kick (same potential)
            pa2 = self.gravity.particle_accelerations(
                g, acc_field, parts.positions.hi[sel], parts.positions.lo[sel]
            )
            v = v * drag + pa2 * 0.5 * dt
            parts.velocities[sel] = v
            moved = True
        if moved:
            h.notify_particles_moved()

    def _apply_jeans_floor(self, grid, a: float) -> None:
        """Pressure support so L_J >= jeans_floor_cells * dx at the cap.

        In code units (comoving density rho, proper specific energy e):
        e >= N^2 dx^2 G rho / (pi a gamma (gamma-1)).
        """
        from repro import constants as const

        n = self.jeans_floor_cells
        gamma = getattr(self.solver, "gamma", const.GAMMA)
        g_code = self.gravity.g_code
        rho = grid.fields["density"]
        e_floor = (
            n * n * grid.dx**2 * g_code * rho
            / (np.pi * a * gamma * (gamma - 1.0))
        )
        below = grid.fields["internal"] < e_floor
        if below.any():
            grid.fields["internal"] = np.maximum(grid.fields["internal"], e_floor)
            from repro.hydro.state import total_energy

            grid.fields["energy"] = total_energy(grid.fields)

    def _dm_density(self, grid) -> np.ndarray | None:
        parts = self.hierarchy.particles
        if len(parts) == 0:
            return None
        shape = tuple(int(d) for d in grid.dims)
        periodic = grid.level == 0 and np.all(grid.dims == self.hierarchy.n_root)
        if periodic:
            offsets = parts.positions.hi + parts.positions.lo
            return cic_deposit(offsets, parts.masses, shape, grid.dx, periodic=True)
        mask = parts.in_region(grid.left_edge - grid.dx, grid.right_edge + grid.dx)
        if not mask.any():
            return None
        sel = parts.select(mask)
        offsets = (sel.positions.hi + sel.positions.lo) - grid.left_edge
        return cic_deposit(offsets, sel.masses, shape, grid.dx, periodic=False)

    # ---------------------------------------------------------------- timers
    def _timed(self, section: str, fn, *args):
        if self.phase_hook is not None:
            self.phase_hook(section)
        if self.timers is None:
            return fn(*args)
        with self.timers.section(section):
            return fn(*args)
