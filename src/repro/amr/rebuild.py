"""RebuildHierarchy (paper Sec. 3.2.2).

The three steps, per level, top-down:

1. apply the refinement test to the parent grids (boolean flag field,
   expanded by a safety buffer cell);
2. cluster flagged cells into rectangles (Berger-Rigoutsos,
   :mod:`repro.amr.clustering`) — clustering within each parent guarantees
   the full-nesting constraint by construction;
3. create the new grids, copying from old same-level grids where they
   overlap and interpolating from the parent elsewhere; the old grids are
   then dropped (freeing their memory — the alloc/free traffic the paper's
   Fig. 5 discussion highlights).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import binary_dilation

from repro.amr.clustering import cluster_flagged_cells
from repro.amr.grid import Grid
from repro.amr.interpolation import is_positive_field, prolong_region
from repro.precision.doubledouble import DoubleDouble


def _fill_new_grid(grid: Grid, parent: Grid, old_grids: list[Grid]) -> None:
    """Fill the whole array (ghosts included): prolong from the parent,
    then overwrite with old same-level data where it overlaps.

    Filling ghosts too means a freshly rebuilt grid can take its next
    hydro step immediately (the paper's control flow rebuilds at the end
    of each step and solves at the top of the next iteration, before the
    next SetBoundaryValues).
    """
    r = grid.refine_factor
    ng = grid.nghost
    lo_f = grid.start_index - ng
    hi_f = grid.end_index + ng
    lo_p = np.floor_divide(lo_f, r) - 1
    hi_p = -(-hi_f // r) + 1
    ng_p = parent.nghost
    p_sl = tuple(
        slice(int(lo_p[d] - parent.start_index[d] + ng_p),
              int(hi_p[d] - parent.start_index[d] + ng_p))
        for d in range(3)
    )
    fine_offset = lo_f - lo_p * r
    full_shape = grid.shape_with_ghosts
    names = [k for k, _ in grid.fields.array_items()]
    for name in names:
        coarse = parent.fields[name][p_sl]
        grid.fields[name][...] = prolong_region(
            coarse, r, full_shape, fine_offset,
            positive=is_positive_field(name),
        )
    grid.phi[...] = prolong_region(parent.phi[p_sl], r, full_shape, fine_offset)

    for old in old_grids:
        # copy wherever my ghost-padded region overlaps the old interior
        lo = np.maximum(lo_f, old.start_index)
        hi = np.minimum(hi_f, old.end_index)
        if np.any(lo >= hi):
            continue
        dst = tuple(
            slice(int(lo[d] - lo_f[d]), int(hi[d] - lo_f[d])) for d in range(3)
        )
        src = tuple(
            slice(int(lo[d] - old.start_index[d] + old.nghost),
                  int(hi[d] - old.start_index[d] + old.nghost))
            for d in range(3)
        )
        for name in names:
            grid.fields[name][dst] = old.fields[name][src]
        grid.phi[dst] = old.phi[src]


def rebuild_hierarchy(hierarchy, level: int, criteria, dm_density_fn=None,
                      efficiency: float = 0.7, min_size: int = 2,
                      buffer_cells: int = 1, max_dims: int = 32,
                      max_level: int | None = None) -> None:
    """Rebuild grids on ``level`` and deeper.

    ``criteria`` is a :class:`RefinementCriteria`; ``dm_density_fn(grid)``
    returns the deposited dark-matter density on a grid's interior (or
    None).  ``max_dims`` caps each new grid's extent per dimension (big
    boxes are bisected — keeps grids "generally small (~20^3) and numerous"
    as the paper describes).
    """
    if level < 1:
        raise ValueError("the root grid is never rebuilt")

    # keep the old grids' data alive for copying while the tree is replaced
    old_by_level = {
        l: list(hierarchy.level_grids(l))
        for l in range(level, hierarchy.max_level + 1)
    }
    hierarchy.remove_level_grids(level)

    lvl = level
    while True:
        if max_level is not None and lvl > max_level:
            break
        if getattr(criteria, "max_level", None) is not None and lvl > criteria.max_level:
            break
        parents = hierarchy.level_grids(lvl - 1)
        old_grids = old_by_level.get(lvl, [])
        new_grids: list[Grid] = []
        r = hierarchy.refine_factor
        for parent in parents:
            flags = criteria.flag_cells(
                parent, dm_density_fn(parent) if dm_density_fn else None
            )
            if buffer_cells > 0 and flags.any():
                flags = binary_dilation(flags, iterations=buffer_cells)
            if not flags.any():
                continue
            boxes = cluster_flagged_cells(flags, efficiency=efficiency,
                                          min_size=min_size)
            for box in boxes:
                for blo, bhi in _split_box(box.lo, box.hi, max_dims):
                    start = (parent.start_index + np.array(blo)) * r
                    dims = (np.array(bhi) - np.array(blo)) * r
                    g = Grid(lvl, start, dims, hierarchy.n_root, r, hierarchy.nghost)
                    g.allocate(hierarchy.advected)
                    new_grids.append((g, parent))

        for g, parent in new_grids:
            hierarchy.add_grid(g, parent)
            _fill_new_grid(g, parent, old_grids)
            g.time = DoubleDouble(parent.time)

        if not new_grids:
            break
        lvl += 1


def _split_box(lo, hi, max_dims: int):
    """Recursively bisect boxes larger than max_dims per dimension."""
    dims = [h - l for l, h in zip(lo, hi)]
    big = [d for d in range(3) if dims[d] > max_dims]
    if not big:
        yield tuple(lo), tuple(hi)
        return
    axis = big[0]
    mid = lo[axis] + dims[axis] // 2
    lo_a, hi_a = list(lo), list(hi)
    hi_a[axis] = mid
    lo_b = list(lo)
    lo_b[axis] = mid
    yield from _split_box(tuple(lo_a), tuple(hi_a), max_dims)
    yield from _split_box(tuple(lo_b), tuple(hi), max_dims)
