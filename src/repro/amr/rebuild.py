"""RebuildHierarchy (paper Sec. 3.2.2), incremental between epochs.

The three steps, per level, top-down:

1. apply the refinement test to the parent grids (boolean flag field,
   expanded by a safety buffer cell);
2. cluster flagged cells into rectangles (Berger-Rigoutsos,
   :mod:`repro.amr.clustering`) — clustering within each parent guarantees
   the full-nesting constraint by construction;
3. create the new grids, copying from old same-level grids where they
   overlap and interpolating from the parent elsewhere; the old grids are
   then dropped (freeing their memory — the alloc/free traffic the paper's
   Fig. 5 discussion highlights).

**Incremental reuse.**  At hero-run scale the hierarchy is rebuilt
thousands of times while most of the tree is unchanged between rebuilds
(the regime the Enzo method papers describe); re-clustering,
re-allocating and re-filling every subgrid from scratch each time is the
first-order cost the paper's Fig. 5 discussion attributes to
RebuildHierarchy.  This module therefore compares each parent's flag
field against a per-parent signature cached on the hierarchy: when the
flagged-cell set (and the clustering parameters) are unchanged, the
parent's previous subgrids are **reused** — same ``Grid`` objects, same
field arrays — and only their ghost shells are refreshed (prolongation
from the parent plus old same-level copies, exactly the values the
from-scratch fill would have produced there; interiors are overwritten
by their own old data in the from-scratch path, i.e. unchanged).  Parents
whose flag sets changed go through clustering/allocation/fill as before,
drawing buffers from the hierarchy's :class:`~repro.amr.pool
.FieldArrayPool` into which each retired level's arrays are released as
soon as its copy pass finishes.  The whole rebuild runs inside
``hierarchy.bulk_update()`` so the topology epoch moves at most once.

The correctness gate: an incremental rebuild produces a hierarchy
bitwise identical to the from-scratch path (``incremental=False``) —
same boxes in the same order, same field contents, same times.
"""

from __future__ import annotations

import hashlib
import itertools

import numpy as np
from scipy.ndimage import binary_dilation

from repro.amr.clustering import cluster_flagged_cells
from repro.amr.grid import Grid
from repro.amr.interpolation import (
    gather_prolong_boxes,
    is_positive_field,
    prolong_linear_batch,
    prolong_region_batch,
    prolong_slopes,
)
from repro.precision.doubledouble import DoubleDouble

#: beyond this many uncovered remainders, prolonging the whole region in
#: one call is cheaper than per-fragment calls (values are identical
#: either way — the covered parts are overwritten by the old-data copies)
MAX_PROLONG_FRAGMENTS = 4

#: the ghost-shell refresh tolerates many fragments before falling back
#: to prolonging the six whole shell boxes: fragments are batched into a
#: single gather/scatter per grid, so extra pieces cost index arithmetic
#: only, while the fallback prolongs covered cells just to overwrite them
MAX_SHELL_FRAGMENTS = 48

#: cap on a per-parent fine-image temp (total float64 elements across the
#: stacked fields); a parent bigger than this falls back to per-region
#: slab prolongation instead of materialising the image
MAX_IMAGE_ELEMENTS = 16_000_000


def _parent_slab(parent: Grid, lo_f, hi_f, r: int):
    """Coarse slab + fine offset covering fine region ``[lo_f, hi_f)``.

    The slab is the parent cells containing the region plus a 1-cell
    slope pad, **clamped to the parent's allocated (ghost-padded) extent**.
    Nesting guarantees every fine cell's parent cell is inside that extent
    (a child's ghost band reaches at most ``ceil(nghost/r)`` parent cells
    past the parent interior, and the parent carries ``nghost`` ghosts),
    so clamping can only trim the slope pad — where the prolongation
    falls back to the zero-slope behaviour it has at any array edge.
    Without the clamp, a child flush against its parent's edge with a
    small ``nghost`` produced a *negative* slice start that silently
    wrapped and filled the child from the wrong end of the parent array.
    """
    ng_p = parent.nghost
    p_lo = parent.start_index - ng_p
    p_hi = parent.end_index + ng_p
    lo_f = np.asarray(lo_f)
    hi_f = np.asarray(hi_f)
    need_lo = np.floor_divide(lo_f, r)
    need_hi = -(-hi_f // r)
    if np.any(need_lo < p_lo) or np.any(need_hi > p_hi):
        raise ValueError(
            f"fine region [{lo_f}, {hi_f}) needs parent cells "
            f"[{need_lo}, {need_hi}) outside {parent}'s allocated extent "
            f"[{p_lo}, {p_hi}) — the child is not nested in its parent"
        )
    lo_p = np.maximum(need_lo - 1, p_lo)
    hi_p = np.minimum(need_hi + 1, p_hi)
    p_sl = tuple(
        slice(int(lo_p[d] - p_lo[d]), int(hi_p[d] - p_lo[d]))
        for d in range(3)
    )
    return p_sl, lo_f - lo_p * r


class _OldLevel:
    """One retired level's grids with vectorised interior boxes.

    The fill passes query "which old grids overlap this fine box?" once
    per filled region; the per-pair loop of numpy calls that question
    used to cost (O(N_new x N_old) `np.maximum`/`np.any` invocations)
    dominated deep rebuilds, so the boxes are stacked into two (N, 3)
    arrays and every query is one broadcast comparison.
    """

    __slots__ = ("grids", "starts", "ends")

    def __init__(self, grids):
        self.grids = list(grids)
        self.starts = np.array([g.start_index for g in self.grids],
                               dtype=np.int64).reshape(-1, 3)
        self.ends = np.array([g.end_index for g in self.grids],
                             dtype=np.int64).reshape(-1, 3)

    def overlapping(self, lo_f, hi_f):
        """``(grid, lo, hi)`` for every old interior meeting ``[lo_f, hi_f)``,
        in level-list order (the order the scalar loop copied in)."""
        if not self.grids:
            return []
        lo = np.maximum(self.starts, lo_f)
        hi = np.minimum(self.ends, hi_f)
        idx = np.nonzero((lo < hi).all(axis=1))[0]
        return [(self.grids[i], lo[i], hi[i]) for i in idx]

    def overlapping_arrays(self, lo_f, hi_f):
        """Like :meth:`overlapping` but returning the clipped boxes as two
        ``(N, 3)`` arrays (plus the grid list) so callers can keep the box
        arithmetic vectorised."""
        if not self.grids:
            return [], np.empty((0, 3), np.int64), np.empty((0, 3), np.int64)
        lo = np.maximum(self.starts, lo_f)
        hi = np.minimum(self.ends, hi_f)
        idx = np.nonzero((lo < hi).all(axis=1))[0]
        return [self.grids[i] for i in idx], lo[idx], hi[idx]


def _subtract_boxes(lo, hi, covers):
    """Sub-boxes of ``[lo, hi)`` not covered by any box in ``covers``.

    Standard SAMR box arithmetic: each cover splits every surviving box
    into up to six axis-aligned remainders (the covered core is dropped).
    Deterministic in the order of ``covers``; any decomposition yields the
    same cell set, and the prolongation is per-cell local, so the values
    filled are independent of how the remainder is tiled.
    """
    # plain int tuples throughout: these are 3-vectors hit tens of
    # thousands of times per rebuild, where numpy's per-call overhead
    # dwarfs the arithmetic
    boxes = [(tuple(int(v) for v in lo), tuple(int(v) for v in hi))]
    for clo, chi in covers:
        clo = (int(clo[0]), int(clo[1]), int(clo[2]))
        chi = (int(chi[0]), int(chi[1]), int(chi[2]))
        nxt = []
        for blo, bhi in boxes:
            ilo = (max(blo[0], clo[0]), max(blo[1], clo[1]),
                   max(blo[2], clo[2]))
            ihi = (min(bhi[0], chi[0]), min(bhi[1], chi[1]),
                   min(bhi[2], chi[2]))
            if ilo[0] >= ihi[0] or ilo[1] >= ihi[1] or ilo[2] >= ihi[2]:
                nxt.append((blo, bhi))
                continue
            cur_lo, cur_hi = list(blo), list(bhi)
            for d in range(3):
                if ilo[d] > cur_lo[d]:
                    nhi = list(cur_hi)
                    nhi[d] = ilo[d]
                    nxt.append((tuple(cur_lo), tuple(nhi)))
                    cur_lo[d] = ilo[d]
                if ihi[d] < cur_hi[d]:
                    nlo = list(cur_lo)
                    nlo[d] = ihi[d]
                    nxt.append((tuple(nlo), tuple(cur_hi)))
                    cur_hi[d] = ihi[d]
        boxes = nxt
        if not boxes:
            break
    return boxes


def _ordered_names(fields):
    """Field names with the sign-definite ones first (the batched kernel
    rescales slopes for the leading ``n_positive`` entries only)."""
    names = sorted((k for k, _ in fields.array_items()),
                   key=lambda n: not is_positive_field(n))
    return names, sum(1 for n in names if is_positive_field(n))


def _parent_fine_image(parent: Grid, r: int, lo_f, hi_f):
    """Prolong the slab of a parent covering ``[lo_f, hi_f)`` fine cells.

    Returns ``(fine, base_f)`` — a ``(F, ...)`` fine-resolution image of
    the parent's fields + potential over the requested region, and the
    fine index of the image's corner — or ``None`` when the image would
    exceed :data:`MAX_IMAGE_ELEMENTS`.  Callers pass the bounding box of
    one parent's children (ghosts included) so the image covers exactly
    what the fills will read.  Prolongation is per-parent-cell local, so
    slicing this image is bitwise identical to prolonging each sub-region
    from its own padded slab; one batched kernel call amortised over
    every child fill is what makes a crowded parent's rebuild copy-bound
    instead of call-bound.
    """
    names, n_positive = _ordered_names(parent.fields)
    p_sl, fine_offset = _parent_slab(parent, lo_f, hi_f, r)
    n_cells = 1
    for sl in p_sl:
        n_cells *= sl.stop - sl.start
    if (len(names) + 1) * (r ** 3) * n_cells > MAX_IMAGE_ELEMENTS:
        return None
    stack = np.stack([parent.fields[n][p_sl] for n in names]
                     + [parent.phi[p_sl]])
    fine = prolong_linear_batch(stack, r, n_positive=n_positive)
    return fine, np.asarray(lo_f) - fine_offset


def _fill_region(grid: Grid, parent: Grid, old_level: _OldLevel,
                 lo_f, hi_f, image=None) -> None:
    """Fill one fine-index box of ``grid``'s arrays: prolong from the
    parent, then overwrite with old same-level interiors where they
    overlap.  Prolongation is per-parent-cell local, so filling a sub-box
    is bitwise identical to cutting that box out of a full-array fill —
    which also means regions about to be overwritten by an old-interior
    copy need not be prolonged at all: only the *uncovered* remainder of
    the box goes through the interpolant (capped: a heavily fragmented
    remainder is prolonged as the whole region in a single call instead,
    which yields the same values at lower call overhead).  With ``image``
    (a :func:`_parent_fine_image` result) the prolonged values are sliced
    straight out of the precomputed parent image instead."""
    r = grid.refine_factor
    base = grid.start_index - grid.nghost
    names, n_positive = _ordered_names(grid.fields)
    overlaps = old_level.overlapping(lo_f, hi_f)

    if image is not None:
        fine_img, base_f = image
        dst0 = tuple(
            slice(int(lo_f[d] - base[d]), int(hi_f[d] - base[d]))
            for d in range(3)
        )
        src0 = tuple(
            slice(int(lo_f[d] - base_f[d]), int(hi_f[d] - base_f[d]))
            for d in range(3)
        )
        if any(s.start < 0 or s.stop > n
               for s, n in zip(src0, fine_img.shape[1:])):
            raise ValueError(
                f"fine region [{lo_f}, {hi_f}) lies outside {parent}'s "
                f"prolonged image — the child is not nested in its parent"
            )
        for i, name in enumerate(names):
            grid.fields[name][dst0] = fine_img[i][src0]
        grid.phi[dst0] = fine_img[-1][src0]
        remainder = []
    else:
        remainder = _subtract_boxes(lo_f, hi_f,
                                    [(lo, hi) for _, lo, hi in overlaps])
        if len(remainder) > MAX_PROLONG_FRAGMENTS:
            remainder = [(np.asarray(lo_f), np.asarray(hi_f))]
    for plo, phi_ in remainder:
        p_sl, fine_offset = _parent_slab(parent, plo, phi_, r)
        shape = tuple(int(h - l) for l, h in zip(plo, phi_))
        dst0 = tuple(
            slice(int(plo[d] - base[d]), int(phi_[d] - base[d]))
            for d in range(3)
        )
        stack = np.stack(
            [parent.fields[name][p_sl] for name in names]
            + [parent.phi[p_sl]]
        )
        fine = prolong_region_batch(stack, r, shape, fine_offset,
                                    n_positive=n_positive)
        for i, name in enumerate(names):
            grid.fields[name][dst0] = fine[i]
        grid.phi[dst0] = fine[-1]

    for old, lo, hi in overlaps:
        # copy wherever this box overlaps the old interior
        dst = tuple(
            slice(int(lo[d] - base[d]), int(hi[d] - base[d])) for d in range(3)
        )
        src = tuple(
            slice(int(lo[d] - old.start_index[d] + old.nghost),
                  int(hi[d] - old.start_index[d] + old.nghost))
            for d in range(3)
        )
        for name in names:
            grid.fields[name][dst] = old.fields[name][src]
        grid.phi[dst] = old.phi[src]


def _fill_new_grid(grid: Grid, parent: Grid, old_grids, image=None) -> None:
    """Fill the whole array (ghosts included): prolong from the parent,
    then overwrite with old same-level data where it overlaps.

    Filling ghosts too means a freshly rebuilt grid can take its next
    hydro step immediately (the paper's control flow rebuilds at the end
    of each step and solves at the top of the next iteration, before the
    next SetBoundaryValues).
    """
    if not isinstance(old_grids, _OldLevel):
        old_grids = _OldLevel(old_grids)
    ng = grid.nghost
    _fill_region(grid, parent, old_grids,
                 grid.start_index - ng, grid.end_index + ng, image=image)


def _shell_boxes(grid: Grid):
    """Six disjoint boxes tiling the ghost shell (fine-index space)."""
    ng = grid.nghost
    s = tuple(int(v) for v in grid.start_index)
    e = tuple(int(v) for v in grid.end_index)
    lo = (s[0] - ng, s[1] - ng, s[2] - ng)
    hi = (e[0] + ng, e[1] + ng, e[2] + ng)
    yield (lo[0], lo[1], lo[2]), (s[0], hi[1], hi[2])
    yield (e[0], lo[1], lo[2]), (hi[0], hi[1], hi[2])
    yield (s[0], lo[1], lo[2]), (e[0], s[1], hi[2])
    yield (s[0], e[1], lo[2]), (e[0], hi[1], hi[2])
    yield (s[0], s[1], lo[2]), (e[0], e[1], s[2])
    yield (s[0], s[1], e[2]), (e[0], e[1], hi[2])


def _refresh_ghost_shell(grid: Grid, parent: Grid,
                         old_grids: _OldLevel, slopes_getter=None) -> None:
    """Refill a *reused* grid's ghost shell only.

    The from-scratch fill overwrites a grid's interior with its own old
    interior (same-level interiors are disjoint, and a reused grid's box
    is unchanged), so the interior needs no work; the ghost shell is the
    only part whose from-scratch values (current-parent prolongation +
    old same-level copies) differ from what the reused arrays hold.

    The shell is filled by subtracting the old same-level interiors from
    the six shell boxes and prolonging only the uncovered fragments,
    all gathered in one pass (:func:`gather_prolong_boxes`) from one
    slope set computed on the coarse slab of the fragments' bounding
    box.  In a quiescent
    clustered region the old level covers most of the shell, so the
    fragments — and the slab — hug the old footprint's surface: far
    less slope work than a full-image fill.  Slab choice is bitwise-safe
    because ``_parent_slab``'s zero-slope edges occur only where the
    slab is clamped at the parent's allocated extent, which is the same
    in every slab choice; elsewhere each sampled parent cell keeps both
    neighbours.  A shell shredded into more pieces than
    :data:`MAX_SHELL_FRAGMENTS` gathers the six whole boxes instead.
    Then the old same-level interiors — found with one overlap query on
    the whole padded box and clipped against the (not rewritten)
    interior — overwrite where they reach into the shell.
    """
    r = grid.refine_factor
    ng = grid.nghost
    base = grid.start_index - ng
    end = grid.end_index + ng
    names, n_positive = _ordered_names(grid.fields)
    arrays = [grid.fields[n] for n in names] + [grid.phi]
    shell = list(_shell_boxes(grid))
    glist, lo_a, hi_a = old_grids.overlapping_arrays(base, end)

    covers = [
        ((int(lo[0]), int(lo[1]), int(lo[2])),
         (int(hi[0]), int(hi[1]), int(hi[2])))
        for lo, hi in zip(lo_a, hi_a)
    ]
    frags = []
    for lo_f, hi_f in shell:
        # only covers actually meeting this box take part in the
        # subtraction — the box count grows as covers split it, so
        # pre-filtering keeps the inner loop small
        box_covers = [
            (clo, chi) for clo, chi in covers
            if (clo[0] < hi_f[0] and chi[0] > lo_f[0]
                and clo[1] < hi_f[1] and chi[1] > lo_f[1]
                and clo[2] < hi_f[2] and chi[2] > lo_f[2])
        ]
        frags.extend(_subtract_boxes(lo_f, hi_f, box_covers))
    if len(frags) > MAX_SHELL_FRAGMENTS:
        # shredded shell: gathering the six whole boxes costs fewer
        # calls (values identical either way — the covered parts are
        # overwritten by the old copies below)
        frags = shell
    if frags:
        # one coarse slab + slope set serves every fragment; when the
        # caller passes ``slopes_getter`` the (lazily built) set is
        # shared across all of the parent's reused children — slopes
        # are per-parent-cell local, so any covering slab yields the
        # same gathered values (see the docstring)
        if slopes_getter is not None:
            stack, slopes, slab_f = slopes_getter()
        else:
            ulo = tuple(min(f[0][d] for f in frags) for d in range(3))
            uhi = tuple(max(f[1][d] for f in frags) for d in range(3))
            p_sl, off = _parent_slab(parent, ulo, uhi, r)
            slab_f = tuple(int(ulo[d] - off[d]) for d in range(3))
            stack = np.stack([parent.fields[n][p_sl] for n in names]
                             + [parent.phi[p_sl]])
            slopes = prolong_slopes(stack, r, n_positive=n_positive)
        # every fragment in one gather, scattered back through one flat
        # index per grid (the arrays are C-contiguous, so ravelled
        # destinations address the same cells the slice stores would)
        ny_a, nz_a = arrays[0].shape[1], arrays[0].shape[2]
        boxes = []
        dst_idx = []
        for flo, fhi in frags:
            boxes.append((
                tuple(int(flo[d] - slab_f[d]) for d in range(3)),
                tuple(int(h - l) for l, h in zip(flo, fhi)),
            ))
            dx = np.arange(flo[0] - base[0], fhi[0] - base[0]) * (ny_a * nz_a)
            dy = np.arange(flo[1] - base[1], fhi[1] - base[1]) * nz_a
            dz = np.arange(flo[2] - base[2], fhi[2] - base[2])
            dst_idx.append(
                (dx[:, None, None] + dy[None, :, None]
                 + dz[None, None, :]).ravel()
            )
        fine = gather_prolong_boxes(stack, slopes, r, boxes)
        dst = np.concatenate(dst_idx)
        for i, a in enumerate(arrays):
            a.reshape(-1)[dst] = fine[i]
    if glist:
        # the six shell boxes are disjoint and tile exactly shell =
        # padded-box minus interior, so intersecting every overlap with
        # every shell box (one broadcast) writes the same cells the
        # per-overlap interior subtraction did — old interiors are
        # disjoint, so the decomposition cannot change any value
        sh_lo = np.array([b[0] for b in shell], dtype=np.int64)
        sh_hi = np.array([b[1] for b in shell], dtype=np.int64)
        ilo = np.maximum(lo_a[:, None, :], sh_lo[None, :, :])
        ihi = np.minimum(hi_a[:, None, :], sh_hi[None, :, :])
        pairs = np.argwhere((ilo < ihi).all(axis=2))
        last = -1
        old_arrays = obase = None
        for n_i, b_i in pairs.tolist():
            if n_i != last:
                old = glist[n_i]
                old_arrays = [old.fields[n] for n in names] + [old.phi]
                obase = old.start_index - old.nghost
                last = n_i
            flo = ilo[n_i, b_i]
            fhi = ihi[n_i, b_i]
            dst = (slice(int(flo[0] - base[0]), int(fhi[0] - base[0])),
                   slice(int(flo[1] - base[1]), int(fhi[1] - base[1])),
                   slice(int(flo[2] - base[2]), int(fhi[2] - base[2])))
            osrc = (slice(int(flo[0] - obase[0]), int(fhi[0] - obase[0])),
                    slice(int(flo[1] - obase[1]), int(fhi[1] - obase[1])),
                    slice(int(flo[2] - obase[2]), int(fhi[2] - obase[2])))
            for i, a in enumerate(arrays):
                a[dst] = old_arrays[i][osrc]


def _flag_signature(flags: np.ndarray, params_key: bytes) -> bytes:
    """Digest of one parent's (dilated) flag field + clustering params."""
    hsh = hashlib.sha1(params_key)
    hsh.update(np.int64(flags.shape).tobytes())
    hsh.update(np.packbits(flags).tobytes())
    return hsh.digest()


def rebuild_hierarchy(hierarchy, level: int, criteria, dm_density_fn=None,
                      efficiency: float = 0.7, min_size: int = 2,
                      buffer_cells: int = 1, max_dims: int = 32,
                      max_level: int | None = None,
                      incremental: bool = True) -> None:
    """Rebuild grids on ``level`` and deeper.

    ``criteria`` is a :class:`RefinementCriteria`; ``dm_density_fn(grid)``
    returns the deposited dark-matter density on a grid's interior (or
    None).  ``max_dims`` caps each new grid's extent per dimension (big
    boxes are bisected — keeps grids "generally small (~20^3) and numerous"
    as the paper describes).

    With ``incremental=True`` (the default) parents whose flag signature
    is unchanged since the last rebuild keep their subgrids alive (see
    the module docstring); ``incremental=False`` forces the from-scratch
    path everywhere.  Both paths produce bitwise-identical hierarchies;
    counters land in ``hierarchy.last_rebuild_stats`` and the cumulative
    ``grids_created`` / ``grids_destroyed`` / ``grids_reused``.
    """
    if level < 1:
        raise ValueError("the root grid is never rebuilt")

    pool = hierarchy.pool
    params_key = repr((float(efficiency), int(min_size), int(buffer_cells),
                       int(max_dims))).encode()
    stats = {"level": level, "parents": 0, "parents_reused": 0,
             "created": 0, "reused": 0, "destroyed": 0}
    flag_counts: dict[str, int] = {}
    new_signatures: dict[int, bytes] = {}

    # keep the old grids' data alive for copying while the tree is replaced;
    # each level's list is dropped (and its buffers pooled) as soon as that
    # level's copy pass finishes, so memory frees level-by-level
    old_by_level = {
        l: list(hierarchy.level_grids(l))
        for l in range(level, hierarchy.max_level + 1)
    }
    # parent -> previous children (and child -> parent id), captured before
    # removal severs backrefs
    old_children: dict[int, list[Grid]] = {}
    old_parent_id: dict[int, int] = {}
    for l in range(level - 1, hierarchy.max_level + 1):
        for g in hierarchy.level_grids(l):
            old_children[g.grid_id] = list(g.children)
            if g.parent is not None:
                old_parent_id[g.grid_id] = g.parent.grid_id

    def retire(old_grids, reused_ids):
        for g in old_grids:
            if g.grid_id in reused_ids:
                continue
            stats["destroyed"] += 1
            hierarchy.grids_destroyed += 1
            hierarchy._flag_signatures.pop(g.grid_id, None)
            pool.release_grid(g)

    hierarchy._in_rebuild = True
    try:
        with hierarchy.bulk_update():
            hierarchy.remove_level_grids(level, tally=False)

            lvl = level
            while True:
                if max_level is not None and lvl > max_level:
                    break
                if (getattr(criteria, "max_level", None) is not None
                        and lvl > criteria.max_level):
                    break
                parents = hierarchy.level_grids(lvl - 1)
                old_grids = _OldLevel(old_by_level.get(lvl, []))
                new_grids: list[tuple[Grid, Grid]] = []  # (child, parent)
                reused_ids: set[int] = set()
                r = hierarchy.refine_factor
                for parent in parents:
                    flags = criteria.flag_cells(
                        parent, dm_density_fn(parent) if dm_density_fn else None
                    )
                    for crit, count in getattr(
                        criteria, "last_flag_counts", {}
                    ).items():
                        flag_counts[crit] = flag_counts.get(crit, 0) + count
                    if buffer_cells > 0 and flags.any():
                        flags = binary_dilation(flags, iterations=buffer_cells)
                    sig = _flag_signature(flags, params_key)
                    stats["parents"] += 1
                    previous = (hierarchy._flag_signatures.get(parent.grid_id)
                                if incremental else None)
                    new_signatures[parent.grid_id] = sig
                    if previous == sig:
                        # unchanged flagged-cell set: same boxes, same data
                        # — keep the previous subgrids alive
                        stats["parents_reused"] += 1
                        for child in old_children.get(parent.grid_id, ()):
                            reused_ids.add(child.grid_id)
                            new_grids.append((child, parent))
                        continue
                    if not flags.any():
                        continue
                    boxes = cluster_flagged_cells(flags, efficiency=efficiency,
                                                  min_size=min_size)
                    for box in boxes:
                        for blo, bhi in _split_box(box.lo, box.hi, max_dims):
                            start = (parent.start_index + np.array(blo)) * r
                            dims = (np.array(bhi) - np.array(blo)) * r
                            g = Grid(lvl, start, dims, hierarchy.n_root, r,
                                     hierarchy.nghost)
                            g.allocate(hierarchy.advected, pool=pool)
                            new_grids.append((g, parent))

                # the add pass is grouped by parent (the discovery loop
                # appends per parent), so each parent prolongs one fine
                # image — bounded by its children's ghost-padded extent —
                # shared by all of that parent's fills
                ng = hierarchy.nghost
                for parent, group in itertools.groupby(new_grids,
                                                       key=lambda t: t[1]):
                    children = [g for g, _ in group]
                    lo_f = np.min([g.start_index for g in children],
                                  axis=0) - ng
                    hi_f = np.max([g.end_index for g in children],
                                  axis=0) + ng
                    if children[0].grid_id in reused_ids:
                        # reuse is all-or-nothing per parent (an unchanged
                        # signature keeps every previous child): these
                        # grids only need their ghost shells refreshed —
                        # no fine image, just one lazily-built slope set
                        # over the children's bounding slab, shared by
                        # every sibling's fragment gathers
                        image = None
                        _cache: list = []

                        def slopes_getter(parent=parent, lo_f=lo_f,
                                          hi_f=hi_f, _cache=_cache):
                            if not _cache:
                                nm, npos = _ordered_names(parent.fields)
                                p_sl, off = _parent_slab(parent, lo_f,
                                                         hi_f, r)
                                stack = np.stack(
                                    [parent.fields[n][p_sl] for n in nm]
                                    + [parent.phi[p_sl]]
                                )
                                _cache.append((
                                    stack,
                                    prolong_slopes(stack, r,
                                                   n_positive=npos),
                                    tuple(int(v) for v in
                                          (np.asarray(lo_f) - off)),
                                ))
                            return _cache[0]
                    else:
                        image = _parent_fine_image(parent, r, lo_f, hi_f)
                        slopes_getter = None
                    for g in children:
                        if g.grid_id in reused_ids:
                            hierarchy.add_grid(g, parent, reused=True)
                            _refresh_ghost_shell(g, parent, old_grids,
                                                 slopes_getter=slopes_getter)
                            # reset the per-step scratch a fresh Grid
                            # starts without, so reuse is invisible
                            # downstream
                            g.old_fields = None
                            g.old_time = DoubleDouble(0.0)
                            g.flux_accumulator = None
                            g.last_fluxes = None
                            stats["reused"] += 1
                        else:
                            hierarchy.add_grid(g, parent)
                            _fill_new_grid(g, parent, old_grids, image)
                            stats["created"] += 1
                        g.time = DoubleDouble(parent.time)

                # this level's copy pass is done: free the old level now
                retire(old_by_level.pop(lvl, []), reused_ids)
                if not new_grids:
                    break
                lvl += 1

            # levels past a break (cap reached / flags vanished) are gone;
            # their surviving parents lose their signatures too — a sig
            # must never claim children that no longer exist, or a later
            # deeper-cap rebuild would "reuse" an empty child set where
            # the from-scratch path would re-cluster
            for l in sorted(old_by_level):
                for g in old_by_level[l]:
                    pid = old_parent_id.get(g.grid_id)
                    if pid is not None:
                        hierarchy._flag_signatures.pop(pid, None)
                        new_signatures.pop(pid, None)
                retire(old_by_level.pop(l), set())
    finally:
        hierarchy._in_rebuild = False

    hierarchy._flag_signatures.update(new_signatures)
    total = stats["created"] + stats["reused"]
    stats["reuse_rate"] = stats["reused"] / total if total else 0.0
    stats["flags"] = flag_counts
    hierarchy.last_rebuild_stats = stats


def _split_box(lo, hi, max_dims: int):
    """Recursively bisect boxes larger than max_dims per dimension."""
    dims = [h - l for l, h in zip(lo, hi)]
    big = [d for d in range(3) if dims[d] > max_dims]
    if not big:
        yield tuple(lo), tuple(hi)
        return
    axis = big[0]
    mid = lo[axis] + dims[axis] // 2
    lo_a, hi_a = list(lo), list(hi)
    hi_a[axis] = mid
    lo_b = list(lo)
    lo_b[axis] = mid
    yield from _split_box(tuple(lo_a), tuple(hi_a), max_dims)
    yield from _split_box(tuple(lo_b), tuple(hi), max_dims)
