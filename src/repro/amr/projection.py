"""Child -> parent projection (restriction).

"The second step, termed projection, updates the solution on the coarse
mesh points which are covered by finer meshes." (paper Sec. 3.2.1)

Density-like fields restrict by volume average; specific quantities
(velocities, specific energies) by mass-weighted average, so that the
coarse conserved totals equal the fine ones exactly.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.state import VELOCITY_FIELDS


def block_average(fine: np.ndarray, r: int) -> np.ndarray:
    s = fine.shape
    if any(d % r for d in s):
        raise ValueError("fine region not aligned to the refinement factor")
    return fine.reshape(s[0] // r, r, s[1] // r, r, s[2] // r, r).mean(axis=(1, 3, 5))


def project_child_to_parent(child, parent) -> None:
    """Overwrite the parent's covered interior cells with child averages."""
    r = child.refine_factor
    lo_p, hi_p = child.parent_index_region()
    # parent-local interior slice of the covered region
    ng = parent.nghost
    p_sl = tuple(
        slice(ng + int(lo_p[d] - parent.start_index[d]),
              ng + int(hi_p[d] - parent.start_index[d]))
        for d in range(3)
    )
    c_int = child.interior

    rho_f = child.fields["density"][c_int]
    rho_c = block_average(rho_f, r)
    parent.fields["density"][p_sl] = rho_c

    mass_weight = rho_f
    denom = np.maximum(rho_c, 1e-300)
    for name in (*VELOCITY_FIELDS, "energy", "internal"):
        q = child.fields[name][c_int]
        parent.fields[name][p_sl] = block_average(mass_weight * q, r) / denom

    for name in child.fields.advected:
        parent.fields[name][p_sl] = block_average(child.fields[name][c_int], r)

    if child.phi is not None and parent.phi is not None:
        parent.phi[p_sl] = block_average(child.phi[c_int], r)


def project_level(hierarchy, level: int) -> None:
    """Project every grid on ``level`` into its parent (finest-first callers
    guarantee deeper data has already been folded in)."""
    for child in hierarchy.level_grids(level):
        if child.parent is not None:
            project_child_to_parent(child, child.parent)
