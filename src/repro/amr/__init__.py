"""Structured adaptive mesh refinement (paper Sec. 3).

The hierarchy follows Berger & Colella (1989) SAMR exactly as the paper
describes: rectangular subgrids with integer refinement factor, fully nested
within their parents, coarse cells retained beneath fine ones, per-level
timesteps in a W-cycle, conservative coarse/fine coupling (boundary
interpolation down, flux correction + projection up), and an
edge-detection/point-clustering grid placer (Berger & Rigoutsos 1991).

Grid geometry is held as *integer* cell indices at each level's resolution
— exact at any depth — while absolute positions and times use the EPA types
from :mod:`repro.precision` (this split is the paper's "relative vs
absolute" precision discipline).
"""

from repro.amr.grid import Grid
from repro.amr.hierarchy import Hierarchy
from repro.amr.pool import FieldArrayPool
from repro.amr.clustering import cluster_flagged_cells, Box
from repro.amr.refinement import RefinementCriteria
from repro.amr.defense import DefenseLadder
from repro.amr.evolve import EvolveLevel, HierarchyEvolver
from repro.amr.topology import SiblingLink, build_sibling_map

__all__ = [
    "Grid",
    "Hierarchy",
    "FieldArrayPool",
    "cluster_flagged_cells",
    "Box",
    "DefenseLadder",
    "RefinementCriteria",
    "EvolveLevel",
    "HierarchyEvolver",
    "SiblingLink",
    "build_sibling_map",
]
