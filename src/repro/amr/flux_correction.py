"""Coarse-fine flux correction (paper Sec. 3.2.1).

"...correct the coarse fluxes (of conserved quantities) at subgrid
boundaries to reflect the improved flux estimates from the subgrid.  This
is required to ensure mass, momentum and energy conservation as material
flows into and out of a refined region."

Bookkeeping: during its substeps a child accumulates the dt/a-integrated
fluxes on the six boundary face planes of its interior.  When it has caught
up to its parent's time, each parent cell *adjacent outside* a child face
has its conserved state corrected by (F_fine_avg - F_coarse)/dx_parent with
the appropriate orientation sign, where F_fine_avg is the substep-summed,
(r x r)-face-averaged fine flux and F_coarse the parent's own flux through
that face (stored in ``parent.last_fluxes``).  Parent cells *covered* by
children are subsequently overwritten by projection, so only the outside
rim needs fixing.  A child face that coincides with its parent's own
boundary has no outside parent cell and is skipped (the neighbouring
parent's sibling exchange carries that information).
"""

from __future__ import annotations

import numpy as np

from repro.hydro.ppm import AXIS_NAMES
from repro.hydro.state import VELOCITY_FIELDS, sync_internal_from_total

#: conserved quantities corrected.  The dual-energy 'internal' field is
#: deliberately NOT corrected: its evolution equation has a non-advective
#: pdV source that the flux bookkeeping cannot see, so correcting it with
#: advective fluxes alone injects (possibly negative) garbage; the
#: dual-energy sync after correction re-derives it from the corrected total
#: energy wherever that is trustworthy.
_CONSERVED = ("density", "vx", "vy", "vz", "energy")


def init_flux_accumulator(grid) -> None:
    grid.flux_accumulator = {
        name: {"lo": {}, "hi": {}} for name in AXIS_NAMES
    }


def accumulate_boundary_fluxes(grid, step_fluxes) -> None:
    """Add one substep's boundary-face fluxes into the grid accumulator."""
    if grid.flux_accumulator is None:
        init_flux_accumulator(grid)
    for axis_name, fields in step_fluxes.fluxes.items():
        ax = AXIS_NAMES.index(axis_name)
        store = grid.flux_accumulator[axis_name]
        for name, arr in fields.items():
            lo_plane = np.take(arr, 0, axis=ax)
            hi_plane = np.take(arr, -1, axis=ax)
            store["lo"][name] = store["lo"].get(name, 0.0) + lo_plane
            store["hi"][name] = store["hi"].get(name, 0.0) + hi_plane


def _block_average_2d(plane: np.ndarray, r: int) -> np.ndarray:
    s = plane.shape
    return plane.reshape(s[0] // r, r, s[1] // r, r).mean(axis=(1, 3))


def apply_flux_correction(parent, child) -> None:
    """Correct the parent cells ringing one child (call once per child per
    parent step, after the child caught up)."""
    if child.flux_accumulator is None or parent.last_fluxes is None:
        return
    r = child.refine_factor
    ng = parent.nghost
    lo_p, hi_p = child.parent_index_region()

    for ax, axis_name in enumerate(AXIS_NAMES):
        coarse_fluxes = parent.last_fluxes.fluxes.get(axis_name)
        if coarse_fluxes is None:
            continue
        t_axes = [d for d in range(3) if d != ax]
        # parent-local transverse extents of the child's footprint
        t_slices = tuple(
            slice(int(lo_p[d] - parent.start_index[d]), int(hi_p[d] - parent.start_index[d]))
            for d in t_axes
        )
        # a root grid spanning the box is periodic: corrections at a child
        # face on the box edge wrap to the opposite side
        periodic = parent.level == 0 and int(parent.dims[ax]) == parent.cells_per_dim_at_level

        for side in ("lo", "hi"):
            face_level_idx = (lo_p if side == "lo" else hi_p)[ax]
            face_idx = int(face_level_idx - parent.start_index[ax])
            out_cell = face_idx - 1 if side == "lo" else face_idx
            n_ax = int(parent.dims[ax])
            if out_cell < 0:
                if not periodic:
                    continue  # child face on the parent's own boundary
                # wrap: the outside cell is the last cell, whose RIGHT face
                # (array index n_ax) is the same physical face as index 0
                out_cell = n_ax - 1
                face_idx = n_ax
            elif out_cell >= n_ax:
                if not periodic:
                    continue
                out_cell = 0
                face_idx = 0
            sign = -1.0 if side == "lo" else 1.0

            fine = child.flux_accumulator[axis_name][side]
            deltas = {}
            for name in _CONSERVED + tuple(child.fields.advected):
                if name not in fine or name not in coarse_fluxes:
                    continue
                f_eff = _block_average_2d(np.asarray(fine[name]), r)
                coarse_plane = np.take(coarse_fluxes[name], face_idx, axis=ax)
                coarse_plane = coarse_plane[t_slices]
                deltas[name] = sign * (f_eff - coarse_plane) / parent.dx

            if not deltas:
                continue
            # index the parent cell plane adjacent outside the face
            cell_idx = [None, None, None]
            cell_idx[ax] = ng + out_cell
            for td, tsl in zip(t_axes, t_slices):
                cell_idx[td] = slice(ng + tsl.start, ng + tsl.stop)
            cell_idx = tuple(cell_idx)

            rho_old = parent.fields["density"][cell_idx].copy()
            rho_new = rho_old + deltas.get("density", 0.0)
            rho_new = np.maximum(rho_new, 1e-12)
            parent.fields["density"][cell_idx] = rho_new
            for name in VELOCITY_FIELDS + ("energy",):
                if name in deltas:
                    q_old = parent.fields[name][cell_idx]
                    parent.fields[name][cell_idx] = (
                        rho_old * q_old + deltas[name]
                    ) / rho_new
            for name in child.fields.advected:
                if name in deltas:
                    parent.fields[name][cell_idx] = np.maximum(
                        parent.fields[name][cell_idx] + deltas[name], 0.0
                    )

    # re-derive the dual internal energy from the corrected total where
    # trustworthy, and rebuild 'energy' consistently
    sync_internal_from_total(parent.fields)
    # reset for the next parent step
    init_flux_accumulator(child)


def correct_level(hierarchy, fine_level: int) -> None:
    """The paper's FluxCorrection step for one coarse/fine boundary."""
    for child in hierarchy.level_grids(fine_level):
        if child.parent is not None:
            apply_flux_correction(child.parent, child)
