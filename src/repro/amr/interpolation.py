"""Parent -> child interpolation (prolongation).

Two uses in the hierarchy (paper Sec. 3.2):

* filling a newborn child grid's interior where no old same-level data
  exists, and
* setting child *ghost* boundary values each step, time-interpolated
  between the parent's old and new states.

The spatial operator is conservative piecewise-linear reconstruction:
each parent cell gets MC-limited slopes and the children sample the linear
profile, so the mean of the r^3 children equals the parent value exactly
(the property the projection step and the conservation tests rely on).
"""

from __future__ import annotations

import numpy as np


def _limited_slopes(q: np.ndarray, axis: int) -> np.ndarray:
    """MC-limited slope per cell along one axis (zero at the array edges)."""
    dq = np.zeros_like(q)
    sl_m = [slice(None)] * q.ndim
    sl_p = [slice(None)] * q.ndim
    sl_c = [slice(None)] * q.ndim
    sl_m[axis] = slice(0, -2)
    sl_c[axis] = slice(1, -1)
    sl_p[axis] = slice(2, None)
    dm = q[tuple(sl_c)] - q[tuple(sl_m)]
    dp = q[tuple(sl_p)] - q[tuple(sl_c)]
    centred = 0.5 * (dm + dp)
    lim = np.where(
        dm * dp > 0.0,
        np.sign(centred) * np.minimum(np.abs(centred), 2.0 * np.minimum(np.abs(dm), np.abs(dp))),
        0.0,
    )
    dq[tuple(sl_c)] = lim
    return dq


def prolong_linear(coarse: np.ndarray, r: int, positive: bool = False) -> np.ndarray:
    """Conservative linear prolongation of a 3-d array by factor r.

    Output shape is ``r * coarse.shape``.  Mean over each r^3 block equals
    the coarse value exactly.  Slopes at the array boundary are zero
    (callers pass a coarse array padded by one cell when they need
    full-order boundary behaviour).

    With ``positive=True`` the three axis slopes are jointly rescaled per
    parent cell so no child value can undershoot zero (each axis limiter is
    positivity-preserving alone, but the *sum* of three slope terms is not
    — densities and energies need this, signed fields must not use it).
    """
    if r == 1:
        return coarse.copy()
    # child-centre offsets within the parent cell, in parent-cell units:
    # (i + 0.5)/r - 0.5 for i in 0..r-1; they average to zero
    offsets = (np.arange(r) + 0.5) / r - 0.5
    max_off = 0.5 * (1.0 - 1.0 / r)
    slopes = [_limited_slopes(coarse, axis) for axis in range(3)]
    if positive:
        reach = max_off * (np.abs(slopes[0]) + np.abs(slopes[1]) + np.abs(slopes[2]))
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(reach > coarse, coarse / np.maximum(reach, 1e-300), 1.0)
        scale = np.clip(scale, 0.0, 1.0)
        slopes = [s * scale for s in slopes]
    out = np.repeat(np.repeat(np.repeat(coarse, r, 0), r, 1), r, 2)
    for axis in range(3):
        s_rep = np.repeat(np.repeat(np.repeat(slopes[axis], r, 0), r, 1), r, 2)
        off_axis = offsets[np.arange(out.shape[axis]) % r]
        bshape = [1, 1, 1]
        bshape[axis] = out.shape[axis]
        out = out + s_rep * off_axis.reshape(bshape)
    return out


def is_positive_field(name: str) -> bool:
    """Densities, energies and species partial densities are sign-definite;
    velocity components (and the potential) are not."""
    return name not in ("vx", "vy", "vz")


def prolong_region(coarse_padded: np.ndarray, r: int, fine_shape, fine_offset,
                   positive: bool = False) -> np.ndarray:
    """Prolong a padded coarse block and cut out a fine sub-region.

    ``coarse_padded`` includes a 1-cell rim so interior slopes are
    full-order; ``fine_offset`` is the fine-index offset of the requested
    region relative to the fine image of the padded block's corner.
    """
    fine_full = prolong_linear(coarse_padded, r, positive=positive)
    sl = tuple(
        slice(int(o), int(o) + int(s)) for o, s in zip(fine_offset, fine_shape)
    )
    return fine_full[sl]


def time_interpolate(old: np.ndarray, new: np.ndarray, frac: float) -> np.ndarray:
    """Linear interpolation in time between two parent states."""
    frac = float(np.clip(frac, 0.0, 1.0))
    return old * (1.0 - frac) + new * frac
