"""Parent -> child interpolation (prolongation).

Two uses in the hierarchy (paper Sec. 3.2):

* filling a newborn child grid's interior where no old same-level data
  exists, and
* setting child *ghost* boundary values each step, time-interpolated
  between the parent's old and new states.

The spatial operator is conservative piecewise-linear reconstruction:
each parent cell gets MC-limited slopes and the children sample the linear
profile, so the mean of the r^3 children equals the parent value exactly
(the property the projection step and the conservation tests rely on).
"""

from __future__ import annotations

import numpy as np


def _limited_slopes(q: np.ndarray, axis: int) -> np.ndarray:
    """MC-limited slope per cell along one axis (zero at the array edges)."""
    dq = np.zeros_like(q)
    sl_c = [slice(None)] * q.ndim
    sl_c[axis] = slice(1, -1)
    # one diff serves both one-sided differences: dm/dp are adjacent
    # slices of it (identical subtractions, computed once)
    d = np.diff(q, axis=axis)
    sl_m = [slice(None)] * q.ndim
    sl_p = [slice(None)] * q.ndim
    sl_m[axis] = slice(0, -1)
    sl_p[axis] = slice(1, None)
    dm = d[tuple(sl_m)]
    dp = d[tuple(sl_p)]
    centred = 0.5 * (dm + dp)
    lim = np.where(
        dm * dp > 0.0,
        np.sign(centred) * np.minimum(np.abs(centred), 2.0 * np.minimum(np.abs(dm), np.abs(dp))),
        0.0,
    )
    dq[tuple(sl_c)] = lim
    return dq


def prolong_linear(coarse: np.ndarray, r: int, positive: bool = False) -> np.ndarray:
    """Conservative linear prolongation of a 3-d array by factor r.

    Output shape is ``r * coarse.shape``.  Mean over each r^3 block equals
    the coarse value exactly.  Slopes at the array boundary are zero
    (callers pass a coarse array padded by one cell when they need
    full-order boundary behaviour).

    With ``positive=True`` the three axis slopes are jointly rescaled per
    parent cell so no child value can undershoot zero (each axis limiter is
    positivity-preserving alone, but the *sum* of three slope terms is not
    — densities and energies need this, signed fields must not use it).
    """
    if r == 1:
        return coarse.copy()
    # child-centre offsets within the parent cell, in parent-cell units:
    # (i + 0.5)/r - 0.5 for i in 0..r-1; they average to zero
    offsets = (np.arange(r) + 0.5) / r - 0.5
    max_off = 0.5 * (1.0 - 1.0 / r)
    slopes = [_limited_slopes(coarse, axis) for axis in range(3)]
    if positive:
        reach = max_off * (np.abs(slopes[0]) + np.abs(slopes[1]) + np.abs(slopes[2]))
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(reach > coarse, coarse / np.maximum(reach, 1e-300), 1.0)
        scale = np.clip(scale, 0.0, 1.0)
        slopes = [s * scale for s in slopes]
    out = np.repeat(np.repeat(np.repeat(coarse, r, 0), r, 1), r, 2)
    for axis in range(3):
        s_rep = np.repeat(np.repeat(np.repeat(slopes[axis], r, 0), r, 1), r, 2)
        off_axis = offsets[np.arange(out.shape[axis]) % r]
        bshape = [1, 1, 1]
        bshape[axis] = out.shape[axis]
        out = out + s_rep * off_axis.reshape(bshape)
    return out


def prolong_linear_batch(stack: np.ndarray, r: int,
                         n_positive: int = 0) -> np.ndarray:
    """Prolong a ``(F, nx, ny, nz)`` stack of fields in one pass.

    Bitwise identical to calling :func:`prolong_linear` on each of the F
    fields separately (every operation is elementwise, so batching along
    a leading axis cannot change any value) — but one set of numpy calls
    amortised over all fields, which is what makes small-region fills
    (the rebuild's ghost-shell refreshes) overhead-viable.  The first
    ``n_positive`` fields get the positivity rescale (callers sort
    sign-definite fields to the front), the rest keep raw slopes.
    """
    if r == 1:
        return stack.copy()
    offsets = (np.arange(r) + 0.5) / r - 0.5
    max_off = 0.5 * (1.0 - 1.0 / r)
    slopes = [_limited_slopes(stack, axis) for axis in (1, 2, 3)]
    if n_positive:
        pos = stack[:n_positive]
        reach = max_off * (np.abs(slopes[0][:n_positive])
                           + np.abs(slopes[1][:n_positive])
                           + np.abs(slopes[2][:n_positive]))
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(reach > pos, pos / np.maximum(reach, 1e-300), 1.0)
        scale = np.clip(scale, 0.0, 1.0)
        for s in slopes:
            s[:n_positive] *= scale
    out = np.repeat(np.repeat(np.repeat(stack, r, 1), r, 2), r, 3)
    for axis in (1, 2, 3):
        s_rep = np.repeat(
            np.repeat(np.repeat(slopes[axis - 1], r, 1), r, 2), r, 3
        )
        off_axis = offsets[np.arange(out.shape[axis]) % r]
        bshape = [1, 1, 1, 1]
        bshape[axis] = out.shape[axis]
        out = out + s_rep * off_axis.reshape(bshape)
    return out


def prolong_slopes(stack: np.ndarray, r: int,
                   n_positive: int = 0) -> list[np.ndarray]:
    """Per-axis MC-limited slopes for a ``(F, ...)`` stack, positivity
    rescale applied to the leading ``n_positive`` fields — the
    reconstruction state :func:`gather_prolong` samples.  Computing this
    once per coarse slab and serving many fine windows from it is what
    makes fragment-wise ghost-shell refills cheap."""
    slopes = [_limited_slopes(stack, axis) for axis in (1, 2, 3)]
    if n_positive:
        max_off = 0.5 * (1.0 - 1.0 / r)
        pos = stack[:n_positive]
        reach = max_off * (np.abs(slopes[0][:n_positive])
                           + np.abs(slopes[1][:n_positive])
                           + np.abs(slopes[2][:n_positive]))
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(reach > pos, pos / np.maximum(reach, 1e-300), 1.0)
        scale = np.clip(scale, 0.0, 1.0)
        for s in slopes:
            s[:n_positive] *= scale
    return slopes


def gather_prolong(stack: np.ndarray, slopes, r: int, fine_shape,
                   fine_offset) -> np.ndarray:
    """Sample one fine window of the linear reconstruction.

    Each fine cell gathers its parent's value and per-axis slopes from
    the precomputed ``(stack, slopes)`` pair (see :func:`prolong_slopes`)
    and applies the same three slope terms in the same order as
    :func:`prolong_linear_batch`, so the window is bitwise identical to
    prolonging the whole slab and slicing — without materialising the
    fine image of anything outside the window.
    """
    window = tuple(
        slice(int(o), int(o) + int(s)) for o, s in zip(fine_offset, fine_shape)
    )
    if r == 1:
        return stack[(slice(None),) + window].copy()
    offsets = (np.arange(r) + 0.5) / r - 0.5
    idx = []
    offs = []
    for a in range(3):
        f = np.arange(window[a].start, window[a].stop)
        idx.append(f // r)
        offs.append(offsets[f % r])
    ix = idx[0][:, None, None]
    iy = idx[1][None, :, None]
    iz = idx[2][None, None, :]
    out = stack[:, ix, iy, iz]
    out = out + slopes[0][:, ix, iy, iz] * offs[0].reshape(1, -1, 1, 1)
    out = out + slopes[1][:, ix, iy, iz] * offs[1].reshape(1, 1, -1, 1)
    out = out + slopes[2][:, ix, iy, iz] * offs[2].reshape(1, 1, 1, -1)
    return out


def gather_prolong_boxes(stack: np.ndarray, slopes, r: int, boxes):
    """Sample many fine windows of the linear reconstruction in one pass.

    ``boxes`` is a list of ``(offset, shape)`` windows in the fine image
    of the slab (the same coordinates :func:`gather_prolong` takes); the
    return value is a ``(F, N)`` array over all the windows' cells — each
    window raveled in C order, windows concatenated in list order.  Cell
    values are bitwise identical to per-window :func:`gather_prolong`
    calls (the gather and the three slope terms are elementwise; only
    the layout differs): one set of fancy-index reads amortised over
    every window is what keeps many-fragment ghost-shell refreshes
    call-bound no longer.
    """
    ny_s, nz_s = stack.shape[2], stack.shape[3]
    flat_idx = []
    offs_flat = [[], [], []]
    if r > 1:
        offsets = (np.arange(r) + 0.5) / r - 0.5
    for off, shape in boxes:
        ax_idx = []
        for a in range(3):
            f = np.arange(int(off[a]), int(off[a]) + int(shape[a]))
            ax_idx.append(f // r if r > 1 else f)
            if r > 1:
                offs_flat[a].append(
                    np.broadcast_to(
                        offsets[f % r].reshape(
                            [-1 if d == a else 1 for d in range(3)]
                        ),
                        tuple(int(s) for s in shape),
                    ).ravel()
                )
        # one flat index into the slab's raveled spatial dims per cell
        flat_idx.append(
            (ax_idx[0][:, None, None] * (ny_s * nz_s)
             + ax_idx[1][None, :, None] * nz_s
             + ax_idx[2][None, None, :]).ravel()
        )
    idx = np.concatenate(flat_idx)
    out = stack.reshape(stack.shape[0], -1)[:, idx]
    if r > 1:
        for a in range(3):
            out = out + (slopes[a].reshape(stack.shape[0], -1)[:, idx]
                         * np.concatenate(offs_flat[a]))
    return out


def prolong_region_batch(coarse_padded: np.ndarray, r: int, fine_shape,
                         fine_offset, n_positive: int = 0) -> np.ndarray:
    """Batched :func:`prolong_region`: ``(F, ...)`` in, ``(F, ...)`` out.

    One-shot convenience wrapper over :func:`prolong_slopes` +
    :func:`gather_prolong`; callers filling many windows from the same
    slab should hold the slopes and gather per window instead.
    """
    if r == 1:
        window = tuple(
            slice(int(o), int(o) + int(s))
            for o, s in zip(fine_offset, fine_shape)
        )
        return coarse_padded[(slice(None),) + window].copy()
    slopes = prolong_slopes(coarse_padded, r, n_positive=n_positive)
    return gather_prolong(coarse_padded, slopes, r, fine_shape, fine_offset)


def is_positive_field(name: str) -> bool:
    """Densities, energies and species partial densities are sign-definite;
    velocity components (and the potential) are not."""
    return name not in ("vx", "vy", "vz")


def prolong_region(coarse_padded: np.ndarray, r: int, fine_shape, fine_offset,
                   positive: bool = False) -> np.ndarray:
    """Prolong a padded coarse block and cut out a fine sub-region.

    ``coarse_padded`` includes a 1-cell rim so interior slopes are
    full-order; ``fine_offset`` is the fine-index offset of the requested
    region relative to the fine image of the padded block's corner.
    """
    fine_full = prolong_linear(coarse_padded, r, positive=positive)
    sl = tuple(
        slice(int(o), int(o) + int(s)) for o, s in zip(fine_offset, fine_shape)
    )
    return fine_full[sl]


def time_interpolate(old: np.ndarray, new: np.ndarray, frac: float) -> np.ndarray:
    """Linear interpolation in time between two parent states."""
    frac = float(np.clip(frac, 0.0, 1.0))
    return old * (1.0 - frac) + new * frac
