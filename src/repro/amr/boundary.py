"""SetBoundaryValues: ghost-zone filling across the hierarchy.

Paper Sec. 3.2.1 — the two-step procedure:

1. "All boundary values are first interpolated from the grid's parent" —
   conservative linear in space, linear in time between the parent's old
   and new states (the W-cycle ordering guarantees both exist).
2. "Grids which border other grids on the same level (i.e. siblings) use
   the solution from the sibling grid" — direct copy, overriding the
   parent interpolation wherever finer-resolution data exists.

The root grid uses the problem's predefined boundary (periodic here).
"""

from __future__ import annotations

import numpy as np

from repro.amr.interpolation import is_positive_field, prolong_region, time_interpolate
from repro.hydro.state import fill_ghosts_periodic


def _boundary_field_names(grid):
    names = [k for k, _ in grid.fields.array_items()]
    return names


def _time_fraction(child, parent) -> float:
    denom = float(parent.time - parent.old_time)
    if denom <= 0.0 or parent.old_fields is None:
        return 1.0
    frac = float(child.time - parent.old_time) / denom
    # clamp: a child's last subcycle can land a hair past the parent's new
    # time (the remaining*1e-12 dt floor), which must not extrapolate
    return min(max(frac, 0.0), 1.0)


def interpolate_from_parent(child, parent, include_phi: bool = True) -> None:
    """Fill the child's ghost zones (and, on first fill, its whole array)
    by conservative interpolation from the parent, time-centred."""
    r = child.refine_factor
    ng = child.nghost
    frac = _time_fraction(child, parent)

    # fine-index extent of the child array including ghosts (global indices)
    lo_f = child.start_index - ng
    hi_f = child.end_index + ng
    # parent block with a 1-cell rim for slopes
    lo_p = np.floor_divide(lo_f, r) - 1
    hi_p = -(-hi_f // r) + 1
    ng_p = parent.nghost
    p_sl = tuple(
        slice(int(lo_p[d] - parent.start_index[d] + ng_p),
              int(hi_p[d] - parent.start_index[d] + ng_p))
        for d in range(3)
    )
    for d in range(3):
        if p_sl[d].start < 0 or p_sl[d].stop > parent.shape_with_ghosts[d]:
            raise ValueError(
                f"child ghost region leaves parent array: {child} in {parent}"
            )
    fine_offset = lo_f - lo_p * r
    fine_shape = child.shape_with_ghosts

    interior = child.interior
    for name in _boundary_field_names(child):
        new_c = parent.fields[name][p_sl]
        if parent.old_fields is not None and frac < 1.0:
            coarse = time_interpolate(parent.old_fields[name][p_sl], new_c, frac)
        else:
            coarse = new_c
        fine = prolong_region(coarse, r, fine_shape, fine_offset,
                              positive=is_positive_field(name))
        saved = child.fields[name][interior].copy()
        child.fields[name][...] = fine
        child.fields[name][interior] = saved

    if include_phi and child.phi is not None and parent.phi is not None:
        coarse = parent.phi[p_sl]
        fine = prolong_region(coarse, r, fine_shape, fine_offset)
        saved = child.phi[interior].copy()
        child.phi[...] = fine
        child.phi[interior] = saved


def copy_from_siblings(grid, siblings, include_phi: bool = True) -> None:
    """Overwrite ghost cells with sibling interior data where they overlap."""
    ng = grid.nghost
    my_lo = grid.start_index - ng
    for other in siblings:
        ov = grid.ghost_overlap_with(other)
        if ov is None:
            continue
        lo, hi = ov
        my_sl = tuple(
            slice(int(lo[d] - my_lo[d]), int(hi[d] - my_lo[d])) for d in range(3)
        )
        o_sl = tuple(
            slice(int(lo[d] - other.start_index[d] + ng),
                  int(hi[d] - other.start_index[d] + ng))
            for d in range(3)
        )
        for name in _boundary_field_names(grid):
            grid.fields[name][my_sl] = other.fields[name][o_sl]
        if include_phi and grid.phi is not None and other.phi is not None:
            grid.phi[my_sl] = other.phi[o_sl]


def copy_from_sibling_links(grid, links, include_phi: bool = True) -> None:
    """Like :func:`copy_from_siblings` but from precomputed SiblingLinks."""
    names = _boundary_field_names(grid)
    for link in links:
        other = link.sibling
        for name in names:
            grid.fields[name][link.ghost_dst] = other.fields[name][link.ghost_src]
        if include_phi and grid.phi is not None and other.phi is not None:
            grid.phi[link.ghost_dst] = other.phi[link.ghost_src]


def set_boundary_values(hierarchy, level: int, include_phi: bool = True) -> None:
    """The paper's SetBoundaryValues(all grids) for one level."""
    grids = hierarchy.level_grids(level)
    if level == 0:
        for g in grids:
            fill_ghosts_periodic(g.fields, g.nghost)
            if include_phi and g.phi is not None:
                _wrap_phi(g)
        return
    for g in grids:
        interpolate_from_parent(g, g.parent, include_phi)
    smap = hierarchy.sibling_map(level)
    for g in grids:
        copy_from_sibling_links(g, smap.get(g.grid_id, ()), include_phi)


def _wrap_phi(grid) -> None:
    ng = grid.nghost
    arr = grid.phi
    for axis in range(3):
        n = arr.shape[axis]
        idx = [slice(None)] * 3
        src = [slice(None)] * 3
        idx[axis] = slice(0, ng)
        src[axis] = slice(n - 2 * ng, n - ng)
        arr[tuple(idx)] = arr[tuple(src)]
        idx[axis] = slice(n - ng, n)
        src[axis] = slice(ng, 2 * ng)
        arr[tuple(idx)] = arr[tuple(src)]
