"""The Grid: SAMR's basic building block.

"An object oriented approach provides a number of benefits.  The first is
encapsulation: a grid represents the basic building block of AMR."
(paper Sec. 3.4)

Geometry is stored as integer cell indices at the grid's own level
resolution (``start_index`` .. ``start_index + dims``), which is exact at
any depth — one of the two legs of the paper's extended-precision
discipline (the other, :class:`~repro.precision.position.PositionDD`, covers
non-dyadic absolute positions: particles and time).  Edges in float64 are
exact whenever the root dims and refinement factor are powers of two.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.state import META_KEY, FieldSet, make_fields
from repro.precision.doubledouble import DoubleDouble
from repro.precision.position import PositionDD


class Grid:
    """One rectangular mesh patch in the hierarchy.

    Parameters
    ----------
    level:
        Hierarchy depth (0 = root).
    start_index:
        Integer cell coordinates of the grid's lower corner, in units of
        this level's cell width.
    dims:
        Interior cells per dimension.
    n_root:
        Root-grid cells per dimension (sets the absolute cell width).
    refine_factor:
        The hierarchy's integer refinement factor r.
    nghost:
        Ghost-zone width carried by the field arrays.
    """

    __slots__ = (
        "level", "start_index", "dims", "n_root", "refine_factor", "nghost",
        "fields", "phi", "time", "old_fields", "old_time", "parent", "children",
        "flux_accumulator", "last_fluxes", "proc", "grid_id",
    )

    _next_id = 0

    def __init__(self, level: int, start_index, dims, n_root: int,
                 refine_factor: int = 2, nghost: int = 3):
        self.level = int(level)
        self.start_index = np.array(start_index, dtype=np.int64)
        self.dims = np.array(dims, dtype=np.int64)
        if np.any(self.dims <= 0):
            raise ValueError("grid dims must be positive")
        self.n_root = int(n_root)
        self.refine_factor = int(refine_factor)
        self.nghost = int(nghost)
        self.fields: FieldSet | None = None
        self.phi: np.ndarray | None = None
        self.time = DoubleDouble(0.0)
        self.old_fields: FieldSet | None = None
        self.old_time = DoubleDouble(0.0)
        self.parent: Grid | None = None
        self.children: list[Grid] = []
        self.flux_accumulator: dict | None = None
        self.last_fluxes = None
        self.proc = 0  # owning rank in the parallel layer
        self.grid_id = Grid._next_id
        Grid._next_id += 1

    # ------------------------------------------------------------- geometry
    @property
    def cells_per_dim_at_level(self) -> int:
        """Total level resolution across the box."""
        return self.n_root * self.refine_factor**self.level

    @property
    def dx(self) -> float:
        """Comoving cell width in box units (exact for power-of-two setups)."""
        return 1.0 / self.cells_per_dim_at_level

    @property
    def end_index(self) -> np.ndarray:
        return self.start_index + self.dims

    @property
    def left_edge(self) -> np.ndarray:
        return self.start_index * self.dx

    @property
    def right_edge(self) -> np.ndarray:
        return self.end_index * self.dx

    @property
    def left_edge_dd(self) -> PositionDD:
        """EPA left edge (needed when dx is not a dyadic rational)."""
        hi = self.start_index.astype(float) * self.dx
        # correction term: exact product via splitting start*dx - hi
        lo = (self.start_index.astype(float) * self.dx - hi)
        return PositionDD(hi, lo)

    @property
    def shape_with_ghosts(self) -> tuple:
        return tuple(int(d) + 2 * self.nghost for d in self.dims)

    @property
    def interior(self) -> tuple:
        ng = self.nghost
        return tuple(slice(ng, ng + int(d)) for d in self.dims)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims))

    def cell_centres(self):
        """1-d arrays of interior cell-centre coordinates per dimension."""
        return [
            (self.start_index[d] + np.arange(self.dims[d]) + 0.5) * self.dx
            for d in range(3)
        ]

    # --------------------------------------------------------- relationships
    def overlap_with(self, other: "Grid"):
        """Integer intersection with a same-level grid, or None.

        Returns ``(lo, hi)`` in this level's index space.
        """
        if other.level != self.level:
            raise ValueError("overlap is defined between same-level grids")
        lo = np.maximum(self.start_index, other.start_index)
        hi = np.minimum(self.end_index, other.end_index)
        if np.any(lo >= hi):
            return None
        return lo, hi

    def ghost_overlap_with(self, other: "Grid"):
        """Intersection of *my ghost-expanded region* with other's interior."""
        if other.level != self.level:
            raise ValueError("sibling relations are same-level only")
        lo = np.maximum(self.start_index - self.nghost, other.start_index)
        hi = np.minimum(self.end_index + self.nghost, other.end_index)
        if np.any(lo >= hi):
            return None
        return lo, hi

    def contains_index_region(self, lo, hi) -> bool:
        """Is [lo, hi) (this level's indices) inside my interior?"""
        return bool(np.all(lo >= self.start_index) and np.all(hi <= self.end_index))

    def parent_index_region(self):
        """My footprint in parent-level indices (I am always aligned)."""
        r = self.refine_factor
        return self.start_index // r, -(-self.end_index // r)

    def is_nested_in(self, parent: "Grid") -> bool:
        """Full containment within a coarser grid (the paper's requirement)."""
        if parent.level != self.level - 1:
            return False
        lo, hi = self.parent_index_region()
        return parent.contains_index_region(lo, hi)

    def contains_point(self, xyz) -> np.ndarray:
        """Vectorised point-in-interior test for float positions (n,3)."""
        x = np.atleast_2d(np.asarray(xyz, dtype=float))
        return np.all((x >= self.left_edge) & (x < self.right_edge), axis=1)

    # --------------------------------------------------------------- storage
    def allocate(self, advected=(), pool=None) -> None:
        """Allocate field arrays (uniform trivial state).

        ``pool`` (a :class:`repro.amr.pool.FieldArrayPool`) sources the
        buffers from the rebuild free-list instead of the allocator; the
        resulting state is bitwise identical either way.
        """
        if pool is None:
            self.fields = make_fields(self.shape_with_ghosts, advected=advected)
            self.phi = np.zeros(self.shape_with_ghosts)
        else:
            self.fields = make_fields(self.shape_with_ghosts, advected=advected,
                                      alloc=pool.acquire)
            self.phi = pool.acquire(self.shape_with_ghosts)
            self.phi[...] = 0.0

    def field_view(self, name: str) -> np.ndarray:
        """Interior view of a field."""
        return self.fields[name][self.interior]

    def memory_bytes(self) -> int:
        if self.fields is None:
            return 0
        total = sum(arr.nbytes for k, arr in self.fields.array_items())
        if self.phi is not None:
            total += self.phi.nbytes
        return total

    def save_old_state(self) -> None:
        """Snapshot fields+time for time-interpolated child boundaries.

        The previous snapshot's buffers are reused in place when the field
        layout is unchanged (every step after the first), so the per-step
        snapshot costs copies, not allocations — the same alloc/free
        traffic the rebuild pool removes, at the step cadence.
        """
        old = self.old_fields
        if old is not None and {k for k, _ in old.array_items()} == {
            k for k, _ in self.fields.array_items()
        }:
            for name, arr in self.fields.array_items():
                dst = old[name]
                if dst.shape != arr.shape:
                    break
                np.copyto(dst, arr)
            else:
                old[META_KEY] = list(self.fields.advected)
                self.old_time = DoubleDouble(self.time)
                return
        self.old_fields = self.fields.deep_copy()
        self.old_time = DoubleDouble(self.time)

    def __repr__(self):
        return (
            f"Grid(id={self.grid_id}, level={self.level}, "
            f"start={self.start_index.tolist()}, dims={self.dims.tolist()})"
        )
