"""Cached hierarchy topology: per-level sibling maps with precomputed slices.

The paper's hero run carries >8000 subgrids across 34 levels, and both the
boundary fill (Sec. 3.2.1 step 2) and the gravity sibling iteration
(Sec. 3.3) need, for every grid, the list of same-level grids it touches.
Re-deriving that list per call is an O(N^2) scan with full overlap tests —
exactly the bookkeeping Enzo's driver amortises with per-level boundary
lists rebuilt only when the hierarchy changes (Bryan et al. 2014, Sec. 3.8;
O'Shea et al. 2004).

This module builds those lists once per *topology epoch* (a counter the
:class:`~repro.amr.hierarchy.Hierarchy` bumps in ``add_grid`` /
``remove_level_grids``), and precomputes every slice pair the consumers
need, so the hot paths reduce to plain array copies:

* ``ghost_dst`` / ``ghost_src`` — my ghost-expanded region vs. the
  sibling's interior, in each array's local (ghost-padded) indices; used by
  :func:`repro.amr.boundary.copy_from_sibling_links`.
* ``rim_dst`` / ``rim_src`` — my 1-cell Dirichlet rim (the dims+2 array the
  multigrid solver takes) vs. the sibling's interior; used by the gravity
  sibling exchange.  ``None`` when the grids are within ghost range but do
  not touch the rim.

Grid geometry is immutable after construction (integer ``start_index`` /
``dims``), so a link never goes stale — only membership of a level does,
and that is what the epoch tracks.
"""

from __future__ import annotations

import numpy as np

#: rows per block in the all-pairs overlap test; bounds the broadcast
#: temporaries to O(block * N) so a many-thousand-grid level stays in cache
#: instead of materialising an N x N x 3 array.
_PAIR_BLOCK = 256


class SiblingLink:
    """One precomputed grid -> sibling relationship (slices ready to use)."""

    __slots__ = ("sibling", "ghost_dst", "ghost_src", "rim_dst", "rim_src")

    def __init__(self, sibling, ghost_dst, ghost_src, rim_dst, rim_src):
        self.sibling = sibling
        self.ghost_dst = ghost_dst
        self.ghost_src = ghost_src
        self.rim_dst = rim_dst
        self.rim_src = rim_src

    def __repr__(self):
        return f"SiblingLink(to={self.sibling!r})"


def build_sibling_map(grids, nghost: int) -> dict:
    """``grid_id -> list[SiblingLink]`` for one level.

    The pair test is vectorised: all starts/ends are stacked and the
    ghost-expanded overlap condition evaluated by broadcasting, block by
    block; slices are then materialised only for the touching pairs.
    """
    out = {g.grid_id: [] for g in grids}
    n = len(grids)
    if n < 2:
        return out
    starts = np.stack([g.start_index for g in grids])
    ends = np.stack([g.end_index for g in grids])
    for row0 in range(0, n, _PAIR_BLOCK):
        row1 = min(row0 + _PAIR_BLOCK, n)
        lo = np.maximum(starts[row0:row1, None, :] - nghost, starts[None, :, :])
        hi = np.minimum(ends[row0:row1, None, :] + nghost, ends[None, :, :])
        touch = np.all(lo < hi, axis=2)
        for d in range(row0, row1):
            touch[d - row0, d] = False  # a grid is not its own sibling
        for i, j in zip(*np.nonzero(touch)):
            g, o = grids[row0 + i], grids[j]
            out[g.grid_id].append(
                _make_link(g, o, lo[i, j], hi[i, j], nghost)
            )
    return out


def _make_link(g, o, lo, hi, ng: int) -> SiblingLink:
    my_lo = g.start_index - ng
    ghost_dst = tuple(
        slice(int(lo[d] - my_lo[d]), int(hi[d] - my_lo[d])) for d in range(3)
    )
    ghost_src = tuple(
        slice(int(lo[d] - o.start_index[d] + ng), int(hi[d] - o.start_index[d] + ng))
        for d in range(3)
    )
    rl = np.maximum(g.start_index - 1, o.start_index)
    rh = np.minimum(g.end_index + 1, o.end_index)
    rim_dst = rim_src = None
    if np.all(rl < rh):
        rim_dst = tuple(
            slice(int(rl[d] - g.start_index[d] + 1), int(rh[d] - g.start_index[d] + 1))
            for d in range(3)
        )
        rim_src = tuple(
            slice(int(rl[d] - o.start_index[d] + ng), int(rh[d] - o.start_index[d] + ng))
            for d in range(3)
        )
    return SiblingLink(o, ghost_dst, ghost_src, rim_dst, rim_src)
