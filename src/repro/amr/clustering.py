"""Berger–Rigoutsos point clustering ("an edge-detection algorithm from
machine vision studies", paper Sec. 3.2.2).

Given a boolean flag field, produce a small set of rectangular boxes that
(a) cover every flagged cell, (b) waste few unflagged cells (efficiency
threshold), using the classic signature / zero-gap / Laplacian-inflection
splitting recursion of Berger & Rigoutsos (1991).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """Half-open integer box [lo, hi) in the flag array's index space."""

    lo: tuple
    hi: tuple

    @property
    def dims(self):
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims))

    def shifted(self, offset) -> "Box":
        off = tuple(int(o) for o in offset)
        return Box(
            tuple(l + o for l, o in zip(self.lo, off)),
            tuple(h + o for h, o in zip(self.hi, off)),
        )


def _efficiency(flags: np.ndarray) -> float:
    return float(flags.sum()) / flags.size


def _bounding_box(flags: np.ndarray):
    """Tight bounding box of flagged cells, or None if none are set."""
    if not flags.any():
        return None
    lo, hi = [], []
    for axis in range(flags.ndim):
        proj = flags.any(axis=tuple(a for a in range(flags.ndim) if a != axis))
        idx = np.nonzero(proj)[0]
        lo.append(int(idx[0]))
        hi.append(int(idx[-1]) + 1)
    return tuple(lo), tuple(hi)


def _signatures(flags: np.ndarray):
    """Per-axis signature: count of flagged cells in each plane."""
    return [
        flags.sum(axis=tuple(a for a in range(flags.ndim) if a != axis))
        for axis in range(flags.ndim)
    ]


def _find_split(flags: np.ndarray, min_size: int):
    """Choose (axis, position) to split, or None.

    Preference order (Berger-Rigoutsos): a zero in a signature ("hole"),
    then the strongest zero-crossing of the signature's second derivative
    ("edge"), else the midpoint of the longest axis.
    """
    sigs = _signatures(flags)
    shape = flags.shape

    # 1. holes
    best = None
    for axis, sig in enumerate(sigs):
        zeros = np.nonzero(sig == 0)[0]
        zeros = zeros[(zeros >= min_size) & (zeros <= shape[axis] - min_size)]
        if len(zeros):
            # the hole closest to the centre gives the most balanced split
            pos = zeros[np.argmin(np.abs(zeros - shape[axis] / 2))]
            cand = (axis, int(pos))
            if best is None:
                best = cand
    if best is not None:
        return best

    # 2. inflection: max |delta(second derivative)| across a zero crossing
    best_val = 0
    best = None
    for axis, sig in enumerate(sigs):
        if shape[axis] < 2 * min_size + 2:
            continue
        lap = np.zeros(len(sig), dtype=np.int64)
        lap[1:-1] = sig[2:] - 2 * sig[1:-1] + sig[:-2]
        for i in range(min_size, shape[axis] - min_size):
            if lap[i - 1] * lap[i] < 0:
                val = abs(lap[i] - lap[i - 1])
                if val > best_val:
                    best_val = val
                    best = (axis, i)
    if best is not None:
        return best

    # 3. bisect the longest splittable axis
    axis = int(np.argmax(shape))
    if shape[axis] >= 2 * min_size:
        return axis, shape[axis] // 2
    return None


def cluster_flagged_cells(
    flags: np.ndarray,
    efficiency: float = 0.7,
    min_size: int = 2,
    max_boxes: int = 10000,
) -> list[Box]:
    """Cover all flagged cells with rectangles of at least ``efficiency``.

    Returns boxes in the index space of ``flags``.  The recursion accepts a
    box when its flagged fraction reaches the efficiency target, when it is
    already minimal, or when no admissible split exists.
    """
    flags = np.asarray(flags, dtype=bool)
    out: list[Box] = []
    bb = _bounding_box(flags)
    if bb is None:
        return out
    stack = [bb]
    while stack and len(out) < max_boxes:
        lo, hi = stack.pop()
        sub = flags[tuple(slice(l, h) for l, h in zip(lo, hi))]
        tight = _bounding_box(sub)
        if tight is None:
            continue
        # shrink to the tight bounding box (in global indices)
        hi = tuple(l + t for l, t in zip(lo, tight[1]))
        lo = tuple(l + t for l, t in zip(lo, tight[0]))
        sub = flags[tuple(slice(l, h) for l, h in zip(lo, hi))]
        eff = _efficiency(sub)
        if eff >= efficiency or all(s <= min_size for s in sub.shape):
            out.append(Box(lo, hi))
            continue
        split = _find_split(sub, min_size)
        if split is None:
            out.append(Box(lo, hi))
            continue
        axis, pos = split
        lo_a = list(lo)
        hi_a = list(hi)
        hi_a[axis] = lo[axis] + pos
        lo_b = list(lo)
        lo_b[axis] = lo[axis] + pos
        stack.append((tuple(lo_a), tuple(hi_a)))
        stack.append((tuple(lo_b), tuple(hi)))
    return out


def coverage_check(flags: np.ndarray, boxes: list[Box]) -> bool:
    """True iff every flagged cell lies inside some box (test helper)."""
    covered = np.zeros_like(flags, dtype=bool)
    for b in boxes:
        covered[tuple(slice(l, h) for l, h in zip(b.lo, b.hi))] = True
    return bool(np.all(covered | ~flags))
