"""Refinement criteria (paper Sec. 3.2.3, extended per Enzo §4).

The paper's three tests, exactly as described:

1. **Baryon mass** — a cell holding more than M* of gas is refined ("since
   gravitational collapse causes mass to flow into a small number of
   cells ... designed to preserve a given mass resolution").
2. **Dark-matter mass** — the same for the deposited particle density.
3. **Jeans length** — "we require that the cell width be less than some
   fraction of the local Jeans length (dx < L_J / N_J)", N_J varied 4..64
   in the paper's robustness experiments.

Plus two flow-feature criteria from the Enzo method paper's battery
(arXiv 1307.2265 §3.4), needed by the validation workloads:

4. **Shock detection** — a cell sits inside a shock when the centred
   relative pressure jump exceeds ``shock_threshold`` *and* the flow
   converges across it (u_{i-1} > u_{i+1}), tested per axis.  Pressure is
   proxied by rho * e_internal, so the adiabatic index cancels from the
   relative jump.
5. **Vorticity magnitude** — flag where |curl v| * dx exceeds
   ``vorticity_threshold`` * c_s: an unresolved shear sheet has
   |omega| dx ~ the velocity jump across one cell, while any resolved
   smooth flow (e.g. solid-body rotation) has |omega| dx -> 0 with
   resolution, so the criterion converges away instead of flagging
   everything forever.

Mass thresholds are specified at the root level and optionally scaled per
level by ``refine_by**(level * exponent)`` (Enzo's
MinimumMassForRefinementLevelExponent; exponent<0 makes refinement
super-Lagrangian).

Every criterion is evaluated on *interior* cells only, producing masks of
identical interior shape that are OR-ed together; ghost zones contribute
stencil neighbours (shock/vorticity reach one cell out) but are never
flagged themselves.  ``last_flag_counts`` records the per-criterion cell
counts of the most recent :meth:`flag_cells` call for rebuild telemetry.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const


def _shifted(interior, axis: int, delta: int):
    """The interior slice tuple displaced by ``delta`` cells along ``axis``.

    Valid for |delta| <= nghost: the displaced window stays inside the
    ghost-padded array, so neighbour lookups never wrap or clip.
    """
    out = list(interior)
    s = out[axis]
    out[axis] = slice(s.start + delta, (s.stop or 0) + delta)
    return tuple(out)


class RefinementCriteria:
    """Configuration + evaluation of the flagging tests on one grid.

    Parameters: ``gas_mass_threshold`` / ``dm_mass_threshold`` (code mass
    per cell, at level 0), ``jeans_number`` (N_J; None disables),
    ``level_exponent`` (per-level threshold scaling), an optional simple
    ``overdensity_threshold``, ``shock_threshold`` (relative pressure
    jump, Enzo uses ~0.33), ``vorticity_threshold`` (|omega| dx / c_s),
    the unit system + scale factor the Jeans test needs, ``gamma`` for the
    sound speed, and ``max_level`` as the depth cap.
    """

    def __init__(self, gas_mass_threshold=None, dm_mass_threshold=None,
                 jeans_number=None, level_exponent=0.0,
                 overdensity_threshold=None, units=None, a=1.0, max_level=None,
                 shock_threshold=None, vorticity_threshold=None,
                 gamma=const.GAMMA):
        self.gas_mass_threshold = gas_mass_threshold
        self.dm_mass_threshold = dm_mass_threshold
        self.jeans_number = jeans_number
        self.level_exponent = level_exponent
        self.overdensity_threshold = overdensity_threshold
        self.units = units
        self.a = a
        self.max_level = max_level
        self.shock_threshold = shock_threshold
        self.vorticity_threshold = vorticity_threshold
        self.gamma = float(gamma)
        #: per-criterion interior cell counts from the last flag_cells call
        self.last_flag_counts: dict[str, int] = {}

    def _mass_threshold(self, base: float, grid) -> float:
        scale = grid.refine_factor ** (grid.level * self.level_exponent)
        return base * scale

    # ------------------------------------------------------- flow criteria
    def _shock_flags(self, grid) -> np.ndarray:
        """Centred pressure-jump + convergence test, OR-ed over axes."""
        fields = grid.fields
        q = fields["density"] * fields["internal"]  # p / (gamma - 1)
        interior = grid.interior
        flags = np.zeros(q[interior].shape, dtype=bool)
        vnames = ("vx", "vy", "vz")
        for axis in range(3):
            qp = q[_shifted(interior, axis, +1)]
            qm = q[_shifted(interior, axis, -1)]
            jump = np.abs(qp - qm) / np.maximum(np.minimum(qp, qm), 1e-300)
            v = fields[vnames[axis]]
            converging = (
                v[_shifted(interior, axis, -1)]
                - v[_shifted(interior, axis, +1)]
            ) > 0.0
            flags |= (jump > self.shock_threshold) & converging
        return flags

    def _vorticity_flags(self, grid) -> np.ndarray:
        """|curl v| dx > threshold * c_s on interior cells."""
        fields = grid.fields
        interior = grid.interior

        def d(name: str, axis: int) -> np.ndarray:
            arr = fields[name]
            return 0.5 * (
                arr[_shifted(interior, axis, +1)]
                - arr[_shifted(interior, axis, -1)]
            )  # derivative * dx (the dx cancels into |omega| dx)

        wx = d("vz", 1) - d("vy", 2)
        wy = d("vx", 2) - d("vz", 0)
        wz = d("vy", 0) - d("vx", 1)
        omega_dx_sq = wx**2 + wy**2 + wz**2
        cs_sq = self.gamma * (self.gamma - 1.0) * fields["internal"][interior]
        return omega_dx_sq > self.vorticity_threshold**2 * np.maximum(
            cs_sq, 1e-300
        )

    # ------------------------------------------------------------ flagging
    def flag_cells(self, grid, dm_density: np.ndarray | None = None) -> np.ndarray:
        """Boolean interior-shaped flag field for one grid.

        ``dm_density`` is the deposited dark-matter density on the grid
        interior (same shape), or None when there are no particles.
        """
        if self.max_level is not None and grid.level >= self.max_level:
            self.last_flag_counts = {}
            return np.zeros(tuple(int(d) for d in grid.dims), dtype=bool)
        interior = grid.interior
        rho = grid.fields["density"][interior]
        flags = np.zeros(rho.shape, dtype=bool)
        counts: dict[str, int] = {}

        def combine(name: str, mask: np.ndarray) -> None:
            nonlocal flags
            if mask.shape != flags.shape:
                raise ValueError(
                    f"criterion {name!r} produced shape {mask.shape}, "
                    f"expected interior shape {flags.shape}"
                )
            counts[name] = int(np.count_nonzero(mask))
            flags |= mask

        if self.gas_mass_threshold is not None:
            thresh = self._mass_threshold(self.gas_mass_threshold, grid)
            combine("gas_mass", rho * grid.dx**3 > thresh)

        if self.dm_mass_threshold is not None and dm_density is not None:
            thresh = self._mass_threshold(self.dm_mass_threshold, grid)
            combine("dm_mass", dm_density * grid.dx**3 > thresh)

        if self.jeans_number is not None and self.units is not None:
            e = grid.fields["internal"][interior]
            lj = self.units.jeans_length_code(rho, e, self.a)
            combine("jeans", grid.dx > lj / self.jeans_number)

        if self.overdensity_threshold is not None:
            combine("overdensity", rho > self.overdensity_threshold)

        if self.shock_threshold is not None:
            combine("shock", self._shock_flags(grid))

        if self.vorticity_threshold is not None:
            combine("vorticity", self._vorticity_flags(grid))

        self.last_flag_counts = counts
        return flags
