"""Refinement criteria (paper Sec. 3.2.3).

Three tests, exactly as described:

1. **Baryon mass** — a cell holding more than M* of gas is refined ("since
   gravitational collapse causes mass to flow into a small number of
   cells ... designed to preserve a given mass resolution").
2. **Dark-matter mass** — the same for the deposited particle density.
3. **Jeans length** — "we require that the cell width be less than some
   fraction of the local Jeans length (dx < L_J / N_J)", N_J varied 4..64
   in the paper's robustness experiments.

Mass thresholds are specified at the root level and optionally scaled per
level by ``refine_by**(level * exponent)`` (Enzo's
MinimumMassForRefinementLevelExponent; exponent<0 makes refinement
super-Lagrangian).
"""

from __future__ import annotations

import numpy as np


class RefinementCriteria:
    """Configuration + evaluation of the flagging tests on one grid.

    Parameters: ``gas_mass_threshold`` / ``dm_mass_threshold`` (code mass
    per cell, at level 0), ``jeans_number`` (N_J; None disables),
    ``level_exponent`` (per-level threshold scaling), an optional simple
    ``overdensity_threshold``, the unit system + scale factor the Jeans
    test needs, and ``max_level`` as the depth cap.
    """

    def __init__(self, gas_mass_threshold=None, dm_mass_threshold=None,
                 jeans_number=None, level_exponent=0.0,
                 overdensity_threshold=None, units=None, a=1.0, max_level=None):
        self.gas_mass_threshold = gas_mass_threshold
        self.dm_mass_threshold = dm_mass_threshold
        self.jeans_number = jeans_number
        self.level_exponent = level_exponent
        self.overdensity_threshold = overdensity_threshold
        self.units = units
        self.a = a
        self.max_level = max_level

    def _mass_threshold(self, base: float, grid) -> float:
        scale = grid.refine_factor ** (grid.level * self.level_exponent)
        return base * scale

    def flag_cells(self, grid, dm_density: np.ndarray | None = None) -> np.ndarray:
        """Boolean interior-shaped flag field for one grid.

        ``dm_density`` is the deposited dark-matter density on the grid
        interior (same shape), or None when there are no particles.
        """
        if self.max_level is not None and grid.level >= self.max_level:
            return np.zeros(tuple(int(d) for d in grid.dims), dtype=bool)
        interior = grid.interior
        rho = grid.fields["density"][interior]
        flags = np.zeros(rho.shape, dtype=bool)
        cell_volume = grid.dx**3

        if self.gas_mass_threshold is not None:
            thresh = self._mass_threshold(self.gas_mass_threshold, grid)
            flags |= rho * cell_volume > thresh

        if self.dm_mass_threshold is not None and dm_density is not None:
            thresh = self._mass_threshold(self.dm_mass_threshold, grid)
            flags |= dm_density * cell_volume > thresh

        if self.jeans_number is not None and self.units is not None:
            e = grid.fields["internal"][interior]
            lj = self.units.jeans_length_code(rho, e, self.a)
            flags |= grid.dx > lj / self.jeans_number

        if self.overdensity_threshold is not None:
            flags |= rho > self.overdensity_threshold

        return flags
