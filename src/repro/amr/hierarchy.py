"""The grid hierarchy: a tree of Grids plus the global particle store.

"Our parallel implementation places no limit on the depth or complexity of
the adaptive grid hierarchy." (paper abstract) — the container below is a
list-of-levels tree with no depth cap; practical depth is set by the
refinement criteria and the run budget, not the data structure.

Dark-matter particles live in one global :class:`ParticleSet` (the
functional equivalent of Enzo's per-grid ownership without the migration
bookkeeping); each level's solvers select the particles in their region on
demand, and each particle is *advanced* by the finest level containing it.
"""

from __future__ import annotations

import contextlib
import hashlib

import numpy as np

from repro.amr.grid import Grid
from repro.amr.pool import FieldArrayPool
from repro.amr.topology import build_sibling_map
from repro.hydro.state import FieldSet
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble


class Hierarchy:
    """Container and bookkeeping for the SAMR grid tree.

    Topology queries (sibling lists, per-particle finest levels) are served
    from caches keyed by ``topology_epoch``, a counter bumped by every
    structural mutation (``add_grid`` / ``remove_level_grids``), so the hot
    paths never re-derive overlaps while the tree is unchanged and rebuilds
    invalidate automatically.  Set ``topology_cache_enabled = False`` to
    force a rebuild on every query (the uncached baseline the hot-path
    benchmark compares against).
    """

    def __init__(self, n_root: int, refine_factor: int = 2, nghost: int = 3,
                 advected=()):
        self.n_root = int(n_root)
        self.refine_factor = int(refine_factor)
        self.nghost = int(nghost)
        self.advected = list(advected)
        root = Grid(0, (0, 0, 0), (n_root,) * 3, n_root, refine_factor, nghost)
        root.allocate(self.advected)
        self.levels: list[list[Grid]] = [[root]]
        #: bumped on every structural change; cache keys derive from it
        self.topology_epoch = 0
        self.topology_cache_enabled = True
        self.timers = None  # optional ComponentTimers ("topology" section)
        self._sibling_maps: dict[int, tuple[int, dict]] = {}
        self._particle_epoch = 0
        self._plevel_cache: tuple[tuple, np.ndarray] | None = None
        #: recycled field-array buffers (repro.amr.pool); rebuild-created
        #: grids draw from it, retired grids release into it
        self.pool = FieldArrayPool()
        #: per-parent flag signatures from the last rebuild (grid_id ->
        #: digest); the incremental rebuild reuses a parent's subgrids when
        #: its signature is unchanged.  Grid ids are globally unique, so a
        #: stale entry can never match a new grid; entries are pruned when
        #: their grid is destroyed and invalidated by out-of-rebuild
        #: structural mutations (epoch-awareness without storing the epoch).
        self._flag_signatures: dict[int, bytes] = {}
        self._in_rebuild = False
        #: summary dict of the most recent rebuild_hierarchy call
        #: (created/reused/destroyed/parents/reuse_rate); telemetry reads it
        self.last_rebuild_stats: dict | None = None
        # bulk-update (single-epoch-bump) bookkeeping
        self._bulk_depth = 0
        self._bulk_mutations = 0
        self._bulk_membership: list[tuple] | None = None
        self._bulk_epoch = 0
        self.particles = ParticleSet.empty()
        # counters the performance layer reads (paper Fig. 5 discussion);
        # reused grids are counted separately so created/destroyed keep
        # meaning "allocator traffic"
        self.grids_created = 1
        self.grids_destroyed = 0
        self.grids_reused = 0

    # ------------------------------------------------------------- accessors
    @property
    def particles(self) -> ParticleSet:
        return self._particles

    @particles.setter
    def particles(self, parts: ParticleSet) -> None:
        self._particles = parts
        self.notify_particles_moved()

    def notify_particles_moved(self) -> None:
        """Invalidate the particle-level cache after positions change."""
        self._particle_epoch += 1

    @property
    def root(self) -> Grid:
        return self.levels[0][0]

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    def level_grids(self, level: int) -> list[Grid]:
        if level < 0 or level >= len(self.levels):
            return []
        return self.levels[level]

    def all_grids(self):
        for lvl in self.levels:
            yield from lvl

    @property
    def n_grids(self) -> int:
        return sum(len(l) for l in self.levels)

    def grids_per_level(self) -> list[int]:
        return [len(l) for l in self.levels]

    # ------------------------------------------------------------- mutation
    def add_grid(self, grid: Grid, parent: Grid, *, reused: bool = False) -> None:
        """Insert a grid under its parent; allocates storage if needed.

        ``reused=True`` (the incremental rebuild re-attaching a surviving
        grid) books the insert under ``grids_reused`` instead of
        ``grids_created`` — the grid's buffers never left the heap, so it
        is not allocator traffic.
        """
        if not grid.is_nested_in(parent):
            raise ValueError(f"{grid} is not fully nested in {parent}")
        while len(self.levels) <= grid.level:
            self.levels.append([])
        grid.parent = parent
        parent.children.append(grid)
        self.levels[grid.level].append(grid)
        if grid.fields is None:
            grid.allocate(self.advected, pool=self.pool)
        grid.time = DoubleDouble(parent.time)
        if reused:
            self.grids_reused += 1
        else:
            self.grids_created += 1
        if not self._in_rebuild:
            # the parent's child set changed outside the rebuild's own
            # bookkeeping: its cached flag signature no longer describes
            # its subgrids, so the next incremental rebuild must re-cluster
            self._flag_signatures.pop(parent.grid_id, None)
        self._note_mutation()

    def remove_level_grids(self, level: int, *, tally: bool = True,
                           release: bool = False) -> None:
        """Delete all grids at `level` and deeper (used by rebuild).

        Backrefs are severed on removal (``parent`` cleared, ``children``
        emptied) so a detached subtree cannot pin the whole old hierarchy
        alive through one surviving reference.  ``tally=False`` skips the
        ``grids_destroyed`` bump (the incremental rebuild settles its own
        created/destroyed/reused books); ``release=True`` recycles the
        removed grids' buffers into the pool immediately — only safe when
        no caller still needs their data.
        """
        removed = 0
        for lvl in range(level, len(self.levels)):
            for g in self.levels[lvl]:
                removed += 1
                p = g.parent
                if p is not None and g in p.children:
                    p.children.remove(g)
                g.parent = None
                g.children.clear()
                if not self._in_rebuild:
                    self._flag_signatures.pop(g.grid_id, None)
                    if p is not None:
                        self._flag_signatures.pop(p.grid_id, None)
                if release:
                    self.pool.release_grid(g)
            self.levels[lvl] = []
        while len(self.levels) > 1 and not self.levels[-1]:
            self.levels.pop()
        if tally:
            self.grids_destroyed += removed
        self._note_mutation()

    def _note_mutation(self) -> None:
        """Bump the topology epoch, or defer inside a bulk_update block."""
        if self._bulk_depth:
            self._bulk_mutations += 1
        else:
            self.topology_epoch += 1

    def _membership(self) -> list[tuple]:
        return [tuple(g.grid_id for g in lvl) for lvl in self.levels]

    @contextlib.contextmanager
    def bulk_update(self):
        """Batch structural mutations behind a single epoch transition.

        A from-scratch rebuild of a thousand-grid level used to bump
        ``topology_epoch`` a thousand times; inside this context every
        ``add_grid`` / ``remove_level_grids`` defers, and on exit the epoch
        moves **once** — or not at all if the final per-level membership is
        identical to the initial one (a fully-reused rebuild), in which
        case every epoch-keyed cache stays warm.  For levels whose
        membership is unchanged across the block, cached sibling maps are
        re-stamped to the new epoch (grid geometry is immutable, so an
        unchanged member list means an unchanged map).
        """
        if self._bulk_depth == 0:
            self._bulk_membership = self._membership()
            self._bulk_epoch = self.topology_epoch
            self._bulk_mutations = 0
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                before = self._bulk_membership
                after = self._membership()
                self._bulk_membership = None
                if self._bulk_mutations and after != before:
                    self.topology_epoch += 1
                    for lvl in range(min(len(before), len(after))):
                        if before[lvl] != after[lvl]:
                            continue
                        entry = self._sibling_maps.get(lvl)
                        if entry is not None and entry[0] == self._bulk_epoch:
                            self._sibling_maps[lvl] = (
                                self.topology_epoch, entry[1]
                            )

    # --------------------------------------------------------------- queries
    def sibling_map(self, level: int) -> dict:
        """``grid_id -> list[SiblingLink]`` for a level, cached per epoch.

        The map (precomputed ghost- and rim-overlap slices, see
        :mod:`repro.amr.topology`) is rebuilt lazily the first time it is
        requested after a structural change.
        """
        # mid-bulk-update the tree has mutated but the epoch hasn't moved
        # yet: the cache can neither be trusted nor populated
        cacheable = self.topology_cache_enabled and not (
            self._bulk_depth and self._bulk_mutations
        )
        if cacheable:
            entry = self._sibling_maps.get(level)
            if entry is not None and entry[0] == self.topology_epoch:
                return entry[1]
        smap = self._timed_topology(
            build_sibling_map, self.level_grids(level), self.nghost
        )
        if cacheable:
            self._sibling_maps[level] = (self.topology_epoch, smap)
        return smap

    def siblings(self, grid: Grid) -> list[Grid]:
        """Same-level grids whose interiors touch my ghost-expanded region."""
        links = self.sibling_map(grid.level).get(grid.grid_id)
        if links is None:
            # grid not (yet) registered on its level: direct scan
            return [
                other for other in self.level_grids(grid.level)
                if other is not grid and grid.ghost_overlap_with(other) is not None
            ]
        return [link.sibling for link in links]

    def finest_grid_at(self, xyz) -> Grid:
        """Deepest grid whose interior contains the given point."""
        best = self.root
        for lvl in range(1, len(self.levels)):
            hit = None
            for g in self.levels[lvl]:
                if g.contains_point(xyz)[0]:
                    hit = g
                    break
            if hit is None:
                break
            best = hit
        return best

    def finest_level_of_particles(self) -> np.ndarray:
        """Per-particle finest level whose grids contain it (vectorised).

        Cached until either the tree changes (``topology_epoch``) or the
        particles move (``notify_particles_moved``); the returned array is
        read-only so a consumer cannot corrupt the cache in place.
        """
        key = (self.topology_epoch, self._particle_epoch, id(self._particles))
        cacheable = self.topology_cache_enabled and not (
            self._bulk_depth and self._bulk_mutations
        )
        if (
            cacheable
            and self._plevel_cache is not None
            and self._plevel_cache[0] == key
        ):
            return self._plevel_cache[1]
        level_of = self._timed_topology(self._compute_particle_levels)
        level_of.flags.writeable = False
        if cacheable:
            self._plevel_cache = (key, level_of)
        return level_of

    def _compute_particle_levels(self) -> np.ndarray:
        pos = self.particles.positions.hi + self.particles.positions.lo
        level_of = np.zeros(len(self.particles), dtype=np.int32)
        for lvl in range(1, len(self.levels)):
            covered = np.zeros(len(self.particles), dtype=bool)
            for g in self.levels[lvl]:
                covered |= np.all(
                    (pos >= g.left_edge) & (pos < g.right_edge), axis=1
                )
            level_of[covered] = lvl
        return level_of

    def _timed_topology(self, fn, *args):
        if self.timers is None:
            return fn(*args)
        with self.timers.section("topology"):
            return fn(*args)

    def covering_mask(self, grid: Grid) -> np.ndarray:
        """Boolean interior-shaped mask of cells covered by children."""
        mask = np.zeros(tuple(int(d) for d in grid.dims), dtype=bool)
        r = self.refine_factor
        for child in grid.children:
            lo, hi = child.parent_index_region()
            sl = tuple(
                slice(int(lo[d] - grid.start_index[d]), int(hi[d] - grid.start_index[d]))
                for d in range(3)
            )
            mask[sl] = True
        return mask

    # --------------------------------------------------------------- metrics
    def fingerprint(self) -> str:
        """SHA-256 digest of the full hierarchy state (structure + data).

        Covers every grid's level, box, time words, field arrays and
        potential, in tree order, plus the particle set's extended-precision
        position words, velocities and masses when particles are attached.
        Two hierarchies with equal fingerprints are bitwise identical in
        everything the physics can see — the equality the incremental-
        rebuild and preempt/resume correctness gates assert against their
        uninterrupted reference paths.
        """
        hsh = hashlib.sha256()
        for lvl, grids in enumerate(self.levels):
            for g in grids:
                hsh.update(np.int64([lvl, *g.start_index, *g.dims]).tobytes())
                hsh.update(np.float64([g.time.hi, g.time.lo]).tobytes())
                for name, arr in sorted(g.fields.array_items()):
                    hsh.update(name.encode())
                    hsh.update(np.ascontiguousarray(arr).tobytes())
                hsh.update(np.ascontiguousarray(g.phi).tobytes())
        particles = getattr(self, "particles", None)
        if particles is not None and len(particles.masses):
            for arr in (particles.positions.hi, particles.positions.lo,
                        particles.velocities, particles.masses):
                hsh.update(np.ascontiguousarray(arr).tobytes())
        return hsh.hexdigest()

    def total_memory_bytes(self) -> int:
        return sum(g.memory_bytes() for g in self.all_grids())

    def spatial_dynamic_range(self) -> float:
        """SDR = box length / finest cell width (paper's headline metric)."""
        return float(self.n_root * self.refine_factor**self.max_level)

    def validate_nesting(self) -> bool:
        """Every subgrid fully nested in its parent (paper's constraint)."""
        for lvl in range(1, len(self.levels)):
            for g in self.levels[lvl]:
                if g.parent is None or not g.is_nested_in(g.parent):
                    return False
        return True
