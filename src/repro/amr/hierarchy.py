"""The grid hierarchy: a tree of Grids plus the global particle store.

"Our parallel implementation places no limit on the depth or complexity of
the adaptive grid hierarchy." (paper abstract) — the container below is a
list-of-levels tree with no depth cap; practical depth is set by the
refinement criteria and the run budget, not the data structure.

Dark-matter particles live in one global :class:`ParticleSet` (the
functional equivalent of Enzo's per-grid ownership without the migration
bookkeeping); each level's solvers select the particles in their region on
demand, and each particle is *advanced* by the finest level containing it.
"""

from __future__ import annotations

import numpy as np

from repro.amr.grid import Grid
from repro.hydro.state import FieldSet
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble


class Hierarchy:
    """Container and bookkeeping for the SAMR grid tree."""

    def __init__(self, n_root: int, refine_factor: int = 2, nghost: int = 3,
                 advected=()):
        self.n_root = int(n_root)
        self.refine_factor = int(refine_factor)
        self.nghost = int(nghost)
        self.advected = list(advected)
        root = Grid(0, (0, 0, 0), (n_root,) * 3, n_root, refine_factor, nghost)
        root.allocate(self.advected)
        self.levels: list[list[Grid]] = [[root]]
        self.particles = ParticleSet.empty()
        # counters the performance layer reads (paper Fig. 5 discussion)
        self.grids_created = 1
        self.grids_destroyed = 0

    # ------------------------------------------------------------- accessors
    @property
    def root(self) -> Grid:
        return self.levels[0][0]

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    def level_grids(self, level: int) -> list[Grid]:
        if level < 0 or level >= len(self.levels):
            return []
        return self.levels[level]

    def all_grids(self):
        for lvl in self.levels:
            yield from lvl

    @property
    def n_grids(self) -> int:
        return sum(len(l) for l in self.levels)

    def grids_per_level(self) -> list[int]:
        return [len(l) for l in self.levels]

    # ------------------------------------------------------------- mutation
    def add_grid(self, grid: Grid, parent: Grid) -> None:
        """Insert a grid under its parent; allocates storage if needed."""
        if not grid.is_nested_in(parent):
            raise ValueError(f"{grid} is not fully nested in {parent}")
        while len(self.levels) <= grid.level:
            self.levels.append([])
        grid.parent = parent
        parent.children.append(grid)
        self.levels[grid.level].append(grid)
        if grid.fields is None:
            grid.allocate(self.advected)
        grid.time = DoubleDouble(parent.time)
        self.grids_created += 1

    def remove_level_grids(self, level: int) -> None:
        """Delete all grids at `level` and deeper (used by rebuild)."""
        removed = 0
        for lvl in range(level, len(self.levels)):
            removed += len(self.levels[lvl])
            for g in self.levels[lvl]:
                if g.parent is not None and g in g.parent.children:
                    g.parent.children.remove(g)
            self.levels[lvl] = []
        while len(self.levels) > 1 and not self.levels[-1]:
            self.levels.pop()
        self.grids_destroyed += removed

    # --------------------------------------------------------------- queries
    def siblings(self, grid: Grid) -> list[Grid]:
        """Same-level grids whose interiors touch my ghost-expanded region."""
        out = []
        for other in self.level_grids(grid.level):
            if other is grid:
                continue
            if grid.ghost_overlap_with(other) is not None:
                out.append(other)
        return out

    def finest_grid_at(self, xyz) -> Grid:
        """Deepest grid whose interior contains the given point."""
        best = self.root
        for lvl in range(1, len(self.levels)):
            hit = None
            for g in self.levels[lvl]:
                if g.contains_point(xyz)[0]:
                    hit = g
                    break
            if hit is None:
                break
            best = hit
        return best

    def finest_level_of_particles(self) -> np.ndarray:
        """Per-particle finest level whose grids contain it (vectorised)."""
        pos = self.particles.positions.hi + self.particles.positions.lo
        level_of = np.zeros(len(self.particles), dtype=np.int32)
        for lvl in range(1, len(self.levels)):
            covered = np.zeros(len(self.particles), dtype=bool)
            for g in self.levels[lvl]:
                covered |= np.all(
                    (pos >= g.left_edge) & (pos < g.right_edge), axis=1
                )
            level_of[covered] = lvl
        return level_of

    def covering_mask(self, grid: Grid) -> np.ndarray:
        """Boolean interior-shaped mask of cells covered by children."""
        mask = np.zeros(tuple(int(d) for d in grid.dims), dtype=bool)
        r = self.refine_factor
        for child in grid.children:
            lo, hi = child.parent_index_region()
            sl = tuple(
                slice(int(lo[d] - grid.start_index[d]), int(hi[d] - grid.start_index[d]))
                for d in range(3)
            )
            mask[sl] = True
        return mask

    # --------------------------------------------------------------- metrics
    def total_memory_bytes(self) -> int:
        return sum(g.memory_bytes() for g in self.all_grids())

    def spatial_dynamic_range(self) -> float:
        """SDR = box length / finest cell width (paper's headline metric)."""
        return float(self.n_root * self.refine_factor**self.max_level)

    def validate_nesting(self) -> bool:
        """Every subgrid fully nested in its parent (paper's constraint)."""
        for lvl in range(1, len(self.levels)):
            for g in self.levels[lvl]:
                if g.parent is None or not g.is_nested_in(g.parent):
                    return False
        return True
