"""Grid-scoped solver defense ladder: validate, rescue locally, escalate last.

A weeks-long AMR run dies from a *local* numerical accident — one deep
subgrid whose PPM update goes NaN, one pathological chemistry cell — and
the PR-2 answer (root-step rollback with a reduced CFL) throws away every
healthy grid's work along with the sick one.  This module adds the missing
middle layer: after the execution engine joins a level's per-grid tasks,
every grid's result is **validated** (finite, positive, optionally
mass-conserving) and an invalid grid is retried *in place*, climbing a
ladder of increasingly dissipative rescues:

1. ``retry_half_dt``  — restore the pre-step state, take two half-dt
   solver steps (the usual cure for a marginally CFL-violating update);
2. ``first_order``    — restore and retry with first-order (donor-cell)
   reconstruction, the most robust scheme the Godunov solver supports;
3. ``zeus_fallback``  — restore and retry with the ZEUS finite-difference
   solver (the paper's "robust" second scheme, Sec. 3.2.1);
4. ``floor_repair``   — give up on recomputing: replace non-finite cells
   with their pre-step values, clamp to the positivity floors, rebuild
   the total energy and zero the non-finite fluxes, logging the mass
   delta the repair cost.

Only when the *repaired* state is still invalid does the ladder raise
:class:`~repro.runtime.recovery.StateCorruptionError`, handing the root
step to the run controller's rollback machinery.  Every rung attempt is
recorded as a ``defense`` telemetry event and counted per root step.

With no faults and no escalations the ladder is read-only — validation
looks at interior views and never writes — so results are bitwise
identical to a defense-less run on every exec backend.

Chemistry failures get a shorter ladder (``chem_retry_half_dt`` →
``chem_floor_repair`` → ``chem_skip``): the network advances an
operator-split source term, so skipping one grid-step of chemistry is a
bounded, local error while a poisoned hydro state is not.

Deterministic chaos tests drive every rung via
:mod:`repro.runtime.faults`; see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.state import total_energy
from repro.hydro.zeus import ZeusSolver
from repro.runtime.faults import (
    active as _active_injector,
    apply_nan_cell,
    maybe_raise as _maybe_raise_fault,
    plan_nan_cell,
)
from repro.runtime.recovery import StateCorruptionError

#: hydro rescue rungs, in escalation order
HYDRO_RUNGS = ("retry_half_dt", "first_order", "zeus_fallback", "floor_repair")

#: chemistry rescue rungs, in escalation order
CHEM_RUNGS = ("chem_retry_half_dt", "chem_floor_repair", "chem_skip")

#: fields that must be finite everywhere on the interior
FINITE_FIELDS = ("density", "internal", "energy", "vx", "vy", "vz")

#: fields that must additionally be strictly positive
POSITIVE_FIELDS = ("density", "internal")


def validate_fields(fields, interior, mass_ref: float | None = None,
                    mass_drift_tol: float = float("inf")) -> list[str]:
    """Read-only health check of a grid's interior; returns problem labels.

    Ghost zones are deliberately excluded: truncated-stencil edge cells are
    repaired by the next boundary exchange and must not trigger rescues.
    """
    problems: list[str] = []
    for name in FINITE_FIELDS:
        arr = fields.get(name)
        if arr is None:
            continue
        view = arr[interior]
        bad = int(np.count_nonzero(~np.isfinite(view)))
        if bad:
            problems.append(f"{name}:nonfinite={bad}")
        elif name in POSITIVE_FIELDS:
            neg = int(np.count_nonzero(view <= 0.0))
            if neg:
                problems.append(f"{name}:nonpositive={neg}")
    for name in fields.advected:
        view = fields[name][interior]
        bad = int(np.count_nonzero(~np.isfinite(view)))
        if bad:
            problems.append(f"{name}:nonfinite={bad}")
    if (
        mass_ref is not None
        and np.isfinite(mass_drift_tol)
        and not problems
        and mass_ref > 0.0
    ):
        drift = abs(float(fields["density"][interior].sum()) - mass_ref)
        if drift > mass_drift_tol * mass_ref:
            problems.append(f"mass_drift={drift / mass_ref:.3e}")
    return problems


def _sum_fluxes(a, b):
    """Element-wise sum of two StepFluxes (two half steps = one full step)."""
    out = type(a)()
    for axis, per in a.fluxes.items():
        out.fluxes[axis] = {
            name: arr + b.fluxes[axis][name] for name, arr in per.items()
        }
    out.add_diagnostics(a.diagnostics)
    out.add_diagnostics(b.diagnostics)
    return out


class DefenseLadder:
    """Per-evolver rescue state machine + per-root-step defense counters.

    Parameters
    ----------
    mass_drift_tol:
        Relative interior-mass drift (vs the pre-step state) that counts as
        a validation failure.  Default ``inf`` — **off** — because boundary
        fluxes legitimately change a grid's interior mass; enable it only
        for isolated-grid test problems.
    max_events:
        Cap on queued (undrained) telemetry events, a backstop against a
        pathological run flooding memory.
    """

    def __init__(self, mass_drift_tol: float = float("inf"),
                 max_events: int = 10000):
        self.mass_drift_tol = float(mass_drift_tol)
        self.max_events = int(max_events)
        #: rung name -> activations this root step
        self.counters: dict[str, int] = {}
        #: floor kind -> activations this root step (from solver diagnostics)
        self.floors: dict[str, int] = {}
        #: queued telemetry events (drained by the run controller)
        self.events: list[dict] = []
        #: cumulative over the whole run, for tests and epilogues
        self.totals = {"rungs": {}, "floors": {}, "escalations": 0}

    # ---------------------------------------------------------- bookkeeping
    def begin_root_step(self) -> None:
        self.counters = {}
        self.floors = {}

    def note_floors(self, diagnostics: dict | None) -> None:
        """Fold a solver's per-step floor-activation counts into the block."""
        if not diagnostics:
            return
        for key, value in diagnostics.items():
            if value:
                self.floors[key] = self.floors.get(key, 0) + int(value)
                tot = self.totals["floors"]
                tot[key] = tot.get(key, 0) + int(value)

    def snapshot(self) -> dict | None:
        """JSON-native per-root-step summary for the telemetry step record."""
        out: dict = {}
        if self.counters:
            out["rungs"] = dict(self.counters)
        if self.floors:
            out["floors"] = dict(self.floors)
        return out or None

    def drain_events(self) -> list[dict]:
        events, self.events = self.events, []
        return events

    def record_event(self, event: dict) -> None:
        """Queue a defense event (rung attempt, mg retry, worker restart)."""
        if len(self.events) < self.max_events:
            self.events.append(dict(event))
        rung = event.get("rung")
        if rung and event.get("ok"):
            self.counters[rung] = self.counters.get(rung, 0) + 1
            tot = self.totals["rungs"]
            tot[rung] = tot.get(rung, 0) + 1

    # ----------------------------------------------------------- validation
    def validate_grid(self, grid) -> list[str]:
        mass_ref = None
        if np.isfinite(self.mass_drift_tol) and grid.old_fields is not None:
            mass_ref = float(grid.old_fields["density"][grid.interior].sum())
        return validate_fields(grid.fields, grid.interior, mass_ref,
                               self.mass_drift_tol)

    # -------------------------------------------------------------- hydro
    def rescue_hydro(self, grid, solver, dt: float, a: float, adot: float,
                     accel, permute: int, problems):
        """Climb the ladder until the grid validates; returns the fluxes.

        ``problems`` is what the initial validation (or the task error)
        reported; ``grid.old_fields`` — the pre-step snapshot the evolver
        takes for time-interpolated child boundaries — is the restore
        point for every retry rung.
        """
        site = {"level": int(grid.level), "grid": int(grid.grid_id)}
        attempted: list[str] = []
        last_problems = list(problems)
        result = None

        for rung in ("retry_half_dt", "first_order", "zeus_fallback"):
            try:
                attempt = getattr(self, f"_attempt_{rung}")(
                    grid, solver, dt, a, adot, accel, permute
                )
            except Exception as exc:  # a rescue that blows up is a failed rung
                attempted.append(rung)
                last_problems = [f"raise:{type(exc).__name__}"]
                self.record_event({
                    "rung": rung, "ok": False,
                    "problems": last_problems, **site,
                })
                continue
            if attempt is None:  # rung not applicable to this solver
                continue
            attempted.append(rung)
            self._reinject(grid)
            last_problems = self.validate_grid(grid)
            self.record_event({
                "rung": rung, "ok": not last_problems,
                "problems": last_problems, **site,
            })
            if not last_problems:
                return attempt
            result = attempt

        # rung 4: conservative in-place repair of whatever the last
        # attempt produced (or the original task result)
        attempted.append("floor_repair")
        repair = self._floor_repair(grid, solver, result)
        self._reinject(grid)
        last_problems = self.validate_grid(grid)
        self.record_event({
            "rung": "floor_repair", "ok": not last_problems,
            "problems": last_problems, **site, **repair["stats"],
        })
        if not last_problems:
            return repair["fluxes"]

        self.totals["escalations"] += 1
        self.record_event({
            "escalate": True, "problems": last_problems,
            "rungs": attempted, **site,
        })
        raise StateCorruptionError(
            f"grid {grid.grid_id} (level {grid.level}) failed every defense "
            f"rung {attempted}: {last_problems}",
            level=int(grid.level), grid_id=int(grid.grid_id), rungs=attempted,
        )

    # ---- individual rungs
    def _restore(self, grid) -> None:
        if grid.old_fields is not None:
            grid.fields = grid.old_fields.deep_copy()

    def _reinject(self, grid) -> None:
        """Re-query the nan_cell fault so repeated firings climb the ladder."""
        if _active_injector() is None:
            return
        plan = plan_nan_cell(
            grid.level, grid.grid_id,
            tuple(int(d) for d in grid.dims), grid.nghost,
        )
        apply_nan_cell(grid.fields, plan)

    def _attempt_retry_half_dt(self, grid, solver, dt, a, adot, accel,
                               permute):
        self._restore(grid)
        half = 0.5 * dt
        f1 = solver.step(grid.fields, grid.dx, half, a, adot, accel, permute)
        f2 = solver.step(grid.fields, grid.dx, half, a, adot, accel, permute)
        return _sum_fluxes(f1, f2)

    def _attempt_first_order(self, grid, solver, dt, a, adot, accel,
                             permute):
        if getattr(solver, "reconstruction", None) is None:
            return None  # finite-difference solvers have no reconstruction
        try:
            safe = type(solver)(
                gamma=solver.gamma,
                reconstruction="flat",
                riemann_solver=solver.riemann_solver,
                nghost=solver.nghost,
                dual_energy_eta=solver.dual_energy_eta,
                density_floor=solver.density_floor,
                energy_floor=solver.energy_floor,
                flattening=False,
                characteristic_tracing=False,
            )
        except TypeError:
            return None
        self._restore(grid)
        return safe.step(grid.fields, grid.dx, dt, a, adot, accel, permute)

    def _attempt_zeus_fallback(self, grid, solver, dt, a, adot, accel,
                               permute):
        from repro import constants as const

        fallback = ZeusSolver(
            gamma=getattr(solver, "gamma", const.GAMMA),
            nghost=getattr(solver, "nghost", grid.nghost),
            density_floor=getattr(solver, "density_floor", 1e-12),
            energy_floor=getattr(solver, "energy_floor", 1e-30),
        )
        self._restore(grid)
        return fallback.step(grid.fields, grid.dx, dt, a, adot, accel,
                             permute)

    def _floor_repair(self, grid, solver, fluxes):
        """Last-resort in-place repair; logs the conservation delta.

        Non-finite cells take their pre-step values (or the positivity
        floor when the old state is unavailable), density/internal are
        clamped above their floors, advected species above zero, the total
        energy is rebuilt, and non-finite flux entries are zeroed so the
        coarse-fine flux correction cannot re-import the corruption.
        """
        density_floor = getattr(solver, "density_floor", 1e-12)
        energy_floor = getattr(solver, "energy_floor", 1e-30)
        fill = {"density": density_floor, "internal": energy_floor}
        old = grid.old_fields
        interior = grid.interior
        mass_before = None
        scalar_before: dict[str, float] = {}
        if old is not None:
            mass_before = float(old["density"][interior].sum())
            for name in grid.fields.advected:
                if name in old:
                    scalar_before[name] = float(old[name][interior].sum())

        repaired = 0
        for name, arr in grid.fields.array_items():
            bad = ~np.isfinite(arr)
            nbad = int(np.count_nonzero(bad))
            if nbad:
                if old is not None and name in old:
                    arr[bad] = old[name][bad]
                    bad = ~np.isfinite(arr)
                arr[bad] = fill.get(name, 0.0)
                repaired += nbad
        for name, floor in (("density", density_floor),
                            ("internal", energy_floor)):
            arr = grid.fields[name]
            clamped = int(np.count_nonzero(arr < floor))
            if clamped:
                np.maximum(arr, floor, out=arr)
                repaired += clamped
        for name in grid.fields.advected:
            arr = grid.fields[name]
            neg = int(np.count_nonzero(arr < 0.0))
            if neg:
                np.maximum(arr, 0.0, out=arr)
                repaired += neg
        grid.fields["energy"] = total_energy(grid.fields)

        if fluxes is not None:
            for per in fluxes.fluxes.values():
                for arr in per.values():
                    np.nan_to_num(arr, copy=False, nan=0.0,
                                  posinf=0.0, neginf=0.0)

        mass_delta = 0.0
        if mass_before:
            mass_delta = (
                float(grid.fields["density"][interior].sum()) - mass_before
            ) / mass_before
        # same conservation accounting for every advected scalar: the worst
        # relative drift across species (absolute drift when a species
        # started the step with zero mass)
        scalar_delta = 0.0
        for name, before in scalar_before.items():
            after = float(grid.fields[name][interior].sum())
            drift = (after - before) / before if before else after
            if abs(drift) > abs(scalar_delta):
                scalar_delta = drift
        stats = {
            "repaired_cells": repaired,
            "mass_delta": float(mass_delta),
        }
        if scalar_before:
            stats["scalar_mass_delta"] = float(scalar_delta)
        return {
            "fluxes": fluxes,
            "stats": stats,
        }

    # ------------------------------------------------------------ chemistry
    def rescue_chemistry(self, grid, network, dt_code: float, units,
                         a: float, error=None, problems=()):
        """Chemistry ladder; returns integrator stats or None (skipped)."""
        site = {"level": int(grid.level), "grid": int(grid.grid_id)}

        # rung 1: retry as two half-dt advances (the network mutates the
        # FieldSet only on success, so a raised retry leaves it untouched)
        try:
            _maybe_raise_fault("chem_blowup", grid.level, grid.grid_id)
            half = 0.5 * dt_code
            s1 = network.advance_fields(grid.fields, half, units, a)
            s2 = network.advance_fields(grid.fields, half, units, a)
            retry_error = None
            stats = _merge_chem_stats(s1, s2)
        except Exception as exc:
            retry_error = exc
            stats = None
        chem_problems = (
            self.validate_grid(grid) if retry_error is None else
            [f"task_error:{type(retry_error).__name__}"]
        )
        self.record_event({
            "rung": "chem_retry_half_dt", "ok": not chem_problems,
            "problems": chem_problems, **site,
        })
        if not chem_problems:
            return stats

        if retry_error is None:
            # the advance ran but produced an invalid state: repair it
            repair = self._floor_repair(grid, network, None)
            chem_problems = self.validate_grid(grid)
            self.record_event({
                "rung": "chem_floor_repair", "ok": not chem_problems,
                "problems": chem_problems, **site, **repair["stats"],
            })
            if not chem_problems:
                return stats

        # rung 3: skip this grid-step of chemistry (bounded local error for
        # an operator-split source term); hydro state is left as the hydro
        # defense validated it
        self.record_event({
            "rung": "chem_skip", "ok": True, "problems": [], **site,
        })
        return None


def _merge_chem_stats(s1: dict | None, s2: dict | None) -> dict | None:
    if not s1:
        return s2
    if not s2:
        return s1
    out = dict(s2)
    out["substeps_total"] = (
        int(s1.get("substeps_total", 0)) + int(s2.get("substeps_total", 0))
    )
    out["substeps_max"] = max(
        int(s1.get("substeps_max", 0)), int(s2.get("substeps_max", 0))
    )
    if "active_fraction_mean" in out:
        out["active_fraction_mean"] = 0.5 * (
            float(s1.get("active_fraction_mean", 0.0))
            + float(s2.get("active_fraction_mean", 0.0))
        )
    return out
