"""Field-array pool: recycled float64 buffers for grid (re)builds.

The paper's Fig. 5 discussion singles out grid allocation/free traffic as
a first-order cost of RebuildHierarchy at hero-run scale ("the entire
grid hierarchy is rebuilt thousands of times"): at ~8000 subgrids a
rebuild destroys and recreates thousands of ~20^3 field arrays whose
shapes repeat almost exactly between epochs.  This free-list keeps those
buffers alive across rebuilds — keyed by ``shape_with_ghosts`` — so a
destroyed grid's arrays become the next created grid's arrays instead of
a round-trip through the allocator.

Contracts:

* Only owning, C-contiguous float64 arrays enter the pool (views are
  refused), so an acquired buffer can never alias a live grid's data.
* Buffers come back *dirty*; every consumer overwrites them in full
  (``make_fields`` writes the uniform initial state, ``_fill_new_grid``
  the prolonged/copied one), which keeps pooled and unpooled allocation
  bitwise identical.
* ``release_grid`` detaches the grid's arrays (``fields``/``phi``/
  ``old_fields`` become ``None``) before pooling them, so a retired grid
  object cannot reach a buffer that a live grid has since acquired.
"""

from __future__ import annotations

import numpy as np

#: free-list length cap per shape; beyond this, released buffers are
#: dropped to the allocator (bounds pool memory after a derefinement wave)
MAX_FREE_PER_SHAPE = 512


class FieldArrayPool:
    """Free-list of ndarray buffers keyed by shape."""

    def __init__(self, max_free_per_shape: int = MAX_FREE_PER_SHAPE):
        self.max_free_per_shape = int(max_free_per_shape)
        self._free: dict[tuple, list[np.ndarray]] = {}
        # telemetry counters (benchmarks and the pool tests read these)
        self.acquires = 0
        self.hits = 0
        self.releases = 0
        self.dropped = 0

    # --------------------------------------------------------------- acquire
    def acquire(self, shape) -> np.ndarray:
        """A float64 buffer of ``shape``; contents are unspecified."""
        shape = tuple(int(s) for s in shape)
        self.acquires += 1
        free = self._free.get(shape)
        if free:
            self.hits += 1
            return free.pop()
        return np.empty(shape, dtype=np.float64)

    # --------------------------------------------------------------- release
    def release(self, arr: np.ndarray) -> None:
        """Return one buffer to the free list (views/foreign dtypes dropped)."""
        if (
            not isinstance(arr, np.ndarray)
            or arr.base is not None
            or arr.dtype != np.float64
            or not arr.flags.c_contiguous
            or not arr.flags.writeable
        ):
            self.dropped += 1
            return
        free = self._free.setdefault(arr.shape, [])
        if len(free) >= self.max_free_per_shape:
            self.dropped += 1
            return
        self.releases += 1
        free.append(arr)

    def release_grid(self, grid) -> None:
        """Recycle a retired grid's storage and sever its array refs."""
        for fields in (grid.fields, grid.old_fields):
            if fields is not None:
                for _, arr in fields.array_items():
                    self.release(arr)
        if grid.phi is not None:
            self.release(grid.phi)
        grid.fields = None
        grid.old_fields = None
        grid.phi = None
        grid.flux_accumulator = None
        grid.last_fluxes = None

    # --------------------------------------------------------------- metrics
    @property
    def free_arrays(self) -> int:
        return sum(len(v) for v in self._free.values())

    def free_bytes(self) -> int:
        return sum(a.nbytes for v in self._free.values() for a in v)

    def stats(self) -> dict:
        return {
            "acquires": self.acquires,
            "hits": self.hits,
            "hit_rate": self.hits / max(self.acquires, 1),
            "releases": self.releases,
            "dropped": self.dropped,
            "free_arrays": self.free_arrays,
        }

    def clear(self) -> None:
        self._free.clear()
