"""Self-gravity on the hierarchy (paper Sec. 3.3).

"On the root grid, this is done with an FFT ... On subgrids, we interpolate
the gravitational potential field and then solve the Poisson equation using
a traditional multi-grid relaxation technique.  In order to produce a
solution that is consistent across the boundaries of sibling grids, we use
an iterative method: first solving each grid separately, exchanging
boundary conditions, and then solving again."
"""

from __future__ import annotations

import numpy as np

from repro.amr.interpolation import prolong_region
from repro.gravity.fft_poisson import solve_periodic
from repro.gravity.multigrid import MultigridConvergenceError, MultigridSolver
from repro.nbody.cic import cic_deposit, cic_gather
from repro.runtime.faults import take as _take_fault


class HierarchyGravity:
    """Level-by-level Poisson solves with sibling iteration.

    Parameters
    ----------
    g_code:
        Newton's constant in code units.
    mean_density:
        The comoving mean *total* density in code units (1.0 for the
        cosmological unit system; only fluctuations source peculiar gravity).
    sibling_iterations:
        Solve / exchange / re-solve passes on refined levels.
    """

    def __init__(self, g_code: float, mean_density: float = 1.0,
                 sibling_iterations: int = 2, mg_tol: float = 1e-6):
        self.g_code = g_code
        self.mean_density = mean_density
        self.sibling_iterations = int(sibling_iterations)
        self.mg = MultigridSolver(tol=mg_tol)
        #: defense ladder (set by the evolver): when present, subgrid
        #: solves run strict — non-convergence is retried once with a
        #: doubled V-cycle budget, then escalated — instead of silently
        #: accepting a bad potential
        self.defense = None

    # ------------------------------------------------------------ densities
    def total_density(self, hierarchy, grid) -> np.ndarray:
        """Gas + deposited dark-matter comoving density on the interior."""
        rho = grid.field_view("density").copy()
        parts = hierarchy.particles
        if len(parts) == 0:
            return rho
        periodic = grid.level == 0 and np.all(grid.dims == hierarchy.n_root)
        if periodic:
            offsets = parts.positions.hi + parts.positions.lo
            rho += cic_deposit(offsets, parts.masses, rho.shape, grid.dx, periodic=True)
        else:
            # take particles within one cell of the grid so boundary cells
            # receive their share of straddling clouds
            pad = grid.dx
            mask = parts.in_region(grid.left_edge - pad, grid.right_edge + pad)
            if mask.any():
                sel = parts.select(mask)
                offsets = (
                    sel.positions.hi + sel.positions.lo
                ) - grid.left_edge
                rho += cic_deposit(
                    offsets, sel.masses, rho.shape, grid.dx, periodic=False
                )
        return rho

    def source(self, hierarchy, grid, a: float) -> np.ndarray:
        """RHS of the comoving Poisson equation on the grid interior."""
        rho = self.total_density(hierarchy, grid)
        return 4.0 * np.pi * self.g_code / a * (rho - self.mean_density)

    # --------------------------------------------------------------- solves
    def solve_level(self, hierarchy, level: int, a: float = 1.0) -> None:
        """Fill ``grid.phi`` for every grid on a level."""
        grids = hierarchy.level_grids(level)
        if not grids:
            return
        if level == 0:
            g = grids[0]
            src = self.source(hierarchy, g, a)
            phi = solve_periodic(src, g.dx)
            g.phi[g.interior] = phi
            _wrap_phi_ghosts(g)
            return

        sources = {g.grid_id: self.source(hierarchy, g, a) for g in grids}
        boundaries = {g.grid_id: self._parent_boundary(g) for g in grids}
        smap = hierarchy.sibling_map(level)
        for iteration in range(self.sibling_iterations):
            for g in grids:
                rim = boundaries[g.grid_id]
                sol = self._solve_grid(g, sources[g.grid_id], rim)
                self._store_phi(g, sol)
            # exchange: overwrite rim values with sibling solutions; a pass
            # that changes nothing means the iteration has converged
            improved = False
            for g in grids:
                rim = boundaries[g.grid_id]
                for link in smap.get(g.grid_id, ()):
                    if link.rim_dst is None:
                        continue
                    new = link.sibling.phi[link.rim_src]
                    if not np.array_equal(rim[link.rim_dst], new):
                        rim[link.rim_dst] = new
                        improved = True
            if not improved:
                break

    def _solve_grid(self, grid, src: np.ndarray, rim: np.ndarray) -> np.ndarray:
        """One subgrid multigrid solve, defended when a ladder is attached.

        Defense off: today's silent solve, bit for bit.  Defense on: the
        solve is strict; on non-convergence (real, or injected via the
        ``mg_diverge`` fault) it is retried once with the V-cycle budget
        doubled, and only a second failure escalates the error to the run
        controller's rollback path.
        """
        site = (int(grid.level), int(grid.grid_id))
        strict = self.defense is not None
        force = _take_fault("mg_diverge", grid.level, grid.grid_id) is not None
        try:
            return self.mg.solve(src, grid.dx, rim, strict=strict,
                                 site=site, force_diverge=force)
        except MultigridConvergenceError as exc:
            self.defense.record_event({
                "rung": "mg_budget_retry", "ok": True,
                "level": site[0], "grid": site[1],
                "diagnostics": exc.diagnostics.as_dict(),
            })
            force = (
                _take_fault("mg_diverge", grid.level, grid.grid_id)
                is not None
            )
            return self.mg.solve(
                src, grid.dx, rim, strict=True,
                max_cycles=2 * self.mg.max_cycles, site=site,
                force_diverge=force,
            )

    def _parent_boundary(self, grid) -> np.ndarray:
        """Dirichlet rim (dims+2) interpolated from the parent's potential."""
        parent = grid.parent
        r = grid.refine_factor
        lo_f = grid.start_index - 1
        hi_f = grid.end_index + 1
        lo_p = np.floor_divide(lo_f, r) - 1
        hi_p = -(-hi_f // r) + 1
        ng_p = parent.nghost
        p_sl = tuple(
            slice(int(lo_p[d] - parent.start_index[d] + ng_p),
                  int(hi_p[d] - parent.start_index[d] + ng_p))
            for d in range(3)
        )
        coarse = parent.phi[p_sl]
        fine = prolong_region(
            coarse, r, tuple(int(d) + 2 for d in grid.dims), lo_f - lo_p * r
        )
        return fine

    def _store_phi(self, grid, rim_solution: np.ndarray) -> None:
        """Write the rim-padded MG solution into grid.phi (ghost layout).

        The ghost layers beyond the 1-cell rim are edge-replicated so the
        acceleration gradient stays bounded everywhere — stale values there
        would create huge spurious ghost-band accelerations that destabilise
        the next hydro step before the ghosts are refreshed.
        """
        ng = grid.nghost
        sl = tuple(slice(ng - 1, ng + int(d) + 1) for d in grid.dims)
        grid.phi[sl] = rim_solution
        for axis in range(3):
            n = grid.phi.shape[axis]
            lo_edge = [slice(None)] * 3
            lo_edge[axis] = slice(ng - 1, ng)
            hi_edge = [slice(None)] * 3
            hi_edge[axis] = slice(n - ng, n - ng + 1)
            lo_dst = [slice(None)] * 3
            lo_dst[axis] = slice(0, ng - 1)
            hi_dst = [slice(None)] * 3
            hi_dst[axis] = slice(n - ng + 1, n)
            grid.phi[tuple(lo_dst)] = grid.phi[tuple(lo_edge)]
            grid.phi[tuple(hi_dst)] = grid.phi[tuple(hi_edge)]

    # --------------------------------------------------------- acceleration
    def acceleration(self, grid, a: float = 1.0) -> np.ndarray:
        """g = -grad(phi)/a on the full (ghost-padded) array.

        Central differences; the outermost ghost layer is one-sided.  Only
        interior values feed the dynamics (ghosts are refreshed each step).
        """
        g = np.empty((3,) + grid.phi.shape)
        for axis in range(3):
            g[axis] = -np.gradient(grid.phi, grid.dx, axis=axis) / a
        return g

    def particle_accelerations(self, grid, accel_full: np.ndarray,
                               positions_hi, positions_lo) -> np.ndarray:
        """CIC-gather the grid's acceleration at particle positions."""
        ng = grid.nghost
        offsets = (positions_hi + positions_lo) - grid.left_edge + ng * grid.dx
        return cic_gather(accel_full, offsets, grid.dx, periodic=False)


def _wrap_phi_ghosts(grid) -> None:
    ng = grid.nghost
    arr = grid.phi
    for axis in range(3):
        n = arr.shape[axis]
        idx = [slice(None)] * 3
        src = [slice(None)] * 3
        idx[axis] = slice(0, ng)
        src[axis] = slice(n - 2 * ng, n - ng)
        arr[tuple(idx)] = arr[tuple(src)]
        idx[axis] = slice(n - ng, n)
        src[axis] = slice(ng, 2 * ng)
        arr[tuple(idx)] = arr[tuple(src)]


def _exchange_rim(grid, other, rim: np.ndarray) -> bool:
    """Copy sibling interior phi into my Dirichlet rim where they overlap.

    The rim spans level indices [start-1, end+1); only rim cells (not the
    interior of the padded array) are updated.  Returns True only when the
    copied values actually differ from what the rim already held — merely
    overlapping siblings must not keep the convergence loop alive.
    """
    lo = np.maximum(grid.start_index - 1, other.start_index)
    hi = np.minimum(grid.end_index + 1, other.end_index)
    if np.any(lo >= hi):
        return False
    ng = other.nghost
    my_sl = tuple(
        slice(int(lo[d] - grid.start_index[d] + 1), int(hi[d] - grid.start_index[d] + 1))
        for d in range(3)
    )
    o_sl = tuple(
        slice(int(lo[d] - other.start_index[d] + ng), int(hi[d] - other.start_index[d] + ng))
        for d in range(3)
    )
    new = other.phi[o_sl]
    if np.array_equal(rim[my_sl], new):
        return False
    rim[my_sl] = new
    return True
