"""12-species primordial chemistry and radiative cooling (paper Sec. 2.2).

"We solve the time dependent chemical reaction network involving twelve
species (including deuterium and helium)" — H, H+, He, He+, He++, e-, H-,
H2+, H2, D, D+, HD — "a fast numerical method to solve this set of stiff
ordinary differential equations has been developed by some of us
[Anninos et al. 1997]."

* :mod:`repro.chemistry.species`  — the species registry (masses, charges).
* :mod:`repro.chemistry.rates`    — reaction-rate coefficient fits.
* :mod:`repro.chemistry.cooling`  — radiative loss terms (atomic lines,
  recombination, bremsstrahlung, H2 rovibrational, HD, Compton).
* :mod:`repro.chemistry.network`  — the sub-cycled backward-Euler solver
  coupling the network and the thermal energy, per cell, vectorised.
"""

from repro.chemistry.species import SPECIES, Species, electron_density, neutral_fractions
from repro.chemistry.rates import RateTable
from repro.chemistry.cooling import cooling_rate
from repro.chemistry.network import ChemistryNetwork, ChemistryStepStats, primordial_initial_fractions
from repro.chemistry.equilibrium import cie_fractions, cooling_curve
from repro.chemistry.thermal import cooling_vs_freefall, equilibrium_temperature

__all__ = [
    "SPECIES",
    "Species",
    "electron_density",
    "neutral_fractions",
    "RateTable",
    "ChemistryStepStats",
    "cooling_rate",
    "ChemistryNetwork",
    "primordial_initial_fractions",
    "cie_fractions",
    "cooling_curve",
    "cooling_vs_freefall",
    "equilibrium_temperature",
]
