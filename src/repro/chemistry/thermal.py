"""Thermal balance utilities: equilibrium temperature and cooling-time maps.

Where does cooling balance Compton heating?  Below what density does a
parcel cool within a Hubble time?  These are the questions that decide the
paper's collapse (gas only condenses once H2 cooling beats both adiabatic
heating and the shrinking cooling budget), and the functions here answer
them for arbitrary compositions.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.chemistry.cooling import cooling_rate
from repro.chemistry.species import SPECIES_NAMES


def net_cooling(n: dict, T, z: float) -> np.ndarray:
    """Net volumetric loss rate (positive = cooling), erg/s/cm^3."""
    return cooling_rate(n, T, z)


def equilibrium_temperature(n: dict, z: float, t_lo: float = 1.0,
                            t_hi: float = 1e6, iterations: int = 60) -> np.ndarray:
    """Temperature where net cooling vanishes (bisection, vectorised).

    For a primordial mix the equilibrium sits essentially at T_cmb(z): the
    Compton term heats below it and every channel cools above it.
    """
    shape = np.broadcast(*(np.asarray(n[s]) for s in SPECIES_NAMES)).shape
    lo = np.full(shape, t_lo, dtype=float)
    hi = np.full(shape, t_hi, dtype=float)
    for _ in range(iterations):
        mid = np.sqrt(lo * hi)
        cooling = net_cooling(n, mid, z) > 0.0
        hi = np.where(cooling, mid, hi)
        lo = np.where(cooling, lo, mid)
    return np.sqrt(lo * hi)


def cooling_time_map(hierarchy, units, a: float) -> list:
    """Per-grid cooling-time arrays (s) over the composite hierarchy.

    Uses each grid's species fields; grids without chemistry fields get
    None.  The paper's analysis pipeline computed exactly this diagnostic.
    """
    from repro.chemistry.species import SPECIES

    z = 1.0 / a - 1.0
    out = []
    for g in hierarchy.all_grids():
        if "HI" not in g.fields:
            out.append(None)
            continue
        n = {}
        for s in SPECIES_NAMES:
            n[s] = (
                g.field_view(s) * units.density_unit / a**3
                / (SPECIES[s].mass_amu * const.HYDROGEN_MASS)
            )
        T = units.temperature_from_energy(
            g.field_view("internal"), const.MU_NEUTRAL, a
        )
        n_tot = sum(n[s] for s in SPECIES_NAMES)
        thermal = 1.5 * n_tot * const.BOLTZMANN_CONSTANT * T
        lam = np.maximum(net_cooling(n, T, z), 1e-300)
        out.append(thermal / lam)
    return out


def cooling_vs_freefall(n: dict, T, rho_cgs, z: float) -> np.ndarray:
    """t_cool / t_ff — the Rees-Ostriker criterion.

    < 1 means the parcel can collapse (cooling wins); the paper's halo only
    crosses this threshold once enough H2 has formed.
    """
    n_tot = sum(n[s] for s in SPECIES_NAMES)
    thermal = 1.5 * n_tot * const.BOLTZMANN_CONSTANT * np.asarray(T)
    lam = np.maximum(net_cooling(n, T, z), 1e-300)
    t_cool = thermal / lam
    t_ff = np.sqrt(
        3.0 * np.pi / (32.0 * const.GRAVITATIONAL_CONSTANT * np.maximum(rho_cgs, 1e-300))
    )
    return t_cool / t_ff
