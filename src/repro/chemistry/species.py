"""The twelve primordial species and their bookkeeping.

Naming follows Enzo's field conventions (HI = neutral hydrogen, HII =
ionised, HM = H-, H2I = molecular hydrogen, H2II = H2+, de = electrons).
Species are carried by the hydro solvers as comoving partial mass densities;
the network converts to proper number densities internally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Species:
    name: str
    mass_amu: float  # in hydrogen masses
    charge: int
    hydrogen_nuclei: int = 0
    helium_nuclei: int = 0
    deuterium_nuclei: int = 0


#: The paper's 12 species.  Electron "mass" uses the conventional m_H scale
#: trick (Enzo stores electron density scaled by m_H/m_e) — we store true
#: electron mass density; it is dynamically negligible either way.
SPECIES: dict[str, Species] = {
    "HI": Species("HI", 1.0, 0, hydrogen_nuclei=1),
    "HII": Species("HII", 1.0, 1, hydrogen_nuclei=1),
    "HeI": Species("HeI", 4.0, 0, helium_nuclei=1),
    "HeII": Species("HeII", 4.0, 1, helium_nuclei=1),
    "HeIII": Species("HeIII", 4.0, 2, helium_nuclei=1),
    "de": Species("de", 5.443205e-4, -1),  # m_e / m_H
    "HM": Species("HM", 1.0, -1, hydrogen_nuclei=1),
    "H2I": Species("H2I", 2.0, 0, hydrogen_nuclei=2),
    "H2II": Species("H2II", 2.0, 1, hydrogen_nuclei=2),
    "DI": Species("DI", 2.0, 0, deuterium_nuclei=1),
    "DII": Species("DII", 2.0, 1, deuterium_nuclei=1),
    "HDI": Species("HDI", 3.0, 0, hydrogen_nuclei=1, deuterium_nuclei=1),
}

#: Order used for array layouts.
SPECIES_NAMES = tuple(SPECIES.keys())

#: Names advected by the hydro solvers (all of them).
ADVECTED_SPECIES = SPECIES_NAMES


def electron_density(n: dict) -> np.ndarray:
    """Electron number density from charge neutrality (cm^-3)."""
    return (
        n["HII"] + n["HeII"] + 2.0 * n["HeIII"] + n["H2II"] + n["DII"] - n["HM"]
    )


def neutral_fractions(n: dict) -> dict:
    """Diagnostic fractions: ionised H, molecular H (by H nuclei mass)."""
    h_nuclei = n["HI"] + n["HII"] + n["HM"] + 2.0 * (n["H2I"] + n["H2II"])
    return {
        "x_HII": n["HII"] / np.maximum(h_nuclei, 1e-300),
        "f_H2": 2.0 * n["H2I"] / np.maximum(h_nuclei, 1e-300),
    }


def mean_molecular_weight(n: dict) -> np.ndarray:
    """mu = rho / (m_H * n_total), including electrons."""
    rho_amu = sum(SPECIES[s].mass_amu * n[s] for s in SPECIES_NAMES)
    n_tot = sum(n[s] for s in SPECIES_NAMES) + electron_density(n) - n["de"]
    # note: if n["de"] is carried explicitly it already appears in the sum
    return rho_amu / np.maximum(n_tot, 1e-300)


def nuclei_totals(n: dict) -> dict:
    """Conserved nuclei number densities (for conservation tests)."""
    return {
        "H": sum(SPECIES[s].hydrogen_nuclei * n[s] for s in SPECIES_NAMES),
        "He": sum(SPECIES[s].helium_nuclei * n[s] for s in SPECIES_NAMES),
        "D": sum(SPECIES[s].deuterium_nuclei * n[s] for s in SPECIES_NAMES),
    }


def charge_total(n: dict) -> np.ndarray:
    """Net charge density (should remain ~0 if 'de' tracks the ions)."""
    return sum(SPECIES[s].charge * n[s] for s in SPECIES_NAMES)
