"""Sub-cycled stiff solver for the 12-species network + thermal energy.

"Because the equations are stiff, we use a backward finite-difference
technique for stability, sub-cycling within a fluid timestep for additional
accuracy." (paper Sec. 3.3, the Anninos et al. 1997 method)

Implementation notes, mirroring that method:

* Species are updated sequentially with a linearised backward-Euler step,
  n_new = (n_old + dt * C) / (1 + dt * D / n) — unconditionally positive
  and stable, first-order accurate; accuracy is recovered by sub-cycling on
  the electron and thermal timescales.
* H- and H2+ have reaction timescales orders of magnitude shorter than
  everything else, so (exactly as Anninos et al.) they are set to their
  local equilibrium values each substep.
* Electrons follow from charge neutrality.
* The thermal energy is integrated alongside with a semi-implicit cooling
  update, including the 4.48 eV of chemical heat per H2 formed by the
  three-body reaction (and the matching dissociation sink) — the process
  the paper identifies as turning the core fully molecular.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.chemistry import cooling as cool_mod
from repro.chemistry.rates import RateTable
from repro.chemistry.species import SPECIES, SPECIES_NAMES, electron_density

#: H2 binding energy (erg).
H2_BINDING = 4.48 * const.ELECTRON_VOLT

#: shape of the per-call integrator diagnostics (``last_stats``).
_ZERO_STATS = {
    "cells": 0,
    "substeps_total": 0,
    "substeps_max": 0,
    "iterations": 0,
    "active_fraction_mean": 0.0,
}


def primordial_initial_fractions(
    x_e: float = 2e-4, f_h2: float = 2e-6
) -> dict[str, float]:
    """Post-recombination freeze-out mass fractions of the 12 species.

    ``x_e``: residual ionised-H fraction (by H nuclei), ``f_h2``: molecular
    mass fraction of hydrogen.  These are the standard freeze-out values the
    calculation starts from (z ~ 100).
    """
    xh = const.HYDROGEN_MASS_FRACTION
    xhe = const.HELIUM_MASS_FRACTION
    d_by_h = const.DEUTERIUM_TO_HYDROGEN
    fractions = {
        "HII": xh * x_e,
        "H2I": xh * f_h2,
        "H2II": xh * 1e-12,
        "HM": xh * 1e-12,
        "HeI": xhe,
        "HeII": 0.0,
        "HeIII": 0.0,
        "DI": xh * d_by_h * 2.0 * (1.0 - x_e),
        "DII": xh * d_by_h * 2.0 * x_e,
        "HDI": xh * d_by_h * 3.0 * f_h2,
    }
    # the deuterium budget comes out of the hydrogen mass fraction so the
    # twelve species sum exactly to the gas density
    fractions["HI"] = (
        xh
        - fractions["HII"]
        - fractions["HM"]
        - fractions["H2I"]
        - fractions["H2II"]
        - fractions["DI"]
        - fractions["DII"]
        - fractions["HDI"]
    )
    # electron mass density from charge neutrality
    n_frac = {s: fractions.get(s, 0.0) / SPECIES[s].mass_amu for s in SPECIES_NAMES if s != "de"}
    ne = (
        n_frac["HII"] + n_frac["HeII"] + 2 * n_frac["HeIII"] + n_frac["H2II"]
        + n_frac["DII"] - n_frac["HM"]
    )
    fractions["de"] = ne * SPECIES["de"].mass_amu
    return fractions


class ChemistryNetwork:
    """Vectorised network + cooling integrator.

    Parameters
    ----------
    rates:
        A :class:`RateTable` (swappable for ablation experiments).
    cmb_floor:
        If True, the temperature never radiates below T_cmb(z) (the physical
        floor the paper's Compton term enforces; we apply it robustly).
    safety:
        Sub-cycle fraction of the limiting timescale (0.1 is the
        Anninos et al. choice).
    max_substeps:
        Hard cap per call; the remainder is integrated in one final
        backward-Euler step (stable, just less accurate).
    """

    def __init__(self, rates: RateTable | None = None, cmb_floor: bool = True,
                 safety: float = 0.1, max_substeps: int = 200,
                 three_body: bool = True, formation_heating: bool = True,
                 renormalise: bool = True):
        self.rates = rates or RateTable()
        self.cmb_floor = cmb_floor
        self.safety = safety
        self.max_substeps = max_substeps
        self.three_body = three_body
        self.formation_heating = formation_heating
        self.renormalise = renormalise
        self.last_substeps = 0
        self.last_stats: dict = dict(_ZERO_STATS)

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def temperature(n: dict, e_specific: np.ndarray, rho: np.ndarray) -> np.ndarray:
        """T from specific internal energy (erg/g), gamma=5/3 gas of the mix."""
        n_tot = sum(n[s] for s in SPECIES_NAMES)
        n_tot = np.maximum(n_tot, 1e-300)
        # e * rho = (3/2) n_tot k T
        return np.maximum(
            (2.0 / 3.0) * e_specific * rho / (n_tot * const.BOLTZMANN_CONSTANT), 1.0
        )

    @staticmethod
    def energy_from_temperature(n: dict, T, rho) -> np.ndarray:
        n_tot = sum(n[s] for s in SPECIES_NAMES)
        return 1.5 * n_tot * const.BOLTZMANN_CONSTANT * np.asarray(T) / np.maximum(rho, 1e-300)

    # ------------------------------------------------------------------- core
    def advance(self, n: dict, e_specific: np.ndarray, rho: np.ndarray,
                dt: float, z: float = 0.0):
        """Advance number densities (cm^-3) and specific energy (erg/g) by dt (s).

        Arrays may be any (matching, broadcastable) shape; everything is
        elementwise.  Returns the updated (n, e_specific); inputs are not
        mutated.

        Active-set integration: the grid is flattened and every cell carries
        its own elapsed time and its own ``dt_sub`` from its *local* cooling
        and electron timescales (the Anninos et al. controls), instead of the
        single grid-global minimum that forced the whole grid to subcycle at
        the worst cell's pace.  After each substep the active index set is
        compacted so finished cells are never touched again; each iteration
        evaluates the rate and cooling coefficients exactly once (one shared
        table pass) for the cells still in flight.  Because every cell's
        trajectory depends only on its own state, results are bitwise
        identical to advancing each cell on its own.
        """
        arrs = {s: np.asarray(n[s], dtype=float) for s in SPECIES_NAMES}
        e_in = np.asarray(e_specific, dtype=float)
        rho_in = np.asarray(rho, dtype=float)
        shape = np.broadcast_shapes(
            e_in.shape, rho_in.shape, *(a.shape for a in arrs.values())
        )

        def _flat(a):
            # writable, contiguous 1-D copy (broadcast_to returns a
            # read-only view, hence the explicit np.array copy)
            return np.array(np.broadcast_to(a, shape)).reshape(-1)

        nf = {s: _flat(arrs[s]) for s in SPECIES_NAMES}
        ef = _flat(e_in)
        rf = _flat(rho_in)
        n_cells = ef.size
        dt = float(dt)
        if self.renormalise:
            # conserved nuclei budgets (the sequential backward-Euler update
            # is only conservative to O(dt^2 * rate); Enzo renormalises the
            # species against the density field — we do the same per element)
            h0 = nf["HI"] + nf["HII"] + nf["HM"] + 2.0 * (nf["H2I"] + nf["H2II"]) + nf["HDI"]
            he0 = nf["HeI"] + nf["HeII"] + nf["HeIII"]
            d0 = nf["DI"] + nf["DII"] + nf["HDI"]

        # all loop state is local: ``advance`` may run concurrently on many
        # grids under the execution engine's thread backend, so nothing
        # mutable lives on the (shared) network object until the final
        # diagnostics are published
        t_done = np.zeros(n_cells)
        counts = np.zeros(n_cells, dtype=np.int64)
        active = np.arange(n_cells, dtype=np.intp)
        iterations = 0
        active_cells_sum = 0
        # a cell is done once it has covered dt to rounding accuracy
        target = dt * (1.0 - 1e-12)
        while dt > 0.0 and active.size:
            na = {s: nf[s][active] for s in SPECIES_NAMES}
            ea = ef[active]
            ra = rf[active]
            T = self.temperature(na, ea, ra)
            # one shared table pass feeds the timescale controls, the stiff
            # update and the thermal update of this substep
            k, ch = self.rates.channels(T)
            lam = cool_mod.cooling_rate_from_channels(na, T, z, ch)  # erg/s/cm^3
            edot = np.abs(lam) / np.maximum(ra, 1e-300)
            t_cool = np.where(edot > 0, ea / np.maximum(edot, 1e-300), np.inf)
            # electron timescale (the Anninos et al. control): net ionisation
            # minus recombination rate against the current electron density
            ne = np.maximum(electron_density(na), 1e-300)
            ne_dot = np.abs(k["k1"] * na["HI"] * ne - k["k2"] * na["HII"] * ne)
            t_elec = np.where(ne_dot > 0, ne / np.maximum(ne_dot, 1e-300), np.inf)
            limit = np.minimum(t_cool, t_elec)
            remaining = dt - t_done[active]
            dt_sub = np.minimum(
                remaining, np.maximum(self.safety * limit, dt / self.max_substeps)
            )
            # cells at the substep cap integrate their remainder in one
            # final backward-Euler step (stable, just less accurate)
            dt_sub = np.where(
                counts[active] >= self.max_substeps - 1, remaining, dt_sub
            )
            self._substep(na, ea, ra, dt_sub, z, T=T, k=k, cool_ch=ch)
            if self.renormalise:
                self._renormalise(na, h0[active], he0[active], d0[active])
            for s in SPECIES_NAMES:
                nf[s][active] = na[s]
            ef[active] = ea
            t_done[active] += dt_sub
            counts[active] += 1
            iterations += 1
            active_cells_sum += active.size
            active = active[t_done[active] < target]

        self.last_substeps = int(counts.max()) if n_cells else 0
        self.last_stats = {
            "cells": int(n_cells),
            "substeps_total": int(counts.sum()),
            "substeps_max": int(counts.max()) if n_cells else 0,
            "iterations": int(iterations),
            "active_fraction_mean": (
                float(active_cells_sum) / (iterations * n_cells)
                if iterations and n_cells else 0.0
            ),
        }
        n_out = {s: nf[s].reshape(shape) for s in SPECIES_NAMES}
        return n_out, ef.reshape(shape)

    @staticmethod
    def _renormalise(n: dict, h0, he0, d0) -> None:
        """Rescale species so elemental nuclei budgets are exactly conserved."""
        # HD can transiently overshoot the deuterium budget (the linearised
        # d4 formation step is not conservative); cap it first so the D
        # budget closes exactly instead of only when HD stays small
        hd = n["HDI"] = np.minimum(n["HDI"], d0)
        # deuterium next (HD shares nuclei with the H budget)
        d_free = np.maximum(d0 - hd, 0.0)
        cur_d = n["DI"] + n["DII"]
        f_d = np.where(cur_d > 0, d_free / np.maximum(cur_d, 1e-300), 1.0)
        n["DI"] *= f_d
        n["DII"] *= f_d
        h_free = np.maximum(h0 - hd, 0.0)
        cur_h = n["HI"] + n["HII"] + n["HM"] + 2.0 * (n["H2I"] + n["H2II"])
        f_h = np.where(cur_h > 0, h_free / np.maximum(cur_h, 1e-300), 1.0)
        for s in ("HI", "HII", "HM", "H2I", "H2II"):
            n[s] *= f_h
        cur_he = n["HeI"] + n["HeII"] + n["HeIII"]
        f_he = np.where(cur_he > 0, he0 / np.maximum(cur_he, 1e-300), 1.0)
        for s in ("HeI", "HeII", "HeIII"):
            n[s] *= f_he
        n["de"] = np.maximum(electron_density(n), 0.0)

    def _substep(self, n: dict, e: np.ndarray, rho: np.ndarray, dt, z: float,
                 T=None, k=None, cool_ch=None):
        """One linearised backward-Euler step of size dt (scalar or per-cell).

        ``T``, ``k`` and ``cool_ch`` accept precomputed values (one shared
        rate/cooling-channel evaluation per substep, hoisted by ``advance``);
        when omitted they are evaluated here, reproducing the standalone
        behaviour.
        """
        if T is None:
            T = self.temperature(n, e, rho)
        if k is None:
            k = self.rates(T)
        ne = np.maximum(electron_density(n), 0.0)

        def be(old, create, destroy):
            """Linearised backward-Euler update (positive by construction)."""
            return (old + dt * create) / (1.0 + dt * destroy)

        # --- H+ / H and He ladder (with current electron density) -------------
        hi, hii = n["HI"], n["HII"]
        n["HII"] = be(hii, k["k1"] * hi * ne, k["k2"] * ne)
        n["HeII"] = be(
            n["HeII"],
            k["k3"] * n["HeI"] * ne + k["k6"] * n["HeIII"] * ne,
            (k["k4"] + k["k5"]) * ne,
        )
        n["HeIII"] = be(n["HeIII"], k["k5"] * n["HeII"] * ne, k["k6"] * ne)
        n["HeI"] = be(n["HeI"], k["k4"] * n["HeII"] * ne, k["k3"] * ne)

        # --- fast species in equilibrium (Anninos et al. 1997) ------------------
        hii = n["HII"]
        denom_hm = k["k8"] * hi + k["k14"] * ne + k["k16"] * hii
        n["HM"] = np.where(
            denom_hm > 0, k["k7"] * hi * ne / np.maximum(denom_hm, 1e-300), 0.0
        )
        denom_h2p = k["k10"] * hi + k["k18"] * ne
        n["H2II"] = np.where(
            denom_h2p > 0,
            (k["k9"] * hi * hii + k["k11"] * n["H2I"] * hii)
            / np.maximum(denom_h2p, 1e-300),
            0.0,
        )

        # --- molecular hydrogen ----------------------------------------------------
        h2 = n["H2I"]
        c_h2 = k["k8"] * n["HM"] * hi + k["k10"] * n["H2II"] * hi + k["d5"] * n["HDI"] * hii
        d_h2 = k["k11"] * hii + k["k12"] * ne + k["k13"] * hi + k["d4"] * n["DII"]
        rate_3b = np.zeros_like(hi)
        if self.three_body:
            rate_3b = k["k22"] * hi**3 + k["k23"] * hi**2 * h2
            c_h2 = c_h2 + rate_3b
        n["H2I"] = be(h2, c_h2, d_h2)

        # --- neutral hydrogen (net source terms; k13 yields net +2 H) --------------
        c_hi = (
            k["k2"] * hii * ne
            + 2.0 * k["k12"] * h2 * ne
            + 2.0 * k["k13"] * h2 * hi
            + k["k11"] * h2 * hii
            + 2.0 * k["k16"] * n["HM"] * hii
            + 2.0 * k["k18"] * n["H2II"] * ne
            + k["k14"] * n["HM"] * ne
            + k["d2"] * n["DI"] * hii
        )
        d_hi = (
            k["k1"] * ne
            + k["k7"] * ne
            + k["k8"] * n["HM"]
            + k["k9"] * hii
            + k["k10"] * n["H2II"]
            + k["d3"] * n["DII"]
            + (2.0 * k["k22"] * hi**2 + 2.0 * k["k23"] * hi * h2 if self.three_body else 0.0)
        )
        n["HI"] = be(hi, c_hi, d_hi)

        # --- deuterium ----------------------------------------------------------------
        di, dii, hd = n["DI"], n["DII"], n["HDI"]
        n["DII"] = be(
            dii,
            k["d2"] * di * hii + k["d5"] * hd * hii,
            k["d1"] * ne + k["d3"] * n["HI"] + k["d4"] * n["H2I"],
        )
        n["DI"] = be(di, k["d1"] * n["DII"] * ne + k["d3"] * n["DII"] * n["HI"], k["d2"] * hii)
        n["HDI"] = be(hd, k["d4"] * n["DII"] * n["H2I"], k["d5"] * hii)

        # --- electrons from charge neutrality ---------------------------------------
        n["de"] = np.maximum(electron_density(n), 0.0)

        # --- thermal energy ---------------------------------------------------------------
        # NOTE: evaluated with the *updated* densities at the substep's
        # (start-of-step) temperature — only the T-dependent coefficients
        # are shared with the timescale evaluation in ``advance``
        if cool_ch is not None:
            lam = cool_mod.cooling_rate_from_channels(n, T, z, cool_ch)
        else:
            lam = cool_mod.cooling_rate(n, T, z)
        if self.formation_heating and self.three_body:
            lam = lam - H2_BINDING * rate_3b + H2_BINDING * k["k13"] * h2 * hi
        # semi-implicit: cooling shrinks e by a bounded factor
        cool_pos = np.maximum(lam, 0.0) / np.maximum(rho, 1e-300)
        heat = np.maximum(-lam, 0.0) / np.maximum(rho, 1e-300)
        e_new = (e + dt * heat) / (1.0 + dt * cool_pos / np.maximum(e, 1e-300))
        if self.cmb_floor:
            t_cmb = const.CMB_TEMPERATURE_Z0 * (1.0 + z)
            e_floor = self.energy_from_temperature(n, t_cmb, rho)
            e_new = np.maximum(e_new, np.minimum(e, e_floor))
        e[...] = np.maximum(e_new, 1e-300)

    # ------------------------------------------------------ code-unit interface
    def advance_fields(self, fields, dt_code: float, units, a: float) -> dict:
        """Advance the species + internal energy carried on a FieldSet.

        Converts comoving code partial densities to proper cgs number
        densities, integrates, and writes everything back (including the
        'energy' total).  ``a`` sets both the density dilution and the
        redshift of the CMB.  Returns the integrator stats of the call
        (a copy of :attr:`last_stats`) for telemetry aggregation.
        """
        z = 1.0 / a - 1.0
        rho_cgs = np.asarray(fields["density"]) * units.density_unit / a**3
        n = {}
        for s in SPECIES_NAMES:
            n[s] = (
                np.asarray(fields[s]) * units.density_unit / a**3
                / (SPECIES[s].mass_amu * const.HYDROGEN_MASS)
            )
        e_cgs = np.asarray(fields["internal"]) * units.energy_unit
        n_new, e_new = self.advance(n, e_cgs, rho_cgs, dt_code * units.time_unit, z)
        for s in SPECIES_NAMES:
            fields[s][...] = (
                n_new[s] * SPECIES[s].mass_amu * const.HYDROGEN_MASS
                * a**3 / units.density_unit
            )
        kinetic = 0.5 * (fields["vx"] ** 2 + fields["vy"] ** 2 + fields["vz"] ** 2)
        fields["internal"][...] = e_new / units.energy_unit
        fields["energy"][...] = fields["internal"] + kinetic
        return dict(self.last_stats)


class ChemistryStepStats:
    """Aggregate per-grid integrator stats over one root step.

    The evolver absorbs the stats dict each :class:`ChemistryNetwork`
    call returns (serially, after the execution engine joins, so the
    aggregation is identical for every backend) and telemetry snapshots
    the totals alongside the exec block.
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.tasks = 0
        self.cells = 0
        self.substeps_total = 0
        self.substeps_max = 0
        self._active_weighted = 0.0

    def absorb(self, stats: dict | None) -> None:
        if not stats:
            return
        self.tasks += 1
        cells = int(stats.get("cells", 0))
        self.cells += cells
        self.substeps_total += int(stats.get("substeps_total", 0))
        self.substeps_max = max(self.substeps_max, int(stats.get("substeps_max", 0)))
        self._active_weighted += float(stats.get("active_fraction_mean", 0.0)) * cells

    @property
    def active_fraction_mean(self) -> float:
        """Cell-weighted mean active fraction across absorbed grids."""
        return self._active_weighted / self.cells if self.cells else 0.0

    def snapshot(self) -> dict:
        return {
            "tasks": self.tasks,
            "cells": self.cells,
            "substeps_total": self.substeps_total,
            "substeps_max": self.substeps_max,
            "active_fraction_mean": self.active_fraction_mean,
        }
