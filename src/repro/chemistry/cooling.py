"""Radiative cooling/heating of the primordial gas (paper Sec. 2.2).

"We include all known radiative loss terms due to atoms, ions, and
molecules that are appropriate for our primordial gas.  Also the energy
exchange between the cosmic microwave background and free electrons
(Compton heating and cooling) is included."

Terms (all optically thin, ground-state excitation only, as the paper
argues is accurate at these densities):

* H and He+ collisional line excitation, collisional ionisation,
  recombination, dielectronic recombination (Cen 1992 / Black 1981 fits);
* thermal bremsstrahlung;
* H2 rovibrational cooling: Galli & Palla (1998) low-density limit bridged
  to the Hollenbach & McKee (1979) LTE limit — this is the channel that
  cools the paper's "primordial molecular cloud" to a few hundred K;
* a simple HD cooling term (important only below ~200 K);
* Compton scattering against the CMB (cools when T > T_cmb, heats below).

``cooling_rate`` returns the net volumetric energy *loss* rate in
erg s^-1 cm^-3 (positive = cooling).

The temperature-only *coefficient* of every channel is exposed through
``COOLING_CHANNELS`` (name -> fn(T)), so the tabulated rate machinery
(:mod:`repro.chemistry.rates`) can precompute them on its log-T grid;
``cooling_rate_from_channels`` assembles the total loss rate from a dict of
channel coefficient arrays (interpolated or analytic) plus densities — the
same arithmetic, with the transcendental part hoisted out.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.chemistry.species import electron_density


def _g(T):
    return np.maximum(np.asarray(T, dtype=float), 1.0)


def _damp(T):
    return 1.0 / (1.0 + np.sqrt(T / 1e5))


# --------------------------------------------------------------- channels
# Each channel is the smooth T-only coefficient of one loss term; the
# density product it multiplies is listed on the right.  All are positive
# and log-smooth, so the rate tabulation can store ln(coefficient) on its
# log-T grid and interpolate linearly.
def _ce_HI(T):
    """H Ly-alpha collisional excitation (x ne * n_HI)."""
    return 7.50e-19 * np.exp(-118348.0 / _g(T)) * _damp(_g(T))


def _ce_HeII(T):
    """He+ n=2 collisional excitation (x ne * n_HeII)."""
    T = _g(T)
    return 5.54e-17 * T**-0.397 * np.exp(-473638.0 / T) * _damp(T)


def _ci_HI(T):
    """H collisional ionisation (x ne * n_HI)."""
    T = _g(T)
    return 1.27e-21 * np.sqrt(T) * np.exp(-157809.1 / T) * _damp(T)


def _ci_HeI(T):
    """He collisional ionisation (x ne * n_HeI)."""
    T = _g(T)
    return 9.38e-22 * np.sqrt(T) * np.exp(-285335.4 / T) * _damp(T)


def _ci_HeII(T):
    """He+ collisional ionisation (x ne * n_HeII)."""
    T = _g(T)
    return 4.95e-22 * np.sqrt(T) * np.exp(-631515.0 / T) * _damp(T)


def _rec_HII(T):
    """H+ recombination (x ne * n_HII)."""
    T = _g(T)
    return 8.70e-27 * np.sqrt(T) * (T / 1e3) ** -0.2 / (1.0 + (T / 1e6) ** 0.7)


def _rec_HeII(T):
    """He+ radiative recombination (x ne * n_HeII)."""
    return 1.55e-26 * _g(T) ** 0.3647


def _rec_HeIII(T):
    """He++ recombination (x ne * n_HeIII)."""
    T = _g(T)
    return 3.48e-26 * np.sqrt(T) * (T / 1e3) ** -0.2 / (1.0 + (T / 1e6) ** 0.7)


def _diel_HeII(T):
    """Dielectronic He+ recombination (x ne * n_HeII)."""
    T = _g(T)
    return (
        1.24e-13
        * T**-1.5
        * np.exp(-470000.0 / T)
        * (1.0 + 0.3 * np.exp(-94000.0 / T))
    )


def _brem(T):
    """Bremsstrahlung with gaunt factor (x ne * (n_HII + n_HeII + 4 n_HeIII))."""
    T = _g(T)
    gff = 1.1 + 0.34 * np.exp(-((5.5 - np.log10(T)) ** 2) / 3.0)
    return 1.43e-27 * np.sqrt(T) * gff


def _h2_ldl_branch(T):
    """GP98 low-density polynomial, *unclamped* (smooth on the full grid).

    The physical fit clamps T into [10, 1e4] K; that clamp kinks the
    ln-coefficient at both boundaries, which linear interpolation on the
    log-T table cannot follow to rtol.  So the smooth polynomial is the
    tabulated channel and :func:`h2_cooling_from_channels` re-applies the
    clamp exactly (the out-of-range values are the boundary constants).
    """
    logt = np.log10(_g(T))
    log_ldl = (
        -103.0
        + 97.59 * logt
        - 48.05 * logt**2
        + 10.80 * logt**3
        - 0.9032 * logt**4
    )
    with np.errstate(under="ignore"):
        return 10.0**log_ldl


#: GP98 fit values at the clamp boundaries (used verbatim outside [10, 1e4] K).
_H2_LDL_LO = float(_h2_ldl_branch(10.0))
_H2_LDL_HI = float(_h2_ldl_branch(1e4))


def _clamp_h2_ldl(T, branch):
    """Re-apply the [10, 1e4] K clamp of the GP98 fit to a branch array."""
    return np.where(T < 10.0, _H2_LDL_LO, np.where(T > 1e4, _H2_LDL_HI, branch))


def _h2_ldl(T):
    """GP98 H2-H low-density cooling function, erg cm^3/s (x n_H2 * n_H)."""
    T = _g(T)
    return _clamp_h2_ldl(T, _h2_ldl_branch(T))


def _h2_lte(T):
    """HM79 LTE cooling per H2 molecule, erg/s (x n_H2 after bridging)."""
    t3 = _g(T) / 1000.0
    lte_rot = (
        9.5e-22 * t3**3.76 / (1.0 + 0.12 * t3**2.1) * np.exp(-((0.13 / t3) ** 3))
        + 3.0e-24 * np.exp(-0.51 / t3)
    )
    lte_vib = 6.7e-19 * np.exp(-5.86 / t3) + 1.6e-18 * np.exp(-11.7 / t3)
    return lte_rot + lte_vib


def _hd(T):
    """HD rotational cooling coefficient (x n_HDI * n_HI / 1e6)."""
    T = _g(T)
    return 1e-25 * (T / 100.0) ** 2.5 * np.exp(-128.0 / T)


#: name -> coefficient fn(T); order is the tabulation column order.
COOLING_CHANNELS = {
    "ce_HI": _ce_HI,
    "ce_HeII": _ce_HeII,
    "ci_HI": _ci_HI,
    "ci_HeI": _ci_HeI,
    "ci_HeII": _ci_HeII,
    "rec_HII": _rec_HII,
    "rec_HeII": _rec_HeII,
    "rec_HeIII": _rec_HeIII,
    "diel_HeII": _diel_HeII,
    "brem": _brem,
    "h2_ldl_branch": _h2_ldl_branch,
    "h2_lte": _h2_lte,
    "hd": _hd,
}

COOLING_CHANNEL_NAMES = tuple(COOLING_CHANNELS)


def cooling_channels(T) -> dict:
    """Evaluate every channel coefficient analytically at T."""
    T = _g(T)
    return {name: fn(T) for name, fn in COOLING_CHANNELS.items()}


# -------------------------------------------------------------- assembly
def atomic_cooling_from_channels(n: dict, T, ch: dict) -> np.ndarray:
    """H/He losses from precomputed channel coefficients."""
    T = _g(T)
    ne = np.maximum(electron_density(n), 0.0)
    rate = np.zeros_like(T)
    rate += ch["ce_HI"] * ne * n["HI"]
    rate += ch["ce_HeII"] * ne * n["HeII"]
    rate += ch["ci_HI"] * ne * n["HI"]
    rate += ch["ci_HeI"] * ne * n["HeI"]
    rate += ch["ci_HeII"] * ne * n["HeII"]
    rate += ch["rec_HII"] * ne * n["HII"]
    rate += ch["rec_HeII"] * ne * n["HeII"]
    rate += ch["rec_HeIII"] * ne * n["HeIII"]
    rate += ch["diel_HeII"] * ne * n["HeII"]
    rate += ch["brem"] * ne * (n["HII"] + n["HeII"] + 4.0 * n["HeIII"])
    # the fits are not valid below ~10 K (they would otherwise extrapolate
    # recombination cooling past the regime where Compton sets the floor)
    return np.where(T < 10.0, 0.0, rate)


def h2_cooling_from_channels(n: dict, T, ch: dict) -> np.ndarray:
    """H2 rovibrational cooling from precomputed LDL/LTE coefficients."""
    T = _g(T)
    n_h = np.maximum(n["HI"], 1e-300)
    ldl = _clamp_h2_ldl(T, ch["h2_ldl_branch"])
    low = ldl * n_h  # per H2 molecule, low-density limit
    with np.errstate(over="ignore"):
        lam = ch["h2_lte"] / (1.0 + ch["h2_lte"] / np.maximum(low, 1e-300))
    out = n["H2I"] * lam
    return np.where(T < 10.0, 0.0, out)


def hd_cooling_from_channels(n: dict, ch: dict) -> np.ndarray:
    return n["HDI"] * np.maximum(n["HI"], 0.0) / 1e3 * ch["hd"] / 1e3


def cooling_rate_from_channels(n: dict, T, z: float, ch: dict) -> np.ndarray:
    """Total net cooling rate from precomputed channel coefficients.

    Identical arithmetic to :func:`cooling_rate`; only the evaluation of
    the T-dependent coefficients has been hoisted into ``ch`` (the
    Compton term is linear in T and stays analytic).
    """
    return (
        atomic_cooling_from_channels(n, T, ch)
        + h2_cooling_from_channels(n, T, ch)
        + hd_cooling_from_channels(n, ch)
        + compton(n, T, z)
    )


# ------------------------------------------------------- analytic wrappers
def atomic_cooling(n: dict, T) -> np.ndarray:
    """H/He line, ionisation, recombination and bremsstrahlung losses."""
    T = _g(T)
    ch = {name: COOLING_CHANNELS[name](T) for name in (
        "ce_HI", "ce_HeII", "ci_HI", "ci_HeI", "ci_HeII",
        "rec_HII", "rec_HeII", "rec_HeIII", "diel_HeII", "brem",
    )}
    return atomic_cooling_from_channels(n, T, ch)


def h2_cooling(n: dict, T) -> np.ndarray:
    """H2 rovibrational cooling: GP98 low-density limit -> HM79 LTE limit."""
    T = _g(T)
    return h2_cooling_from_channels(
        n, T, {"h2_ldl_branch": _h2_ldl_branch(T), "h2_lte": _h2_lte(T)}
    )


def hd_cooling(n: dict, T) -> np.ndarray:
    """Approximate HD rotational cooling (Galli & Palla 1998 magnitude).

    Matters only in the 30-200 K regime; a power-law bridge anchored at
    Lambda_HD(100 K) ~ 1e-25 n_H erg/s per molecule reproduces the published
    curve to within a factor ~2 over that range.
    """
    return hd_cooling_from_channels(n, {"hd": _hd(_g(T))})


def compton(n: dict, T, z: float, t_cmb0: float = const.CMB_TEMPERATURE_Z0) -> np.ndarray:
    """Compton energy exchange with the CMB (positive = cooling).

    Lambda_C = (4 sigma_T a_r T_cmb^4 k_B / (m_e c)) * n_e * (T - T_cmb).
    """
    T = _g(T)
    t_cmb = t_cmb0 * (1.0 + z)
    ne = np.maximum(electron_density(n), 0.0)
    coeff = (
        4.0
        * const.THOMSON_CROSS_SECTION
        * const.RADIATION_CONSTANT
        * t_cmb**4
        * const.BOLTZMANN_CONSTANT
        / (const.ELECTRON_MASS * const.SPEED_OF_LIGHT)
    )
    return coeff * ne * (T - t_cmb)


def cooling_rate(n: dict, T, z: float = 0.0) -> np.ndarray:
    """Total net volumetric cooling rate, erg s^-1 cm^-3 (positive=cooling)."""
    return atomic_cooling(n, T) + h2_cooling(n, T) + hd_cooling(n, T) + compton(n, T, z)
