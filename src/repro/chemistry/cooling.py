"""Radiative cooling/heating of the primordial gas (paper Sec. 2.2).

"We include all known radiative loss terms due to atoms, ions, and
molecules that are appropriate for our primordial gas.  Also the energy
exchange between the cosmic microwave background and free electrons
(Compton heating and cooling) is included."

Terms (all optically thin, ground-state excitation only, as the paper
argues is accurate at these densities):

* H and He+ collisional line excitation, collisional ionisation,
  recombination, dielectronic recombination (Cen 1992 / Black 1981 fits);
* thermal bremsstrahlung;
* H2 rovibrational cooling: Galli & Palla (1998) low-density limit bridged
  to the Hollenbach & McKee (1979) LTE limit — this is the channel that
  cools the paper's "primordial molecular cloud" to a few hundred K;
* a simple HD cooling term (important only below ~200 K);
* Compton scattering against the CMB (cools when T > T_cmb, heats below).

``cooling_rate`` returns the net volumetric energy *loss* rate in
erg s^-1 cm^-3 (positive = cooling).
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.chemistry.species import electron_density


def _g(T):
    return np.maximum(np.asarray(T, dtype=float), 1.0)


def atomic_cooling(n: dict, T) -> np.ndarray:
    """H/He line, ionisation, recombination and bremsstrahlung losses."""
    T = _g(T)
    ne = np.maximum(electron_density(n), 0.0)
    sq = np.sqrt(T)
    damp = 1.0 / (1.0 + np.sqrt(T / 1e5))

    rate = np.zeros_like(T)
    # collisional excitation (Ly-alpha; He+ n=2)
    rate += 7.50e-19 * np.exp(-118348.0 / T) * damp * ne * n["HI"]
    rate += 5.54e-17 * T**-0.397 * np.exp(-473638.0 / T) * damp * ne * n["HeII"]
    # collisional ionisation
    rate += 1.27e-21 * sq * np.exp(-157809.1 / T) * damp * ne * n["HI"]
    rate += 9.38e-22 * sq * np.exp(-285335.4 / T) * damp * ne * n["HeI"]
    rate += 4.95e-22 * sq * np.exp(-631515.0 / T) * damp * ne * n["HeII"]
    # recombination
    rate += 8.70e-27 * sq * (T / 1e3) ** -0.2 / (1.0 + (T / 1e6) ** 0.7) * ne * n["HII"]
    rate += 1.55e-26 * T**0.3647 * ne * n["HeII"]
    rate += (
        3.48e-26 * sq * (T / 1e3) ** -0.2 / (1.0 + (T / 1e6) ** 0.7) * ne * n["HeIII"]
    )
    # dielectronic He+ recombination
    rate += (
        1.24e-13
        * T**-1.5
        * np.exp(-470000.0 / T)
        * (1.0 + 0.3 * np.exp(-94000.0 / T))
        * ne
        * n["HeII"]
    )
    # bremsstrahlung (gaunt factor ~ 1.1-1.5)
    gff = 1.1 + 0.34 * np.exp(-((5.5 - np.log10(T)) ** 2) / 3.0)
    rate += 1.43e-27 * sq * gff * ne * (n["HII"] + n["HeII"] + 4.0 * n["HeIII"])
    # the fits are not valid below ~10 K (they would otherwise extrapolate
    # recombination cooling past the regime where Compton sets the floor)
    return np.where(T < 10.0, 0.0, rate)


def h2_cooling(n: dict, T) -> np.ndarray:
    """H2 rovibrational cooling: GP98 low-density limit -> HM79 LTE limit."""
    T = _g(T)
    logt = np.log10(np.clip(T, 10.0, 1e4))
    # Galli & Palla (1998) H2-H low-density cooling function (erg cm^3/s)
    log_ldl = (
        -103.0
        + 97.59 * logt
        - 48.05 * logt**2
        + 10.80 * logt**3
        - 0.9032 * logt**4
    )
    lam_ldl = 10.0**log_ldl  # per (n_H2 n_H)

    # Hollenbach & McKee (1979) LTE cooling per H2 molecule (erg/s)
    t3 = T / 1000.0
    lte_rot = (
        9.5e-22 * t3**3.76 / (1.0 + 0.12 * t3**2.1) * np.exp(-((0.13 / t3) ** 3))
        + 3.0e-24 * np.exp(-0.51 / t3)
    )
    lte_vib = 6.7e-19 * np.exp(-5.86 / t3) + 1.6e-18 * np.exp(-11.7 / t3)
    lam_lte = lte_rot + lte_vib

    n_h = np.maximum(n["HI"], 1e-300)
    low = lam_ldl * n_h  # per H2 molecule, low-density limit
    with np.errstate(over="ignore"):
        lam = lam_lte / (1.0 + lam_lte / np.maximum(low, 1e-300))
    out = n["H2I"] * lam
    return np.where(T < 10.0, 0.0, out)


def hd_cooling(n: dict, T) -> np.ndarray:
    """Approximate HD rotational cooling (Galli & Palla 1998 magnitude).

    Matters only in the 30-200 K regime; a power-law bridge anchored at
    Lambda_HD(100 K) ~ 1e-25 n_H erg/s per molecule reproduces the published
    curve to within a factor ~2 over that range.
    """
    T = _g(T)
    lam = 1e-25 * (T / 100.0) ** 2.5 * np.exp(-128.0 / T)
    return n["HDI"] * np.maximum(n["HI"], 0.0) / 1e3 * lam / 1e3


def compton(n: dict, T, z: float, t_cmb0: float = const.CMB_TEMPERATURE_Z0) -> np.ndarray:
    """Compton energy exchange with the CMB (positive = cooling).

    Lambda_C = (4 sigma_T a_r T_cmb^4 k_B / (m_e c)) * n_e * (T - T_cmb).
    """
    T = _g(T)
    t_cmb = t_cmb0 * (1.0 + z)
    ne = np.maximum(electron_density(n), 0.0)
    coeff = (
        4.0
        * const.THOMSON_CROSS_SECTION
        * const.RADIATION_CONSTANT
        * t_cmb**4
        * const.BOLTZMANN_CONSTANT
        / (const.ELECTRON_MASS * const.SPEED_OF_LIGHT)
    )
    return coeff * ne * (T - t_cmb)


def cooling_rate(n: dict, T, z: float = 0.0) -> np.ndarray:
    """Total net volumetric cooling rate, erg s^-1 cm^-3 (positive=cooling)."""
    return atomic_cooling(n, T) + h2_cooling(n, T) + hd_cooling(n, T) + compton(n, T, z)
