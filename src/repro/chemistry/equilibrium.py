"""Equilibrium diagnostics: ionisation balance and the cooling curve.

Collisional ionisation equilibrium (CIE) abundances and the classic
Lambda(T) cooling function are the standard way to sanity-check a
chemistry+cooling implementation against the literature; the network
itself (out of equilibrium, the paper's whole point) is solved by
:mod:`repro.chemistry.network`, and these routines provide its limits.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.chemistry.cooling import cooling_rate
from repro.chemistry.rates import RateTable
from repro.chemistry.species import SPECIES_NAMES


def cie_fractions(T, rates: RateTable | None = None) -> dict:
    """Collisional ionisation equilibrium fractions for H and He.

    Returns x_HI, x_HII (of H nuclei) and x_HeI, x_HeII, x_HeIII (of He
    nuclei) at temperature(s) T — the detailed-balance ratios of the
    collisional ionisation and recombination rates.
    """
    k = (rates or RateTable())(np.asarray(T, dtype=float))
    r1 = k["k1"] / np.maximum(k["k2"], 1e-300)  # HII/HI
    x_hi = 1.0 / (1.0 + r1)
    x_hii = 1.0 - x_hi
    r3 = k["k3"] / np.maximum(k["k4"], 1e-300)  # HeII/HeI
    r5 = k["k5"] / np.maximum(k["k6"], 1e-300)  # HeIII/HeII
    denom = 1.0 + r3 + r3 * r5
    x_hei = 1.0 / denom
    x_heii = r3 / denom
    x_heiii = r3 * r5 / denom
    return {
        "x_HI": x_hi, "x_HII": x_hii,
        "x_HeI": x_hei, "x_HeII": x_heii, "x_HeIII": x_heiii,
    }


def equilibrium_number_densities(n_h: float, T, f_h2: float = 0.0,
                                 rates: RateTable | None = None) -> dict:
    """Species number densities at CIE for given H nuclei density (cm^-3)."""
    T = np.asarray(T, dtype=float)
    fr = cie_fractions(T, rates)
    n_he = n_h * (const.HELIUM_MASS_FRACTION / const.HYDROGEN_MASS_FRACTION) / 4.0
    n_d = n_h * const.DEUTERIUM_TO_HYDROGEN
    zero = np.zeros_like(T)
    n = {s: zero.copy() for s in SPECIES_NAMES}
    n["H2I"] = np.full_like(T, 0.5 * f_h2 * n_h)
    n_h_atomic = n_h * (1.0 - f_h2)
    n["HI"] = n_h_atomic * fr["x_HI"]
    n["HII"] = n_h_atomic * fr["x_HII"]
    n["HeI"] = n_he * fr["x_HeI"]
    n["HeII"] = n_he * fr["x_HeII"]
    n["HeIII"] = n_he * fr["x_HeIII"]
    n["DI"] = n_d * fr["x_HI"]
    n["DII"] = n_d * fr["x_HII"]
    n["de"] = n["HII"] + n["HeII"] + 2 * n["HeIII"] + n["DII"]
    return n


def cooling_curve(T, n_h: float = 1.0, f_h2: float = 0.0, z: float = 0.0,
                  rates: RateTable | None = None) -> np.ndarray:
    """Normalised CIE cooling function Lambda(T)/n_H^2 in erg cm^3 s^-1.

    With ``f_h2 = 0`` this is the classic primordial (H+He) curve: the
    Ly-alpha peak near 2e4 K, the He+ peak near 1e5 K, bremsstrahlung at
    high T.  With molecular hydrogen present the curve extends below 1e4 K
    — the extension that makes the paper's star formation possible.
    """
    T = np.asarray(T, dtype=float)
    n = equilibrium_number_densities(n_h, T, f_h2, rates)
    lam = cooling_rate(n, T, z)
    return lam / n_h**2
