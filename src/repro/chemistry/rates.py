"""Reaction-rate coefficients for the primordial network.

"We have tediously selected the dominant reactions and collected the most
accurate reaction rates available [Abel et al. 1997]." (paper Sec. 2.2)

The fits below are the standard ones from that literature lineage — Cen
(1992) / Black (1981) for the H/He collisional ionisation & recombination
system, Shapiro & Kang (1987), Karpas et al. (1979) and Galli & Palla
(1998) for the H2 formation/destruction channels, Palla, Salpeter &
Stahler (1983) for three-body H2 formation (the process the paper singles
out as driving the final collapse), and Galli & Palla (1998) for the
deuterium network.  Where a modern fit differs from the exact Abel et al.
table the discrepancy is a factor <~2, which shifts collapse *timing*
slightly but none of the qualitative behaviour the paper reports.

All two-body rates are cm^3 s^-1; three-body rates cm^6 s^-1; temperatures
in K.  Every function is vectorised over T.
"""

from __future__ import annotations

import numpy as np


def _clip_T(T):
    return np.clip(np.asarray(T, dtype=float), 1.0, 1e9)


class RateTable:
    """Evaluate all rate coefficients at an array of temperatures.

    Calling ``RateTable()(T)`` returns a dict name -> ndarray.  Individual
    rates are exposed as static methods for unit testing.
    """

    # --- hydrogen / helium ionisation balance (Cen 1992; Black 1981) -------
    @staticmethod
    def k1_HI_ionisation(T):
        """H + e -> H+ + 2e"""
        T = _clip_T(T)
        return (
            5.85e-11 * np.sqrt(T) * np.exp(-157809.1 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k2_HII_recombination(T):
        """H+ + e -> H + photon (case B-like fit)"""
        T = _clip_T(T)
        return (
            8.4e-11
            / np.sqrt(T)
            * (T / 1e3) ** -0.2
            / (1.0 + (T / 1e6) ** 0.7)
        )

    @staticmethod
    def k3_HeI_ionisation(T):
        """He + e -> He+ + 2e"""
        T = _clip_T(T)
        return (
            2.38e-11 * np.sqrt(T) * np.exp(-285335.4 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k4_HeII_recombination(T):
        """He+ + e -> He (radiative + dielectronic)"""
        T = _clip_T(T)
        radiative = 1.5e-10 * T**-0.6353
        dielectronic = (
            1.9e-3
            * T**-1.5
            * np.exp(-470000.0 / T)
            * (1.0 + 0.3 * np.exp(-94000.0 / T))
        )
        return radiative + dielectronic

    @staticmethod
    def k5_HeII_ionisation(T):
        """He+ + e -> He++ + 2e"""
        T = _clip_T(T)
        return (
            5.68e-12 * np.sqrt(T) * np.exp(-631515.0 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k6_HeIII_recombination(T):
        """He++ + e -> He+"""
        T = _clip_T(T)
        return (
            3.36e-10
            / np.sqrt(T)
            * (T / 1e3) ** -0.2
            / (1.0 + (T / 1e6) ** 0.7)
        )

    # --- H2 formation via H- and H2+ ----------------------------------------
    @staticmethod
    def k7_HM_formation(T):
        """H + e -> H- + photon (Galli & Palla 1998)"""
        T = _clip_T(T)
        return 1.4e-18 * T**0.928 * np.exp(-T / 16200.0)

    @staticmethod
    def k8_H2_from_HM(T):
        """H- + H -> H2 + e (associative detachment)"""
        T = _clip_T(T)
        # weak T dependence; 1.3e-9 is the classic value near 100-1000 K
        return 1.3e-9 * (T / 300.0) ** 0.0 + 0.0 * T

    @staticmethod
    def k9_H2II_formation(T):
        """H + H+ -> H2+ + photon (Shapiro & Kang 1987)"""
        T = _clip_T(T)
        low = 1.85e-23 * T**1.8
        logratio = np.log10(np.maximum(T, 1.0) / 56200.0)
        high = 5.81e-16 * (T / 56200.0) ** (-0.6657 * logratio)
        return np.where(T < 6700.0, low, high)

    @staticmethod
    def k10_H2_from_H2II(T):
        """H2+ + H -> H2 + H+ (Karpas et al. 1979)"""
        T = _clip_T(T)
        return 6.0e-10 + 0.0 * T

    # --- H2 destruction -------------------------------------------------------
    @staticmethod
    def k11_H2_HII_exchange(T):
        """H2 + H+ -> H2+ + H (Shapiro & Kang 1987)"""
        T = _clip_T(T)
        return 3.0e-10 * np.exp(-21050.0 / T)

    @staticmethod
    def k12_H2_e_dissociation(T):
        """H2 + e -> 2H + e"""
        T = _clip_T(T)
        return 4.38e-10 * T**0.35 * np.exp(-102000.0 / T)

    @staticmethod
    def k13_H2_H_dissociation(T):
        """H2 + H -> 3H (collisional dissociation, low-density limit;
        Dove & Mandy 1986 fit in eV as used by Abel et al. 1997)"""
        T = _clip_T(T)
        t_ev = T / 11604.5
        return (
            1.067e-10
            * t_ev**2.012
            * np.exp(-4.463 / t_ev)
            / (1.0 + 0.2472 * t_ev) ** 3.512
        )

    # --- H- / H2+ minor channels ---------------------------------------------
    @staticmethod
    def k14_HM_e_detachment(T):
        """H- + e -> H + 2e (approximate Janev-type fit)"""
        T = _clip_T(T)
        t_ev = T / 11604.5
        return np.where(
            t_ev > 0.04,
            np.exp(
                -18.01849334
                + 2.3608522 * np.log(np.maximum(t_ev, 1e-10))
                - 0.28274430 * np.log(np.maximum(t_ev, 1e-10)) ** 2
            ),
            0.0,
        )

    @staticmethod
    def k16_HM_HII_neutralisation(T):
        """H- + H+ -> 2H (mutual neutralisation; Croft et al. 1999 scale)"""
        T = _clip_T(T)
        return 2.4e-6 / np.sqrt(T) * (1.0 + T / 20000.0)

    @staticmethod
    def k18_H2II_e_recombination(T):
        """H2+ + e -> 2H (dissociative recombination; Galli & Palla 1998)"""
        T = _clip_T(T)
        return 2.0e-7 / np.sqrt(T) * 1e2**0.0

    # --- three-body H2 formation (drives the final collapse; paper Sec. 4) ---
    @staticmethod
    def k22_threebody_H2(T):
        """3H -> H2 + H (Palla, Salpeter & Stahler 1983), cm^6/s"""
        T = _clip_T(T)
        return 5.5e-29 / T

    @staticmethod
    def k23_threebody_H2_with_H2(T):
        """2H + H2 -> 2 H2 (PSS83 / 8), cm^6/s"""
        T = _clip_T(T)
        return 5.5e-29 / (8.0 * T)

    # --- deuterium network (Galli & Palla 1998) ---------------------------------
    @staticmethod
    def d1_DII_recombination(T):
        """D+ + e -> D (same as hydrogen to excellent accuracy)"""
        return RateTable.k2_HII_recombination(T)

    @staticmethod
    def d2_D_charge_exchange(T):
        """D + H+ -> D+ + H (endothermic by 43 K)"""
        T = _clip_T(T)
        return 3.7e-10 * T**0.28 * np.exp(-43.0 / T)

    @staticmethod
    def d3_DII_charge_exchange(T):
        """D+ + H -> D + H+ (exothermic)"""
        T = _clip_T(T)
        return 3.7e-10 * T**0.28

    @staticmethod
    def d4_HD_formation(T):
        """D+ + H2 -> HD + H+"""
        T = _clip_T(T)
        return 2.1e-9 + 0.0 * T

    @staticmethod
    def d5_HD_destruction(T):
        """HD + H+ -> D+ + H2 (endothermic by 464 K)"""
        T = _clip_T(T)
        return 1.0e-9 * np.exp(-464.0 / T)

    #: names in evaluation order
    RATE_NAMES = (
        "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10",
        "k11", "k12", "k13", "k14", "k16", "k18", "k22", "k23",
        "d1", "d2", "d3", "d4", "d5",
    )

    def __call__(self, T) -> dict:
        return {
            "k1": self.k1_HI_ionisation(T),
            "k2": self.k2_HII_recombination(T),
            "k3": self.k3_HeI_ionisation(T),
            "k4": self.k4_HeII_recombination(T),
            "k5": self.k5_HeII_ionisation(T),
            "k6": self.k6_HeIII_recombination(T),
            "k7": self.k7_HM_formation(T),
            "k8": self.k8_H2_from_HM(T),
            "k9": self.k9_H2II_formation(T),
            "k10": self.k10_H2_from_H2II(T),
            "k11": self.k11_H2_HII_exchange(T),
            "k12": self.k12_H2_e_dissociation(T),
            "k13": self.k13_H2_H_dissociation(T),
            "k14": self.k14_HM_e_detachment(T),
            "k16": self.k16_HM_HII_neutralisation(T),
            "k18": self.k18_H2II_e_recombination(T),
            "k22": self.k22_threebody_H2(T),
            "k23": self.k23_threebody_H2_with_H2(T),
            "d1": self.d1_DII_recombination(T),
            "d2": self.d2_D_charge_exchange(T),
            "d3": self.d3_DII_charge_exchange(T),
            "d4": self.d4_HD_formation(T),
            "d5": self.d5_HD_destruction(T),
        }
