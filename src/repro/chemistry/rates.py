"""Reaction-rate coefficients for the primordial network.

"We have tediously selected the dominant reactions and collected the most
accurate reaction rates available [Abel et al. 1997]." (paper Sec. 2.2)

The fits below are the standard ones from that literature lineage — Cen
(1992) / Black (1981) for the H/He collisional ionisation & recombination
system, Shapiro & Kang (1987), Karpas et al. (1979) and Galli & Palla
(1998) for the H2 formation/destruction channels, Palla, Salpeter &
Stahler (1983) for three-body H2 formation (the process the paper singles
out as driving the final collapse), and Galli & Palla (1998) for the
deuterium network.  Where a modern fit differs from the exact Abel et al.
table the discrepancy is a factor <~2, which shifts collapse *timing*
slightly but none of the qualitative behaviour the paper reports.

All two-body rates are cm^3 s^-1; three-body rates cm^6 s^-1; temperatures
in K.  Every function is vectorised over T.

Tabulated evaluation (the production Enzo approach, Bryan et al. 2014)
-----------------------------------------------------------------------
``RateTable(mode="tabulated")`` — the default — precomputes ln(coefficient)
for every rate *and* every cooling channel (:data:`repro.chemistry.cooling.
COOLING_CHANNELS`) on a log-spaced log-T grid at construction, so one call
costs a single shared table lookup (index + weight from the uniform log-T
spacing, exactly what ``searchsorted`` would return) plus one vectorised
linear interpolation and one ``exp`` over the whole channel block, instead
of ~25 transcendental kernel evaluations.  Tables are cached per
``(n_bins, t_min, t_max)`` configuration and are dropped from pickles (a
worker process rebuilds from its own cache), and construction runs an
accuracy guard: interpolated values must match the analytic fits to
``rtol`` at every bin midpoint across the full temperature range.

The two piecewise fits (k9's 6700 K branch switch, k14's 0.04 eV
threshold) are tabulated as separate smooth branches and the ``where`` is
applied at evaluation time, so the tables never interpolate across a
discontinuity.  ``mode="analytic"`` falls back to direct evaluation of the
fits (bitwise the seed behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.chemistry import cooling as _cooling
from repro.kernels import dispatch as _kernels

#: validity range of the analytic fits; inputs are clipped into it (and
#: the tabulated grid spans exactly this range).
T_MIN = 1.0
T_MAX = 1e9

#: log-floor for the tables.  Must stay above the smallest *normal* double
#: (~2.2e-308): a lower floor makes ``exp`` of the blended table produce
#: denormals, which cost a ~40x microcode-assist penalty per element on
#: x86 and dominate the whole lookup.  1e-300 is still "zero" for any rate.
_LOG_FLOOR = 1e-300


def _clip_T(T):
    return np.clip(np.asarray(T, dtype=float), T_MIN, T_MAX)


class RateTable:
    """Evaluate all rate coefficients at an array of temperatures.

    Calling ``RateTable()(T)`` returns a dict name -> ndarray.  Individual
    rates are exposed as static methods for unit testing.

    Parameters
    ----------
    mode:
        ``"tabulated"`` (default) interpolates precomputed log-T tables;
        ``"analytic"`` evaluates the fits directly (the fallback mode).
    n_bins:
        Table resolution.  8192 log-spaced knots over [1, 1e9] K bound the
        interpolation error of the steepest Boltzmann factors (curvature
        of ln k <= ~700 where the rate is representable) below 1e-3.
    rtol:
        Accuracy guard: construction fails if any tabulated channel
        deviates from its analytic fit by more than this relative
        tolerance at any bin midpoint.
    """

    # --- hydrogen / helium ionisation balance (Cen 1992; Black 1981) -------
    @staticmethod
    def k1_HI_ionisation(T):
        """H + e -> H+ + 2e"""
        T = _clip_T(T)
        return (
            5.85e-11 * np.sqrt(T) * np.exp(-157809.1 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k2_HII_recombination(T):
        """H+ + e -> H + photon (case B-like fit)"""
        T = _clip_T(T)
        return (
            8.4e-11
            / np.sqrt(T)
            * (T / 1e3) ** -0.2
            / (1.0 + (T / 1e6) ** 0.7)
        )

    @staticmethod
    def k3_HeI_ionisation(T):
        """He + e -> He+ + 2e"""
        T = _clip_T(T)
        return (
            2.38e-11 * np.sqrt(T) * np.exp(-285335.4 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k4_HeII_recombination(T):
        """He+ + e -> He (radiative + dielectronic)"""
        T = _clip_T(T)
        radiative = 1.5e-10 * T**-0.6353
        dielectronic = (
            1.9e-3
            * T**-1.5
            * np.exp(-470000.0 / T)
            * (1.0 + 0.3 * np.exp(-94000.0 / T))
        )
        return radiative + dielectronic

    @staticmethod
    def k5_HeII_ionisation(T):
        """He+ + e -> He++ + 2e"""
        T = _clip_T(T)
        return (
            5.68e-12 * np.sqrt(T) * np.exp(-631515.0 / T) / (1.0 + np.sqrt(T / 1e5))
        )

    @staticmethod
    def k6_HeIII_recombination(T):
        """He++ + e -> He+"""
        T = _clip_T(T)
        return (
            3.36e-10
            / np.sqrt(T)
            * (T / 1e3) ** -0.2
            / (1.0 + (T / 1e6) ** 0.7)
        )

    # --- H2 formation via H- and H2+ ----------------------------------------
    @staticmethod
    def k7_HM_formation(T):
        """H + e -> H- + photon (Galli & Palla 1998)"""
        T = _clip_T(T)
        return 1.4e-18 * T**0.928 * np.exp(-T / 16200.0)

    @staticmethod
    def k8_H2_from_HM(T):
        """H- + H -> H2 + e (associative detachment)"""
        T = _clip_T(T)
        # weak T dependence; 1.3e-9 is the classic value near 100-1000 K
        return 1.3e-9 * (T / 300.0) ** 0.0 + 0.0 * T

    @staticmethod
    def k9_H2II_formation(T):
        """H + H+ -> H2+ + photon (Shapiro & Kang 1987)"""
        T = _clip_T(T)
        return np.where(T < 6700.0, _k9_low(T), _k9_high(T))

    @staticmethod
    def k10_H2_from_H2II(T):
        """H2+ + H -> H2 + H+ (Karpas et al. 1979)"""
        T = _clip_T(T)
        return 6.0e-10 + 0.0 * T

    # --- H2 destruction -------------------------------------------------------
    @staticmethod
    def k11_H2_HII_exchange(T):
        """H2 + H+ -> H2+ + H (Shapiro & Kang 1987)"""
        T = _clip_T(T)
        return 3.0e-10 * np.exp(-21050.0 / T)

    @staticmethod
    def k12_H2_e_dissociation(T):
        """H2 + e -> 2H + e"""
        T = _clip_T(T)
        return 4.38e-10 * T**0.35 * np.exp(-102000.0 / T)

    @staticmethod
    def k13_H2_H_dissociation(T):
        """H2 + H -> 3H (collisional dissociation, low-density limit;
        Dove & Mandy 1986 fit in eV as used by Abel et al. 1997)"""
        T = _clip_T(T)
        t_ev = T / 11604.5
        return (
            1.067e-10
            * t_ev**2.012
            * np.exp(-4.463 / t_ev)
            / (1.0 + 0.2472 * t_ev) ** 3.512
        )

    # --- H- / H2+ minor channels ---------------------------------------------
    @staticmethod
    def k14_HM_e_detachment(T):
        """H- + e -> H + 2e (approximate Janev-type fit)"""
        T = _clip_T(T)
        t_ev = T / 11604.5
        return np.where(t_ev > 0.04, _k14_branch(T), 0.0)

    @staticmethod
    def k16_HM_HII_neutralisation(T):
        """H- + H+ -> 2H (mutual neutralisation; Croft et al. 1999 scale)"""
        T = _clip_T(T)
        return 2.4e-6 / np.sqrt(T) * (1.0 + T / 20000.0)

    @staticmethod
    def k18_H2II_e_recombination(T):
        """H2+ + e -> 2H (dissociative recombination; Galli & Palla 1998)"""
        T = _clip_T(T)
        return 2.0e-7 / np.sqrt(T) * 1e2**0.0

    # --- three-body H2 formation (drives the final collapse; paper Sec. 4) ---
    @staticmethod
    def k22_threebody_H2(T):
        """3H -> H2 + H (Palla, Salpeter & Stahler 1983), cm^6/s"""
        T = _clip_T(T)
        return 5.5e-29 / T

    @staticmethod
    def k23_threebody_H2_with_H2(T):
        """2H + H2 -> 2 H2 (PSS83 / 8), cm^6/s"""
        T = _clip_T(T)
        return 5.5e-29 / (8.0 * T)

    # --- deuterium network (Galli & Palla 1998) ---------------------------------
    @staticmethod
    def d1_DII_recombination(T):
        """D+ + e -> D (same as hydrogen to excellent accuracy)"""
        return RateTable.k2_HII_recombination(T)

    @staticmethod
    def d2_D_charge_exchange(T):
        """D + H+ -> D+ + H (endothermic by 43 K)"""
        T = _clip_T(T)
        return 3.7e-10 * T**0.28 * np.exp(-43.0 / T)

    @staticmethod
    def d3_DII_charge_exchange(T):
        """D+ + H -> D + H+ (exothermic)"""
        T = _clip_T(T)
        return 3.7e-10 * T**0.28

    @staticmethod
    def d4_HD_formation(T):
        """D+ + H2 -> HD + H+"""
        T = _clip_T(T)
        return 2.1e-9 + 0.0 * T

    @staticmethod
    def d5_HD_destruction(T):
        """HD + H+ -> D+ + H2 (endothermic by 464 K)"""
        T = _clip_T(T)
        return 1.0e-9 * np.exp(-464.0 / T)

    #: names in evaluation order
    RATE_NAMES = (
        "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10",
        "k11", "k12", "k13", "k14", "k16", "k18", "k22", "k23",
        "d1", "d2", "d3", "d4", "d5",
    )

    # -------------------------------------------------------------- instance
    def __init__(self, mode: str = "tabulated", n_bins: int = 8192,
                 t_min: float = T_MIN, t_max: float = T_MAX,
                 rtol: float = 1e-3):
        if mode not in ("tabulated", "analytic"):
            raise ValueError(f"unknown RateTable mode {mode!r}")
        self.mode = mode
        self.n_bins = int(n_bins)
        self.t_min = float(t_min)
        self.t_max = float(t_max)
        self.rtol = float(rtol)
        self._tab = None
        if mode == "tabulated":
            self._ensure_table()

    def _ensure_table(self) -> "_LogTable":
        if self._tab is None:
            tab = _get_table(self.n_bins, self.t_min, self.t_max)
            if tab.max_rel_err > self.rtol:
                raise ValueError(
                    f"rate table ({self.n_bins} bins) only reaches rtol "
                    f"{tab.max_rel_err:.2e} (> {self.rtol:.1e}); raise "
                    f"n_bins or loosen rtol"
                )
            self._tab = tab
        return self._tab

    # the big table arrays never travel in pickles (the process-backend
    # workers receive the network per task); each process rebuilds from
    # its own cache on first use
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_tab"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------ evaluation
    def channels(self, T, cool: bool = True):
        """Evaluate all rate coefficients — and, when ``cool`` is true, all
        cooling-channel coefficients — at T in one shared table pass.

        Returns ``(rates, cooling_channels)``; the latter is ``None`` when
        ``cool`` is false.  This is the network hot path: one lookup feeds
        both the stiff solver and the thermal update of a substep.
        """
        T = _clip_T(T)
        if self.mode == "tabulated":
            ch = self._ensure_table().lookup(T)
        else:
            ch = {name: fn(T) for name, fn in _RATE_CHANNELS.items()}
            if cool:
                ch.update(_cooling.cooling_channels(T))
        rates = self._assemble_rates(T, ch)
        cool_ch = (
            {name: ch[name] for name in _cooling.COOLING_CHANNEL_NAMES}
            if cool else None
        )
        return rates, cool_ch

    @staticmethod
    def _assemble_rates(T, ch: dict) -> dict:
        """Apply the piecewise branch switches and alias d1 = k2."""
        rates = {}
        for name in RateTable.RATE_NAMES:
            if name == "k9":
                rates["k9"] = np.where(T < 6700.0, ch["k9_low"], ch["k9_high"])
            elif name == "k14":
                rates["k14"] = np.where(T / 11604.5 > 0.04, ch["k14_branch"], 0.0)
            elif name == "d1":
                rates["d1"] = ch["k2"]
            else:
                rates[name] = ch[name]
        return rates

    def __call__(self, T) -> dict:
        rates, _ = self.channels(T, cool=False)
        return rates


# ------------------------------------------------- smooth channel functions
# The piecewise fits are split into their smooth branches here so the
# tables never straddle a discontinuity; the branch switch is re-applied
# (exactly, on the true T) in RateTable._assemble_rates.
def _k9_low(T):
    return 1.85e-23 * T**1.8


def _k9_high(T):
    logratio = np.log10(np.maximum(T, 1.0) / 56200.0)
    return 5.81e-16 * (T / 56200.0) ** (-0.6657 * logratio)


def _k14_branch(T):
    t_ev = T / 11604.5
    return np.exp(
        -18.01849334
        + 2.3608522 * np.log(np.maximum(t_ev, 1e-10))
        - 0.28274430 * np.log(np.maximum(t_ev, 1e-10)) ** 2
    )


#: tabulated rate channels (smooth everywhere on [T_MIN, T_MAX]).
_RATE_CHANNELS = {
    "k1": RateTable.k1_HI_ionisation,
    "k2": RateTable.k2_HII_recombination,
    "k3": RateTable.k3_HeI_ionisation,
    "k4": RateTable.k4_HeII_recombination,
    "k5": RateTable.k5_HeII_ionisation,
    "k6": RateTable.k6_HeIII_recombination,
    "k7": RateTable.k7_HM_formation,
    "k8": RateTable.k8_H2_from_HM,
    "k9_low": _k9_low,
    "k9_high": _k9_high,
    "k10": RateTable.k10_H2_from_H2II,
    "k11": RateTable.k11_H2_HII_exchange,
    "k12": RateTable.k12_H2_e_dissociation,
    "k13": RateTable.k13_H2_H_dissociation,
    "k14_branch": _k14_branch,
    "k16": RateTable.k16_HM_HII_neutralisation,
    "k18": RateTable.k18_H2II_e_recombination,
    "k22": RateTable.k22_threebody_H2,
    "k23": RateTable.k23_threebody_H2_with_H2,
    "d2": RateTable.d2_D_charge_exchange,
    "d3": RateTable.d3_DII_charge_exchange,
    "d4": RateTable.d4_HD_formation,
    "d5": RateTable.d5_HD_destruction,
}


def _all_channel_funcs() -> dict:
    funcs = dict(_RATE_CHANNELS)
    funcs.update(_cooling.COOLING_CHANNELS)
    return funcs


def _index_weight(T_flat: np.ndarray, x0: float, h: float, n_bins: int):
    """Shared bin index + blend weight for a uniform log-T grid.

    Factored out of the blend so every kernel backend consumes identical
    indices/weights — the backends then only differ in who performs the
    gather + lerp.
    """
    u = (np.log(T_flat) - x0) / h
    i = u.astype(np.intp)
    np.clip(i, 0, n_bins - 2, out=i)
    w = u - i
    return i, w


def blend_table_numpy(logtab: np.ndarray, idx: np.ndarray,
                      weight: np.ndarray) -> np.ndarray:
    """Reference gather + lerp + exp over the channel-major log table.

    This is the ``chem.blend`` entry of the NumPy kernel backend; compiled
    backends replace the gather/lerp loop but keep the same trailing
    ``np.exp`` so the tier stays bitwise-identical (SIMD vs libm ``exp``
    differ in the last ulp).
    """
    lo = np.take(logtab, idx, axis=1)
    out = np.take(logtab, idx + 1, axis=1)
    # out = exp(lo + w * (out - lo)), fused in place
    out -= lo
    out *= weight
    out += lo
    np.exp(out, out=out)
    return out


class _LogTable:
    """ln(coefficient) of every channel on a uniform log-T grid.

    ``lookup`` computes the shared bin index and weight once (the uniform
    spacing makes the ``searchsorted`` a single multiply-and-floor), row-
    gathers both bracketing knots for *all* channels at once, blends, and
    exponentiates the whole block in one call.
    """

    def __init__(self, n_bins: int, t_min: float, t_max: float):
        self.n_bins = int(n_bins)
        self.x0 = float(np.log(t_min))
        x1 = float(np.log(t_max))
        self.h = (x1 - self.x0) / (self.n_bins - 1)
        x = self.x0 + self.h * np.arange(self.n_bins)
        T = np.exp(x)
        funcs = _all_channel_funcs()
        self.names = tuple(funcs)
        with np.errstate(under="ignore"):
            rows = [np.asarray(fn(T), dtype=float) for fn in funcs.values()]
        # channel-major (C, n_bins): the per-cell gather then reads one
        # contiguous 64 kB row per channel (stays L2-resident), and the
        # blended block comes out channel-contiguous with no transpose.
        self.logtab = np.log(np.maximum(np.vstack(rows), _LOG_FLOOR))
        # accuracy guard: worst relative deviation from the analytic fits
        # at every bin midpoint (the interpolation error maximum)
        mid = np.exp(x[:-1] + 0.5 * self.h)
        with np.errstate(under="ignore"):
            exact = np.vstack([np.asarray(fn(mid), dtype=float)
                               for fn in funcs.values()])
            approx = self._blend(mid)
        # relative to max(|exact|, 1e-280): coefficients below that are
        # physically zero and only differ by the table's 1e-300 floor
        err = np.abs(approx - exact) / np.maximum(np.abs(exact), 1e-280)
        self.max_rel_err = float(err.max())

    def _blend(self, T_flat: np.ndarray) -> np.ndarray:
        """Interpolated coefficients, shape (n_channels, T_flat.size)."""
        i, w = _index_weight(T_flat, self.x0, self.h, self.n_bins)
        return _kernels.get("chem.blend")(self.logtab, i, w)

    def lookup(self, T) -> dict:
        T = np.asarray(T, dtype=float)
        shape = T.shape
        block = self._blend(T.reshape(-1))
        return {
            name: block[j].reshape(shape) for j, name in enumerate(self.names)
        }


_TABLE_CACHE: dict[tuple, _LogTable] = {}


def _get_table(n_bins: int, t_min: float, t_max: float) -> _LogTable:
    key = (int(n_bins), float(t_min), float(t_max))
    tab = _TABLE_CACHE.get(key)
    if tab is None:
        tab = _TABLE_CACHE[key] = _LogTable(*key)
    return tab
