"""Shared worker-pool accounting for multi-run operation.

The execution engine's pools are process-global (keyed by backend and
worker count) and each :class:`~repro.exec.engine.ExecutionEngine` sizes
its dispatches as if it owned the machine.  That is correct for one run;
a run *service* packing several concurrent runs onto the same host needs
one ledger that answers "how much of the shared budget is spoken for?"
before it launches the next run — and it needs leases to survive daemon
bookkeeping in one place, whatever launcher (thread or subprocess) is
behind each run.

:class:`WorkerLedger` is that ledger: thread-safe lease/release of worker
slots against a fixed total.  The run-service daemon takes a lease before
starting a run and releases it when the run's handle is reaped, so the
sum of live leases never exceeds the budget the operator gave the
service, regardless of how individual runs size their pools.
"""

from __future__ import annotations

import threading


class LedgerError(RuntimeError):
    """A lease request that the budget cannot satisfy."""


class WorkerLedger:
    """Fixed-budget worker accounting for co-scheduled runs.

    Not a pool: it never creates workers, it only tracks who is entitled
    to how many.  The daemon consults :meth:`available` when applying
    scheduler decisions and the CLI's ``ps`` renders :meth:`snapshot`.
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("total workers must be >= 1")
        self.total = int(total)
        self._leases: dict[str, int] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- leases
    def lease(self, owner: str, workers: int) -> None:
        """Reserve ``workers`` slots for ``owner``; raises on overcommit."""
        workers = int(workers)
        if workers < 1:
            raise ValueError("lease must be >= 1 worker")
        with self._lock:
            if owner in self._leases:
                raise LedgerError(f"{owner!r} already holds a lease")
            in_use = sum(self._leases.values())
            if in_use + workers > self.total:
                raise LedgerError(
                    f"lease of {workers} for {owner!r} exceeds budget: "
                    f"{in_use}/{self.total} in use"
                )
            self._leases[owner] = workers

    def release(self, owner: str) -> int:
        """Free an owner's lease; returns the freed count (0 if absent —
        release is idempotent so reap paths never have to care)."""
        with self._lock:
            return self._leases.pop(owner, 0)

    # ------------------------------------------------------------- queries
    def held(self, owner: str) -> int:
        with self._lock:
            return self._leases.get(owner, 0)

    def in_use(self) -> int:
        with self._lock:
            return sum(self._leases.values())

    def available(self) -> int:
        return self.total - self.in_use()

    def snapshot(self) -> dict:
        """JSON-friendly view for ``ps`` output and the service journal."""
        with self._lock:
            return {
                "total": self.total,
                "in_use": sum(self._leases.values()),
                "leases": dict(sorted(self._leases.items())),
            }
