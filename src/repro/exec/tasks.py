"""Per-grid work units the execution engine dispatches.

Each task wraps one independent unit of per-grid physics — a hydro sweep,
a chemistry network advance, or a gravity acceleration evaluation — for
exactly one grid.  Tasks on the same level never touch each other's data
(the AMR barrier structure: grids on a level are independent between
boundary exchanges), which is what makes results bitwise identical across
backends and worker counts.

Two execution paths:

* ``run_inline()`` — operate directly on the live grid arrays (serial and
  thread backends; zero copies).
* ``export()`` / ``absorb()`` — stage arrays through shared memory for the
  process backend: ``export`` names the input arrays and any output space,
  the worker-side kernel (:mod:`repro.exec.kernels`) computes in place on
  the shared block, and ``absorb`` writes the results back into the grid.

Tasks also expose ``grid_id`` / ``level`` / ``n_cells`` / ``start_index``
so the scheduler can feed them straight through
:func:`repro.parallel.distribution.balance_grids`.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.ppm import StepFluxes
from repro.hydro.state import META_KEY
from repro.runtime import faults


class TaskFailure(RuntimeError):
    """Wrapper for a worker-side error that could not travel verbatim."""


class GridTask:
    """Base: scheduling metadata + the result and error slots.

    ``error`` is filled (and ``result`` left None) when the task's kernel
    raised: the engine runs tasks through :meth:`run_safe` so one sick
    grid cannot abort the dispatch of its healthy siblings — the defense
    ladder (:mod:`repro.amr.defense`) decides afterwards whether to rescue
    or re-raise.
    """

    kind = "task"

    def __init__(self, grid):
        self.grid = grid
        self.result = None
        self.error: BaseException | None = None
        #: set once the task's result (or error) has been applied — the
        #: process backend uses it to re-dispatch only unfinished tasks
        #: after a worker death
        self.done = False

    # ------------------------------------------------- scheduler interface
    @property
    def grid_id(self) -> int:
        return self.grid.grid_id

    @property
    def level(self) -> int:
        return self.grid.level

    @property
    def n_cells(self) -> int:
        return int(self.grid.n_cells)

    @property
    def start_index(self) -> tuple:
        return tuple(int(s) for s in self.grid.start_index)

    # --------------------------------------------------------------- paths
    def run_safe(self) -> None:
        """Run inline, capturing any kernel exception into ``error``."""
        try:
            self.run_inline()
        except Exception as exc:
            self.result = None
            self.error = exc
        self.done = True

    def run_inline(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def export(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def absorb(self, views: dict, ret) -> None:  # pragma: no cover
        raise NotImplementedError

    # --------------------------------------------------------------- utils
    def _field_names(self) -> list[str]:
        return [name for name, _ in self.grid.fields.array_items()]

    def _export_fields(self) -> dict:
        return {f"f:{name}": arr for name, arr in self.grid.fields.array_items()}

    def _absorb_fields(self, views: dict) -> None:
        for name, arr in self.grid.fields.array_items():
            arr[...] = views[f"f:{name}"]

    def _fault_meta(self, meta: dict) -> dict:
        """Attach parent-side fault decisions for the worker kernel.

        The decision to fire is taken here — in deterministic submission
        context, one ``take()`` per task exactly like the inline path — so
        which task fails never depends on worker scheduling.
        """
        if faults.take("worker_kill", self.level, self.grid_id) is not None:
            meta["fault_kill"] = True
        return meta

    def absorb_failure(self, error: BaseException) -> None:
        """Record a worker-side kernel error (process backend)."""
        self.result = None
        self.error = error


class HydroTask(GridTask):
    """One solver step on one grid; result is the StepFluxes."""

    kind = "hydro"

    def __init__(self, grid, solver, dt: float, a: float, adot: float,
                 accel, permute: int):
        super().__init__(grid)
        self.solver = solver
        self.dt = float(dt)
        self.a = float(a)
        self.adot = float(adot)
        self.accel = accel
        self.permute = int(permute)

    def _nan_fault_plan(self):
        return faults.plan_nan_cell(
            self.level, self.grid_id,
            tuple(int(d) for d in self.grid.dims), self.grid.nghost,
        )

    def run_inline(self) -> None:
        self.result = self.solver.step(
            self.grid.fields, self.grid.dx, self.dt, self.a, self.adot,
            self.accel, self.permute,
        )
        faults.apply_nan_cell(self.grid.fields, self._nan_fault_plan())

    def export(self):
        arrays = self._export_fields()
        if self.accel is not None:
            arrays["accel"] = self.accel
        meta = {
            "solver": self.solver,
            "field_names": self._field_names(),
            "advected": list(self.grid.fields.advected),
            "dx": float(self.grid.dx),
            "dt": self.dt,
            "a": self.a,
            "adot": self.adot,
            "permute": self.permute,
            "has_accel": self.accel is not None,
        }
        # fault decisions are taken parent-side (deterministic submission
        # context); the worker only applies what the meta tells it to
        plan = self._nan_fault_plan()
        if plan is not None:
            meta["fault_nan"] = plan
        return "hydro", arrays, {}, self._fault_meta(meta)

    def absorb(self, views: dict, ret) -> None:
        self._absorb_fields(views)
        out = StepFluxes()
        out.fluxes = ret["fluxes"]
        out.diagnostics = dict(ret.get("diag") or {})
        self.result = out


class ChemistryTask(GridTask):
    """Sub-cycled network + cooling advance of one grid's FieldSet."""

    kind = "chemistry"

    def __init__(self, grid, network, dt_code: float, units, a: float):
        super().__init__(grid)
        self.network = network
        self.dt_code = float(dt_code)
        self.units = units
        self.a = float(a)

    def run_inline(self) -> None:
        faults.maybe_raise("chem_blowup", self.level, self.grid_id)
        self.result = self.network.advance_fields(
            self.grid.fields, self.dt_code, self.units, self.a
        )

    def export(self):
        meta = {
            "network": self.network,
            "units": self.units,
            "field_names": self._field_names(),
            "advected": list(self.grid.fields.advected),
            "dt": self.dt_code,
            "a": self.a,
        }
        if faults.take("chem_blowup", self.level, self.grid_id) is not None:
            meta["fault_raise"] = "chem_blowup"
        return "chemistry", self._export_fields(), {}, self._fault_meta(meta)

    def absorb(self, views: dict, ret) -> None:
        self._absorb_fields(views)
        self.result = ret


class GravityAccelTask(GridTask):
    """g = -grad(phi)/a on one grid; result is the (3, ...) accel field."""

    kind = "gravity"

    def __init__(self, grid, gravity, a: float):
        super().__init__(grid)
        self.gravity = gravity
        self.a = float(a)

    def run_inline(self) -> None:
        self.result = self.gravity.acceleration(self.grid, self.a)

    def export(self):
        arrays = {"phi": self.grid.phi}
        outputs = {"acc": ((3,) + self.grid.phi.shape, "<f8")}
        meta = {"dx": float(self.grid.dx), "a": self.a}
        return "gravity", arrays, outputs, self._fault_meta(meta)

    def absorb(self, views: dict, ret) -> None:
        self.result = views["acc"].copy()


# re-exported so kernels.py (worker side) and tasks.py agree on the key
FIELD_META_KEY = META_KEY
