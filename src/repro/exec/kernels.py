"""Worker-side kernels for the process backend.

Everything here must be importable at module level (the pool pickles only
the function reference plus small metadata).  The bulk data travels through
the shared-memory block named in the payload: the kernel maps ndarray views
over it, computes **in place**, and returns only small picklable results
(the hydro fluxes are fresh arrays produced by the sweep, never views of
the shared block).

Determinism: each kernel runs the *same* NumPy code the serial path runs,
on a bit-exact copy of the same inputs, so the outputs are bitwise
identical to serial execution regardless of worker count or scheduling.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.exec import shm as shm_codec
from repro.hydro.state import FieldSet, META_KEY


def _build_fields(views: dict, meta: dict) -> FieldSet:
    fields = FieldSet()
    fields[META_KEY] = list(meta["advected"])
    for name in meta["field_names"]:
        fields[name] = views[f"f:{name}"]
    return fields


def _sync_fields(fields: FieldSet, views: dict, meta: dict) -> None:
    """Write rebound field arrays back into the shared block.

    Solver/network code mostly updates in place, but a few updates rebind
    dict keys to fresh arrays (e.g. the dual-energy sync); those values
    must be copied into the shared views before the parent reads them.
    """
    for name in meta["field_names"]:
        view = views[f"f:{name}"]
        if fields[name] is not view:
            view[...] = fields[name]


def _hydro_kernel(views: dict, meta: dict):
    fields = _build_fields(views, meta)
    accel = views.get("accel") if meta["has_accel"] else None
    fluxes = meta["solver"].step(
        fields, meta["dx"], meta["dt"], meta["a"], meta["adot"], accel,
        meta["permute"],
    )
    _sync_fields(fields, views, meta)
    # flux arrays are freshly computed (never shared-block views) but make
    # them contiguous so the return pickle is a straight memcpy
    return {
        axis: {name: np.ascontiguousarray(arr) for name, arr in per.items()}
        for axis, per in fluxes.fluxes.items()
    }


def _chemistry_kernel(views: dict, meta: dict):
    fields = _build_fields(views, meta)
    stats = meta["network"].advance_fields(
        fields, meta["dt"], meta["units"], meta["a"]
    )
    _sync_fields(fields, views, meta)
    return stats


def _gravity_kernel(views: dict, meta: dict):
    phi = views["phi"]
    acc = views["acc"]
    for axis in range(3):
        acc[axis] = -np.gradient(phi, meta["dx"], axis=axis) / meta["a"]
    return None


KERNELS = {
    "hydro": _hydro_kernel,
    "chemistry": _chemistry_kernel,
    "gravity": _gravity_kernel,
}


def run_packed_task(kernel: str, shm_name: str, layout, meta: dict) -> dict:
    """Pool entry point: map the block, run the kernel, report timing."""
    t0 = perf_counter()
    block, views = shm_codec.attach(shm_name, layout)
    try:
        ret = KERNELS[kernel](views, meta)
    finally:
        del views
        block.close()
    return {"pid": os.getpid(), "seconds": perf_counter() - t0, "ret": ret}
