"""Worker-side kernels for the process backend.

Everything here must be importable at module level (the pool pickles only
the function reference plus small metadata).  The bulk data travels through
the shared-memory block named in the payload: the kernel maps ndarray views
over it, computes **in place**, and returns only small picklable results
(the hydro fluxes are fresh arrays produced by the sweep, never views of
the shared block).

Determinism: each kernel runs the *same* NumPy code the serial path runs,
on a bit-exact copy of the same inputs, so the outputs are bitwise
identical to serial execution regardless of worker count or scheduling.
"""

from __future__ import annotations

import os
import pickle
import signal
from time import perf_counter

import numpy as np

from repro.exec import shm as shm_codec
from repro.hydro.state import FieldSet, META_KEY
from repro.kernels import dispatch as kernel_dispatch
from repro.runtime.faults import InjectedFaultError


def _build_fields(views: dict, meta: dict) -> FieldSet:
    fields = FieldSet()
    fields[META_KEY] = list(meta["advected"])
    for name in meta["field_names"]:
        fields[name] = views[f"f:{name}"]
    return fields


def _sync_fields(fields: FieldSet, views: dict, meta: dict) -> None:
    """Write rebound field arrays back into the shared block.

    Solver/network code mostly updates in place, but a few updates rebind
    dict keys to fresh arrays (e.g. the dual-energy sync); those values
    must be copied into the shared views before the parent reads them.
    """
    for name in meta["field_names"]:
        view = views[f"f:{name}"]
        if fields[name] is not view:
            view[...] = fields[name]


def _hydro_kernel(views: dict, meta: dict):
    fields = _build_fields(views, meta)
    accel = views.get("accel") if meta["has_accel"] else None
    fluxes = meta["solver"].step(
        fields, meta["dx"], meta["dt"], meta["a"], meta["adot"], accel,
        meta["permute"],
    )
    _sync_fields(fields, views, meta)
    # parent-side fault decision: corrupt the named cell after the solve,
    # exactly where the inline path does
    plan = meta.get("fault_nan")
    if plan is not None:
        views[f"f:{plan['field']}"][tuple(plan["index"])] = np.nan
    # flux arrays are freshly computed (never shared-block views) but make
    # them contiguous so the return pickle is a straight memcpy
    return {
        "fluxes": {
            axis: {name: np.ascontiguousarray(arr)
                   for name, arr in per.items()}
            for axis, per in fluxes.fluxes.items()
        },
        "diag": dict(fluxes.diagnostics),
    }


def _chemistry_kernel(views: dict, meta: dict):
    if meta.get("fault_raise"):
        raise InjectedFaultError(meta["fault_raise"], ("worker",))
    fields = _build_fields(views, meta)
    stats = meta["network"].advance_fields(
        fields, meta["dt"], meta["units"], meta["a"]
    )
    _sync_fields(fields, views, meta)
    return stats


def _gravity_kernel(views: dict, meta: dict):
    phi = views["phi"]
    acc = views["acc"]
    for axis in range(3):
        acc[axis] = -np.gradient(phi, meta["dx"], axis=axis) / meta["a"]
    return None


KERNELS = {
    "hydro": _hydro_kernel,
    "chemistry": _chemistry_kernel,
    "gravity": _gravity_kernel,
}


def run_packed_task(kernel: str, shm_name: str, layout, meta: dict) -> dict:
    """Pool entry point: map the block, run the kernel, report timing.

    Kernel exceptions are *returned* (``error`` key) rather than raised:
    a raising future would poison the dispatch of every healthy sibling
    grid, and the defense ladder needs per-task failure attribution.
    """
    if meta.pop("fault_kill", False):
        # injected worker death: indistinguishable from the OOM killer
        os.kill(os.getpid(), signal.SIGKILL)
    t0 = perf_counter()
    kernel_mark = kernel_dispatch.counters_totals()
    block, views = shm_codec.attach(shm_name, layout)
    error = None
    ret = None
    try:
        try:
            ret = KERNELS[kernel](views, meta)
        except Exception as exc:
            try:  # ship the original exception when it pickles
                pickle.dumps(exc)
                error = exc
            except Exception:
                from repro.exec.tasks import TaskFailure

                error = TaskFailure(f"{type(exc).__name__}: {exc}")
    finally:
        del views
        block.close()
    return {"pid": os.getpid(), "seconds": perf_counter() - t0, "ret": ret,
            "error": error,
            # per-kernel call/time deltas, merged into the parent's
            # counters by the dispatcher so telemetry sees worker activity
            "kernel_counters": kernel_dispatch.counters_delta(kernel_mark)}
