"""The task-based execution engine (serial / thread / process backends).

One :class:`ExecutionEngine` per :class:`HierarchyEvolver`.  The evolver
hands it the per-grid tasks of one level update (hydro sweeps, chemistry
advances, gravity accelerations); the engine orders and assigns them with
the Sec. 3.4 distribution strategies (fed by *measured* per-grid timings
via :class:`~repro.exec.calibration.WorkCalibrator`), executes them on the
selected backend, and reports per-worker busy times so the run telemetry
can carry real utilisation and load-imbalance figures.

Backends
--------
``serial``
    Today's exact code path: tasks run inline, in submission order, with
    the same component-timer attribution as before the engine existed.
``thread``
    A shared :class:`ThreadPoolExecutor`; tasks operate directly on the
    live grid arrays (zero-copy) and NumPy releases the GIL inside the
    heavy kernels.  Each worker drains its own scheduler-assigned queue so
    per-worker busy time is meaningful.
``process``
    A shared fork-server pool; grid arrays are staged through POSIX shared
    memory (:mod:`repro.exec.shm` — the worker computes in place on the
    shared block; no pickling of bulk data).

Determinism: tasks on one level touch only their own grid, every kernel
runs the same NumPy code on the same inputs, and results are written back
in submission order — so all backends and worker counts produce bitwise
identical hierarchies, and checkpoints/resume work unchanged.

Pools are process-global (keyed by backend + worker count), created
lazily, and drained at interpreter exit; SIGTERM drains therefore leave no
orphaned workers.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

from repro.exec import shm as shm_codec
from repro.exec.calibration import WorkCalibrator
from repro.exec.config import ExecConfig
from repro.exec.kernels import run_packed_task
from repro.kernels import dispatch as kernel_dispatch
from repro.parallel.distribution import balance_grids, grid_work

#: outstanding shared-memory tasks per worker before the dispatcher blocks
#: and reclaims (bounds staging memory on grid-rich levels)
PROCESS_WINDOW_PER_WORKER = 4


def _run_task(task) -> None:
    """Inline execution with error capture when the task supports it."""
    run_safe = getattr(task, "run_safe", None)
    if run_safe is not None:
        run_safe()
    else:
        task.run_inline()


# --------------------------------------------------------------------- pools
_POOLS: dict = {}


def _worker_init(kernel_backend: str) -> None:
    """Process-pool initializer: select + warm the kernel backend once per
    worker, so an njit/cffi compile never lands inside a task timing."""
    kernel_dispatch.set_backend(kernel_backend, env=False)
    kernel_dispatch.warm()


def _process_pool_key(workers: int) -> tuple:
    # keyed by kernel backend too: switching tiers mid-process must not
    # reuse workers warmed (and pinned) on the old backend
    return ("process", workers, kernel_dispatch.active_backend())


def _get_pool(backend: str, workers: int):
    key = (
        _process_pool_key(workers)
        if backend == "process"
        else (backend, workers)
    )
    pool = _POOLS.get(key)
    if pool is None:
        if backend == "thread":
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-exec"
            )
        else:
            ctx = (
                mp.get_context("fork")
                if "fork" in mp.get_all_start_methods()
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(key[2],),
            )
        _POOLS[key] = pool
    return pool


def shutdown_pools(wait: bool = True) -> None:
    """Drain every shared worker pool (idempotent; also runs at exit)."""
    for pool in list(_POOLS.values()):
        pool.shutdown(wait=wait)
    _POOLS.clear()


atexit.register(shutdown_pools)


# ------------------------------------------------------------------- reports
class ExecReport:
    """What one dispatch measured: per-task times + per-worker busy time."""

    def __init__(self, backend: str, workers: int):
        self.backend = backend
        self.workers = int(workers)
        #: (kind, level, cells, seconds) per task, in submission order
        self.task_times: list[tuple] = []
        #: worker key (index or pid) -> busy seconds
        self.worker_busy: dict = defaultdict(float)
        self.dispatch_wall = 0.0
        #: True when tasks ran inline under the caller's component timers
        #: (serial path) — kernel seconds are then already attributed
        self.inline_timed = False
        #: process-backend pools rebuilt after a worker death this dispatch
        self.worker_restarts = 0

    def record(self, task, seconds: float, worker) -> None:
        self.task_times.append((task.kind, task.level, task.n_cells, seconds))
        self.worker_busy[worker] += seconds

    @property
    def n_tasks(self) -> int:
        return len(self.task_times)

    @property
    def kernel_seconds(self) -> dict:
        out: dict = defaultdict(float)
        for kind, _level, _cells, seconds in self.task_times:
            out[kind] += seconds
        return dict(out)

    @property
    def kind_counts(self) -> dict:
        out: dict = defaultdict(int)
        for kind, *_ in self.task_times:
            out[kind] += 1
        return dict(out)

    @property
    def busy_total(self) -> float:
        return float(sum(self.worker_busy.values()))

    @property
    def busy_max(self) -> float:
        return float(max(self.worker_busy.values(), default=0.0))

    @property
    def imbalance(self) -> float:
        """max/mean worker busy time over the configured pool (idle = 0)."""
        if not self.worker_busy or self.workers < 1:
            return 1.0
        mean = self.busy_total / self.workers
        if mean <= 0.0:
            return 1.0
        return self.busy_max / mean

    @property
    def overhead(self) -> float:
        """Dispatch wall time not covered by the busiest worker: packing,
        scheduling, synchronisation — the engine's own cost."""
        return max(0.0, self.dispatch_wall - self.busy_max)


class StepExecStats:
    """Aggregates dispatch reports across one root step (all levels)."""

    def __init__(self):
        self.dispatches = 0
        self.tasks = 0
        self.busy = 0.0
        self.wall = 0.0
        self.overhead = 0.0
        self.worker_restarts = 0
        #: level -> [sum of busy_max, sum of busy_mean] across dispatches
        self.per_level: dict = defaultdict(lambda: [0.0, 0.0])

    def absorb(self, level, report: ExecReport) -> None:
        self.dispatches += 1
        self.tasks += report.n_tasks
        self.busy += report.busy_total
        self.wall += report.dispatch_wall
        self.overhead += report.overhead
        self.worker_restarts += report.worker_restarts
        if level is not None and report.workers >= 1:
            acc = self.per_level[int(level)]
            acc[0] += report.busy_max
            acc[1] += report.busy_total / report.workers

    def snapshot(self, backend: str, workers: int) -> dict:
        """JSON-native summary for the telemetry step record."""
        out = {
            "backend": backend,
            "workers": int(workers),
            "dispatches": self.dispatches,
            "tasks": self.tasks,
            "overhead": round(self.overhead, 6),
            "utilisation": (
                round(self.busy / (workers * self.wall), 4)
                if self.wall > 0.0 and workers >= 1
                else 1.0
            ),
            "imbalance": {
                str(level): round(acc[0] / acc[1], 4)
                for level, acc in sorted(self.per_level.items())
                if acc[1] > 0.0
            },
        }
        if self.worker_restarts:
            out["worker_restarts"] = self.worker_restarts
        return out

    def reset(self) -> None:
        self.__init__()


# -------------------------------------------------------------------- engine
class ExecutionEngine:
    """Dispatches per-grid tasks for one evolver.

    The engine object is cheap (pools are shared process-globals); each
    evolver owns one so its calibration state and per-root-step stats stay
    private.
    """

    def __init__(self, config=None, calibrator: WorkCalibrator | None = None):
        self.config = ExecConfig.resolve(config)
        self.calibrator = calibrator or WorkCalibrator()
        self.step_stats = StepExecStats()
        #: optional callback(event_dict) for defense-relevant engine events
        #: (worker restarts); wired up by the evolver when a ladder is active
        self.on_event = None

    # ------------------------------------------------------------ lifecycle
    def begin_root_step(self) -> None:
        self.step_stats.reset()

    def step_snapshot(self) -> dict:
        return self.step_stats.snapshot(self.config.backend,
                                        self.config.workers)

    # ----------------------------------------------------------- scheduling
    def plan_queues(self, tasks: list) -> list[list]:
        """Assign tasks to worker queues via the distribution strategies."""
        workers = self.config.workers
        if workers <= 1 or len(tasks) <= 1:
            return [list(tasks)]
        assignment = balance_grids(
            tasks, workers, self.config.strategy,
            cost_model=self.calibrator,
        )
        queues: list[list] = [[] for _ in range(workers)]
        for task in tasks:
            queues[assignment[task.grid_id]].append(task)
        return queues

    def _submission_order(self, tasks: list) -> list:
        """Global order for pools that self-assign (process backend):
        longest-processing-time first approximates the greedy schedule."""
        if self.config.strategy == "greedy":
            return sorted(
                tasks,
                key=lambda t: -grid_work(t, cost_model=self.calibrator),
            )
        return list(tasks)

    # ------------------------------------------------------------- dispatch
    def run(self, tasks, level=None, timers=None) -> ExecReport:
        """Execute independent per-grid tasks; apply results in order.

        Returns the dispatch report (also folded into the calibrator and
        the per-root-step telemetry stats).
        """
        tasks = list(tasks)
        cfg = self.config
        report = ExecReport(cfg.backend, cfg.workers)
        if not tasks:
            return report
        t0 = perf_counter()
        if (
            cfg.backend == "serial"
            or len(tasks) < cfg.min_parallel_tasks
        ):
            self._run_inline(tasks, report, timers)
        elif cfg.backend == "thread":
            self._run_threads(tasks, report)
        else:
            self._run_processes(tasks, report)
        report.dispatch_wall = perf_counter() - t0

        self.calibrator.observe_report(report)
        self.step_stats.absorb(level, report)
        if timers is not None:
            if not report.inline_timed:
                for kind, seconds in report.kernel_seconds.items():
                    timers.add_seconds(kind, seconds,
                                       count=report.kind_counts[kind])
            timers.add_seconds("exec", report.overhead)
        return report

    # -------------------------------------------------------------- serial
    def _run_inline(self, tasks, report: ExecReport, timers) -> None:
        report.inline_timed = timers is not None
        for task in tasks:
            t0 = perf_counter()
            if timers is not None:
                with timers.section(task.kind):
                    _run_task(task)
            else:
                _run_task(task)
            report.record(task, perf_counter() - t0, 0)

    # ------------------------------------------------------------- threads
    def _run_threads(self, tasks, report: ExecReport) -> None:
        queues = self.plan_queues(tasks)
        pool = _get_pool("thread", self.config.workers)

        def drain(queue):
            times = []
            for task in queue:
                t0 = perf_counter()
                _run_task(task)
                times.append(perf_counter() - t0)
            return times

        futures = [
            (idx, queue, pool.submit(drain, queue))
            for idx, queue in enumerate(queues)
            if queue
        ]
        for idx, queue, future in futures:
            for task, seconds in zip(queue, future.result()):
                report.record(task, seconds, idx)

    # ----------------------------------------------------------- processes
    def _run_processes(self, tasks, report: ExecReport) -> None:
        """Dispatch through the shared pool; survive one worker death.

        A task whose kernel *raises* completes normally (the error travels
        in the return payload — see :func:`run_packed_task`).  A task whose
        worker *dies* (OOM killer, injected ``worker_kill``) breaks the
        pool: every in-flight future fails.  The engine then rebuilds the
        pool once and re-dispatches only the tasks that never finished —
        their staged inputs were copies, so a retry is bit-exact — and
        records a ``worker_restart`` event.  A second death aborts the
        dispatch (a systematically lethal task must not loop forever).
        """
        pending = self._submission_order(tasks)
        for attempt in range(2):
            try:
                self._process_pass(pending, report)
                return
            except BrokenProcessPool:
                _POOLS.pop(_process_pool_key(self.config.workers), None)
                pending = [t for t in pending if not getattr(t, "done", True)]
                if attempt == 1 or not pending:
                    raise
                report.worker_restarts += 1
                if self.on_event is not None:
                    self.on_event({
                        "worker_restart": True,
                        "retried_tasks": len(pending),
                    })

    def _process_pass(self, tasks, report: ExecReport) -> None:
        pool = _get_pool("process", self.config.workers)
        window = max(self.config.workers * PROCESS_WINDOW_PER_WORKER, 1)
        inflight: list = []

        def reclaim() -> None:
            # peek-then-pop so a raising future (dead worker) leaves the
            # entry in ``inflight`` for the cleanup path to release
            task, block, layout, future = inflight[0]
            out = future.result()
            inflight.pop(0)
            error = out.get("error")
            if error is None:
                views = shm_codec.views_of(block, layout)
                task.absorb(views, out["ret"])
                del views
            else:
                task.absorb_failure(error)
            task.done = True
            shm_codec.release(block, unlink=True)
            report.record(task, out["seconds"], out["pid"])
            # fold worker-side kernel activity into this process's counters
            kernel_dispatch.merge_counters(out.get("kernel_counters"))

        try:
            for task in tasks:
                kernel, arrays, outputs, meta = task.export()
                block, layout = shm_codec.pack(arrays, outputs)
                future = pool.submit(
                    run_packed_task, kernel, block.name, layout, meta
                )
                inflight.append((task, block, layout, future))
                if len(inflight) >= window:
                    reclaim()
            while inflight:
                reclaim()
        except Exception:
            # a broken pool must not leak shared memory
            for _task, block, _layout, future in inflight:
                future.cancel()
                try:
                    shm_codec.release(block, unlink=True)
                except BufferError:
                    pass
            raise
