"""Execution-engine configuration and environment resolution.

The backend and worker count can be fixed programmatically (``ExecConfig``
passed to :class:`repro.amr.evolve.HierarchyEvolver`), from the CLI
(``--exec-backend`` / ``--workers``), or from the environment:

* ``REPRO_EXEC_BACKEND`` — ``serial`` (default), ``thread`` or ``process``
* ``REPRO_WORKERS``      — worker count (defaults to the host's CPU count
  for the parallel backends)

The environment path is what lets the whole test suite run through a
parallel backend unchanged (the CI matrix job sets
``REPRO_EXEC_BACKEND=thread REPRO_WORKERS=2``): results are bitwise
identical across backends by construction, so every test must pass either
way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

BACKENDS = ("serial", "thread", "process")

ENV_BACKEND = "REPRO_EXEC_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"


def _default_workers(backend: str) -> int:
    if backend == "serial":
        return 1
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecConfig:
    """Backend selection + scheduling knobs for per-grid dispatch."""

    backend: str = "serial"
    workers: int = 1
    #: distribution strategy used to order/assign tasks
    #: (see :func:`repro.parallel.distribution.balance_grids`)
    strategy: str = "greedy"
    #: dispatches with fewer tasks than this run inline (pool overhead
    #: cannot pay for itself on one or two tasks)
    min_parallel_tasks: int = 2

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown exec backend {self.backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @classmethod
    def resolve(cls, value=None, backend: str | None = None,
                workers: int | None = None) -> "ExecConfig":
        """Normalise any user-facing spelling into an ExecConfig.

        Precedence: explicit ``value`` (ExecConfig or dict) > explicit
        ``backend``/``workers`` arguments > environment > serial default.
        """
        if isinstance(value, ExecConfig):
            return value
        if isinstance(value, dict):
            return cls(**value)
        if backend is None:
            backend = os.environ.get(ENV_BACKEND, "").strip() or None
        if workers is None:
            env = os.environ.get(ENV_WORKERS, "").strip()
            workers = int(env) if env else None
        if backend is None:
            # asking for several workers without naming a backend means
            # "parallel, zero-copy" — the thread backend
            backend = "thread" if (workers or 1) > 1 else "serial"
        if workers is None:
            workers = _default_workers(backend)
        if backend == "serial":
            workers = 1
        return cls(backend=backend, workers=int(workers))
