"""Measured per-grid cost model feeding the task scheduler.

The paper's load-balancing story (Sec. 3.4) rests on a *work estimate* per
grid — originally the analytic ``cells * r^level`` model in
:func:`repro.parallel.distribution.grid_work`.  The execution engine closes
the loop: after every level dispatch it feeds the measured per-task wall
times back into this calibrator, and subsequent schedules use the measured
per-cell rates instead of the analytic constant.  The same object plugs
straight into ``balance_grids(..., cost_model=...)``, so the virtual
cluster's predicted imbalance can be compared against what real execution
measured (``benchmarks/bench_parallel.py`` reports both).
"""

from __future__ import annotations

from collections import defaultdict


class WorkCalibrator:
    """Exponential-moving-average cost-per-cell, keyed by (kind, level).

    ``kind`` is the task kind ("hydro", "chemistry", "gravity"); objects
    without a ``kind`` attribute (e.g. sterile grids, which stand for a
    whole root-step of work) are costed with the summed per-level rates
    times the ``r^level`` substep factor.
    """

    def __init__(self, alpha: float = 0.3, refine_factor: int = 2):
        self.alpha = float(alpha)
        self.refine_factor = int(refine_factor)
        #: (kind, level) -> EMA seconds per cell
        self.rates: dict[tuple[str, int], float] = {}
        #: (kind, level) -> number of observations folded in
        self.samples: dict[tuple[str, int], int] = defaultdict(int)

    # ------------------------------------------------------------- observe
    def observe(self, kind: str, level: int, cells: int,
                seconds: float) -> None:
        """Fold one measured task (cells, wall seconds) into the EMA."""
        if cells <= 0 or seconds < 0.0:
            return
        key = (str(kind), int(level))
        rate = seconds / cells
        prev = self.rates.get(key)
        if prev is None:
            self.rates[key] = rate
        else:
            self.rates[key] = (1.0 - self.alpha) * prev + self.alpha * rate
        self.samples[key] += 1

    def observe_report(self, report) -> None:
        """Feed every task timing recorded in an :class:`ExecReport`."""
        for kind, level, cells, seconds in report.task_times:
            self.observe(kind, level, cells, seconds)

    # ---------------------------------------------------------------- cost
    def rate(self, kind: str, level: int) -> float | None:
        """Measured seconds/cell, falling back to the nearest coarser level
        with data (deep levels appear before they have been timed)."""
        for lvl in range(int(level), -1, -1):
            r = self.rates.get((kind, lvl))
            if r is not None:
                return r
        return None

    def cost(self, obj) -> float | None:
        """Predicted seconds for a task (or a sterile grid's root step).

        Returns None when nothing relevant has been measured yet, which
        makes :func:`repro.parallel.distribution.grid_work` fall back to
        the analytic model.
        """
        kind = getattr(obj, "kind", None)
        level = int(obj.level)
        cells = int(obj.n_cells)
        if kind is not None:
            r = self.rate(kind, level)
            return None if r is None else r * cells
        # sterile grid: whole root-step cost = sum over kinds, r^level substeps
        kinds = {k for (k, _lvl) in self.rates}
        if not kinds:
            return None
        total_rate = sum(self.rate(k, level) or 0.0 for k in kinds)
        if total_rate <= 0.0:
            return None
        return total_rate * cells * self.refine_factor**level

    # -------------------------------------------------------------- report
    def summary(self) -> dict:
        """JSON-friendly dump of the measured rates (ns/cell)."""
        return {
            f"{kind}/L{level}": {
                "ns_per_cell": round(1e9 * rate, 3),
                "samples": self.samples[(kind, level)],
            }
            for (kind, level), rate in sorted(self.rates.items())
        }
