"""POSIX shared-memory staging for the process backend.

Grid field arrays are staged through one :class:`SharedMemory` block per
task: the parent packs the inputs (one copy), the worker maps the block and
runs the kernel *in place* on ndarray views of the buffer (zero copies, no
pickling of bulk data), and the parent copies the mutated arrays back into
the live grid (one copy).  Only small scalars and the kernel spec travel
over the pool's pickle pipe.
"""

from __future__ import annotations

import numpy as np
from multiprocessing import shared_memory

#: layout entry: (name, shape, dtype.str, byte offset)
Layout = list


def pack(arrays: dict, outputs: dict | None = None
         ) -> tuple[shared_memory.SharedMemory, Layout]:
    """Copy named input arrays into a fresh shared-memory block.

    ``outputs`` reserves additional *uninitialised* space in the same block
    for arrays the kernel will produce (``{name: (shape, dtype)}``), so
    results come back without any pickling either.  Returns the block
    (owned by the caller: close+unlink when done) and the layout needed to
    map views on either side.
    """
    layout: Layout = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        layout.append((name, arr.shape, arr.dtype.str, offset))
        offset += int(arr.nbytes)
    for name, (shape, dtype) in (outputs or {}).items():
        dt = np.dtype(dtype)
        layout.append((name, tuple(int(s) for s in shape), dt.str, offset))
        offset += int(np.prod(shape)) * dt.itemsize
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (name, shape, dtype, off), arr in zip(layout, arrays.values()):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    return shm, layout


def attach(name: str, layout: Layout) -> tuple[shared_memory.SharedMemory, dict]:
    """Map views over an existing block (worker side, or parent readback).

    The caller must drop every view before ``shm.close()`` — a live ndarray
    holding the buffer makes close() raise BufferError.
    """
    shm = shared_memory.SharedMemory(name=name)
    views = {
        n: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        for n, shape, dtype, off in layout
    }
    return shm, views


def views_of(shm: shared_memory.SharedMemory, layout: Layout) -> dict:
    """Views over a block the caller already owns (parent readback)."""
    return {
        n: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        for n, shape, dtype, off in layout
    }


def release(shm: shared_memory.SharedMemory, unlink: bool = False) -> None:
    """Close (and optionally unlink) a block, tolerating double release."""
    try:
        shm.close()
    except BufferError:
        # a view is still alive; the caller leaked it — surface loudly
        raise
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
