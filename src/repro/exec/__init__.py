"""Task-based shared-memory execution engine for per-grid work.

The paper's parallel design (Sec. 3.4) distributes the many small
same-level grids over workers; this package makes that real for the live
code: :class:`ExecutionEngine` dispatches independent per-grid tasks
(hydro sweeps, chemistry advances, gravity accelerations) to a pool of
workers — ``serial`` (today's exact path), ``thread`` (zero-copy, NumPy
releases the GIL) or ``process`` (arrays staged through POSIX shared
memory) — while the scheduler reuses the Sec. 3.4 distribution strategies
fed by *measured* per-grid timings.  Results are bitwise identical across
backends and worker counts.  See ``docs/EXECUTOR.md``.
"""

from repro.exec.accounting import LedgerError, WorkerLedger
from repro.exec.calibration import WorkCalibrator
from repro.exec.config import BACKENDS, ENV_BACKEND, ENV_WORKERS, ExecConfig
from repro.exec.engine import (
    ExecReport,
    ExecutionEngine,
    StepExecStats,
    shutdown_pools,
)
from repro.exec.tasks import ChemistryTask, GravityAccelTask, GridTask, HydroTask

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ENV_WORKERS",
    "ChemistryTask",
    "ExecConfig",
    "ExecReport",
    "ExecutionEngine",
    "GravityAccelTask",
    "GridTask",
    "HydroTask",
    "LedgerError",
    "StepExecStats",
    "WorkCalibrator",
    "WorkerLedger",
    "shutdown_pools",
]
