"""Physical constants in cgs units.

Values follow the conventions used in primordial-gas cosmology codes
(Enzo / Abel et al. 1997).  Everything downstream of this module works in
cgs internally and converts to/from comoving code units via
:mod:`repro.cosmology.units`.
"""

from __future__ import annotations

# --- fundamental constants (cgs) -------------------------------------------
GRAVITATIONAL_CONSTANT = 6.6743e-8  # cm^3 g^-1 s^-2
BOLTZMANN_CONSTANT = 1.380649e-16  # erg K^-1
PLANCK_CONSTANT = 6.62607015e-27  # erg s
SPEED_OF_LIGHT = 2.99792458e10  # cm s^-1
ELECTRON_MASS = 9.1093837015e-28  # g
PROTON_MASS = 1.67262192369e-24  # g
HYDROGEN_MASS = 1.6735575e-24  # g (neutral H atom)
THOMSON_CROSS_SECTION = 6.6524587321e-25  # cm^2
STEFAN_BOLTZMANN = 5.670374419e-5  # erg cm^-2 s^-1 K^-4
RADIATION_CONSTANT = 7.5657e-15  # erg cm^-3 K^-4
ELECTRON_VOLT = 1.602176634e-12  # erg

# --- astronomical scales ----------------------------------------------------
PARSEC = 3.0856775814913673e18  # cm
KILOPARSEC = 1e3 * PARSEC
MEGAPARSEC = 1e6 * PARSEC
ASTRONOMICAL_UNIT = 1.495978707e13  # cm
SOLAR_MASS = 1.98892e33  # g
SOLAR_RADIUS = 6.957e10  # cm
YEAR = 3.1556952e7  # s (Julian year)
MEGAYEAR = 1e6 * YEAR

# --- cosmology --------------------------------------------------------------
HUBBLE_CGS = 3.2407792896664e-18  # h * 100 km/s/Mpc expressed in s^-1
CMB_TEMPERATURE_Z0 = 2.725  # K, present-day CMB temperature

#: Critical density today divided by h^2, in g cm^-3:
#: rho_crit = 3 H0^2 / (8 pi G)  with H0 = 100 h km/s/Mpc.
CRITICAL_DENSITY_H2 = 3.0 * HUBBLE_CGS**2 / (8.0 * 3.141592653589793 * GRAVITATIONAL_CONSTANT)

# --- primordial composition --------------------------------------------------
#: Hydrogen mass fraction of the primordial gas (paper Sec. 2.2: ~76 % H, 24 % He).
HYDROGEN_MASS_FRACTION = 0.76
HELIUM_MASS_FRACTION = 0.24
#: Primordial deuterium abundance by number relative to hydrogen.
DEUTERIUM_TO_HYDROGEN = 3.4e-5

#: Adiabatic index of a monatomic ideal gas.  Molecular corrections are applied
#: explicitly where H2 matters.
GAMMA = 5.0 / 3.0

#: Mean molecular weight of neutral primordial gas (in units of m_H).
MU_NEUTRAL = 1.0 / (HYDROGEN_MASS_FRACTION + HELIUM_MASS_FRACTION / 4.0)
#: Mean molecular weight of fully ionized primordial gas.
MU_IONIZED = 1.0 / (2.0 * HYDROGEN_MASS_FRACTION + 3.0 * HELIUM_MASS_FRACTION / 4.0)
