"""Dimensionally split PPM solver for cosmological hydrodynamics.

This is the paper's primary gas scheme (Sec. 3.2.1, citing Woodward &
Colella 1984 as modified for cosmology by Bryan et al. 1995): PPM interface
reconstruction feeding an HLLC Riemann solver, Strang-permuted x/y/z sweeps,
a dual-energy formalism for hypersonic infall, passive advection of the
chemistry species, and operator-split expansion sources.

The solver is grid-agnostic: it advances a :class:`FieldSet` (ghost zones
included) and returns the dt-integrated interface fluxes the AMR layer needs
for coarse-fine flux correction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants as const
from repro.hydro import riemann
from repro.hydro.eos import internal_energy_floor
from repro.hydro.reconstruction import reconstruct
from repro.hydro.sources import apply_acceleration, apply_expansion_drag
from repro.hydro.state import FieldSet, VELOCITY_FIELDS, sync_internal_from_total

AXIS_NAMES = ("x", "y", "z")


@dataclass
class StepFluxes:
    """dt/a-integrated fluxes on interior faces, per axis.

    ``fluxes[axis][name]`` has the face dimension (n_interior+1) along
    ``axis`` and interior extents transversally.  The cell update applied by
    the solver was ``U -= diff(flux, axis) / dx`` — the AMR flux-correction
    step reuses exactly these arrays.

    ``diagnostics`` carries per-step solver health counters — how many
    cells/faces each positivity floor actually changed — so creeping floor
    abuse is visible in telemetry long before it becomes a NaN.
    """

    fluxes: dict = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)

    def names(self):
        first = next(iter(self.fluxes.values()))
        return list(first.keys())

    def add_diagnostics(self, counts: dict) -> None:
        for key, value in counts.items():
            if value:
                self.diagnostics[key] = self.diagnostics.get(key, 0) + int(value)


class PPMSolver:
    """PPM/HLLC gas dynamics in comoving coordinates.

    Parameters
    ----------
    gamma:
        Adiabatic index.
    reconstruction:
        'ppm' (default) or 'plm'.
    riemann_solver:
        'hllc' (default) or 'hll'.
    nghost:
        Ghost zones carried by the grids (3 suffices for this PPM variant).
    dual_energy_eta:
        Threshold of the dual-energy selection criterion.
    density_floor, energy_floor:
        Positivity floors (code units).
    """

    def __init__(
        self,
        gamma: float = const.GAMMA,
        reconstruction: str = "ppm",
        riemann_solver: str = "hllc",
        nghost: int = 3,
        dual_energy_eta: float = 1e-3,
        density_floor: float = 1e-12,
        energy_floor: float = 1e-30,
        flattening: bool = True,
        characteristic_tracing: bool = False,
    ):
        self.gamma = gamma
        self.reconstruction = reconstruction
        self.riemann_solver = riemann_solver
        self.nghost = int(nghost)
        self.dual_energy_eta = dual_energy_eta
        self.density_floor = density_floor
        self.energy_floor = energy_floor
        #: CW84 shock flattening: revert toward donor-cell inside strong
        #: compressions (suppresses post-shock ringing)
        self.flattening = flattening
        #: full CW84 characteristic tracing of the interface states (the
        #: genuine PPM predictor); off by default — reconstruct-then-Riemann
        #: is the more robust choice in the deep-collapse regime
        self.characteristic_tracing = characteristic_tracing

    # ------------------------------------------------------------------ API
    def step(
        self,
        fields: FieldSet,
        dx: float,
        dt: float,
        a: float = 1.0,
        adot: float = 0.0,
        accel=None,
        permute: int = 0,
    ) -> StepFluxes:
        """Advance the gas by dt.

        ``dx`` is the comoving cell width in code units; ``a``/``adot``
        the mid-step scale factor and its derivative; ``accel`` an optional
        (3, ...) peculiar acceleration field; ``permute`` rotates the sweep
        order (Strang permutation across steps).
        """
        ng = self.nghost
        out = StepFluxes()
        # half gravity kick - sweeps - half kick is handled by the caller
        # when gravity is active mid-step; a full kick here keeps the
        # standalone solver second-order for static potentials.
        if accel is not None:
            apply_acceleration(fields, accel, 0.5 * dt)

        order = [(permute + k) % 3 for k in range(3)]
        for axis in order:
            fluxes, floor_counts = self._sweep(fields, axis, dx, dt, a)
            out.fluxes[AXIS_NAMES[axis]] = fluxes
            out.add_diagnostics(floor_counts)

        if accel is not None:
            apply_acceleration(fields, accel, 0.5 * dt)

        apply_expansion_drag(fields, a, adot, dt, self.gamma)
        sync_internal_from_total(fields, self.dual_energy_eta, self.energy_floor)
        out.add_diagnostics(
            {"internal_floor": internal_energy_floor(fields, self.energy_floor)}
        )
        return out

    # ------------------------------------------------------------- internals
    def _sweep(self, fields: FieldSet, axis: int, dx: float, dt: float, a: float):
        """One directional sweep; returns dt/a-integrated interior-face fluxes."""
        ng = self.nghost
        gamma = self.gamma

        def fwd(arr):
            return np.moveaxis(arr, axis, 0)

        rho = fwd(fields["density"])
        vel_names = list(VELOCITY_FIELDS)
        u_name = vel_names[axis]
        t_names = [n for n in vel_names if n != u_name]
        u = fwd(fields[u_name])
        v = fwd(fields[t_names[0]])
        w = fwd(fields[t_names[1]])
        e_int = fwd(fields["internal"])
        e_tot = fwd(fields["energy"])
        p = (gamma - 1.0) * rho * e_int

        # reconstruct primitives at faces (with optional shock flattening
        # and optional CW84 characteristic tracing)
        if self.characteristic_tracing and self.reconstruction == "ppm":
            from repro.hydro.tracing import trace_interface_states

            tl, tr = trace_interface_states(rho, u, v, w, p, dt / (a * dx), gamma)
            states_l = list(tl)
            states_r = list(tr)
        else:
            flat = None
            if self.flattening and self.reconstruction == "ppm":
                from repro.hydro.reconstruction import apply_flattening, shock_flattening

                flat = shock_flattening(p, u)
            states_l, states_r = [], []
            for q in (rho, u, v, w, p):
                ql, qr = reconstruct(q, self.reconstruction)
                if flat is not None:
                    ql, qr = apply_flattening(ql, qr, q, flat)
                states_l.append(ql)
                states_r.append(qr)
        # positivity at faces
        floor_counts = {
            "face_density_floor": (
                int(np.count_nonzero(states_l[0] < self.density_floor))
                + int(np.count_nonzero(states_r[0] < self.density_floor))
            ),
        }
        states_l[0] = np.maximum(states_l[0], self.density_floor)
        states_r[0] = np.maximum(states_r[0], self.density_floor)
        p_floor = (gamma - 1.0) * self.density_floor * self.energy_floor
        floor_counts["face_pressure_floor"] = (
            int(np.count_nonzero(states_l[4] < p_floor))
            + int(np.count_nonzero(states_r[4] < p_floor))
        )
        states_l[4] = np.maximum(states_l[4], p_floor)
        states_r[4] = np.maximum(states_r[4], p_floor)

        flux = riemann.solve_flux(tuple(states_l), tuple(states_r), gamma,
                                  self.riemann_solver)
        f_rho, f_mu, f_mv, f_mw, f_e = flux

        # passive scalars + internal energy advect with the mass flux
        mass_flux_pos = f_rho > 0.0
        n = rho.shape[0]

        def upwind_fraction(q):
            frac_l = q[:-1] / rho[:-1]
            frac_r = q[1:] / rho[1:]
            return np.where(mass_flux_pos, frac_l, frac_r)

        adv_fluxes = {}
        for name in fields.advected:
            q = fwd(fields[name])
            adv_fluxes[name] = f_rho * upwind_fraction(q)
        f_eint = f_rho * upwind_fraction(rho * e_int)

        # interface velocity for the pdV term (contact-wave estimate)
        u_face = self._contact_speed(states_l, states_r)

        # conservative update of the interior band along the sweep axis
        # (transverse ghost columns update too — their sweep-direction
        # stencils are complete; the truncated-stencil edge cells are left
        # to the next SetBoundaryValues, which stops ghost-band runaway)
        k = dt / (a * dx)
        upd = slice(ng, n - ng)
        fsl = slice(ng - 1, n - ng)  # faces bounding the interior band

        def dflux(f):
            return np.diff(f[fsl], axis=0)

        d_rho = -k * dflux(f_rho)
        mom_u = rho * u
        mom_v = rho * v
        mom_w = rho * w
        etot_c = rho * e_tot
        eint_c = rho * e_int

        rho_new = rho[upd] + d_rho
        floor_counts["density_floor"] = int(
            np.count_nonzero(rho_new < self.density_floor)
        )
        rho_new = np.maximum(rho_new, self.density_floor)
        mom_u_new = mom_u[upd] - k * dflux(f_mu)
        mom_v_new = mom_v[upd] - k * dflux(f_mv)
        mom_w_new = mom_w[upd] - k * dflux(f_mw)
        etot_new = etot_c[upd] - k * dflux(f_e)
        # internal energy: advection + pdV work using interface velocities
        eint_new = (
            eint_c[upd]
            - k * dflux(f_eint)
            - p[upd] * k * dflux(u_face)
        )
        eint_floor = self.density_floor * self.energy_floor
        floor_counts["internal_floor"] = int(
            np.count_nonzero(eint_new < eint_floor)
        )
        eint_new = np.maximum(eint_new, eint_floor)

        rho[upd] = rho_new
        u[upd] = mom_u_new / rho_new
        v[upd] = mom_v_new / rho_new
        w[upd] = mom_w_new / rho_new
        etot_spec = etot_new / rho_new
        floor_counts["energy_floor"] = int(
            np.count_nonzero(etot_spec < self.energy_floor)
        )
        e_tot[upd] = np.maximum(etot_spec, self.energy_floor)
        e_int[upd] = eint_new / rho_new
        for name in fields.advected:
            q = fwd(fields[name])
            q[upd] = np.maximum(q[upd] - k * dflux(adv_fluxes[name]), 0.0)

        # collect interior-face fluxes (dt/a-integrated) for flux correction
        face_sl = (slice(ng - 1, n - ng),) + tuple(
            slice(ng, s - ng) for s in rho.shape[1:]
        )
        named = {
            "density": f_rho,
            u_name: f_mu,
            t_names[0]: f_mv,
            t_names[1]: f_mw,
            "energy": f_e,
            "internal": f_eint,
        }
        named.update(adv_fluxes)
        out = {}
        for fname, arr in named.items():
            out[fname] = (dt / a) * np.moveaxis(arr[face_sl], 0, axis)
        return out, floor_counts

    def _contact_speed(self, states_l, states_r):
        rho_l, u_l, _, _, p_l = states_l
        rho_r, u_r, _, _, p_r = states_r
        s_l, s_r = riemann._wave_speed_estimates(
            rho_l, u_l, p_l, rho_r, u_r, p_r, self.gamma
        )
        num = p_r - p_l + rho_l * u_l * (s_l - u_l) - rho_r * u_r * (s_r - u_r)
        den = rho_l * (s_l - u_l) - rho_r * (s_r - u_r)
        s_m = num / np.where(np.abs(den) < 1e-300, 1e-300, den)
        # analytically s_l <= s_m <= s_r; numerically degenerate states
        # (energy-floored cold gas) can violate this — clamp to the fan so
        # the pdV term stays bounded
        return np.clip(s_m, s_l, s_r)
