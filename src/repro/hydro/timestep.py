"""Timestep constraints (paper Sec. 3.1: per-level timesteps from the CFL).

The comoving CFL condition with our variables: a signal crosses a cell of
comoving width dx in code time a*dx / (|v| + c_s) (velocities are proper
peculiar).  The expansion constraint bounds dt by a fraction of the Hubble
time so the operator-split drag terms stay accurate.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.hydro.eos import sound_speed
from repro.hydro.state import FieldSet, VELOCITY_FIELDS


def hydro_timestep(
    fields: FieldSet,
    dx: float,
    a: float = 1.0,
    cfl: float = 0.4,
    gamma: float = const.GAMMA,
    interior=None,
) -> float:
    """CFL-limited timestep for one grid (code time units)."""
    cs = sound_speed(fields["internal"], gamma)
    signal = cs.copy()
    for name in VELOCITY_FIELDS:
        signal = np.maximum(signal, np.abs(fields[name]) + cs)
    if interior is not None:
        signal = signal[interior]
    vmax = float(signal.max())
    if vmax <= 0.0:
        return np.inf
    return cfl * a * dx / vmax


def expansion_timestep(a: float, adot: float, fraction: float = 0.02) -> float:
    """dt <= fraction * (a / adot): bounds fractional expansion per step."""
    if adot <= 0.0:
        return np.inf
    return fraction * a / adot


def particle_timestep(velocities, dx: float, a: float, cfl: float = 0.4) -> float:
    """No particle crosses more than cfl cells per step (comoving widths)."""
    if velocities is None or len(velocities) == 0:
        return np.inf
    vmax = float(np.max(np.abs(velocities)))
    if vmax <= 0.0:
        return np.inf
    return cfl * a * dx / vmax


def accel_timestep(accel, dx: float, a: float, cfl: float = 0.3) -> float:
    """dt <= sqrt(cfl * a * dx / |g|): resolves free-fall through a cell."""
    if accel is None:
        return np.inf
    gmax = float(np.max(np.abs(accel)))
    if gmax <= 0.0:
        return np.inf
    return np.sqrt(cfl * a * dx / gmax)
