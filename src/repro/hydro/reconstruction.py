"""Interface reconstruction: piecewise-linear (PLM) and piecewise-parabolic (PPM).

All routines operate along **axis 0** of an ndarray of any rank (the solver
rotates the sweep axis to the front) and return interface states
``(q_left, q_right)`` of shape ``(N-1, ...)``: entry ``i`` holds the two
states at the face between cells ``i`` and ``i+1``.

The PPM implementation follows Colella & Woodward (1984): fourth-order
interface interpolation followed by the three monotonicity constraints.
Characteristic tracing is omitted (reconstruct-and-Riemann, MUSCL-style) —
a simplification relative to the original PPM that costs some formal
accuracy at contact discontinuities but none of the shock-capturing
robustness the paper relies on.  Faces outside each scheme's stencil fall
back to first-order (donor cell) states, which is what the ghost-zone
layout guarantees never to be used in the interior.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import dispatch as _kernels


def _minmod(a, b):
    return np.where(a * b > 0.0, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def _mc_limiter(dq_minus, dq_plus):
    """Monotonised-central slope limiter."""
    dq_c = 0.5 * (dq_minus + dq_plus)
    lim = _minmod(2.0 * dq_minus, 2.0 * dq_plus)
    return _minmod(dq_c, lim)


def flat_reconstruct(q: np.ndarray):
    """First-order (piecewise-constant / donor-cell) interface states.

    The most robust reconstruction there is — no new extrema can ever be
    introduced — used by the defense ladder when a higher-order update has
    produced an invalid state on a grid.
    """
    if q.shape[0] < 2:
        raise ValueError("need at least 2 cells along the sweep axis")
    return q[:-1].copy(), q[1:].copy()


def plm_reconstruct(q: np.ndarray):
    """Piecewise-linear MUSCL states with the MC limiter.

    Valid for faces i in [1, N-3]; outer faces are donor-cell.
    """
    n = q.shape[0]
    if n < 2:
        raise ValueError("need at least 2 cells along the sweep axis")
    q_l = q[:-1].copy()  # donor-cell default: left state = cell i
    q_r = q[1:].copy()  # right state = cell i+1
    if n >= 4:
        dq_minus = q[1:-1] - q[:-2]
        dq_plus = q[2:] - q[1:-1]
        slope = _mc_limiter(dq_minus, dq_plus)  # slope of cells 1..N-2
        # face i (between cell i and i+1): left uses slope of cell i,
        # right uses slope of cell i+1.
        q_l[1:] = q[1:-1] + 0.5 * slope  # faces 1..N-2 get cell 1..N-2 left states
        q_r[:-1] = q[1:-1] - 0.5 * slope  # faces 0..N-3 get cell 1..N-2 right states
    return q_l, q_r


def ppm_reconstruct(q: np.ndarray):
    """Piecewise-parabolic states (CW84 interpolation + monotonisation).

    Valid for faces i in [2, N-4]; nearer faces degrade to PLM/donor-cell.
    """
    n = q.shape[0]
    if n < 6:
        return plm_reconstruct(q)

    # CW84 eq. 1.6: interface values from limited slopes,
    # q_{i+1/2} = (q_i + q_{i+1})/2 - (dq_{i+1} - dq_i)/6, which keeps the
    # interface value between the adjacent cell averages.
    dq = np.zeros_like(q)
    dq[1:-1] = _mc_limiter(q[1:-1] - q[:-2], q[2:] - q[1:-1])
    qf = 0.5 * (q[1:-2] + q[2:-1]) - (dq[2:-1] - dq[1:-2]) / 6.0

    # Per-cell left/right edge values for cells 2 .. n-3 (the cells whose
    # two faces both carry a 4th-order value):
    # left edge of cell j is the face value at j-1/2 -> qf[j-2],
    # right edge of cell j is the face value at j+1/2 -> qf[j-1].
    qc = q[2:-2]  # cells 2 .. n-3
    ql_edge = qf[:-1].copy()
    qr_edge = qf[1:].copy()

    # CW84 monotonicity constraints
    extremum = (qr_edge - qc) * (qc - ql_edge) <= 0.0
    ql_edge = np.where(extremum, qc, ql_edge)
    qr_edge = np.where(extremum, qc, qr_edge)

    dqe = qr_edge - ql_edge
    q6 = 6.0 * (qc - 0.5 * (ql_edge + qr_edge))
    overshoot_l = dqe * q6 > dqe * dqe
    overshoot_r = -(dqe * dqe) > dqe * q6
    ql_edge = np.where(overshoot_l, 3.0 * qc - 2.0 * qr_edge, ql_edge)
    qr_edge = np.where(overshoot_r, 3.0 * qc - 2.0 * ql_edge, qr_edge)

    # final safety clamp: each edge stays between the two cell averages it
    # separates (the overshoot corrections above can otherwise leave the
    # neighbour range on extreme data).
    q_im1 = q[1:-3]
    q_ip1 = q[3:-1]
    ql_edge = np.clip(ql_edge, np.minimum(q_im1, qc), np.maximum(q_im1, qc))
    qr_edge = np.clip(qr_edge, np.minimum(qc, q_ip1), np.maximum(qc, q_ip1))

    # assemble interface states: face i takes (right edge of cell i,
    # left edge of cell i+1); PPM edges exist for cells 2..n-3.
    q_l, q_r = plm_reconstruct(q)
    # faces with a PPM left state: i = 2 .. n-3  -> q_l[i] = qr_edge[i-2]
    q_l[2 : n - 2] = qr_edge
    # faces with a PPM right state: i+1 in 2..n-3 -> i = 1 .. n-4
    q_r[1 : n - 3] = ql_edge
    return q_l, q_r


def shock_flattening(pressure: np.ndarray, velocity: np.ndarray,
                     omega1: float = 0.75, omega2: float = 10.0,
                     epsilon: float = 0.33) -> np.ndarray:
    """PPM shock-flattening coefficient per cell (CW84 appendix).

    Returns f in [0, 1]: 1 = full flattening (revert the reconstruction to
    piecewise-constant), 0 = none.  A cell is flattened when it sits inside
    a strong compression: converging velocity and a steep pressure jump
    relative to the jump over a doubled stencil.
    """
    n = pressure.shape[0]
    f = np.zeros_like(pressure)
    if n < 5:
        return f
    dp1 = pressure[3:-1] - pressure[1:-3]  # p_{i+1} - p_{i-1} for i=2..n-3
    dp2 = pressure[4:] - pressure[:-4]  # p_{i+2} - p_{i-2}
    du = velocity[3:-1] - velocity[1:-3]
    p_min = np.minimum(pressure[3:-1], pressure[1:-3])
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(np.abs(dp2) > 1e-300, dp1 / dp2, 1.0)
        steep = np.abs(dp1) / np.maximum(p_min, 1e-300)
    inside_shock = (du < 0.0) & (steep > epsilon)
    f_val = np.clip(omega2 * (ratio - omega1), 0.0, 1.0)
    f[2:-2] = np.where(inside_shock, f_val, 0.0)
    return f


def apply_flattening(q_l: np.ndarray, q_r: np.ndarray, q: np.ndarray,
                     f: np.ndarray):
    """Blend interface states toward donor-cell by the flattening factor.

    Face i's left state belongs to cell i (factor f_i) and its right state
    to cell i+1 (factor f_{i+1}).
    """
    f_l = f[:-1]
    f_r = f[1:]
    return (
        q_l * (1.0 - f_l) + q[:-1] * f_l,
        q_r * (1.0 - f_r) + q[1:] * f_r,
    )


def reconstruct(q: np.ndarray, method: str = "ppm"):
    """Dispatch by name ('ppm', 'plm' or first-order 'flat').

    PPM/PLM go through the active kernel backend (see repro.kernels);
    donor-cell is two array copies and stays inline.
    """
    if method == "ppm":
        return _kernels.get("reconstruct.ppm")(q)
    if method == "plm":
        return _kernels.get("reconstruct.plm")(q)
    if method == "flat":
        return flat_reconstruct(q)
    raise ValueError(f"unknown reconstruction '{method}'")
