"""Field registry and conversions for the gas state on one grid.

A grid's gas state is a plain dict of named 3-d ndarrays (including ghost
zones).  Primary fields:

* ``density``       — comoving gas density (code units)
* ``vx, vy, vz``    — proper peculiar velocity (code units)
* ``energy``        — *total* specific energy e + v^2/2 (proper, code units)
* ``internal``      — specific internal energy, carried separately for the
  dual-energy formalism (hypersonic flows make e = E - v^2/2 catastrophic)

Chemistry species ride along as comoving partial densities named after the
species (``HI``, ``HII``, ... see :mod:`repro.chemistry.species`); the hydro
solvers advect any field listed in ``fields['__advected__']``.
"""

from __future__ import annotations

import numpy as np

#: Fields every hydro solver advances (in conserved form internally).
CONSERVED_FIELDS = ("density", "vx", "vy", "vz", "energy")

#: Extra bookkeeping keys that are not ndarrays.
META_KEY = "__advected__"

VELOCITY_FIELDS = ("vx", "vy", "vz")

#: name prefix for generic passive scalars (see :func:`scalar_names`)
SCALAR_PREFIX = "scalar"


def scalar_names(n: int) -> tuple[str, ...]:
    """Canonical names for ``n`` passive scalars (``scalar00``, ...).

    Passive scalars are ordinary advected fields: listing them under
    ``__advected__`` routes them through PPM/ZEUS transport, flux
    correction, projection and prolongation exactly like chemistry
    species.  With ``n == 0`` (the default everywhere) no field is added
    and runs remain bitwise identical to scalar-free builds.
    """
    return tuple(f"{SCALAR_PREFIX}{i:02d}" for i in range(int(n)))


class FieldSet(dict):
    """dict of field-name -> ndarray with a list of advected scalar names.

    Behaves exactly like a dict; the class only adds convenience
    constructors and copy semantics that preserve the advected-scalar list.
    """

    @property
    def advected(self) -> list[str]:
        return self.setdefault(META_KEY, [])

    def array_items(self):
        return [(k, v) for k, v in self.items() if k != META_KEY]

    def deep_copy(self) -> "FieldSet":
        out = FieldSet()
        for k, v in self.items():
            out[k] = list(v) if k == META_KEY else v.copy()
        return out

    @property
    def shape(self):
        return self["density"].shape


def make_fields(shape, density=1.0, velocity=(0.0, 0.0, 0.0), internal_energy=1.0,
                advected=(), alloc=None) -> FieldSet:
    """Allocate a uniform field set of the given (ghost-inclusive) shape.

    ``alloc(shape) -> ndarray`` overrides the array source — the hook the
    rebuild-time :class:`repro.amr.pool.FieldArrayPool` uses to hand out
    recycled buffers.  Every array is written in full either way, so
    pooled and fresh allocation produce bitwise-identical field sets.
    """
    def filled(value: float) -> np.ndarray:
        if alloc is None:
            return np.full(shape, float(value))
        arr = alloc(shape)
        arr[...] = float(value)
        return arr

    f = FieldSet()
    f["density"] = filled(density)
    for name, v in zip(VELOCITY_FIELDS, velocity):
        f[name] = filled(v)
    e_kin = 0.5 * sum(float(v) ** 2 for v in velocity)
    f["internal"] = filled(internal_energy)
    f["energy"] = filled(float(internal_energy) + e_kin)
    f[META_KEY] = list(advected)
    for name in advected:
        f[name] = filled(0.0)
    return f


def total_energy(fields: FieldSet) -> np.ndarray:
    """Recompute total specific energy from internal + kinetic."""
    return fields["internal"] + 0.5 * (
        fields["vx"] ** 2 + fields["vy"] ** 2 + fields["vz"] ** 2
    )


def kinetic_energy(fields: FieldSet) -> np.ndarray:
    return 0.5 * (fields["vx"] ** 2 + fields["vy"] ** 2 + fields["vz"] ** 2)


def sync_internal_from_total(fields: FieldSet, eta: float = 1e-3,
                             floor: float = 1e-30) -> None:
    """Dual-energy selection (Bryan et al. 1995, eq. 12-13).

    Where thermal energy is a healthy fraction (> eta) of total energy, trust
    the conservative total-energy field; otherwise keep the separately
    advected internal energy (accurate in hypersonic flow).  Finally rebuild
    ``energy`` so the two fields agree.
    """
    e_from_total = fields["energy"] - kinetic_energy(fields)
    use_total = e_from_total > eta * fields["energy"]
    fields["internal"] = np.where(
        use_total, np.maximum(e_from_total, floor), np.maximum(fields["internal"], floor)
    )
    fields["energy"] = total_energy(fields)


def fill_ghosts_periodic(fields: FieldSet, ng: int, axes=(0, 1, 2)) -> None:
    """Wrap-around ghost fill for standalone (non-AMR) unigrid use.

    ``axes`` restricts the fill so mixed boundaries compose, e.g. periodic
    in x with outflow in y for the Rayleigh-Taylor box.
    """
    for name, arr in fields.array_items():
        for axis in axes:
            src_lo = [slice(None)] * arr.ndim
            src_hi = [slice(None)] * arr.ndim
            dst_lo = [slice(None)] * arr.ndim
            dst_hi = [slice(None)] * arr.ndim
            n = arr.shape[axis]
            dst_lo[axis] = slice(0, ng)
            src_lo[axis] = slice(n - 2 * ng, n - ng)
            dst_hi[axis] = slice(n - ng, n)
            src_hi[axis] = slice(ng, 2 * ng)
            arr[tuple(dst_lo)] = arr[tuple(src_lo)]
            arr[tuple(dst_hi)] = arr[tuple(src_hi)]


def fill_ghosts_outflow(fields: FieldSet, ng: int, axes=(0, 1, 2)) -> None:
    """Zero-gradient (outflow) ghost fill along the given axes."""
    for name, arr in fields.array_items():
        for axis in axes:
            n = arr.shape[axis]
            edge_lo = [slice(None)] * arr.ndim
            edge_lo[axis] = slice(ng, ng + 1)
            edge_hi = [slice(None)] * arr.ndim
            edge_hi[axis] = slice(n - ng - 1, n - ng)
            dst_lo = [slice(None)] * arr.ndim
            dst_lo[axis] = slice(0, ng)
            dst_hi = [slice(None)] * arr.ndim
            dst_hi[axis] = slice(n - ng, n)
            arr[tuple(dst_lo)] = arr[tuple(edge_lo)]
            arr[tuple(dst_hi)] = arr[tuple(edge_hi)]


def fill_ghosts_reflecting(fields: FieldSet, ng: int, axes=(0, 1, 2)) -> None:
    """Mirror (solid-wall) ghost fill: scalars mirrored, normal v negated."""
    normal_velocity = {0: "vx", 1: "vy", 2: "vz"}
    for name, arr in fields.array_items():
        for axis in axes:
            n = arr.shape[axis]
            src_lo = [slice(None)] * arr.ndim
            src_lo[axis] = slice(2 * ng - 1, ng - 1, -1)
            dst_lo = [slice(None)] * arr.ndim
            dst_lo[axis] = slice(0, ng)
            src_hi = [slice(None)] * arr.ndim
            src_hi[axis] = slice(n - ng - 1, n - 2 * ng - 1, -1)
            dst_hi = [slice(None)] * arr.ndim
            dst_hi[axis] = slice(n - ng, n)
            sign = -1.0 if name == normal_velocity[axis] else 1.0
            arr[tuple(dst_lo)] = sign * arr[tuple(src_lo)]
            arr[tuple(dst_hi)] = sign * arr[tuple(src_hi)]


def mass_fractions(fields: FieldSet, names) -> dict[str, np.ndarray]:
    """Advected species densities -> mass fractions of the gas density."""
    rho = fields["density"]
    return {n: fields[n] / rho for n in names}
