"""Euler solvers for the primordial gas (paper Sec. 3.2.1).

Two independent schemes, exactly as the paper prescribes for
cross-checking:

* :class:`repro.hydro.ppm.PPMSolver` — the piecewise parabolic method
  adapted for cosmological hydrodynamics (Bryan et al. 1995): dimensionally
  split PPM reconstruction + HLLC Riemann fluxes in comoving coordinates,
  with operator-split expansion source terms and a dual-energy formalism.
* :class:`repro.hydro.zeus.ZeusSolver` — a "robust finite difference
  technique" (Stone & Norman 1992 lineage): operator-split source step
  (pressure gradient + von Neumann–Richtmyer artificial viscosity) and
  van-Leer upwind transport step.

Both advance the same field dictionary (see :mod:`repro.hydro.state`) and
return time-integrated boundary fluxes for AMR flux correction.
"""

from repro.hydro.state import FieldSet, CONSERVED_FIELDS, make_fields, total_energy
from repro.hydro.eos import pressure, sound_speed, internal_energy_floor
from repro.hydro.reconstruction import plm_reconstruct, ppm_reconstruct
from repro.hydro.riemann import hll_flux, hllc_flux, exact_riemann
from repro.hydro.ppm import PPMSolver
from repro.hydro.zeus import ZeusSolver
from repro.hydro.timestep import hydro_timestep, expansion_timestep

__all__ = [
    "FieldSet",
    "CONSERVED_FIELDS",
    "make_fields",
    "total_energy",
    "pressure",
    "sound_speed",
    "internal_energy_floor",
    "plm_reconstruct",
    "ppm_reconstruct",
    "hll_flux",
    "hllc_flux",
    "exact_riemann",
    "PPMSolver",
    "ZeusSolver",
    "hydro_timestep",
    "expansion_timestep",
]
