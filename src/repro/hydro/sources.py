"""Operator-split source terms: gravity kicks and cosmological expansion.

The comoving Euler equations (Bryan et al. 1995) reduce, with our variable
choices (comoving density, proper peculiar velocity, proper specific
internal energy), to the ordinary Euler equations with 1/a scaling of flux
divergences plus two exactly integrable source terms applied here:

* Hubble drag on peculiar velocities:  dv/dt = -(adot/a) v
* adiabatic expansion cooling:         de/dt = -3 (gamma-1) (adot/a) e
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.hydro.state import FieldSet, VELOCITY_FIELDS, total_energy


def apply_expansion_drag(fields: FieldSet, a: float, adot: float, dt: float,
                         gamma: float = const.GAMMA) -> None:
    """Apply the exact exponential expansion factors over one step."""
    if adot == 0.0:
        return
    h = adot / a
    v_factor = np.exp(-h * dt)
    e_factor = np.exp(-3.0 * (gamma - 1.0) * h * dt)
    for name in VELOCITY_FIELDS:
        fields[name] *= v_factor
    fields["internal"] *= e_factor
    fields["energy"] = total_energy(fields)


def apply_acceleration(fields: FieldSet, accel, dt: float) -> None:
    """Gravity kick: v += g dt, with the total energy updated consistently.

    ``accel`` is a (3, nx, ny, nz) array of proper peculiar accelerations in
    code units (the gravity solver folds in its 1/a factor).
    """
    if accel is None:
        return
    # energy source rho v.g -> specific: d(E)/dt = v_mid . g ; use
    # time-centred velocity for second-order accuracy.
    for i, name in enumerate(VELOCITY_FIELDS):
        v_old = fields[name]
        v_new = v_old + accel[i] * dt
        fields["energy"] += 0.5 * (v_old + v_new) * accel[i] * dt
        fields[name] = v_new
