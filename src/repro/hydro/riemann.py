"""Riemann solvers: HLLC / HLL production fluxes and an exact reference.

States are primitive tuples of ndarrays ``(rho, u, v, w, p)`` with ``u`` the
velocity normal to the face and ``v, w`` passive transverse components.
Fluxes are returned for the conserved vector
``(rho, rho*u, rho*v, rho*w, rho*E)``.

The exact solver (Toro 1999, Ch. 4) is used by the test-suite as ground
truth for the Sod problem and by the two-shock initial guess.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import dispatch as _kernels

#: default residual tolerance for the two-shock Newton loop.  0.0 means
#: "exit only on an exact fixed point" (the update is a no-op), which is
#: bitwise identical to running all iterations; a positive value exits on
#: ``|dp| <= rtol * p_star`` and is documented as a non-bitwise opt-in.
TWO_SHOCK_RTOL = 0.0


class RiemannInputError(FloatingPointError):
    """Interface states handed to a Riemann solver are unusable.

    Structured failure signal for the defense ladder: names which primitive
    went bad (non-finite, or non-positive density/pressure) so an escalation
    event can say *what* broke, not just that a NaN appeared downstream.
    """

    def __init__(self, bad: dict):
        self.bad = dict(bad)
        detail = ", ".join(f"{k}: {v} cells" for k, v in self.bad.items())
        super().__init__(f"invalid Riemann input states ({detail})")


def validate_states(left, right) -> dict:
    """Count invalid face states per primitive; empty dict means healthy.

    Used by the defense ladder's diagnosis step (not on the hot path): the
    returned mapping counts faces with non-finite entries, plus faces with
    non-positive density or pressure.
    """
    bad: dict = {}
    names = ("rho", "u", "v", "w", "p")
    for side, states in (("L", left), ("R", right)):
        for name, arr in zip(names, states):
            n = int(np.count_nonzero(~np.isfinite(arr)))
            if n:
                bad[f"{side}.{name}.nonfinite"] = n
        for name, arr in (("rho", states[0]), ("p", states[4])):
            n = int(np.count_nonzero(np.asarray(arr) <= 0.0))
            if n:
                bad[f"{side}.{name}.nonpositive"] = n
    return bad


def check_states(left, right) -> None:
    """Raise :class:`RiemannInputError` if the face states are invalid."""
    bad = validate_states(left, right)
    if bad:
        raise RiemannInputError(bad)


def _conserved_flux(rho, u, v, w, p, gamma):
    """Physical Euler flux of the conserved vector given primitives."""
    e_total = p / ((gamma - 1.0) * rho) + 0.5 * (u * u + v * v + w * w)
    return (
        rho * u,
        rho * u * u + p,
        rho * u * v,
        rho * u * w,
        u * (rho * e_total + p),
    )


def _wave_speed_estimates(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma):
    """Roe-averaged wave-speed estimates (Einfeldt), robust for strong shocks."""
    cl = np.sqrt(gamma * p_l / rho_l)
    cr = np.sqrt(gamma * p_r / rho_r)
    sqrt_l = np.sqrt(rho_l)
    sqrt_r = np.sqrt(rho_r)
    u_roe = (sqrt_l * u_l + sqrt_r * u_r) / (sqrt_l + sqrt_r)
    h_l = (gamma * p_l / ((gamma - 1.0) * rho_l)) + 0.5 * u_l * u_l
    h_r = (gamma * p_r / ((gamma - 1.0) * rho_r)) + 0.5 * u_r * u_r
    h_roe = (sqrt_l * h_l + sqrt_r * h_r) / (sqrt_l + sqrt_r)
    c_roe = np.sqrt(np.maximum((gamma - 1.0) * (h_roe - 0.5 * u_roe * u_roe), 1e-300))
    s_l = np.minimum(u_l - cl, u_roe - c_roe)
    s_r = np.maximum(u_r + cr, u_roe + c_roe)
    return s_l, s_r


def hll_flux(left, right, gamma):
    """HLL two-wave flux (very diffusive at contacts; used as fallback)."""
    rho_l, u_l, v_l, w_l, p_l = left
    rho_r, u_r, v_r, w_r, p_r = right
    s_l, s_r = _wave_speed_estimates(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma)
    f_l = _conserved_flux(rho_l, u_l, v_l, w_l, p_l, gamma)
    f_r = _conserved_flux(rho_r, u_r, v_r, w_r, p_r, gamma)
    e_l = p_l / ((gamma - 1.0) * rho_l) + 0.5 * (u_l**2 + v_l**2 + w_l**2)
    e_r = p_r / ((gamma - 1.0) * rho_r) + 0.5 * (u_r**2 + v_r**2 + w_r**2)
    cons_l = (rho_l, rho_l * u_l, rho_l * v_l, rho_l * w_l, rho_l * e_l)
    cons_r = (rho_r, rho_r * u_r, rho_r * v_r, rho_r * w_r, rho_r * e_r)
    denom = s_r - s_l
    out = []
    for fl, fr, cl_, cr_ in zip(f_l, f_r, cons_l, cons_r):
        f_star = (s_r * fl - s_l * fr + s_l * s_r * (cr_ - cl_)) / denom
        out.append(np.where(s_l >= 0.0, fl, np.where(s_r <= 0.0, fr, f_star)))
    return tuple(out)


def hllc_flux(left, right, gamma):
    """HLLC three-wave flux (Toro, Spruce & Speares 1994).

    Restores the contact wave that plain HLL smears — important for the
    paper's problem, where cold dense infall rides on contact-separated
    structure.
    """
    rho_l, u_l, v_l, w_l, p_l = left
    rho_r, u_r, v_r, w_r, p_r = right
    s_l, s_r = _wave_speed_estimates(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma)

    # contact wave speed (clamped to the fan: degenerate floored states can
    # otherwise push it out of [s_l, s_r] and poison the star fluxes)
    num = p_r - p_l + rho_l * u_l * (s_l - u_l) - rho_r * u_r * (s_r - u_r)
    den = rho_l * (s_l - u_l) - rho_r * (s_r - u_r)
    s_m = num / np.where(np.abs(den) < 1e-300, 1e-300, den)
    s_m = np.clip(s_m, s_l, s_r)

    f_l = _conserved_flux(rho_l, u_l, v_l, w_l, p_l, gamma)
    f_r = _conserved_flux(rho_r, u_r, v_r, w_r, p_r, gamma)

    def star_flux(rho, u, v, w, p, s, f):
        e_total = p / ((gamma - 1.0) * rho) + 0.5 * (u * u + v * v + w * w)
        cons = (rho, rho * u, rho * v, rho * w, rho * e_total)
        factor = rho * (s - u) / np.where(np.abs(s - s_m) < 1e-300, 1e-300, s - s_m)
        # s -> u happens for vanishing sound speed; the pressure term is
        # then multiplied by factor -> 0, so zero it rather than let inf*0
        # poison the flux
        su = s - u
        p_term = np.where(np.abs(su) > 1e-300, p / (rho * np.where(su == 0, 1.0, su)), 0.0)
        cons_star = (
            factor,
            factor * s_m,
            factor * v,
            factor * w,
            factor * (e_total + (s_m - u) * (s_m + p_term)),
        )
        return tuple(fc + s * (cs - c) for fc, cs, c in zip(f, cons_star, cons))

    f_star_l = star_flux(rho_l, u_l, v_l, w_l, p_l, s_l, f_l)
    f_star_r = star_flux(rho_r, u_r, v_r, w_r, p_r, s_r, f_r)

    out = []
    for fl, fsl, fsr, fr in zip(f_l, f_star_l, f_star_r, f_r):
        f = np.where(
            s_l >= 0.0,
            fl,
            np.where(s_m >= 0.0, fsl, np.where(s_r >= 0.0, fsr, fr)),
        )
        out.append(f)
    return tuple(out)


def two_shock_flux(left, right, gamma, iterations: int = 20,
                   rtol: float = TWO_SHOCK_RTOL):
    """Two-shock approximate Riemann solver (Colella 1982) — the solver the
    paper's PPM implementation used.

    Both nonlinear waves are treated as shocks; the star pressure is found
    by Newton iteration on the Lagrangian shock-speed relations

        W_K = sqrt(rho_K * ((gamma+1)/2 p* + (gamma-1)/2 p_K)),
        u*_L(p*) = u_L - (p* - p_L)/W_L = u_R + (p* - p_R)/W_R = u*_R.

    The interface state at x/t = 0 is then sampled from the two-shock wave
    structure and converted to a flux.  For rarefactions this slightly
    overestimates the wave speed (it is exact for shocks), which is why it
    pairs well with PPM's compressive reconstruction.

    The Newton loop exits early once every face has converged.  At the
    default ``rtol = 0`` convergence means the floored update ``p_new``
    equals ``p_star`` exactly — iterating a fixed point re-derives the same
    value, so the early exit is bitwise identical to running all
    ``iterations``.  A positive ``rtol`` exits on ``|dp| <= rtol * p_star``
    (cheaper, but then only rtol-level parity with the fixed-count loop).
    A negative ``rtol`` disables the exit entirely — the seed's
    fixed-count loop, kept as the bitwise regression reference for the
    early-exit path (``tests/test_kernels.py``).
    """
    rho_l, u_l, v_l, w_l, p_l = (np.asarray(x, dtype=float) for x in left)
    rho_r, u_r, v_r, w_r, p_r = (np.asarray(x, dtype=float) for x in right)
    gp = 0.5 * (gamma + 1.0)
    gm = 0.5 * (gamma - 1.0)

    p_star = np.maximum(0.5 * (p_l + p_r), 1e-300)
    for _ in range(iterations):
        w_lft = np.sqrt(rho_l * (gp * p_star + gm * p_l))
        w_rgt = np.sqrt(rho_r * (gp * p_star + gm * p_r))
        us_l = u_l - (p_star - p_l) / w_lft
        us_r = u_r + (p_star - p_r) / w_rgt
        # d(us_l)/dp ~ -1/W_l * (1 - (p*-p_l) gp rho_l / (2 W_l^2)) etc.;
        # the classic secant-like update uses the W's directly:
        dp = (us_l - us_r) * (w_lft * w_rgt) / (w_lft + w_rgt)
        p_new = np.maximum(p_star + dp, 1e-300)
        if rtol > 0.0:
            p_star = p_new
            if np.all(np.abs(dp) <= rtol * p_star):
                break
        elif rtol == 0.0:
            if np.array_equal(p_new, p_star):
                break
            p_star = p_new
        else:  # rtol < 0: no early exit — the fixed-count reference loop
            p_star = p_new
    w_lft = np.sqrt(rho_l * (gp * p_star + gm * p_l))
    w_rgt = np.sqrt(rho_r * (gp * p_star + gm * p_r))
    u_star = 0.5 * (u_l - (p_star - p_l) / w_lft + u_r + (p_star - p_r) / w_rgt)

    # post-shock densities from the jump conditions
    rho_sl = rho_l / (1.0 - rho_l * (p_star - p_l) / np.maximum(w_lft**2, 1e-300))
    rho_sr = rho_r / (1.0 - rho_r * (p_star - p_r) / np.maximum(w_rgt**2, 1e-300))
    rho_sl = np.maximum(rho_sl, 1e-12)
    rho_sr = np.maximum(rho_sr, 1e-12)

    # wave speeds for sampling at x/t = 0
    s_l = u_l - w_lft / rho_l
    s_r = u_r + w_rgt / rho_r

    left_of_contact = u_star >= 0.0
    # pick the state at the interface
    rho_i = np.where(
        left_of_contact,
        np.where(s_l >= 0.0, rho_l, rho_sl),
        np.where(s_r <= 0.0, rho_r, rho_sr),
    )
    u_i = np.where(
        left_of_contact,
        np.where(s_l >= 0.0, u_l, u_star),
        np.where(s_r <= 0.0, u_r, u_star),
    )
    p_i = np.where(
        left_of_contact,
        np.where(s_l >= 0.0, p_l, p_star),
        np.where(s_r <= 0.0, p_r, p_star),
    )
    v_i = np.where(left_of_contact, v_l, v_r)
    w_i = np.where(left_of_contact, w_l, w_r)
    return _conserved_flux(rho_i, u_i, v_i, w_i, p_i, gamma)


def solve_flux(left, right, gamma, method: str = "hllc"):
    """Face flux via the active kernel backend (see repro.kernels)."""
    if method in ("hllc", "hll", "two_shock"):
        return _kernels.get("riemann." + method)(left, right, gamma)
    raise ValueError(f"unknown riemann solver '{method}'")


# --------------------------------------------------------------------------
# exact solver (test reference)
# --------------------------------------------------------------------------


def _pressure_function(p, rho_k, p_k, c_k, gamma):
    """Toro's f_K(p) and derivative for shock (p > p_k) or rarefaction."""
    g1 = (gamma - 1.0) / (2.0 * gamma)
    g2 = (gamma + 1.0) / (2.0 * gamma)
    shock = p > p_k
    a_k = 2.0 / ((gamma + 1.0) * rho_k)
    b_k = (gamma - 1.0) / (gamma + 1.0) * p_k
    f_shock = (p - p_k) * np.sqrt(a_k / (p + b_k))
    df_shock = np.sqrt(a_k / (b_k + p)) * (1.0 - 0.5 * (p - p_k) / (b_k + p))
    with np.errstate(invalid="ignore"):
        pr = np.maximum(p / p_k, 1e-300)
        f_rare = 2.0 * c_k / (gamma - 1.0) * (pr**g1 - 1.0)
        df_rare = 1.0 / (rho_k * c_k) * pr**-g2
    return np.where(shock, f_shock, f_rare), np.where(shock, df_shock, df_rare)


def exact_riemann(left, right, gamma, xi):
    """Exact solution of the 1-d Riemann problem sampled at xi = x/t.

    ``left``/``right`` are (rho, u, p) scalars; ``xi`` may be an ndarray.
    Returns (rho, u, p) arrays.  Vacuum-generating data raise ValueError.
    """
    rho_l, u_l, p_l = (float(x) for x in left)
    rho_r, u_r, p_r = (float(x) for x in right)
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    if 2.0 * (c_l + c_r) / (gamma - 1.0) <= u_r - u_l:
        raise ValueError("initial data generate vacuum")

    # Newton for star pressure
    p = max(0.5 * (p_l + p_r), 1e-8)
    for _ in range(60):
        f_l, df_l = _pressure_function(np.float64(p), rho_l, p_l, c_l, gamma)
        f_r, df_r = _pressure_function(np.float64(p), rho_r, p_r, c_r, gamma)
        f = f_l + f_r + (u_r - u_l)
        p_new = p - f / (df_l + df_r)
        p_new = max(float(p_new), 1e-14)
        if abs(p_new - p) < 1e-14 * p:
            p = p_new
            break
        p = p_new
    p_star = p
    f_l, _ = _pressure_function(np.float64(p_star), rho_l, p_l, c_l, gamma)
    f_r, _ = _pressure_function(np.float64(p_star), rho_r, p_r, c_r, gamma)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (float(f_r) - float(f_l))

    xi = np.asarray(xi, dtype=float)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    pr = np.empty_like(xi)

    gm1, gp1 = gamma - 1.0, gamma + 1.0

    left_side = xi <= u_star
    # --- left of contact ---
    if p_star > p_l:  # left shock
        rho_sl = rho_l * ((p_star / p_l + gm1 / gp1) / (gm1 / gp1 * p_star / p_l + 1.0))
        s_l = u_l - c_l * np.sqrt((gp1 * p_star / p_l + gm1) / (2.0 * gamma))
        pre = xi < s_l
        rho[left_side] = np.where(pre[left_side], rho_l, rho_sl)
        u[left_side] = np.where(pre[left_side], u_l, u_star)
        pr[left_side] = np.where(pre[left_side], p_l, p_star)
    else:  # left rarefaction
        c_sl = c_l * (p_star / p_l) ** (gm1 / (2.0 * gamma))
        head, tail = u_l - c_l, u_star - c_sl
        inside = (xi >= head) & (xi <= tail)
        c_fan = (2.0 / gp1) * (c_l + 0.5 * gm1 * (u_l - xi))
        u_fan = (2.0 / gp1) * (c_l + 0.5 * gm1 * u_l + xi)
        rho_fan = rho_l * (c_fan / c_l) ** (2.0 / gm1)
        p_fan = p_l * (c_fan / c_l) ** (2.0 * gamma / gm1)
        rho_sl = rho_l * (p_star / p_l) ** (1.0 / gamma)
        sel = left_side
        rho[sel] = np.where(
            xi[sel] < head, rho_l, np.where(inside[sel], rho_fan[sel], rho_sl)
        )
        u[sel] = np.where(xi[sel] < head, u_l, np.where(inside[sel], u_fan[sel], u_star))
        pr[sel] = np.where(xi[sel] < head, p_l, np.where(inside[sel], p_fan[sel], p_star))

    right_side = ~left_side
    # --- right of contact ---
    if p_star > p_r:  # right shock
        rho_sr = rho_r * ((p_star / p_r + gm1 / gp1) / (gm1 / gp1 * p_star / p_r + 1.0))
        s_r = u_r + c_r * np.sqrt((gp1 * p_star / p_r + gm1) / (2.0 * gamma))
        post = xi > s_r
        rho[right_side] = np.where(post[right_side], rho_r, rho_sr)
        u[right_side] = np.where(post[right_side], u_r, u_star)
        pr[right_side] = np.where(post[right_side], p_r, p_star)
    else:  # right rarefaction
        c_sr = c_r * (p_star / p_r) ** (gm1 / (2.0 * gamma))
        head, tail = u_r + c_r, u_star + c_sr
        inside = (xi <= head) & (xi >= tail)
        c_fan = (2.0 / gp1) * (c_r - 0.5 * gm1 * (u_r - xi))
        u_fan = (2.0 / gp1) * (-c_r + 0.5 * gm1 * u_r + xi)
        rho_fan = rho_r * (c_fan / c_r) ** (2.0 / gm1)
        p_fan = p_r * (c_fan / c_r) ** (2.0 * gamma / gm1)
        rho_sr = rho_r * (p_star / p_r) ** (1.0 / gamma)
        sel = right_side
        rho[sel] = np.where(
            xi[sel] > head, rho_r, np.where(inside[sel], rho_fan[sel], rho_sr)
        )
        u[sel] = np.where(xi[sel] > head, u_r, np.where(inside[sel], u_fan[sel], u_star))
        pr[sel] = np.where(xi[sel] > head, p_r, np.where(inside[sel], p_fan[sel], p_star))

    return rho, u, pr
