"""Ideal-gas equation of state for the primordial gas."""

from __future__ import annotations

import numpy as np

from repro import constants as const


def pressure(density, internal_energy, gamma: float = const.GAMMA) -> np.ndarray:
    """Gas pressure p = (gamma - 1) rho e (code units: comoving pressure)."""
    return (gamma - 1.0) * np.asarray(density) * np.asarray(internal_energy)


def sound_speed(internal_energy, gamma: float = const.GAMMA) -> np.ndarray:
    """Adiabatic sound speed c_s = sqrt(gamma (gamma-1) e)."""
    return np.sqrt(gamma * (gamma - 1.0) * np.maximum(np.asarray(internal_energy), 0.0))


def internal_energy_floor(fields, floor: float = 1e-30) -> int:
    """Clamp internal (and rebuild total) energy above a positive floor.

    Returns the number of cells whose internal energy the floor actually
    changed, so solvers can publish floor-activation counts (silent floor
    abuse is the usual prelude to a NaN).
    """
    activated = int(np.count_nonzero(fields["internal"] < floor))
    np.maximum(fields["internal"], floor, out=fields["internal"])
    kinetic = 0.5 * (fields["vx"] ** 2 + fields["vy"] ** 2 + fields["vz"] ** 2)
    np.maximum(fields["energy"], fields["internal"] + kinetic, out=fields["energy"])
    return activated


def effective_gamma(h2_fraction, temperature=None) -> np.ndarray:
    """Effective adiabatic index of an H / H2 mixture.

    Molecular hydrogen contributes rotational degrees of freedom once
    excited (T >~ 100 K), pulling gamma from 5/3 toward 7/5.  A simple
    mass-fraction interpolation is enough for the thermodynamics the paper
    resolves (the fully molecular core forms at the very end).
    """
    x = np.clip(np.asarray(h2_fraction), 0.0, 1.0)
    gamma_h2 = 7.0 / 5.0
    inv = (1.0 - x) / (const.GAMMA - 1.0) + x / (gamma_h2 - 1.0)
    return 1.0 + 1.0 / inv
