"""PPM characteristic tracing (Colella & Woodward 1984, Sec. 3).

The full PPM scheme does not feed the raw parabola edges to the Riemann
solver: it averages each cell's parabola over the domain of dependence of
every characteristic family reaching the interface during the step, and
combines the averages by projecting onto the characteristic fields.  This
is what makes PPM genuinely second-order in time with a single Riemann
solve per face.

Implemented for the 1-d (dimensionally split) Euler system in primitive
variables W = (rho, u, p) with eigenvalues u-c, u, u+c; transverse
velocities ride the u-family.  All arrays are oriented with the sweep
along axis 0, like :mod:`repro.hydro.reconstruction`.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.reconstruction import ppm_reconstruct
from repro.kernels import dispatch as _kernels


def _parabola(q):
    """Monotonised parabola coefficients per cell.

    Returns (q_left_edge, q_right_edge) for every cell: cell i's right edge
    is the face-i left state and its left edge the face-(i-1) right state,
    as produced by :func:`ppm_reconstruct` (which returns face states).
    """
    n = q.shape[0]
    fl, fr = ppm_reconstruct(q)  # face arrays, length n-1
    # cell i edges: left edge = fr at face i-1 (right state of that face),
    # right edge = fl at face i (left state)
    ql = np.empty_like(q)
    qr = np.empty_like(q)
    ql[1:] = fr
    ql[0] = q[0]
    qr[:-1] = fl
    qr[-1] = q[-1]
    return ql, qr


def _iplus(ql, qr, q, sigma):
    """Average of the parabola over [1-sigma, 1] of the cell (right edge)."""
    dq = qr - ql
    q6 = 6.0 * (q - 0.5 * (ql + qr))
    s = np.clip(sigma, 0.0, 1.0)
    return qr - 0.5 * s * (dq - (1.0 - 2.0 * s / 3.0) * q6)

def _iminus(ql, qr, q, sigma):
    """Average over [0, sigma] of the cell (left edge)."""
    dq = qr - ql
    q6 = 6.0 * (q - 0.5 * (ql + qr))
    s = np.clip(sigma, 0.0, 1.0)
    return ql + 0.5 * s * (dq + (1.0 - 2.0 * s / 3.0) * q6)


def trace_interface_states(rho, u, v, w, p, dtdx, gamma):
    """Characteristic-traced left/right interface states.

    Parameters: primitive arrays along axis 0, ``dtdx = dt/(a dx)`` and the
    adiabatic index.  Returns ``(states_l, states_r)`` — tuples of
    (rho, u, v, w, p) face arrays of length n-1, ready for the Riemann
    solver (same contract as :func:`repro.hydro.reconstruction.reconstruct`).

    Runs on the active kernel backend; :func:`trace_states_numpy` below is
    the vectorised reference implementation.
    """
    return _kernels.get("trace.states")(rho, u, v, w, p, dtdx, gamma)


def trace_states_numpy(rho, u, v, w, p, dtdx, gamma):
    """Vectorised reference implementation (the ``numpy`` backend entry)."""
    c = np.sqrt(gamma * np.maximum(p, 1e-300) / np.maximum(rho, 1e-300))
    lam_m = u - c
    lam_0 = u
    lam_p = u + c

    parabolas = {name: _parabola(q) for name, q in
                 (("rho", rho), ("u", u), ("v", v), ("w", w), ("p", p))}

    def avg_plus(name, lam):
        ql, qr = parabolas[name]
        q = {"rho": rho, "u": u, "v": v, "w": w, "p": p}[name]
        return _iplus(ql, qr, q, lam * dtdx)

    def avg_minus(name, lam):
        ql, qr = parabolas[name]
        q = {"rho": rho, "u": u, "v": v, "w": w, "p": p}[name]
        return _iminus(ql, qr, q, -lam * dtdx)

    # ---- left state at face i (from cell i, right-going waves) -------------
    lam_max = np.maximum(lam_p, 0.0)
    ref = {name: avg_plus(name, lam_max) for name in ("rho", "u", "p")}
    w_l = {k: ref[k].copy() for k in ref}
    c2 = c * c
    for lam in (lam_m, lam_0):
        active = lam > 0.0
        d_rho = ref["rho"] - avg_plus("rho", np.maximum(lam, 0.0))
        d_u = ref["u"] - avg_plus("u", np.maximum(lam, 0.0))
        d_p = ref["p"] - avg_plus("p", np.maximum(lam, 0.0))
        if lam is lam_m:
            alpha = (d_p - rho * c * d_u) / (2.0 * c2)
            r_vec = (np.ones_like(c), -c / rho, c2)
        else:
            alpha = d_rho - d_p / c2
            r_vec = (np.ones_like(c), np.zeros_like(c), np.zeros_like(c))
        mask = np.where(active, 1.0, 0.0)
        w_l["rho"] -= mask * alpha * r_vec[0]
        w_l["u"] -= mask * alpha * r_vec[1]
        w_l["p"] -= mask * alpha * r_vec[2]
    v_l = avg_plus("v", np.maximum(lam_0, 0.0))
    w_l_trans = avg_plus("w", np.maximum(lam_0, 0.0))

    # ---- right state at face i (from cell i+1, left-going waves) -------------
    lam_min = np.minimum(lam_m, 0.0)
    ref_r = {name: avg_minus(name, lam_min) for name in ("rho", "u", "p")}
    w_r = {k: ref_r[k].copy() for k in ref_r}
    for lam in (lam_p, lam_0):
        active = lam < 0.0
        d_rho = ref_r["rho"] - avg_minus("rho", np.minimum(lam, 0.0))
        d_u = ref_r["u"] - avg_minus("u", np.minimum(lam, 0.0))
        d_p = ref_r["p"] - avg_minus("p", np.minimum(lam, 0.0))
        if lam is lam_p:
            alpha = (d_p + rho * c * d_u) / (2.0 * c2)
            r_vec = (np.ones_like(c), c / rho, c2)
        else:
            alpha = d_rho - d_p / c2
            r_vec = (np.ones_like(c), np.zeros_like(c), np.zeros_like(c))
        mask = np.where(active, 1.0, 0.0)
        w_r["rho"] -= mask * alpha * r_vec[0]
        w_r["u"] -= mask * alpha * r_vec[1]
        w_r["p"] -= mask * alpha * r_vec[2]
    v_r = avg_minus("v", np.minimum(lam_0, 0.0))
    w_r_trans = avg_minus("w", np.minimum(lam_0, 0.0))

    # assemble face arrays: face i takes left state from cell i, right from i+1
    states_l = (
        w_l["rho"][:-1], w_l["u"][:-1], v_l[:-1], w_l_trans[:-1], w_l["p"][:-1]
    )
    states_r = (
        w_r["rho"][1:], w_r["u"][1:], v_r[1:], w_r_trans[1:], w_r["p"][1:]
    )
    return states_l, states_r
