"""ZEUS-style finite-difference hydrodynamics (the paper's second solver).

"...as well as a robust finite difference technique [Stone & Norman 1992].
This allows us a double check on any result." (paper Sec. 3.2.1)

The scheme follows the ZEUS operator split:

* **source step** — pressure acceleration, von Neumann–Richtmyer quadratic
  artificial viscosity (plus a small linear term), and time-centred
  compressional heating of the internal energy;
* **transport step** — directionally split van Leer (second-order upwind)
  advection of mass, momentum (consistent transport) and internal energy.

One deliberate simplification relative to ZEUS: velocities are cell-centred
rather than face-staggered, with face values obtained by averaging.  The
artificial viscosity and upwind transport supply the same dissipation
channels, which is what makes the scheme "robust"; the staggering detail is
orthogonal to everything the paper measures.  ZEUS is non-conservative by
construction (internal-energy formulation) — energy-conservation tests must
use the PPM solver.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.hydro.ppm import AXIS_NAMES, StepFluxes
from repro.hydro.sources import apply_acceleration, apply_expansion_drag
from repro.hydro.state import FieldSet, VELOCITY_FIELDS, total_energy


class ZeusSolver:
    """ZEUS-like solver with the same interface as :class:`PPMSolver`."""

    def __init__(
        self,
        gamma: float = const.GAMMA,
        nghost: int = 3,
        quadratic_viscosity: float = 2.0,
        linear_viscosity: float = 0.1,
        density_floor: float = 1e-12,
        energy_floor: float = 1e-30,
    ):
        self.gamma = gamma
        self.nghost = int(nghost)
        self.cq = quadratic_viscosity
        self.cl = linear_viscosity
        self.density_floor = density_floor
        self.energy_floor = energy_floor

    def step(
        self,
        fields: FieldSet,
        dx: float,
        dt: float,
        a: float = 1.0,
        adot: float = 0.0,
        accel=None,
        permute: int = 0,
    ) -> StepFluxes:
        """Advance by dt: gravity half-kicks, source step, transport sweeps."""
        if accel is not None:
            apply_acceleration(fields, accel, 0.5 * dt)

        order = [(permute + k) % 3 for k in range(3)]
        for axis in order:
            self._source_step(fields, axis, dx, dt, a)
        out = StepFluxes()
        for axis in order:
            fluxes, floor_counts = self._transport_step(fields, axis, dx, dt, a)
            out.fluxes[AXIS_NAMES[axis]] = fluxes
            out.add_diagnostics(floor_counts)

        if accel is not None:
            apply_acceleration(fields, accel, 0.5 * dt)

        apply_expansion_drag(fields, a, adot, dt, self.gamma)
        out.add_diagnostics({
            "internal_floor": int(
                np.count_nonzero(fields["internal"] < self.energy_floor)
            ),
        })
        fields["internal"] = np.maximum(fields["internal"], self.energy_floor)
        fields["energy"] = total_energy(fields)
        return out

    # ------------------------------------------------------------- source step
    def _source_step(self, fields: FieldSet, axis: int, dx: float, dt: float, a: float):
        def fwd(arr):
            return np.moveaxis(arr, axis, 0)

        rho = fwd(fields["density"])
        u = fwd(fields[VELOCITY_FIELDS[axis]])
        e = fwd(fields["internal"])
        n = rho.shape[0]
        ng = self.nghost
        # the source step's central stencils are valid one cell into the
        # ghost band, and updating that band keeps the transport step's face
        # velocities consistent across periodic/sibling images
        upd = slice(1, n - 1)
        k = dt / (a * dx)

        p = (self.gamma - 1.0) * rho * e
        cs = np.sqrt(self.gamma * (self.gamma - 1.0) * np.maximum(e, 0.0))

        # artificial viscosity on compression (cell-centred divergence proxy)
        dv = np.zeros_like(u)
        dv[1:-1] = 0.5 * (u[2:] - u[:-2])
        compress = np.minimum(dv, 0.0)
        q_visc = self.cq * rho * compress**2 - self.cl * rho * cs * compress

        # velocity update: pressure + viscosity gradient
        grad = np.zeros_like(u)
        grad[1:-1] = 0.5 * (p[2:] - p[:-2]) + 0.5 * (q_visc[2:] - q_visc[:-2])
        u[upd] -= k * grad[upd] / rho[upd]

        # compressional + viscous heating (time-centred Crank-Nicolson form)
        div = np.zeros_like(u)
        div[1:-1] = 0.5 * (u[2:] - u[:-2])
        alpha = 0.5 * (self.gamma - 1.0) * k * div[upd]
        e[upd] = e[upd] * (1.0 - alpha) / (1.0 + alpha)
        e[upd] -= k * (q_visc[upd] / rho[upd]) * div[upd]
        np.maximum(e, self.energy_floor, out=e)

    # ---------------------------------------------------------- transport step
    def _transport_step(self, fields: FieldSet, axis: int, dx: float, dt: float, a: float):
        def fwd(arr):
            return np.moveaxis(arr, axis, 0)

        rho = fwd(fields["density"])
        n = rho.shape[0]
        ng = self.nghost
        k = dt / (a * dx)

        u = fwd(fields[VELOCITY_FIELDS[axis]])
        u_face = 0.5 * (u[:-1] + u[1:])  # velocity at faces 0..n-2

        def vanleer_face(q):
            """Second-order van Leer upwind face values of q (faces 0..n-2)."""
            dq = np.zeros_like(q)
            dqm = q[1:-1] - q[:-2]
            dqp = q[2:] - q[1:-1]
            denom = dqm + dqp
            with np.errstate(divide="ignore", invalid="ignore"):
                vl = np.where(dqm * dqp > 0.0, 2.0 * dqm * dqp / np.where(denom == 0, 1, denom), 0.0)
            dq[1:-1] = vl
            q_left = q[:-1] + 0.5 * dq[:-1]  # upwind from cell i
            q_right = q[1:] - 0.5 * dq[1:]  # upwind from cell i+1
            return np.where(u_face > 0.0, q_left, q_right)

        # mass flux first (consistent transport)
        rho_face = vanleer_face(rho)
        f_rho = rho_face * u_face

        fluxes = {"density": f_rho}
        # specific quantities advected with the mass flux
        specific = {"internal": fwd(fields["internal"])}
        for name in VELOCITY_FIELDS:
            specific[name] = fwd(fields[name])
        for name in fields.advected:
            specific[name] = fwd(fields[name]) / rho  # fraction

        upd = slice(ng, n - ng)  # interior band only
        fsl = slice(ng - 1, n - ng)

        def dflux(f):
            return np.diff(f[fsl], axis=0)

        rho_old = rho.copy()
        rho_new = rho_old[upd] - k * dflux(f_rho)
        floor_counts = {
            "density_floor": int(np.count_nonzero(rho_new < self.density_floor)),
        }
        rho[upd] = np.maximum(rho_new, self.density_floor)

        for name, q in specific.items():
            q_face = vanleer_face(q)
            f_q = f_rho * q_face
            fluxes[name] = f_q
            new_cons = rho_old[upd] * q[upd] - k * dflux(f_q)
            q[upd] = new_cons / rho[upd]
        # convert advected fractions back to densities
        for name in fields.advected:
            arr = fwd(fields[name])
            arr[upd] = np.maximum(specific[name][upd] * rho[upd], 0.0)
        e_arr = fwd(fields["internal"])
        floor_counts["internal_floor"] = int(
            np.count_nonzero(e_arr < self.energy_floor)
        )
        np.maximum(e_arr, self.energy_floor, out=e_arr)

        face_sl = (slice(ng - 1, n - ng),) + tuple(
            slice(ng, s - ng) for s in rho.shape[1:]
        )
        out = {}
        for fname, arr in fluxes.items():
            out[fname] = (dt / a) * np.moveaxis(arr[face_sl], 0, axis)
        # approximate energy flux for the flux-correction bookkeeping
        out["energy"] = out["internal"]
        return out, floor_counts
