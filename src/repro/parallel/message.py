"""Message record for the virtual cluster."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Message:
    """One point-to-point transfer on the virtual machine.

    ``post_time`` is the sender clock when the send was posted;
    ``arrival_time`` when the payload is fully available at the receiver
    (post + latency + size/bandwidth).
    """

    src: int
    dst: int
    tag: int
    size_bytes: int
    post_time: float
    arrival_time: float
    payload: object = None
    received: bool = field(default=False, compare=False)
