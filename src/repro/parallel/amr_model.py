"""Build communication workloads from real hierarchies.

Bridges the AMR layer and the virtual cluster: given a (serial) Hierarchy
and a grid->rank assignment, derive the boundary-exchange transfer list for
one level update and simulate the whole update (compute + communication)
under the paper's different strategies.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import VirtualCluster
from repro.parallel.distribution import grid_work
from repro.parallel.pipeline import Transfer, run_blocking_exchange, run_pipelined_exchange
from repro.parallel.sterile import SterileGrid, SterileHierarchy, find_siblings_with_probes

BYTES_PER_CELL_FIELD = 8
N_FIELDS = 18  # 5 hydro + internal + 12 species
#: seconds of compute per cell-update in the virtual machine's work model
SECONDS_PER_CELL = 2e-7


def boundary_exchange_transfers(sterile_hierarchy: SterileHierarchy,
                                assignment: dict[int, int], level: int,
                                n_fields: int = N_FIELDS) -> list[Transfer]:
    """Sibling ghost-exchange transfer list for one level.

    Message size = overlap volume x fields x 8 bytes; need_order follows
    grid id (the order grids are stepped, hence the order their boundary
    data is consumed).
    """
    out = []
    grids = sterile_hierarchy.level(level)
    for g in grids:
        for o in sterile_hierarchy.find_siblings(g):
            ov = g.ghost_overlap(o)
            lo, hi = ov
            cells = int(np.prod([h - l for l, h in zip(lo, hi)]))
            out.append(
                Transfer(
                    src=assignment[o.grid_id],
                    dst=assignment[g.grid_id],
                    size_bytes=cells * n_fields * BYTES_PER_CELL_FIELD,
                    need_order=g.grid_id,
                )
            )
    return out


def simulate_level_update(hierarchy_or_steriles, assignment: dict[int, int],
                          n_ranks: int, level: int,
                          use_sterile: bool = True,
                          use_pipeline: bool = True,
                          latency: float = 2e-5,
                          bandwidth: float = 1e8) -> dict:
    """Simulate one level update: neighbour lookup + ghost exchange + compute.

    Returns the cluster statistics plus the makespan, for each combination
    of the paper's strategies:

    * ``use_sterile=False`` — neighbour lookup costs probes to every rank
      per grid;
    * ``use_pipeline=False`` — blocking one-at-a-time exchange.
    """
    if isinstance(hierarchy_or_steriles, SterileHierarchy):
        sh = hierarchy_or_steriles
    else:
        sh = SterileHierarchy.from_hierarchy(hierarchy_or_steriles)
    cluster = VirtualCluster(n_ranks, latency=latency, bandwidth=bandwidth)

    grids = sh.level(level)
    # 1. neighbour lookup
    if not use_sterile:
        by_rank: dict[int, list[SterileGrid]] = {}
        for g in grids:
            by_rank.setdefault(assignment[g.grid_id], []).append(g)
        for g in grids:
            find_siblings_with_probes(g, cluster, assignment[g.grid_id], by_rank)
    # sterile: lookup is free (local metadata)

    # 2. ghost exchange
    transfers = boundary_exchange_transfers(sh, assignment, level)
    if use_pipeline:
        run_pipelined_exchange(cluster, transfers)
    else:
        run_blocking_exchange(cluster, transfers)

    # 3. local compute (solver work per rank)
    for g in grids:
        cluster.compute(assignment[g.grid_id], grid_work(g) * SECONDS_PER_CELL)
    cluster.barrier()

    out = cluster.stats.as_dict()
    out["makespan"] = cluster.makespan
    out["n_transfers"] = len(transfers)
    return out
