"""Distributed objects and load balancing (paper Sec. 3.4).

"We leveraged the object-oriented design by distributing the objects over
the processors, rather than attempting to distribute an individual grid.
This makes sense because the grids are generally small (~20^3) and numerous."

"...load balancing becomes a serious headache since small regions of the
original grid eventually dominate the computational requirements."

Strategies:

* ``round_robin``    — grid i -> rank i mod P (cheap, ignores work).
* ``greedy``         — longest-processing-time-first onto the least-loaded
  rank (the standard remedy; what Lan, Taylor & Bryan's dynamic
  load-balancing work [22] refines).
* ``level_blocks``   — contiguous blocks per level (locality-flavoured:
  neighbours tend to share ranks, reducing off-rank boundary traffic).

All strategies accept any object with ``grid_id``, ``level``, ``n_cells``
(and ``start_index`` for ``level_blocks``) — sterile grids from the virtual
cluster, or live :mod:`repro.exec` grid tasks.  A ``cost_model`` (anything
with ``cost(obj) -> float | None``, e.g.
:class:`repro.exec.calibration.WorkCalibrator`) replaces the analytic
cells-times-substeps estimate with *measured* per-grid wall times, closing
the loop between the virtual-cluster model and real execution.
"""

from __future__ import annotations

import numpy as np

#: relative cost per cell-update (hydro+gravity+chemistry on one cell).
WORK_PER_CELL = 1.0


def grid_work(sterile, refine_factor: int = 2, cost_model=None) -> float:
    """Work estimate for one grid over a *root* timestep.

    A level-l grid substeps ~r^l times per root step, so its share of the
    total work is cells * r^level — the same estimate behind the paper's
    Fig. 5 work-per-level panel.  When a ``cost_model`` is supplied and has
    a measurement for this grid, its (seconds-based) estimate is used
    instead of the analytic one.
    """
    if cost_model is not None:
        w = cost_model.cost(sterile)
        if w is not None:
            return float(w)
    return WORK_PER_CELL * sterile.n_cells * refine_factor**sterile.level


def balance_grids(steriles, n_ranks: int, strategy: str = "greedy",
                  refine_factor: int = 2, cost_model=None) -> dict[int, int]:
    """Assign grids to ranks; returns {grid_id: rank}."""
    steriles = list(steriles)
    if strategy == "round_robin":
        return {s.grid_id: i % n_ranks for i, s in enumerate(steriles)}

    if strategy == "greedy":
        loads = np.zeros(n_ranks)
        assignment = {}
        order = sorted(
            steriles, key=lambda s: -grid_work(s, refine_factor, cost_model)
        )
        for s in order:
            rank = int(np.argmin(loads))
            assignment[s.grid_id] = rank
            loads[rank] += grid_work(s, refine_factor, cost_model)
        return assignment

    if strategy == "level_blocks":
        assignment = {}
        by_level: dict[int, list] = {}
        for s in steriles:
            by_level.setdefault(s.level, []).append(s)
        for level, grids in by_level.items():
            grids = sorted(grids, key=lambda s: s.start_index)
            work = np.array(
                [grid_work(s, refine_factor, cost_model) for s in grids]
            )
            targets = np.cumsum(work) / max(work.sum(), 1e-300) * n_ranks
            for s, t in zip(grids, targets):
                assignment[s.grid_id] = min(int(t), n_ranks - 1)
        return assignment

    raise ValueError(f"unknown strategy '{strategy}'")


def load_imbalance(steriles, assignment: dict[int, int], n_ranks: int,
                   refine_factor: int = 2, cost_model=None) -> float:
    """max(rank load) / mean(rank load); 1.0 is perfect balance."""
    loads = np.zeros(n_ranks)
    for s in steriles:
        loads[assignment[s.grid_id]] += grid_work(s, refine_factor, cost_model)
    mean = loads.mean()
    if mean <= 0:
        return 1.0
    return float(loads.max() / mean)


def parallel_efficiency(steriles, assignment: dict[int, int], n_ranks: int,
                        refine_factor: int = 2, cost_model=None) -> float:
    """Fraction of ideal speedup achieved given the load distribution."""
    return 1.0 / load_imbalance(steriles, assignment, n_ranks, refine_factor,
                                cost_model)
