"""Pipelined two-phase communication (paper Sec. 3.4).

"We optimize this by dividing each stage into two steps.  First, all of the
data (such as boundary values) are processed and sent.  Since all
processors have the location of all other grids locally (thanks to the
sterile objects), we can order these sends such that the data that are
required first are sent first.  Then, in the receive stage, the data needed
immediately have had a chance to propagate across the network while the
rest of the sends were initiated. ... resulted in a large decrease in wait
times."

Two executors over the same transfer list:

* :func:`run_blocking_exchange` — the naive baseline: each transfer is a
  blocking send immediately followed by the receiver blocking on it and
  processing (serialising wire time into the critical path);
* :func:`run_pipelined_exchange`  — all sends posted asynchronously first
  (in need order), then receives drained in need order, so wire time
  overlaps with the injection of later sends and with processing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.comm import VirtualCluster


@dataclass(frozen=True)
class Transfer:
    """One required boundary-data movement.

    ``need_order`` ranks how soon the receiver needs it (smaller = sooner);
    ``pack_time``/``process_time`` model the sender-side packing and
    receiver-side unpacking work per message.
    """

    src: int
    dst: int
    size_bytes: int
    need_order: int = 0
    pack_time: float = 1e-6
    process_time: float = 1e-6


def run_blocking_exchange(cluster: VirtualCluster, transfers) -> float:
    """Naive: pack, blocking-send, receive, process — one at a time."""
    for i, t in enumerate(sorted(transfers, key=lambda t: t.need_order)):
        if t.src == t.dst:
            cluster.compute(t.src, t.pack_time + t.process_time)
            continue
        cluster.compute(t.src, t.pack_time)
        cluster.send(t.src, t.dst, t.size_bytes, tag=i)
        cluster.recv(t.dst, src=t.src, tag=i)
        cluster.compute(t.dst, t.process_time)
    cluster.barrier()
    return cluster.makespan


def run_pipelined_exchange(cluster: VirtualCluster, transfers) -> float:
    """Two-phase: post all sends in need order, then drain receives."""
    ordered = sorted(transfers, key=lambda t: t.need_order)
    tags = {}
    for i, t in enumerate(ordered):
        if t.src == t.dst:
            cluster.compute(t.src, t.pack_time)
            continue
        cluster.compute(t.src, t.pack_time)
        cluster.isend(t.src, t.dst, t.size_bytes, tag=i)
        tags[i] = t
    for i, t in enumerate(ordered):
        if t.src == t.dst:
            cluster.compute(t.dst, t.process_time)
            continue
        cluster.recv(t.dst, src=t.src, tag=i)
        cluster.compute(t.dst, t.process_time)
    cluster.barrier()
    return cluster.makespan
