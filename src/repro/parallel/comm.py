"""The virtual cluster: ranks, clocks, and a latency/bandwidth wire model.

A deterministic discrete-event model of a distributed-memory machine (the
Blue Horizon SP2 stand-in).  Each rank has a simulated clock advanced by
``compute`` (local work) and by waiting on receives.  A message posted at
sender time t arrives at t + latency + size/bandwidth; a blocking receive
advances the receiver's clock to the arrival time (accumulating *wait
time*, the quantity the paper's pipelining optimisation attacks).  Probes
cost a round trip — the cost sterile objects eliminate.

Default wire parameters are of the order of the paper's era hardware
(~20 us MPI latency, ~100 MB/s per-link bandwidth); every result consumed
by the benchmarks is a *ratio*, so absolute values only set the scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.message import Message


@dataclass
class CommStats:
    n_messages: int = 0
    n_probes: int = 0
    bytes_sent: int = 0
    wait_time: float = 0.0
    compute_time: float = 0.0

    def as_dict(self) -> dict:
        return {
            "messages": self.n_messages,
            "probes": self.n_probes,
            "bytes": self.bytes_sent,
            "wait_time": self.wait_time,
            "compute_time": self.compute_time,
        }


class VirtualCluster:
    """Deterministic simulated message-passing machine."""

    def __init__(self, n_ranks: int, latency: float = 2e-5,
                 bandwidth: float = 1e8):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = int(n_ranks)
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.clocks = [0.0] * self.n_ranks
        self.inbox: list[list[Message]] = [[] for _ in range(self.n_ranks)]
        self.stats = CommStats()

    # --------------------------------------------------------------- basics
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.n_ranks:
            raise ValueError(f"rank {r} out of range")

    def compute(self, rank: int, seconds: float) -> None:
        """Advance a rank's clock by local work."""
        self._check_rank(rank)
        self.clocks[rank] += float(seconds)
        self.stats.compute_time += float(seconds)

    def transfer_time(self, size_bytes: int) -> float:
        return self.latency + size_bytes / self.bandwidth

    # ------------------------------------------------------------ messaging
    def isend(self, src: int, dst: int, size_bytes: int, tag: int = 0,
              payload=None) -> Message:
        """Non-blocking send: posts the message, sender pays a small
        injection overhead (one latency's worth of packetisation)."""
        self._check_rank(src)
        self._check_rank(dst)
        post = self.clocks[src]
        msg = Message(src, dst, tag, int(size_bytes), post,
                      post + self.transfer_time(size_bytes), payload)
        self.inbox[dst].append(msg)
        self.clocks[src] += self.latency  # injection cost
        self.stats.n_messages += 1
        self.stats.bytes_sent += int(size_bytes)
        return msg

    def send(self, src: int, dst: int, size_bytes: int, tag: int = 0,
             payload=None) -> Message:
        """Blocking send: the sender also waits for the wire time."""
        msg = self.isend(src, dst, size_bytes, tag, payload)
        self.clocks[src] = max(self.clocks[src], msg.arrival_time)
        return msg

    def recv(self, dst: int, src: int | None = None, tag: int | None = None):
        """Blocking receive of the earliest-arriving matching message.

        Advances the receiver's clock to the arrival time; time spent
        ahead of the receiver's current clock is accumulated as wait time.
        """
        self._check_rank(dst)
        candidates = [
            m for m in self.inbox[dst]
            if not m.received
            and (src is None or m.src == src)
            and (tag is None or m.tag == tag)
        ]
        if not candidates:
            raise LookupError(f"no matching message for rank {dst}")
        msg = min(candidates, key=lambda m: m.arrival_time)
        msg.received = True
        wait = max(0.0, msg.arrival_time - self.clocks[dst])
        self.stats.wait_time += wait
        self.clocks[dst] = self.clocks[dst] + wait
        return msg

    def probe(self, asker: int, target: int) -> None:
        """Query a remote rank for metadata: costs a round trip.

        This is the operation the paper's sterile objects remove: without
        a local replica of the hierarchy, each rank must ask every other
        rank whether it owns a potential neighbour.
        """
        self._check_rank(asker)
        self._check_rank(target)
        rtt = 2.0 * self.latency
        self.clocks[asker] += rtt
        self.stats.n_probes += 1
        self.stats.wait_time += rtt

    # --------------------------------------------------------------- global
    def barrier(self) -> None:
        """Synchronise all clocks to the max (idle time counts as wait)."""
        t = max(self.clocks)
        for r in range(self.n_ranks):
            self.stats.wait_time += t - self.clocks[r]
            self.clocks[r] = t

    @property
    def makespan(self) -> float:
        return max(self.clocks)

    def reset(self) -> None:
        self.clocks = [0.0] * self.n_ranks
        self.inbox = [[] for _ in range(self.n_ranks)]
        self.stats = CommStats()
