"""Simulated distributed-memory parallelisation (paper Sec. 3.4).

No MPI runtime exists in this environment, so the paper's parallel
*algorithms* run on a deterministic virtual cluster: logical ranks with
simulated clocks, a latency+bandwidth message model, and explicit queues.
The three optimisation techniques the paper describes are implemented
against that machine and their effects measured exactly as the paper
argues them:

* **Distributed objects** (:mod:`repro.parallel.distribution`) — whole
  grids are the unit of distribution; strategies from naive round-robin to
  load-greedy assignment are compared by load-balance efficiency.
* **Sterile objects** (:mod:`repro.parallel.sterile`) — metadata-only grid
  replicas on every rank make neighbour lookup local, eliminating probe
  messages ("almost all messages are direct data sends; very few probes
  are required").
* **Pipelined communication** (:mod:`repro.parallel.pipeline`) — two-phase
  ordered asynchronous sends ("the data that are required first are sent
  first"), cutting receive-side wait time relative to blocking exchange.
"""

from repro.parallel.comm import VirtualCluster, CommStats
from repro.parallel.message import Message
from repro.parallel.sterile import SterileGrid, SterileHierarchy
from repro.parallel.distribution import balance_grids, load_imbalance, WORK_PER_CELL
from repro.parallel.pipeline import Transfer, run_blocking_exchange, run_pipelined_exchange
from repro.parallel.amr_model import boundary_exchange_transfers, simulate_level_update
from repro.parallel.dynamic import DynamicLoadBalancer

__all__ = [
    "VirtualCluster",
    "CommStats",
    "Message",
    "SterileGrid",
    "SterileHierarchy",
    "balance_grids",
    "load_imbalance",
    "WORK_PER_CELL",
    "Transfer",
    "run_blocking_exchange",
    "run_pipelined_exchange",
    "boundary_exchange_transfers",
    "DynamicLoadBalancer",
    "simulate_level_update",
]
