"""Sterile objects: metadata-only grid replicas (paper Sec. 3.4).

"We solved this problem by creating a type of object which contained
information about the location and size of a grid, but did not contain the
actual solution.  These sterile objects are small and so each processor can
hold the entire hierarchy.  Only those grids which are local to that
processor are non-sterile."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SterileGrid:
    """Location + size + owner of a grid; no solution arrays.

    ~100 bytes instead of megabytes — the paper's point is precisely this
    ratio, which is what lets every rank replicate the whole hierarchy.
    """

    grid_id: int
    level: int
    start_index: tuple
    dims: tuple
    proc: int
    nghost: int = 3

    @classmethod
    def from_grid(cls, grid) -> "SterileGrid":
        return cls(
            grid_id=grid.grid_id,
            level=grid.level,
            start_index=tuple(int(s) for s in grid.start_index),
            dims=tuple(int(d) for d in grid.dims),
            proc=grid.proc,
            nghost=grid.nghost,
        )

    @property
    def end_index(self) -> tuple:
        return tuple(s + d for s, d in zip(self.start_index, self.dims))

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims))

    @property
    def nbytes(self) -> int:
        """Approximate metadata footprint."""
        return 8 * (3 + 3 + 4)

    def data_nbytes(self, n_fields: int = 18) -> int:
        """What the full (non-sterile) grid would occupy."""
        padded = np.prod([d + 2 * self.nghost for d in self.dims])
        return int(padded) * 8 * n_fields

    def ghost_overlap(self, other: "SterileGrid"):
        """Same-level ghost-region intersection (None if disjoint)."""
        if other.level != self.level:
            return None
        lo = tuple(
            max(s - self.nghost, o) for s, o in zip(self.start_index, other.start_index)
        )
        hi = tuple(
            min(e + self.nghost, oe) for e, oe in zip(self.end_index, other.end_index)
        )
        if any(l >= h for l, h in zip(lo, hi)):
            return None
        return lo, hi


class SterileHierarchy:
    """Every rank's local replica of the full hierarchy metadata."""

    def __init__(self, sterile_grids=()):
        self.by_level: dict[int, list[SterileGrid]] = {}
        for s in sterile_grids:
            self.by_level.setdefault(s.level, []).append(s)

    @classmethod
    def from_hierarchy(cls, hierarchy) -> "SterileHierarchy":
        return cls(SterileGrid.from_grid(g) for g in hierarchy.all_grids())

    def add(self, sterile: SterileGrid) -> None:
        self.by_level.setdefault(sterile.level, []).append(sterile)

    def level(self, level: int) -> list[SterileGrid]:
        return self.by_level.get(level, [])

    @property
    def n_grids(self) -> int:
        return sum(len(v) for v in self.by_level.values())

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for lvl in self.by_level.values() for s in lvl)

    def find_siblings(self, grid: SterileGrid) -> list[SterileGrid]:
        """Neighbour lookup — entirely local, zero messages."""
        return [
            o for o in self.level(grid.level)
            if o.grid_id != grid.grid_id and grid.ghost_overlap(o) is not None
        ]

    def owners_of_level(self, level: int) -> set[int]:
        return {s.proc for s in self.level(level)}


def find_siblings_with_probes(grid: SterileGrid, cluster, rank: int,
                              all_grids_by_rank: dict) -> list[SterileGrid]:
    """The pre-sterile alternative: ask every other rank what it owns.

    Each remote rank costs one probe round-trip; the answer is then
    filtered locally.  Used by the benchmarks to quantify what sterile
    objects save.
    """
    results = []
    for other_rank in range(cluster.n_ranks):
        if other_rank == rank:
            candidates = all_grids_by_rank.get(rank, [])
        else:
            cluster.probe(rank, other_rank)
            candidates = all_grids_by_rank.get(other_rank, [])
        for o in candidates:
            if (
                o.level == grid.level
                and o.grid_id != grid.grid_id
                and grid.ghost_overlap(o) is not None
            ):
                results.append(o)
    return results
