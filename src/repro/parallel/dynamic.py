"""Dynamic load balancing across hierarchy rebuilds (paper ref. [22]).

"...load balancing becomes a serious headache since small regions of the
original grid eventually dominate the computational requirements" — and the
paper points to Lan, Taylor & Bryan (ICPP 2001) for dynamic balancing.

The scheme here follows that work's structure: after each rebuild, keep the
existing placement where possible (migration costs bandwidth) and move the
smallest sufficient set of grids from overloaded to underloaded ranks until
the imbalance is under a threshold.  The balancer accounts migration bytes
so the benchmarks can weigh imbalance against data motion — the actual
trade-off that paper studies.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.distribution import grid_work


class DynamicLoadBalancer:
    """Incremental rebalancer with migration-cost accounting.

    Parameters
    ----------
    n_ranks:
        Rank count.
    threshold:
        Rebalance until max/mean load <= threshold (1.0 = perfect).
    refine_factor:
        For the work estimate (substeps ~ r^level).
    """

    def __init__(self, n_ranks: int, threshold: float = 1.25,
                 refine_factor: int = 2):
        self.n_ranks = int(n_ranks)
        self.threshold = float(threshold)
        self.r = int(refine_factor)
        self.assignment: dict[int, int] = {}
        self.total_migrated_bytes = 0
        self.migration_events = 0
        self.history: list[float] = []

    # ------------------------------------------------------------------ core
    def update(self, steriles) -> dict[int, int]:
        """Re-place the current grid population; returns {grid_id: rank}.

        New grids are placed on the least-loaded rank; existing grids keep
        their rank unless the imbalance exceeds the threshold, in which
        case grids migrate (cheapest-sufficient-first) off the overloaded
        ranks.
        """
        steriles = list(steriles)
        known = {s.grid_id for s in steriles}
        # drop departed grids
        self.assignment = {
            gid: rank for gid, rank in self.assignment.items() if gid in known
        }
        loads = np.zeros(self.n_ranks)
        by_id = {}
        for s in steriles:
            by_id[s.grid_id] = s
            if s.grid_id in self.assignment:
                loads[self.assignment[s.grid_id]] += grid_work(s, self.r)

        # place newcomers on the least-loaded rank (no migration cost: they
        # are created in place)
        newcomers = sorted(
            (s for s in steriles if s.grid_id not in self.assignment),
            key=lambda s: -grid_work(s, self.r),
        )
        for s in newcomers:
            rank = int(np.argmin(loads))
            self.assignment[s.grid_id] = rank
            loads[rank] += grid_work(s, self.r)

        # migrate until balanced
        self._migrate(by_id, loads)
        mean = loads.mean() if loads.mean() > 0 else 1.0
        self.history.append(float(loads.max() / mean))
        return dict(self.assignment)

    def _migrate(self, by_id: dict, loads: np.ndarray) -> None:
        mean = loads.mean()
        if mean <= 0:
            return
        guard = 0
        while loads.max() / mean > self.threshold and guard < 10 * len(by_id):
            guard += 1
            src = int(np.argmax(loads))
            dst = int(np.argmin(loads))
            # candidates on the overloaded rank, smallest move that helps
            candidates = [
                s for s in by_id.values() if self.assignment[s.grid_id] == src
            ]
            if not candidates:
                break
            excess = loads[src] - mean
            candidates.sort(key=lambda s: abs(grid_work(s, self.r) - excess))
            moved = False
            for s in candidates:
                w = grid_work(s, self.r)
                if loads[dst] + w < loads[src]:
                    self.assignment[s.grid_id] = dst
                    loads[src] -= w
                    loads[dst] += w
                    self.total_migrated_bytes += s.data_nbytes()
                    self.migration_events += 1
                    moved = True
                    break
            if not moved:
                break

    # -------------------------------------------------------------- metrics
    def imbalance(self, steriles) -> float:
        loads = np.zeros(self.n_ranks)
        for s in steriles:
            loads[self.assignment[s.grid_id]] += grid_work(s, self.r)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    def report(self) -> dict:
        return {
            "final_imbalance": self.history[-1] if self.history else 1.0,
            "mean_imbalance": float(np.mean(self.history)) if self.history else 1.0,
            "migration_events": self.migration_events,
            "migrated_bytes": self.total_migrated_bytes,
        }
