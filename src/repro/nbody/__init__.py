"""Adaptive particle-mesh N-body for the collisionless dark matter.

"...the dark matter is pressureless and collisionless, only interacting via
gravity. ... we solve for the individual trajectories of a representative
sample of particles ... using particle-mesh techniques specially tailored to
adaptive mesh hierarchies." (paper Sec. 3.3)

Positions are EPA (:class:`repro.precision.PositionDD`) — particles deep in
the hierarchy move by increments ~1e-12 of the box, which float64 cannot
represent; velocities and masses are plain float64 (relative quantities).
"""

from repro.nbody.particles import ParticleSet
from repro.nbody.cic import cic_deposit, cic_gather
from repro.nbody.integrator import kick, drift, kick_drift_kick

__all__ = [
    "ParticleSet",
    "cic_deposit",
    "cic_gather",
    "kick",
    "drift",
    "kick_drift_kick",
]
