"""Kick-drift-kick leapfrog in comoving coordinates.

The collisionless equations in our variables (x comoving in the unit box,
v proper peculiar in code units):

    dx/dt = v / a            (drift, applied to EPA positions)
    dv/dt = g - (adot/a) v   (kick: peculiar gravity + Hubble drag)

The Hubble drag is integrated exactly over the half-kick via an exponential
factor, matching the gas solver's treatment.
"""

from __future__ import annotations

import numpy as np

from repro.nbody.particles import ParticleSet


def kick(particles: ParticleSet, accel: np.ndarray, dt: float,
         a: float = 1.0, adot: float = 0.0) -> None:
    """Half/full kick: drag (exact exponential) then acceleration impulse."""
    if adot != 0.0:
        particles.velocities *= np.exp(-(adot / a) * dt)
    if accel is not None:
        particles.velocities += accel * dt


def drift(particles: ParticleSet, dt: float, a: float = 1.0,
          periodic: bool = True) -> None:
    """Advance EPA positions by v dt / a (the only EPA-critical operation)."""
    dx = particles.velocities * (dt / a)
    particles.positions.translate_inplace(dx)
    if periodic:
        particles.wrap_periodic()


def kick_drift_kick(particles: ParticleSet, accel_fn, dt: float,
                    a: float = 1.0, adot: float = 0.0,
                    periodic: bool = True) -> None:
    """One KDK step; ``accel_fn(particles)`` returns (n, 3) accelerations.

    Re-evaluates the acceleration after the drift, as a proper leapfrog
    requires (the AMR driver instead interleaves kicks with its own gravity
    solves; this helper is for standalone N-body use and tests).
    """
    kick(particles, accel_fn(particles), 0.5 * dt, a, adot)
    drift(particles, dt, a, periodic)
    kick(particles, accel_fn(particles), 0.5 * dt, a, adot)
