"""Cloud-in-cell (CIC) mass deposition and force interpolation.

All functions take *float64 offsets from the target grid's left edge* (the
output of :meth:`ParticleSet.offsets_from` — extended precision has already
done its job) plus the grid geometry.  Deposit and gather use the same CIC
kernel, which is what guarantees momentum-conserving self-forces vanish on a
periodic mesh.
"""

from __future__ import annotations

import numpy as np


def _cic_indices(offsets: np.ndarray, dx: float, shape, periodic: bool):
    """Base cell indices and weights for CIC (cell-centred grid).

    A particle at cell-centre offset u = x/dx - 0.5 contributes to cells
    floor(u) and floor(u)+1 per dimension with weights (1-f, f).
    """
    u = offsets / dx - 0.5
    base = np.floor(u).astype(np.int64)
    frac = u - base
    shape_arr = np.array(shape)
    if periodic:
        in_bounds = np.ones(offsets.shape[0], dtype=bool)
        base_mod = base % shape_arr
    else:
        in_bounds = np.all((base >= -1) & (base <= shape_arr - 1), axis=1)
        base_mod = base
    return base_mod, frac, in_bounds


def cic_deposit(
    offsets: np.ndarray,
    masses: np.ndarray,
    shape,
    dx: float,
    periodic: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Deposit particle masses onto a density grid (mass / cell-volume).

    ``offsets``: (n, 3) float64 positions relative to the grid's left edge.
    Non-periodic grids silently drop the mass fraction that falls outside
    (the AMR layer guarantees particles are deposited on a grid that
    contains them, so nothing is lost globally).
    """
    grid = np.zeros(shape) if out is None else out
    if len(masses) == 0:
        return grid
    base, frac, ok = _cic_indices(offsets, dx, shape, periodic)
    # deposit density directly: mass / cell volume
    masses = np.asarray(masses, dtype=float) / dx**3
    base, frac, masses = base[ok], frac[ok], masses[ok]
    shape_arr = np.array(shape)
    for corner in range(8):
        d = np.array([(corner >> b) & 1 for b in (2, 1, 0)])
        w = np.prod(np.where(d, frac, 1.0 - frac), axis=1)
        idx = base + d
        if periodic:
            idx = idx % shape_arr
            valid = slice(None)
        else:
            inb = np.all((idx >= 0) & (idx < shape_arr), axis=1)
            idx, w = idx[inb], w[inb]
            valid = inb
        np.add.at(
            grid,
            (idx[:, 0], idx[:, 1], idx[:, 2]),
            (masses[valid] if not periodic else masses) * w,
        )
    return grid


def cic_gather(
    field3: np.ndarray,
    offsets: np.ndarray,
    dx: float,
    periodic: bool = True,
) -> np.ndarray:
    """Interpolate a (3, nx, ny, nz) vector field to particle positions."""
    n = offsets.shape[0]
    out = np.zeros((n, 3))
    if n == 0:
        return out
    shape = field3.shape[1:]
    base, frac, ok = _cic_indices(offsets, dx, shape, periodic)
    shape_arr = np.array(shape)
    for corner in range(8):
        d = np.array([(corner >> b) & 1 for b in (2, 1, 0)])
        w = np.prod(np.where(d, frac, 1.0 - frac), axis=1)
        idx = base + d
        if periodic:
            idx = idx % shape_arr
            use = np.ones(n, dtype=bool)
        else:
            use = np.all((idx >= 0) & (idx < shape_arr), axis=1) & ok
            idx = np.clip(idx, 0, shape_arr - 1)
        for axis in range(3):
            out[:, axis] += np.where(
                use, w * field3[axis][idx[:, 0], idx[:, 1], idx[:, 2]], 0.0
            )
    return out
