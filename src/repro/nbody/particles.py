"""Particle container with extended-precision positions."""

from __future__ import annotations

import numpy as np

from repro.precision.position import PositionDD, relative_offset


class ParticleSet:
    """Dark-matter particles: EPA positions, float64 velocities and masses.

    Velocities are proper peculiar velocities in code units (matching the
    gas convention); positions live in the unit box.
    """

    def __init__(self, positions: PositionDD, velocities: np.ndarray,
                 masses: np.ndarray, ids: np.ndarray | None = None):
        n = positions.hi.shape[0]
        velocities = np.asarray(velocities, dtype=float)
        masses = np.asarray(masses, dtype=float)
        if velocities.shape != (n, 3):
            raise ValueError(f"velocities shape {velocities.shape} != ({n}, 3)")
        if masses.shape != (n,):
            raise ValueError(f"masses shape {masses.shape} != ({n},)")
        self.positions = positions
        self.velocities = velocities
        self.masses = masses
        self.ids = np.arange(n) if ids is None else np.asarray(ids)

    @classmethod
    def empty(cls) -> "ParticleSet":
        return cls(
            PositionDD(np.zeros((0, 3))), np.zeros((0, 3)), np.zeros(0), np.zeros(0, int)
        )

    @classmethod
    def from_arrays(cls, positions_f64, velocities, masses) -> "ParticleSet":
        return cls(PositionDD(np.asarray(positions_f64, float)),
                   velocities, masses)

    def __len__(self) -> int:
        return self.positions.hi.shape[0]

    @property
    def total_mass(self) -> float:
        return float(self.masses.sum())

    def select(self, mask) -> "ParticleSet":
        """Subset by boolean mask or index array."""
        return ParticleSet(
            PositionDD(self.positions.hi[mask], self.positions.lo[mask]),
            self.velocities[mask],
            self.masses[mask],
            self.ids[mask],
        )

    def concatenated(self, other: "ParticleSet") -> "ParticleSet":
        return ParticleSet(
            PositionDD(
                np.concatenate([self.positions.hi, other.positions.hi]),
                np.concatenate([self.positions.lo, other.positions.lo]),
            ),
            np.concatenate([self.velocities, other.velocities]),
            np.concatenate([self.masses, other.masses]),
            np.concatenate([self.ids, other.ids]),
        )

    def offsets_from(self, origin_hi, origin_lo=None) -> np.ndarray:
        """float64 positions relative to a DD origin (the precision boundary)."""
        origin = PositionDD(
            np.broadcast_to(np.asarray(origin_hi, float), self.positions.hi.shape),
            None
            if origin_lo is None
            else np.broadcast_to(np.asarray(origin_lo, float), self.positions.hi.shape),
        )
        return relative_offset(self.positions, origin)

    def in_region(self, left_edge, right_edge) -> np.ndarray:
        """Boolean mask of particles inside [left, right) (float64 compare —
        adequate for region membership, which is cell-scale)."""
        pos = self.positions.hi + self.positions.lo
        left = np.asarray(left_edge, float)
        right = np.asarray(right_edge, float)
        return np.all((pos >= left) & (pos < right), axis=1)

    def wrap_periodic(self) -> None:
        self.positions = self.positions.wrap_periodic(0.0, 1.0)

    def momentum(self) -> np.ndarray:
        return (self.velocities * self.masses[:, None]).sum(axis=0)

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.masses * (self.velocities**2).sum(axis=1)).sum())
