"""Analytic reference solutions for the validation battery.

* :func:`sedov_solution` — the Sedov–Taylor point-explosion similarity
  solution (spherical, uniform cold ambient medium), evaluated from the
  exact parametric form (Sedov 1959; Kamm & Timmes 2007 parametrisation)
  with the energy-integral normalisation computed numerically, so the
  profiles conserve the injected energy to quadrature accuracy by
  construction.
* :func:`riemann_profile` — exact Riemann (shock-tube) profiles, thin
  wrapper over :func:`repro.hydro.riemann.exact_riemann`.
* :func:`kh_growth_rate` / :func:`rt_growth_rate` — incompressible linear
  growth rates for the Kelvin–Helmholtz and Rayleigh–Taylor instabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants as const
from repro.hydro.riemann import exact_riemann

_trapz = getattr(np, "trapezoid", None) or np.trapz  # numpy 2.x rename


# --------------------------------------------------------------------- Sedov
@dataclass
class SedovSolution:
    """Tabulated similarity profiles plus the scalars tests assert on.

    ``r`` is ascending from (near) the origin to the shock radius
    ``r_shock``; ``density``/``velocity``/``pressure`` are the profiles at
    time ``t``.  ``beta`` is the dimensionless shock-position constant in
    ``R(t) = beta * (E t^2 / rho0)**(1/5)``.
    """

    t: float
    energy: float
    rho0: float
    gamma: float
    beta: float
    r_shock: float
    shock_speed: float
    r: np.ndarray
    density: np.ndarray
    velocity: np.ndarray
    pressure: np.ndarray

    def sample(self, radius: np.ndarray) -> dict[str, np.ndarray]:
        """Profiles interpolated onto arbitrary radii (ambient beyond R)."""
        radius = np.asarray(radius, dtype=float)
        rho = np.interp(radius, self.r, self.density,
                        left=self.density[0], right=self.rho0)
        u = np.interp(radius, self.r, self.velocity, left=0.0, right=0.0)
        p = np.interp(radius, self.r, self.pressure,
                      left=self.pressure[0], right=0.0)
        outside = radius > self.r_shock
        rho = np.where(outside, self.rho0, rho)
        u = np.where(outside, 0.0, u)
        p = np.where(outside, 0.0, p)
        return {"density": rho, "velocity": u, "pressure": p}

    def total_energy(self) -> float:
        """Volume integral of kinetic + thermal energy over the profiles.

        Equals ``energy`` to quadrature accuracy — the self-consistency
        check the unit tests pin.
        """
        e = 0.5 * self.density * self.velocity**2 + self.pressure / (
            self.gamma - 1.0
        )
        return float(_trapz(4.0 * np.pi * self.r**2 * e, self.r))


def _sedov_similarity(gamma: float, n_points: int):
    """Exact parametric similarity profiles for nu=3 (spherical), w=0.

    Returns ascending arrays ``(l, V, g, Z)`` where ``l = r/R``,
    ``u = V r/t``, ``g = rho/rho2`` (post-shock density), and
    ``c^2 = (4 r^2 / 25 t^2) Z`` closes the pressure via
    ``p = rho c^2 / gamma`` (Landau & Lifshitz §106).
    """
    g_ = float(gamma)
    if not 1.0 < g_ < 7.0 or abs(g_ - 2.0) < 1e-12:
        raise ValueError(f"sedov_solution: unsupported gamma={g_}")
    v0 = 2.0 / (5.0 * g_)            # origin (V -> v0, l -> 0)
    v2 = 4.0 / (5.0 * (g_ + 1.0))    # immediately behind the shock (l = 1)

    a_ = 5.0 * (g_ + 1.0) / 4.0
    b_ = (g_ + 1.0) / (g_ - 1.0)
    c_ = 5.0 * g_ / 2.0
    d_ = 5.0 * (g_ + 1.0) / (7.0 - g_)
    e_ = (3.0 * g_ - 1.0) / 2.0

    alpha0 = 2.0 / 5.0
    alpha2 = -(g_ - 1.0) / (2.0 * (g_ - 1.0) + 3.0)
    alpha1 = (5.0 * g_ / (2.0 + 3.0 * (g_ - 1.0))) * (
        6.0 * (2.0 - g_) / (25.0 * g_) - alpha2
    )
    alpha3 = 3.0 / (2.0 * (g_ - 1.0) + 3.0)
    alpha4 = 5.0 * alpha1 / (2.0 - g_)
    alpha5 = -2.0 / (2.0 - g_)

    # cluster samples toward the origin, where x2 -> 0 makes l and g vary
    # over many decades; s_min keeps V - v0 well above machine epsilon so
    # Z stays finite at the innermost sample
    s = np.linspace(1e-3, 1.0, n_points)
    V = v0 + (v2 - v0) * s**4

    x1 = a_ * V
    x2 = b_ * np.maximum(c_ * V - 1.0, 1e-300)
    x3 = d_ * (1.0 - e_ * V)
    x4 = b_ * (1.0 - (c_ / g_) * V)

    l = x1**-alpha0 * x2**-alpha2 * x3**-alpha1
    g = x2**alpha3 * x3**alpha4 * x4**alpha5

    vbar = 2.5 * V  # Landau-Lifshitz's velocity variable
    Z = g_ * (g_ - 1.0) * (1.0 - vbar) * vbar**2 / (
        2.0 * np.maximum(g_ * vbar - 1.0, 1e-300)
    )
    return l, V, g, Z


def sedov_solution(t: float, energy: float = 1.0, rho0: float = 1.0,
                   gamma: float = 1.4, n_points: int = 4000) -> SedovSolution:
    """Exact Sedov–Taylor blast-wave state at time ``t``.

    The normalisation constant ``beta`` comes from requiring the similarity
    profiles to integrate to ``energy`` — no tabulated constants, so the
    result is self-consistent for any supported gamma.
    """
    t = float(t)
    if t <= 0.0:
        raise ValueError("sedov_solution needs t > 0")
    l, V, g, Z = _sedov_similarity(gamma, n_points)

    # energy integral: E = (rho0 R^5 / t^2) * I  =>  beta = I**(-1/5)
    integrand = l**4 * g * (0.5 * V**2 + 4.0 * Z / (
        25.0 * gamma * (gamma - 1.0)
    ))
    I = 4.0 * np.pi * (gamma + 1.0) / (gamma - 1.0) * _trapz(integrand, l)
    beta = float(I ** (-0.2))

    r_shock = beta * (energy * t**2 / rho0) ** 0.2
    shock_speed = 0.4 * r_shock / t  # dR/dt = (2/5) R / t

    rho2 = rho0 * (gamma + 1.0) / (gamma - 1.0)  # strong-shock jump
    r = l * r_shock
    density = g * rho2
    velocity = V * r / t
    pressure = density * (4.0 * r**2 / (25.0 * t**2)) * Z / gamma
    return SedovSolution(
        t=t, energy=float(energy), rho0=float(rho0), gamma=float(gamma),
        beta=beta, r_shock=float(r_shock), shock_speed=float(shock_speed),
        r=r, density=density, velocity=velocity, pressure=pressure,
    )


# ------------------------------------------------------------------- Riemann
def riemann_profile(left, right, gamma: float, x: np.ndarray, t: float,
                    x0: float = 0.5) -> dict[str, np.ndarray]:
    """Exact shock-tube profiles at positions ``x`` and time ``t``.

    ``left``/``right`` are (rho, u, p) primitive states either side of the
    initial discontinuity at ``x0``.
    """
    x = np.asarray(x, dtype=float)
    if t <= 0.0:
        rho = np.where(x < x0, left[0], right[0])
        u = np.where(x < x0, left[1], right[1])
        p = np.where(x < x0, left[2], right[2])
        return {"density": rho, "velocity": u, "pressure": p}
    xi = (x - x0) / t
    rho, u, p = exact_riemann(left, right, gamma, xi)
    return {"density": rho, "velocity": u, "pressure": p}


# ------------------------------------------------------- linear growth rates
def kh_growth_rate(k: float, rho1: float, rho2: float,
                   u1: float, u2: float) -> float:
    """Incompressible Kelvin–Helmholtz linear growth rate (Chandrasekhar).

    sigma = k sqrt(rho1 rho2) |u1 - u2| / (rho1 + rho2) for a sharp
    interface between streams of densities rho1/rho2 and velocities u1/u2;
    ``k`` is the perturbation wavenumber (2 pi / wavelength).
    """
    return float(
        k * np.sqrt(rho1 * rho2) * abs(u1 - u2) / (rho1 + rho2)
    )


def rt_growth_rate(k: float, rho_heavy: float, rho_light: float,
                   g: float) -> float:
    """Incompressible Rayleigh–Taylor growth rate sigma = sqrt(A g k).

    ``A`` is the Atwood number (rho_h - rho_l)/(rho_h + rho_l); ``g`` the
    magnitude of the acceleration pointing from heavy toward light fluid.
    """
    atwood = (rho_heavy - rho_light) / (rho_heavy + rho_light)
    return float(np.sqrt(max(atwood * g * k, 0.0)))


def sound_crossing_time(length: float, pressure: float, rho: float,
                        gamma: float = const.GAMMA) -> float:
    """Convenience: L / c_s for picking problem end times."""
    return float(length / np.sqrt(gamma * pressure / rho))
