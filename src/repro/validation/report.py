"""Machine-readable validation reports.

A :class:`ValidationReport` is the single artifact every layer of the
validation subsystem emits: the convergence harness fills one in, tests
assert on it, CI round-trips it through JSON, and
``benchmarks/bench_validation.py`` embeds them in ``BENCH_validation.json``.

The schema is versioned and deliberately flat so a report written by one
revision of the code stays consumable by the next: top-level metadata plus
per-field lists of ``{n, l1, l2, linf}`` rows and fitted orders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: required top-level keys and their types, checked by :func:`validate_report`
_REQUIRED = {
    "schema_version": int,
    "problem": str,
    "mode": str,            # 'analytic' | 'self'
    "fields": list,
    "resolutions": list,
    "t_end": float,
    "norms": dict,
    "orders": dict,
    "pairwise_orders": dict,
    "meta": dict,
}

_NORM_KEYS = ("l1", "l2", "linf")


@dataclass
class ValidationReport:
    """Result of one convergence-harness invocation.

    ``norms[field]`` is a list (ascending resolution) of rows
    ``{"n": int, "l1": float, "l2": float, "linf": float}``;
    ``orders[field]`` the least-squares fitted order per norm; and
    ``pairwise_orders[field][norm]`` the order between each adjacent
    resolution pair (length ``len(resolutions) - 1``).
    """

    problem: str
    mode: str
    fields: list[str]
    resolutions: list[int]
    t_end: float
    norms: dict = field(default_factory=dict)
    orders: dict = field(default_factory=dict)
    pairwise_orders: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------ accessors
    def order(self, field_name: str, norm: str = "l1") -> float:
        """Fitted convergence order for one field/norm."""
        return float(self.orders[field_name][norm])

    def min_order(self, norm: str = "l1") -> float:
        """Worst fitted order across all measured fields."""
        return min(float(self.orders[f][norm]) for f in self.fields)

    # ----------------------------------------------------------------- json
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "problem": self.problem,
            "mode": self.mode,
            "fields": list(self.fields),
            "resolutions": [int(n) for n in self.resolutions],
            "t_end": float(self.t_end),
            "norms": self.norms,
            "orders": self.orders,
            "pairwise_orders": self.pairwise_orders,
            "meta": self.meta,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, d: dict) -> "ValidationReport":
        validate_report(d)
        return cls(
            problem=d["problem"],
            mode=d["mode"],
            fields=list(d["fields"]),
            resolutions=[int(n) for n in d["resolutions"]],
            t_end=float(d["t_end"]),
            norms=d["norms"],
            orders=d["orders"],
            pairwise_orders=d["pairwise_orders"],
            meta=d["meta"],
            schema_version=int(d["schema_version"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ValidationReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ValidationReport":
        with open(path) as fh:
            return cls.from_json(fh.read())


def validate_report(d: dict) -> None:
    """Schema check for a report dict; raises ``ValueError`` on violation.

    Hand-rolled (no jsonschema dependency): key presence + types, the
    per-field norm rows, and consistency between ``fields``/``norms``/
    ``orders`` keys.
    """
    if not isinstance(d, dict):
        raise ValueError(f"report must be a dict, got {type(d).__name__}")
    for key, typ in _REQUIRED.items():
        if key not in d:
            raise ValueError(f"report missing required key {key!r}")
        value = d[key]
        if typ is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"report[{key!r}] must be a number")
        elif not isinstance(value, typ):
            raise ValueError(
                f"report[{key!r}] must be {typ.__name__}, "
                f"got {type(value).__name__}"
            )
    if int(d["schema_version"]) != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {d['schema_version']} "
            f"(expected {SCHEMA_VERSION})"
        )
    if d["mode"] not in ("analytic", "self"):
        raise ValueError(f"mode must be 'analytic' or 'self', got {d['mode']!r}")
    fields = d["fields"]
    if not all(isinstance(f, str) for f in fields):
        raise ValueError("fields must be a list of strings")
    res = d["resolutions"]
    if len(res) < 2 or not all(isinstance(n, int) and n > 0 for n in res):
        raise ValueError("resolutions must be >= 2 positive integers")
    if sorted(res) != list(res):
        raise ValueError("resolutions must be ascending")
    for fname in fields:
        rows = d["norms"].get(fname)
        if not isinstance(rows, list) or len(rows) != len(res):
            raise ValueError(f"norms[{fname!r}] must have one row per resolution")
        for row, n in zip(rows, res):
            if int(row.get("n", -1)) != n:
                raise ValueError(f"norms[{fname!r}] rows out of order")
            for key in _NORM_KEYS:
                if not isinstance(row.get(key), (int, float)):
                    raise ValueError(f"norms[{fname!r}] row missing {key!r}")
        fitted = d["orders"].get(fname)
        if not isinstance(fitted, dict) or not all(
            isinstance(fitted.get(k), (int, float)) for k in _NORM_KEYS
        ):
            raise ValueError(f"orders[{fname!r}] must map l1/l2/linf to numbers")
        pairwise = d["pairwise_orders"].get(fname)
        if not isinstance(pairwise, dict):
            raise ValueError(f"pairwise_orders[{fname!r}] missing")
        for key in _NORM_KEYS:
            seq = pairwise.get(key)
            if not isinstance(seq, list) or len(seq) != len(res) - 1:
                raise ValueError(
                    f"pairwise_orders[{fname!r}][{key!r}] must have "
                    f"{len(res) - 1} entries"
                )
