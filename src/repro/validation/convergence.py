"""Convergence harness: run a problem at 2-3 resolutions, fit the order.

For problems with an analytic reference the error at each resolution is
measured directly against it; otherwise the richest grid is the reference
and coarser solutions are compared against its conservative restriction
(self-convergence), which requires each resolution to divide the finest.

The output is a :class:`repro.validation.report.ValidationReport` — the
JSON artifact CI and ``BENCH_validation.json`` consume.
"""

from __future__ import annotations

from repro.validation.norms import (
    NORM_KEYS,
    field_error_norms,
    fit_order,
    pairwise_orders,
    restrict_fields,
)
from repro.validation.registry import ProblemSpec, get_problem
from repro.validation.report import ValidationReport


def run_convergence(problem, resolutions=None, fields=None, t_end=None,
                    factory_kwargs=None, run_kwargs=None,
                    relative: bool = False) -> ValidationReport:
    """Run ``problem`` at each resolution and fit per-field orders.

    ``problem`` is a registry name or a :class:`ProblemSpec`.  Returns a
    fully-populated report; raises if the problem does not implement the
    measurable protocol (``solution_fields``).
    """
    spec = problem if isinstance(problem, ProblemSpec) else get_problem(problem)
    if not spec.measurable:
        raise ValueError(
            f"problem {spec.name!r} does not implement the convergence "
            f"protocol (solution_fields/reference_fields)"
        )
    resolutions = sorted(int(n) for n in (resolutions or spec.default_resolutions))
    if len(resolutions) < 2:
        raise ValueError("need at least two resolutions to fit an order")
    fields = list(fields or spec.convergence_fields)
    kwargs = dict(spec.run_kwargs)
    kwargs.update(run_kwargs or {})
    if t_end is not None:
        kwargs["t_end"] = float(t_end)

    solutions: dict[int, dict] = {}
    references: dict[int, dict | None] = {}
    steps: dict[int, int] = {}
    for n in resolutions:
        prob = spec.create(n=n, **(factory_kwargs or {}))
        prob.run(**kwargs)
        solutions[n] = prob.solution_fields()
        references[n] = prob.reference_fields() if spec.analytic else None
        steps[n] = int(getattr(prob, "steps", 0))
        t_measured = float(getattr(prob, "time", kwargs.get("t_end", 0.0)))

    mode = "analytic" if spec.analytic else "self"
    if mode == "self":
        # richest grid is truth; it cannot be compared against itself, so
        # it drops out of the fit
        finest = resolutions[-1]
        fit_resolutions = resolutions[:-1]
        for n in fit_resolutions:
            references[n] = restrict_fields(
                {f: solutions[finest][f] for f in fields},
                solutions[n][fields[0]].shape,
            )
    else:
        fit_resolutions = resolutions

    norms: dict[str, list] = {f: [] for f in fields}
    for n in resolutions:
        if references[n] is None:
            # finest grid in self mode: reference by definition, zero error
            for f in fields:
                norms[f].append({"n": n, "l1": 0.0, "l2": 0.0, "linf": 0.0})
            continue
        per_field = field_error_norms(
            solutions[n], references[n], fields=fields, relative=relative
        )
        for f in fields:
            norms[f].append({"n": n, **per_field[f]})

    orders: dict[str, dict] = {}
    pairwise: dict[str, dict] = {}
    for f in fields:
        rows = [row for row in norms[f] if row["n"] in fit_resolutions]
        ns = [row["n"] for row in rows]
        orders[f] = {
            key: round(fit_order(ns, [row[key] for row in rows]), 6)
            for key in NORM_KEYS
        }
        pairwise[f] = {
            key: [round(v, 6)
                  for v in pairwise_orders(ns, [row[key] for row in rows])]
            for key in NORM_KEYS
        }

    return ValidationReport(
        problem=spec.name,
        mode=mode,
        fields=fields,
        resolutions=resolutions,
        t_end=float(kwargs.get("t_end", t_measured)),
        norms=norms,
        orders=orders,
        pairwise_orders=pairwise,
        meta={
            "relative": bool(relative),
            "steps": {str(n): steps[n] for n in resolutions},
            "fit_resolutions": fit_resolutions,
        },
    )
