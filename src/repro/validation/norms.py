"""Error-norm engine: discrete L1/L2/L-inf distances between field arrays.

Norms are volume-weighted cell averages (L1, L2) or maxima (L-inf) of the
pointwise error, so values are resolution-comparable — halving dx does not
change the norm of the same smooth error function.  Arrays may be 1-d
(shock-tube profiles) or 3-d (blast waves); both inputs must share a shape.

:func:`restrict` block-averages a fine solution onto a coarser grid of the
same physical domain — the conservative restriction the self-convergence
mode uses when no analytic reference exists.
"""

from __future__ import annotations

import numpy as np

NORM_KEYS = ("l1", "l2", "linf")


def error_norms(numeric: np.ndarray, reference: np.ndarray,
                relative: bool = False) -> dict[str, float]:
    """All three norms of ``numeric - reference`` as a plain dict.

    With ``relative=True`` the error is scaled by the mean |reference|
    (a single global scale, so the norm stays linear in the error).
    """
    a = np.asarray(numeric, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    err = np.abs(a - b)
    if relative:
        scale = float(np.abs(b).mean())
        if scale > 0.0:
            err = err / scale
    return {
        "l1": float(err.mean()),
        "l2": float(np.sqrt(np.mean(err**2))),
        "linf": float(err.max()),
    }


def field_error_norms(numeric: dict, reference: dict,
                      fields=None, relative: bool = False) -> dict[str, dict]:
    """Per-field norms for two ``{name: array}`` dicts.

    ``fields`` restricts the comparison; by default every field present in
    *both* dicts is measured.
    """
    if fields is None:
        fields = [k for k in numeric if k in reference]
    out = {}
    for name in fields:
        if name not in numeric:
            raise KeyError(f"numeric solution missing field {name!r}")
        if name not in reference:
            raise KeyError(f"reference solution missing field {name!r}")
        out[name] = error_norms(numeric[name], reference[name], relative=relative)
    return out


def restrict(fine: np.ndarray, coarse_shape) -> np.ndarray:
    """Conservative block-average of ``fine`` down to ``coarse_shape``.

    Every fine dimension must be an integer multiple of the matching coarse
    dimension (the multiple may differ per axis, so a thin shock-tube box
    restricts along x only).
    """
    fine = np.asarray(fine, dtype=float)
    coarse_shape = tuple(int(n) for n in coarse_shape)
    if fine.ndim != len(coarse_shape):
        raise ValueError(
            f"rank mismatch: fine is {fine.ndim}-d, coarse shape {coarse_shape}"
        )
    out = fine
    for axis, nc in enumerate(coarse_shape):
        nf = out.shape[axis]
        if nf % nc:
            raise ValueError(
                f"axis {axis}: fine size {nf} not a multiple of coarse {nc}"
            )
        factor = nf // nc
        if factor == 1:
            continue
        new_shape = (
            out.shape[:axis] + (nc, factor) + out.shape[axis + 1:]
        )
        out = out.reshape(new_shape).mean(axis=axis + 1)
    return out


def restrict_fields(fine: dict, coarse_shape) -> dict:
    """Apply :func:`restrict` to every array in a field dict."""
    return {name: restrict(arr, coarse_shape) for name, arr in fine.items()}


def fit_order(resolutions, errors) -> float:
    """Least-squares convergence order from log(error) vs log(1/n).

    Positive means the error shrinks as resolution grows.  Degenerate
    inputs (zero/non-finite errors) yield 0.0 rather than raising, so a
    perfectly-converged field does not crash the harness.
    """
    n = np.asarray(resolutions, dtype=float)
    e = np.asarray(errors, dtype=float)
    good = np.isfinite(e) & (e > 0.0)
    if int(good.sum()) < 2:
        return 0.0
    slope = np.polyfit(np.log(n[good]), np.log(e[good]), 1)[0]
    return float(-slope)


def pairwise_orders(resolutions, errors) -> list[float]:
    """Order between each adjacent resolution pair (len = len(res) - 1)."""
    out = []
    for i in range(len(resolutions) - 1):
        n0, n1 = float(resolutions[i]), float(resolutions[i + 1])
        e0, e1 = float(errors[i]), float(errors[i + 1])
        if e0 > 0.0 and e1 > 0.0 and np.isfinite(e0) and np.isfinite(e1):
            out.append(float(np.log(e0 / e1) / np.log(n1 / n0)))
        else:
            out.append(0.0)
    return out
