"""Validation & workload-library subsystem.

Four layers (see ``docs/VALIDATION.md``):

1. **Registry** (:mod:`repro.validation.registry`) — every Problem
   discoverable by name; drives ``repro problems`` / ``repro run
   --problem`` / ``repro validate``.
2. **Analytic solutions** (:mod:`repro.validation.analytic`) —
   Sedov-Taylor similarity solution, exact Riemann profiles, linear
   KH/RT growth rates.
3. **Error norms** (:mod:`repro.validation.norms`) — L1/L2/L-inf per
   field against analytic or restricted richest-grid references.
4. **Convergence harness** (:mod:`repro.validation.convergence`) — runs
   a problem at 2-3 resolutions, fits the observed order, and emits a
   machine-readable :class:`ValidationReport`.
"""

from repro.validation.analytic import (
    SedovSolution,
    kh_growth_rate,
    riemann_profile,
    rt_growth_rate,
    sedov_solution,
)
from repro.validation.convergence import run_convergence
from repro.validation.norms import (
    error_norms,
    field_error_norms,
    fit_order,
    pairwise_orders,
    restrict,
    restrict_fields,
)
from repro.validation.registry import (
    ProblemSpec,
    get_problem,
    list_problems,
    register,
)
from repro.validation.report import (
    SCHEMA_VERSION,
    ValidationReport,
    validate_report,
)

__all__ = [
    "SedovSolution",
    "sedov_solution",
    "riemann_profile",
    "kh_growth_rate",
    "rt_growth_rate",
    "error_norms",
    "field_error_norms",
    "fit_order",
    "pairwise_orders",
    "restrict",
    "restrict_fields",
    "ProblemSpec",
    "register",
    "get_problem",
    "list_problems",
    "run_convergence",
    "ValidationReport",
    "validate_report",
    "SCHEMA_VERSION",
]
