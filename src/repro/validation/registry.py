"""Problem registry: every workload discoverable by name.

The registry is the seam between the CLI (``repro problems``,
``repro run --problem <name>``, ``repro validate``) and the problem
classes in :mod:`repro.problems`.  Each entry is a :class:`ProblemSpec`
whose ``factory`` builds the problem and whose ``runner`` advances it and
returns a plain summary dict.

Problems that additionally implement the *measurable* protocol —

* ``solution_fields() -> {name: ndarray}`` (interior numeric arrays)
* ``reference_fields() -> {name: ndarray} | None`` (analytic on the same
  cells, or None when only self-convergence is possible)

— are eligible for the convergence harness
(:func:`repro.validation.convergence.run_convergence`); ``spec.analytic``
records whether an analytic reference exists.

Factories are held as lazy ``module:attr`` strings so importing the
registry never pulls in heavy problem modules.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProblemSpec:
    """One registered workload.

    ``size_arg`` names the factory keyword controlling linear resolution
    (``n`` or ``n_root``); ``default_resolutions`` are the harness's
    resolution ladder; ``run_kwargs`` the defaults handed to
    ``problem.run``; ``measurable`` whether the convergence protocol is
    implemented and ``analytic`` whether a closed-form reference exists.
    """

    name: str
    description: str
    factory_path: str               # 'module:attr', resolved lazily
    size_arg: str = "n"
    default_resolutions: tuple = (16, 32)
    convergence_fields: tuple = ("density",)
    factory_kwargs: dict = field(default_factory=dict)
    run_kwargs: dict = field(default_factory=dict)
    measurable: bool = False
    analytic: bool = False
    controllable: bool = False      # has make_controller (CLI run --dir)
    tags: tuple = ()
    aliases: tuple = ()

    @property
    def factory(self):
        module, attr = self.factory_path.split(":")
        return getattr(importlib.import_module(module), attr)

    def create(self, n: int | None = None, **overrides):
        """Instantiate the problem, honouring the size argument."""
        kwargs = dict(self.factory_kwargs)
        kwargs.update(overrides)
        if n is not None:
            kwargs[self.size_arg] = int(n)
        return self.factory(**kwargs)


_REGISTRY: dict[str, ProblemSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: ProblemSpec) -> ProblemSpec:
    """Add a spec (idempotent per name; re-registering replaces)."""
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_problem(name: str) -> ProblemSpec:
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown problem {name!r} (known: {known})")
    return _REGISTRY[key]


def list_problems() -> list[ProblemSpec]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ---------------------------------------------------------------- built-ins
register(ProblemSpec(
    name="collapse",
    description="Paper workload: cosmological primordial-cloud collapse "
                "(AMR + gravity + chemistry)",
    factory_path="repro.problems.collapse:PrimordialCollapse",
    size_arg="n_root",
    controllable=True,
    tags=("cosmology", "amr", "chemistry"),
    aliases=("primordial_collapse",),
))

register(ProblemSpec(
    name="shock_tube",
    description="Sod shock tube vs the exact Riemann solution (1-d)",
    factory_path="repro.problems.shock_tube:SodShockTube",
    default_resolutions=(64, 128),
    convergence_fields=("density", "velocity", "pressure"),
    run_kwargs={"t_end": 0.2},
    measurable=True,
    analytic=True,
    tags=("hydro", "analytic"),
    aliases=("sod",),
))

register(ProblemSpec(
    name="sphere_collapse",
    description="Self-gravitating sphere collapse (AMR + gravity)",
    factory_path="repro.problems.sphere_collapse:SphereCollapse",
    size_arg="n_root",
    tags=("gravity", "amr"),
))

register(ProblemSpec(
    name="zeldovich_pancake",
    description="Zeldovich pancake: 1-d cosmological caustic formation",
    factory_path="repro.problems.zeldovich_pancake:ZeldovichPancake",
    tags=("cosmology",),
    aliases=("pancake",),
))

register(ProblemSpec(
    name="sedov",
    description="Sedov-Taylor point blast vs the exact similarity solution",
    factory_path="repro.problems.sedov:SedovBlast",
    size_arg="n_root",
    # (16, 24): both sides of the smoke ladder bench_validation.py pins;
    # mass_profile is the integrated density diagnostic that converges at
    # first order while the per-cell error is still pre-asymptotic
    default_resolutions=(16, 24),
    convergence_fields=("density", "mass_profile"),
    run_kwargs={},
    measurable=True,
    analytic=True,
    controllable=True,
    tags=("hydro", "analytic", "3d"),
    aliases=("sedov_taylor", "blast"),
))

register(ProblemSpec(
    name="kelvin_helmholtz",
    description="Kelvin-Helmholtz shear instability with a dye scalar "
                "(linear growth rate vs theory)",
    factory_path="repro.problems.kelvin_helmholtz:KelvinHelmholtz",
    size_arg="n_root",
    default_resolutions=(16, 32),
    convergence_fields=("density", "vx", "scalar00"),
    run_kwargs={},
    measurable=True,
    analytic=False,                 # growth rate only; self-convergence
    controllable=True,
    tags=("hydro", "instability", "scalars"),
    aliases=("kh",),
))

register(ProblemSpec(
    name="rayleigh_taylor",
    description="Rayleigh-Taylor instability in a constant gravity field "
                "(mixing-layer growth vs sqrt(A g k))",
    factory_path="repro.problems.rayleigh_taylor:RayleighTaylor",
    default_resolutions=(16, 32),
    convergence_fields=("density", "scalar00"),
    run_kwargs={},
    measurable=True,
    analytic=False,
    tags=("hydro", "instability", "scalars"),
    aliases=("rt",),
))
