"""Checkpoint / restart and data outputs.

The paper's outputs were "in the 2-4 GB range" with "at least 50-100 GB
disk storage" per run; analysis and visualisation read those dumps.  This
package serialises the full hierarchy state (grids, fields, particles with
their extended-precision positions, times) to a single compressed ``.npz``
and restores it bit-exactly.
"""

from repro.io.checkpoint import (
    CheckpointError,
    checkpoint_info,
    load_hierarchy,
    save_hierarchy,
)

__all__ = [
    "CheckpointError",
    "save_hierarchy",
    "load_hierarchy",
    "checkpoint_info",
]
