"""Hierarchy checkpointing to compressed npz.

Layout: one flat npz with a JSON-encoded manifest describing the tree
structure and one array entry per grid field.  Extended-precision values
(particle positions, per-grid times) are stored as their (hi, lo) word
pairs so restarts are bit-exact — a float64 round-trip would silently
destroy exactly the precision the paper's Sec. 3.5 exists to protect.
"""

from __future__ import annotations

import json

import numpy as np

from repro.amr.grid import Grid
from repro.amr.hierarchy import Hierarchy
from repro.hydro.state import META_KEY
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble
from repro.precision.position import PositionDD

FORMAT_VERSION = 1


def save_hierarchy(hierarchy: Hierarchy, path: str) -> None:
    """Write the full state (grids, fields, phi, particles, times)."""
    manifest = {
        "format_version": FORMAT_VERSION,
        "n_root": hierarchy.n_root,
        "refine_factor": hierarchy.refine_factor,
        "nghost": hierarchy.nghost,
        "advected": hierarchy.advected,
        "grids": [],
    }
    arrays = {}
    ids = {}
    for i, g in enumerate(hierarchy.all_grids()):
        ids[g.grid_id] = i
    for g in hierarchy.all_grids():
        i = ids[g.grid_id]
        entry = {
            "index": i,
            "level": g.level,
            "start_index": [int(s) for s in g.start_index],
            "dims": [int(d) for d in g.dims],
            "parent": ids[g.parent.grid_id] if g.parent is not None else None,
            "time_hi": float(g.time.hi),
            "time_lo": float(g.time.lo),
            "fields": [],
        }
        for name, arr in g.fields.array_items():
            key = f"g{i}_{name}"
            arrays[key] = arr
            entry["fields"].append(name)
        arrays[f"g{i}_phi"] = g.phi
        manifest["grids"].append(entry)

    parts = hierarchy.particles
    arrays["particles_pos_hi"] = parts.positions.hi
    arrays["particles_pos_lo"] = parts.positions.lo
    arrays["particles_vel"] = parts.velocities
    arrays["particles_mass"] = parts.masses
    arrays["particles_ids"] = parts.ids
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_hierarchy(path: str) -> Hierarchy:
    """Restore a hierarchy saved by :func:`save_hierarchy` (bit-exact)."""
    data = np.load(path)
    manifest = json.loads(bytes(data["manifest"]).decode())
    if manifest["format_version"] != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {manifest['format_version']} not supported"
        )
    h = Hierarchy(
        n_root=manifest["n_root"],
        refine_factor=manifest["refine_factor"],
        nghost=manifest["nghost"],
        advected=manifest["advected"],
    )
    # the constructor made a fresh root; rebuild all grids in order
    by_index: dict[int, Grid] = {}
    entries = sorted(manifest["grids"], key=lambda e: (e["level"], e["index"]))
    for entry in entries:
        i = entry["index"]
        if entry["level"] == 0:
            g = h.root
        else:
            g = Grid(
                entry["level"], entry["start_index"], entry["dims"],
                manifest["n_root"], manifest["refine_factor"],
                manifest["nghost"],
            )
            h.add_grid(g, by_index[entry["parent"]])
        by_index[i] = g
        for name in entry["fields"]:
            if name == META_KEY:
                continue
            g.fields[name][...] = data[f"g{i}_{name}"]
        g.phi[...] = data[f"g{i}_phi"]
        g.time = DoubleDouble(float(entry["time_hi"]), float(entry["time_lo"]))

    h.particles = ParticleSet(
        PositionDD(data["particles_pos_hi"], data["particles_pos_lo"]),
        data["particles_vel"],
        data["particles_mass"],
        data["particles_ids"],
    )
    return h


def checkpoint_info(path: str) -> dict:
    """Summary of a checkpoint without loading the field data."""
    data = np.load(path)
    manifest = json.loads(bytes(data["manifest"]).decode())
    levels: dict[int, int] = {}
    for entry in manifest["grids"]:
        levels[entry["level"]] = levels.get(entry["level"], 0) + 1
    return {
        "n_root": manifest["n_root"],
        "n_grids": len(manifest["grids"]),
        "grids_per_level": [levels[k] for k in sorted(levels)],
        "n_particles": int(data["particles_mass"].shape[0]),
        "time": manifest["grids"][0]["time_hi"],
    }
