"""Hierarchy checkpointing to compressed npz.

Layout: one flat npz with a JSON-encoded manifest describing the tree
structure and one array entry per grid field.  Extended-precision values
(particle positions, per-grid times) are stored as their (hi, lo) word
pairs so restarts are bit-exact — a float64 round-trip would silently
destroy exactly the precision the paper's Sec. 3.5 exists to protect.

Durability: :func:`save_hierarchy` is atomic — it writes to ``<path>.tmp``,
fsyncs, then ``os.replace``s onto the final name — so a crash mid-write
(the failure mode that ends a weeks-long hero run) can never leave a torn
checkpoint where a good one used to be.  :func:`load_hierarchy` and
:func:`checkpoint_info` raise :class:`CheckpointError` (a ``ValueError``)
on truncated or corrupt files instead of leaking ``KeyError`` /
``BadZipFile`` internals.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import zipfile
import zlib

import numpy as np

from repro.amr.grid import Grid
from repro.amr.hierarchy import Hierarchy
from repro.hydro.state import META_KEY
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble
from repro.precision.position import PositionDD

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing pieces, truncated, or corrupt."""


#: low-level exceptions a damaged npz can surface while reading
_CORRUPTION_ERRORS = (
    KeyError,
    EOFError,
    OSError,
    zipfile.BadZipFile,
    zlib.error,
    struct.error,
    json.JSONDecodeError,
    ValueError,
)


@contextlib.contextmanager
def _io_section(timers):
    """Attribute checkpoint I/O to the component table's "io" section."""
    if timers is None:
        yield
    else:
        with timers.section("io"):
            yield


@contextlib.contextmanager
def _checkpoint_errors(path: str, action: str):
    """Translate low-level read failures into a clear CheckpointError."""
    try:
        yield
    except FileNotFoundError:
        raise
    except CheckpointError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise CheckpointError(
            f"cannot {action} checkpoint {path!r}: file is truncated or "
            f"corrupt ({type(exc).__name__}: {exc})"
        ) from exc


def save_hierarchy(hierarchy: Hierarchy, path: str, timers=None) -> None:
    """Write the full state (grids, fields, phi, particles, times).

    The write is atomic: readers either see the previous checkpoint or the
    complete new one, never a partial file.  ``timers`` (an optional
    :class:`repro.perf.timers.ComponentTimers`) attributes the cost to the
    ``"io"`` section.
    """
    manifest = {
        "format_version": FORMAT_VERSION,
        "n_root": hierarchy.n_root,
        "refine_factor": hierarchy.refine_factor,
        "nghost": hierarchy.nghost,
        "advected": hierarchy.advected,
        "grids": [],
    }
    arrays = {}
    ids = {}
    for i, g in enumerate(hierarchy.all_grids()):
        ids[g.grid_id] = i
    for g in hierarchy.all_grids():
        i = ids[g.grid_id]
        entry = {
            "index": i,
            "level": g.level,
            "start_index": [int(s) for s in g.start_index],
            "dims": [int(d) for d in g.dims],
            "parent": ids[g.parent.grid_id] if g.parent is not None else None,
            "time_hi": float(g.time.hi),
            "time_lo": float(g.time.lo),
            "fields": [],
        }
        for name, arr in g.fields.array_items():
            key = f"g{i}_{name}"
            arrays[key] = arr
            entry["fields"].append(name)
        arrays[f"g{i}_phi"] = g.phi
        manifest["grids"].append(entry)

    parts = hierarchy.particles
    arrays["particles_pos_hi"] = parts.positions.hi
    arrays["particles_pos_lo"] = parts.positions.lo
    arrays["particles_vel"] = parts.velocities
    arrays["particles_mass"] = parts.masses
    arrays["particles_ids"] = parts.ids
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )

    path = str(path)
    tmp = path + ".tmp"
    with _io_section(timers):
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path) or ".")


def _fsync_dir(dirname: str) -> None:
    """Make the rename itself durable (best effort on exotic filesystems)."""
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_hierarchy(path: str, timers=None) -> Hierarchy:
    """Restore a hierarchy saved by :func:`save_hierarchy` (bit-exact)."""
    with _io_section(timers), _checkpoint_errors(path, "load"):
        data = np.load(path)
        manifest = json.loads(bytes(data["manifest"]).decode())
        if manifest["format_version"] != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {manifest['format_version']} not supported"
            )
        h = Hierarchy(
            n_root=manifest["n_root"],
            refine_factor=manifest["refine_factor"],
            nghost=manifest["nghost"],
            advected=manifest["advected"],
        )
        # the constructor made a fresh root; rebuild all grids in order
        by_index: dict[int, Grid] = {}
        entries = sorted(
            manifest["grids"], key=lambda e: (e["level"], e["index"])
        )
        for entry in entries:
            i = entry["index"]
            if entry["level"] == 0:
                g = h.root
            else:
                g = Grid(
                    entry["level"], entry["start_index"], entry["dims"],
                    manifest["n_root"], manifest["refine_factor"],
                    manifest["nghost"],
                )
                h.add_grid(g, by_index[entry["parent"]])
            by_index[i] = g
            for name in entry["fields"]:
                if name == META_KEY:
                    continue
                g.fields[name][...] = data[f"g{i}_{name}"]
            g.phi[...] = data[f"g{i}_phi"]
            g.time = DoubleDouble(
                float(entry["time_hi"]), float(entry["time_lo"])
            )

        h.particles = ParticleSet(
            PositionDD(data["particles_pos_hi"], data["particles_pos_lo"]),
            data["particles_vel"],
            data["particles_mass"],
            data["particles_ids"],
        )
    return h


def checkpoint_info(path: str) -> dict:
    """Summary of a checkpoint without loading the field data.

    Reports hierarchy-wide state — deepest level, finest cell width, total
    cells, spatial dynamic range — not just the root grid's clock.
    """
    with _checkpoint_errors(path, "inspect"):
        data = np.load(path)
        manifest = json.loads(bytes(data["manifest"]).decode())
        levels: dict[int, int] = {}
        total_cells = 0
        for entry in manifest["grids"]:
            levels[entry["level"]] = levels.get(entry["level"], 0) + 1
            total_cells += int(np.prod(entry["dims"]))
        deepest = max(levels) if levels else 0
        n_root = manifest["n_root"]
        refine = manifest["refine_factor"]
        n_particles = int(data["particles_mass"].shape[0])
    return {
        "format_version": manifest["format_version"],
        "n_root": n_root,
        "n_grids": len(manifest["grids"]),
        "grids_per_level": [levels[k] for k in sorted(levels)],
        "n_particles": n_particles,
        "time": manifest["grids"][0]["time_hi"],
        "deepest_level": deepest,
        "total_cells": total_cells,
        "finest_dx": 1.0 / (n_root * refine**deepest),
        "sdr": float(n_root * refine**deepest),
    }


QUARANTINE_SUFFIX = ".quarantine"


def verify_run_dir(run_dir: str, quarantine: bool = False,
                   strict: bool = False) -> dict:
    """Scrub every checkpoint pair in a run directory.

    For each pair this checks, in order: the sha256 sidecars of both
    halves (``strict=True`` makes a *missing* sidecar a failure), that
    the npz parses (:func:`checkpoint_info`), and that the RunState
    loads.  With ``quarantine=True`` every file of a corrupt pair
    (including its sidecars) is renamed with a ``.quarantine`` suffix so
    recovery and rotation stop seeing it, but the bytes survive for
    forensics.

    Returns ``{"checked": [...], "corrupt": [...], "quarantined": [...]}``
    where each entry is ``{"step", "status", "detail"}``.
    """
    # local import: checkpoint_policy imports nothing from this module, but
    # keeping the top-level import surface small avoids an amr<->runtime cycle
    from repro.runtime.checkpoint_policy import (
        CheckpointPolicy,
        RunState,
        digest_path,
        verify_digest,
    )

    report = {"checked": [], "corrupt": [], "quarantined": []}
    for step, npz, state_path in CheckpointPolicy.list_checkpoints(run_dir):
        detail = None
        missing_ok = not strict
        for half in (npz, state_path):
            if not verify_digest(half, missing_ok=missing_ok):
                detail = f"digest mismatch: {os.path.basename(half)}"
                break
        if detail is None:
            try:
                checkpoint_info(npz)
                RunState.load(state_path)
            except (CheckpointError, OSError, ValueError) as exc:
                detail = f"unreadable: {exc}"
        entry = {"step": step,
                 "status": "ok" if detail is None else "corrupt",
                 "detail": detail}
        report["checked"].append(entry)
        if detail is None:
            continue
        report["corrupt"].append(entry)
        if quarantine:
            for path in (npz, state_path,
                         digest_path(npz), digest_path(state_path)):
                try:
                    os.replace(path, path + QUARANTINE_SUFFIX)
                except OSError:
                    pass
            report["quarantined"].append(step)
    return report
