"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info        — package/subsystem summary
sod         — run the Sod shock tube and print the L1 error
pancake     — run the Zel'dovich pancake validation
collapse    — run a short primordial-collapse demo
inspect F   — summarise a checkpoint file
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(args) -> int:
    import repro

    print(f"repro {repro.__version__} — Enzo-style cosmological AMR")
    print("reproduction of Bryan, Abel & Norman (SC2001)")
    subsystems = [
        ("repro.amr", "structured AMR hierarchy, EvolveLevel W-cycle"),
        ("repro.hydro", "PPM + ZEUS solvers, HLLC/two-shock/exact Riemann"),
        ("repro.gravity", "FFT + multigrid Poisson"),
        ("repro.nbody", "adaptive particle-mesh dark matter"),
        ("repro.chemistry", "12-species primordial network + cooling"),
        ("repro.cosmology", "Friedmann, P(k), Zel'dovich ICs, top-hat"),
        ("repro.precision", "double-double extended precision"),
        ("repro.parallel", "simulated cluster: sterile objects, pipelining"),
        ("repro.analysis", "profiles, zooms, halos, Jacques"),
        ("repro.perf", "timers, hierarchy stats, op counting"),
        ("repro.io", "checkpoint/restart"),
    ]
    for mod, desc in subsystems:
        print(f"  {mod:<18s} {desc}")
    return 0


def cmd_sod(args) -> int:
    from repro.problems import SodShockTube

    sod = SodShockTube(n=args.n)
    sod.run(0.2)
    err = sod.l1_error()
    print(f"Sod tube, n={args.n}: L1(density) = {err:.4f} in {sod.steps} steps")
    return 0 if err < 0.05 else 1


def cmd_pancake(args) -> int:
    import numpy as np

    from repro.problems import ZeldovichPancake

    zp = ZeldovichPancake(n=args.n)
    out = zp.run(z_end=args.z_end)
    err = np.abs(out["density"] - out["density_exact"]) / out["density_exact"]
    print(f"Zel'dovich pancake to z={args.z_end}: "
          f"max density error = {err.max():.4f}")
    return 0 if err.max() < 0.1 else 1


def cmd_collapse(args) -> int:
    from repro.problems import PrimordialCollapse

    run = PrimordialCollapse(
        n_root=args.n, max_level=args.levels, amplitude_boost=4.0,
        mass_refine_factor=8.0,
        with_chemistry=not args.no_chemistry,
    )
    run.initial_rebuild()
    out = run.run_to_redshift(args.z_end, max_root_steps=args.max_steps)
    print(f"z = {out['redshift']:.1f}  peak n = {out['peak_n_cgs']:.3e} cm^-3  "
          f"levels = {out['max_level']}  grids = {out['n_grids']}  "
          f"SDR = {out['sdr']:.0f}")
    if args.checkpoint:
        from repro.io import save_hierarchy

        save_hierarchy(run.hierarchy, args.checkpoint)
        print(f"checkpoint written: {args.checkpoint}")
    return 0


def cmd_inspect(args) -> int:
    from repro.io import checkpoint_info

    info = checkpoint_info(args.file)
    for key, val in info.items():
        print(f"{key:<16s} {val}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package summary").set_defaults(fn=cmd_info)

    p = sub.add_parser("sod", help="Sod shock-tube validation")
    p.add_argument("-n", type=int, default=128)
    p.set_defaults(fn=cmd_sod)

    p = sub.add_parser("pancake", help="Zel'dovich pancake validation")
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--z-end", type=float, default=15.0)
    p.set_defaults(fn=cmd_pancake)

    p = sub.add_parser("collapse", help="primordial-collapse demo")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--levels", type=int, default=2)
    p.add_argument("--z-end", type=float, default=80.0)
    p.add_argument("--max-steps", type=int, default=100)
    p.add_argument("--no-chemistry", action="store_true")
    p.add_argument("--checkpoint", default=None)
    p.set_defaults(fn=cmd_collapse)

    p = sub.add_parser("inspect", help="summarise a checkpoint")
    p.add_argument("file")
    p.set_defaults(fn=cmd_inspect)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
