"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info        — package/subsystem summary
sod         — run the Sod shock tube and print the L1 error
pancake     — run the Zel'dovich pancake validation
collapse    — run a short primordial-collapse demo
problems    — list the registered problems and their capabilities
validate    — convergence harness: fitted error orders vs analytic or
              self-converged reference (docs/VALIDATION.md)
inspect F   — summarise a checkpoint file
run         — a registered problem (default: primordial collapse) under
              run control (checkpoints, crash recovery, JSONL
              telemetry); survives SIGTERM
resume      — continue an interrupted/crashed run bit-exactly from its
              newest loadable checkpoint
tail D      — summarise a run directory's telemetry stream (``-f`` to
              follow it live)
service     — multi-tenant run service: ``start`` a daemon, then
              ``submit``/``ps``/``cancel``/``preempt``/``logs``/``wait``/
              ``stop`` against its root directory (see docs/SERVICE.md)
"""

from __future__ import annotations

import argparse
import os
import sys


def cmd_info(args) -> int:
    import repro

    print(f"repro {repro.__version__} — Enzo-style cosmological AMR")
    print("reproduction of Bryan, Abel & Norman (SC2001)")
    subsystems = [
        ("repro.amr", "structured AMR hierarchy, EvolveLevel W-cycle"),
        ("repro.hydro", "PPM + ZEUS solvers, HLLC/two-shock/exact Riemann"),
        ("repro.gravity", "FFT + multigrid Poisson"),
        ("repro.nbody", "adaptive particle-mesh dark matter"),
        ("repro.chemistry", "12-species primordial network + cooling"),
        ("repro.cosmology", "Friedmann, P(k), Zel'dovich ICs, top-hat"),
        ("repro.precision", "double-double extended precision"),
        ("repro.parallel", "simulated cluster: sterile objects, pipelining"),
        ("repro.exec", "execution engine: per-grid task dispatch, shm workers"),
        ("repro.analysis", "profiles, zooms, halos, Jacques"),
        ("repro.perf", "timers, hierarchy stats, op counting"),
        ("repro.io", "checkpoint/restart"),
        ("repro.runtime", "run control: atomic checkpoints, recovery, telemetry"),
    ]
    for mod, desc in subsystems:
        print(f"  {mod:<18s} {desc}")
    return 0


def cmd_sod(args) -> int:
    from repro.problems import SodShockTube

    sod = SodShockTube(n=args.n)
    sod.run(0.2)
    err = sod.l1_error()
    print(f"Sod tube, n={args.n}: L1(density) = {err:.4f} in {sod.steps} steps")
    return 0 if err < 0.05 else 1


def cmd_pancake(args) -> int:
    import numpy as np

    from repro.problems import ZeldovichPancake

    zp = ZeldovichPancake(n=args.n)
    out = zp.run(z_end=args.z_end)
    err = np.abs(out["density"] - out["density_exact"]) / out["density_exact"]
    print(f"Zel'dovich pancake to z={args.z_end}: "
          f"max density error = {err.max():.4f}")
    return 0 if err.max() < 0.1 else 1


def cmd_collapse(args) -> int:
    from repro.problems import PrimordialCollapse

    run = PrimordialCollapse(
        n_root=args.n, max_level=args.levels, amplitude_boost=4.0,
        mass_refine_factor=8.0,
        with_chemistry=not args.no_chemistry,
    )
    run.initial_rebuild()
    out = run.run_to_redshift(args.z_end, max_root_steps=args.max_steps)
    print(f"z = {out['redshift']:.1f}  peak n = {out['peak_n_cgs']:.3e} cm^-3  "
          f"levels = {out['max_level']}  grids = {out['n_grids']}  "
          f"SDR = {out['sdr']:.0f}")
    if args.checkpoint:
        from repro.io import save_hierarchy

        save_hierarchy(run.hierarchy, args.checkpoint)
        print(f"checkpoint written: {args.checkpoint}")
    return 0


def cmd_problems(args) -> int:
    """List the registered problems (``repro run --problem ...`` names)."""
    from repro.validation import list_problems

    print(f"{'NAME':<20}{'FLAGS':<8}{'RESOLUTIONS':<14}DESCRIPTION")
    for spec in list_problems():
        flags = "".join([
            "M" if spec.measurable else "-",
            "A" if spec.analytic else "-",
            "C" if spec.controllable else "-",
        ])
        res = ",".join(str(n) for n in spec.default_resolutions) or "-"
        desc = spec.description
        if spec.aliases:
            desc += f"  (aliases: {', '.join(spec.aliases)})"
        print(f"{spec.name:<20}{flags:<8}{res:<14}{desc}")
    print("\nflags: M = measurable (convergence harness), "
          "A = analytic reference, C = run-control capable")
    return 0


def cmd_validate(args) -> int:
    """Run the convergence harness on a problem and report fitted orders."""
    import json

    from repro.validation import run_convergence

    resolutions = tuple(args.resolutions) if args.resolutions else None
    fields = args.fields.split(",") if args.fields else None
    report = run_convergence(
        args.problem, resolutions=resolutions, fields=fields,
        t_end=args.t_end,
    )
    print(f"{report.problem}: {report.mode} convergence at "
          f"n = {', '.join(str(n) for n in report.resolutions)} "
          f"(t_end = {report.t_end})")
    for fname in report.fields:
        rows = report.norms[fname]
        errs = "  ".join(f"{row['l1']:.3e}" for row in rows)
        print(f"  {fname:<14} L1 = {errs}   order = "
              f"{report.order(fname):.2f}")
    if args.out:
        report.save(args.out)
        print(f"report written: {args.out}")
    if args.floor is not None:
        worst = min(report.order(f) for f in report.fields)
        ok = worst >= args.floor
        print(f"floor check: min order {worst:.2f} "
              f"{'>=' if ok else '<'} {args.floor}")
        return 0 if ok else 1
    return 0


def cmd_inspect(args) -> int:
    from repro.io import checkpoint_info

    info = checkpoint_info(args.file)
    for key, val in info.items():
        if isinstance(val, float):
            print(f"{key:<16s} {val:.6g}")
        else:
            print(f"{key:<16s} {val}")
    return 0


def cmd_chk_verify(args) -> int:
    from repro.io.checkpoint import verify_run_dir

    report = verify_run_dir(args.dir, quarantine=args.quarantine,
                            strict=args.strict)
    if not report["checked"]:
        print(f"no checkpoint pairs in {args.dir}")
        return 0
    for entry in report["checked"]:
        line = f"chk_{entry['step']:07d}  {entry['status']}"
        if entry["detail"]:
            line += f"  ({entry['detail']})"
        print(line)
    n_bad = len(report["corrupt"])
    print(f"{len(report['checked'])} pair(s) checked, {n_bad} corrupt"
          + (f", {len(report['quarantined'])} quarantined"
             if args.quarantine else ""))
    return 1 if n_bad else 0


def _print_run_summary(out: dict) -> None:
    print(f"status = {out['status']}  steps = {out['steps']}  "
          f"t = {out['t']:.6g}  recoveries = {out['recoveries']}  "
          f"wall = {out['wall']:.1f}s  dir = {out['run_dir']}")


def _collapse_problem(**kwargs):
    from repro.perf import ComponentTimers
    from repro.problems import PrimordialCollapse

    # always instrument controlled runs: telemetry step records carry the
    # per-component timer fractions (the paper's Sec. 5 usage table, live)
    return PrimordialCollapse(timers=ComponentTimers(), **kwargs)


def _set_kernels(args) -> None:
    """Apply the ``--kernels`` backend choice before any physics runs.

    Goes through :func:`repro.kernels.set_backend` with env export, so
    process-pool workers spawned later inherit the same tier.  An
    unavailable compiled backend degrades to numpy with a warning rather
    than failing the run.
    """
    if getattr(args, "kernels", None):
        from repro import kernels

        kernels.set_backend(args.kernels)


def _install_faults(args) -> None:
    """Install the chaos-testing fault injector requested on the CLI.

    ``--faults`` uses the same compact syntax as the ``REPRO_FAULTS``
    environment variable (which still applies when the flag is absent).
    """
    if getattr(args, "faults", None):
        from repro.runtime import faults

        faults.install(faults.FaultInjector(
            faults.parse_spec(args.faults),
            seed=getattr(args, "fault_seed", None),
        ))


def cmd_run(args) -> int:
    from repro.runtime import CheckpointPolicy

    _set_kernels(args)
    _install_faults(args)
    policy = CheckpointPolicy(every_steps=args.checkpoint_every,
                              keep_last=args.keep_last)
    if args.problem != "collapse":
        return _run_registry_problem(args, policy)
    run_dir = args.dir or args.telemetry or "runs/collapse"
    problem = _collapse_problem(
        n_root=args.n or 8, max_level=args.levels, amplitude_boost=4.0,
        mass_refine_factor=8.0, with_chemistry=not args.no_chemistry,
        exec_backend=args.exec_backend, workers=args.workers,
    )
    problem.initial_rebuild()
    controller = problem.make_controller(run_dir, z_end=args.z_end,
                                         policy=policy)
    out = controller.run(problem.code_time_of_redshift(args.z_end),
                         max_root_steps=args.max_steps)
    _print_run_summary(out)
    return 2 if out["status"] == "interrupted" else 0


def _run_registry_problem(args, policy) -> int:
    """``repro run --problem <name>`` for registry problems.

    Any controllable problem (``repro problems`` marks them) runs under
    the same fault-tolerant controller as the collapse workload.
    """
    from repro.validation import get_problem

    try:
        spec = get_problem(args.problem)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    if not spec.controllable:
        print(f"problem {spec.name!r} does not support run control; "
              f"use 'repro validate --problem {spec.name}' instead",
              file=sys.stderr)
        return 1
    overrides = {}
    if args.exec_backend is not None:
        overrides["exec_backend"] = args.exec_backend
    if args.workers is not None:
        overrides["workers"] = args.workers
    problem = spec.create(n=args.n, **overrides)
    run_dir = args.dir or args.telemetry or f"runs/{spec.name}"
    controller = problem.make_controller(run_dir, policy=policy)
    t_end = (args.t_end if args.t_end is not None
             else getattr(problem, "default_t_end", None))
    if t_end is None:
        print(f"problem {spec.name!r} needs --t-end", file=sys.stderr)
        return 1
    out = controller.run(float(t_end), max_root_steps=args.max_steps)
    _print_run_summary(out)
    return 2 if out["status"] == "interrupted" else 0


def cmd_resume(args) -> int:
    from repro.runtime import CheckpointPolicy, RunState

    _set_kernels(args)
    _install_faults(args)
    latest = CheckpointPolicy.latest(args.dir)
    if latest is None:
        print(f"no checkpoint found in {args.dir!r}", file=sys.stderr)
        return 1
    state = RunState.load(latest[2])
    cfg = state.config or {}
    policy = CheckpointPolicy(every_steps=args.checkpoint_every,
                              keep_last=args.keep_last)
    # the exec backend does not affect results (bitwise identical), so a
    # resume may freely override what the original run used
    exec_overrides = {}
    if args.exec_backend is not None:
        exec_overrides["exec_backend"] = args.exec_backend
    if args.workers is not None:
        exec_overrides["workers"] = args.workers
    if cfg.get("problem") == "collapse":
        problem = _collapse_problem(**{**cfg["kwargs"], **exec_overrides})
        controller = problem.make_controller(
            args.dir, z_end=cfg.get("z_end"), policy=policy)
    elif cfg.get("problem") == "simulation":
        from repro import Simulation, SimulationConfig

        kwargs = dict(cfg["kwargs"])
        kwargs["advected"] = tuple(kwargs.get("advected", ()))
        kwargs.update(exec_overrides)
        kwargs["solver_options"] = dict(kwargs.get("solver_options", {}))
        sim = Simulation(SimulationConfig(**kwargs))
        controller = sim.make_controller(args.dir, policy=policy)
    elif cfg.get("problem"):
        # registry problems (sedov, kelvin_helmholtz, ...) store their
        # constructor kwargs; rebuild through the same factory
        from repro.validation import get_problem

        try:
            spec = get_problem(cfg["problem"])
        except KeyError:
            print(f"checkpoint names unknown problem {cfg['problem']!r}",
                  file=sys.stderr)
            return 1
        problem = spec.create(**{**cfg.get("kwargs", {}), **exec_overrides})
        controller = problem.make_controller(args.dir, policy=policy)
    else:
        print("checkpoint carries no rebuildable problem config",
              file=sys.stderr)
        return 1
    out = controller.resume(max_root_steps=args.max_steps)
    _print_run_summary(out)
    return 2 if out["status"] == "interrupted" else 0


def _follow_and_print(path: str) -> int:
    """Shared ``-f`` loop for ``tail`` and ``service logs``."""
    from repro.runtime.telemetry import follow_events, format_events

    try:
        for record in follow_events(path, from_start=False):
            print(format_events([record]))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_tail(args) -> int:
    from repro.runtime import telemetry_path
    from repro.runtime.telemetry import format_events, read_events, summarise

    path = args.dir
    if os.path.isdir(path):
        path = telemetry_path(path)
    if not os.path.exists(path) and not args.follow:
        print(f"no telemetry at {path!r}", file=sys.stderr)
        return 1
    events = read_events(path) if os.path.exists(path) else []
    shown = events[-args.n:]
    if len(events) > len(shown):
        print(f"... ({len(events) - len(shown)} earlier events)")
    if shown:
        print(format_events(shown))
    if args.follow:
        return _follow_and_print(path)
    s = summarise(path)
    line = (f"-- {s['steps']} steps, {s['checkpoints']} checkpoints, "
            f"{s['recoveries']} recoveries, lifecycle: "
            f"{' -> '.join(s['lifecycle']) or 'none'}")
    if "t" in s:
        line += f"; t = {s['t']:.6g}, grids = {s['grids']}, cells = {s['cells']}"
    print(line)
    return 0


# ------------------------------------------------------------------ service
def _load_spec_arg(args) -> dict:
    import json

    if getattr(args, "spec_json", None):
        return json.loads(args.spec_json)
    if not getattr(args, "spec", None):
        raise SystemExit("submit needs --spec FILE or --spec-json STRING")
    with open(args.spec, encoding="utf-8") as fh:
        return json.load(fh)


def cmd_service_start(args) -> int:
    from repro.runtime.supervision import SupervisionPolicy
    from repro.service import RunService

    if args.no_supervision:
        supervision = False
    else:
        supervision = SupervisionPolicy(
            deadline_ceiling=args.stall_ceiling,
            grace_seconds=args.stall_grace,
            max_strikes=args.max_strikes,
        )
    service = RunService(args.root, total_workers=args.workers,
                         launcher=args.launcher,
                         tick_interval=args.tick_interval,
                         supervision=supervision)
    print(f"run service on {args.root}: {args.workers} workers, "
          f"{args.launcher} launcher (ctrl-c or 'repro service stop' "
          f"to shut down)")
    service.serve_forever()
    return 0


def cmd_service_submit(args) -> int:
    from repro.service import ServiceClient

    spec = _load_spec_arg(args)
    client = ServiceClient(args.root)
    run_id = client.submit(spec, tenant=args.tenant,
                           priority=args.priority, workers=args.workers)
    print(run_id)
    if args.wait:
        entries = client.wait(run_id, timeout=args.timeout)
        entry = entries[run_id]
        print(f"{run_id}: {entry['state']}"
              + (f" ({entry['result'].get('outcome')})"
                 if entry.get("result") else ""))
        return 0 if entry["state"] == "DONE" else 1
    return 0


def cmd_service_ps(args) -> int:
    from repro.service import ServiceClient

    reply = ServiceClient(args.root).ps()
    workers = reply["workers"]
    print(f"workers: {workers['in_use']}/{workers['total']} in use")
    header = (f"{'RUN':<9}{'STATE':<11}{'TENANT':<12}{'PRI':>4}"
              f"{'WRK':>4}{'ATT':>4}{'PRE':>4}{'POS':>4}{'ETA':>8}"
              f"{'HB':>7}  NOTE")
    print(header)
    for entry in reply["runs"]:
        note = entry.get("note", "")
        pos = entry.get("queue_position")
        eta = entry.get("eta_seconds")
        age = entry.get("heartbeat_age_seconds")
        if entry.get("held_seconds") is not None:
            note = (note + f" held {entry['held_seconds']}s").strip()
        print(f"{entry['run']:<9}{entry['state']:<11}"
              f"{entry['tenant']:<12}{entry['priority']:>4}"
              f"{entry['workers']:>4}{entry['attempts']:>4}"
              f"{entry['preemptions']:>4}"
              f"{pos if pos is not None else '-':>4}"
              f"{f'{eta:.0f}s' if eta is not None else '-':>8}"
              f"{f'{age:.1f}s' if age is not None else '-':>7}"
              f"  {note}")
    return 0


def cmd_service_cancel(args) -> int:
    from repro.service import ServiceClient

    reply = ServiceClient(args.root).cancel(args.run)
    print(f"{args.run}: {reply.get('state')}"
          + (" (draining)" if reply.get("draining") else ""))
    return 0


def cmd_service_preempt(args) -> int:
    from repro.service import ServiceClient

    ServiceClient(args.root).preempt(args.run)
    print(f"{args.run}: draining to checkpoint")
    return 0


def cmd_service_logs(args) -> int:
    from repro.runtime.telemetry import format_events
    from repro.service import ServiceClient

    reply = ServiceClient(args.root).logs(args.run, n=args.n)
    if reply["total"] > len(reply["events"]):
        print(f"... ({reply['total'] - len(reply['events'])} "
              f"earlier events)")
    if reply["events"]:
        print(format_events(reply["events"]))
    if args.follow:
        return _follow_and_print(reply["path"])
    return 0


def cmd_service_wait(args) -> int:
    from repro.service import ServiceClient

    entries = ServiceClient(args.root).wait(args.runs, timeout=args.timeout)
    bad = 0
    for run_id in args.runs:
        entry = entries[run_id]
        print(f"{run_id}: {entry['state']}")
        if entry["state"] != "DONE":
            bad += 1
    return 1 if bad else 0


def cmd_service_stop(args) -> int:
    from repro.service import ServiceClient

    ServiceClient(args.root).shutdown()
    print("service stopping (live runs drain to checkpoint)")
    return 0


def cmd_service_worker(args) -> int:
    """Internal: one RUNNING episode, spawned by the subprocess launcher.

    Exit codes: 0 done, 2 preempted (drained to checkpoint), 3 failed.
    The result record is dropped atomically next to the controller dir so
    the daemon reads either nothing or a complete record, never a torn
    one.
    """
    import json

    from repro.service.launcher import result_path
    from repro.service.specs import RunJob

    with open(args.spec, encoding="utf-8") as fh:
        spec = json.load(fh)
    job = RunJob(spec, args.run_dir)
    try:
        result = job.execute()
    except KeyboardInterrupt:
        # SIGINT landed before the controller installed its SignalGuard
        # (problem construction); there is no checkpoint yet, so the
        # daemon will requeue and the next episode starts fresh
        result = {"outcome": "preempted", "status": "interrupted",
                  "drain": "signal before first step"}
    except Exception as exc:
        result = {"outcome": "failed", "error": repr(exc)}
    path = result_path(args.run_dir)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(result, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return {"done": 0, "preempted": 2}.get(result.get("outcome"), 3)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package summary").set_defaults(fn=cmd_info)

    p = sub.add_parser("sod", help="Sod shock-tube validation")
    p.add_argument("-n", type=int, default=128)
    p.set_defaults(fn=cmd_sod)

    p = sub.add_parser("pancake", help="Zel'dovich pancake validation")
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--z-end", type=float, default=15.0)
    p.set_defaults(fn=cmd_pancake)

    p = sub.add_parser("collapse", help="primordial-collapse demo")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--levels", type=int, default=2)
    p.add_argument("--z-end", type=float, default=80.0)
    p.add_argument("--max-steps", type=int, default=100)
    p.add_argument("--no-chemistry", action="store_true")
    p.add_argument("--checkpoint", default=None)
    p.set_defaults(fn=cmd_collapse)

    p = sub.add_parser("problems", help="list registered problems")
    p.set_defaults(fn=cmd_problems)

    p = sub.add_parser(
        "validate",
        help="convergence harness: run a problem at several resolutions "
             "and fit the L1/L2/Linf error orders (docs/VALIDATION.md)")
    p.add_argument("--problem", default="shock_tube")
    p.add_argument("-r", "--resolutions", type=int, nargs="+", default=None,
                   help="grid sizes, ascending (default: the problem's)")
    p.add_argument("--fields", default=None,
                   help="comma-separated fields (default: the problem's)")
    p.add_argument("--t-end", type=float, default=None)
    p.add_argument("--out", default=None, help="write the report JSON here")
    p.add_argument("--floor", type=float, default=None,
                   help="exit nonzero unless every fitted L1 order "
                        "reaches this")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("inspect", help="summarise a checkpoint")
    p.add_argument("file")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser(
        "chk", help="checkpoint maintenance (see docs/RUNTIME.md)")
    chk = p.add_subparsers(dest="chk_command", required=True)
    q = chk.add_parser(
        "verify", help="scrub a run directory's checkpoint pairs against "
                       "their sha256 sidecars")
    q.add_argument("dir", help="run directory")
    q.add_argument("--quarantine", action="store_true",
                   help="rename corrupt pairs out of recovery's sight "
                        "(*.quarantine) instead of just reporting them")
    q.add_argument("--strict", action="store_true",
                   help="treat a missing digest sidecar as a failure "
                        "(pre-digest checkpoints pass by default)")
    q.set_defaults(fn=cmd_chk_verify)

    p = sub.add_parser(
        "run", help="a registered problem under fault-tolerant run control "
                    "(default: primordial collapse)")
    p.add_argument("--problem", default="collapse",
                   help="registry name ('repro problems' lists them; "
                        "needs the C flag)")
    p.add_argument("-n", type=int, default=None,
                   help="root-grid size (default: the problem's own)")
    p.add_argument("--levels", type=int, default=2)
    p.add_argument("--z-end", type=float, default=80.0)
    p.add_argument("--t-end", type=float, default=None,
                   help="stop time for non-collapse problems "
                        "(default: the problem's own)")
    p.add_argument("--max-steps", type=int, default=None)
    p.add_argument("--no-chemistry", action="store_true")
    p.add_argument("--dir", default=None, help="run directory")
    p.add_argument("--telemetry", default=None,
                   help="run directory (alias of --dir; telemetry.jsonl, "
                        "checkpoints and run state live here)")
    p.add_argument("--checkpoint-every", type=int, default=5,
                   help="root steps between checkpoints")
    p.add_argument("--keep-last", "--keep", dest="keep_last", type=int,
                   default=3,
                   help="rotated checkpoint pairs to retain (the pair a "
                        "resumed run restarted from is pinned until a "
                        "newer one lands)")
    p.add_argument("--exec-backend", default=None,
                   choices=["serial", "thread", "process"],
                   help="per-grid execution backend "
                        "(default: REPRO_EXEC_BACKEND or serial)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for parallel backends "
                        "(default: REPRO_WORKERS or CPU count)")
    p.add_argument("--kernels", default=None,
                   choices=["numpy", "numba", "cffi", "auto"],
                   help="inner-loop kernel tier (default: REPRO_KERNELS or "
                        "numpy; results are backend-independent, see "
                        "docs/PERFORMANCE.md)")
    p.add_argument("--faults", default=None,
                   help="chaos-test fault spec, e.g. "
                        "'nan_cell:level=1,grid=3,count=2;mg_diverge:level=1' "
                        "(same syntax as REPRO_FAULTS; see docs/ROBUSTNESS.md)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="RNG seed for fault payloads "
                        "(default: REPRO_FAULTS_SEED or 0)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "resume", help="continue a run from its newest loadable checkpoint")
    p.add_argument("--dir", required=True, help="run directory")
    p.add_argument("--max-steps", type=int, default=None,
                   help="override the stored root-step budget")
    p.add_argument("--checkpoint-every", type=int, default=5)
    p.add_argument("--keep-last", "--keep", dest="keep_last", type=int,
                   default=3)
    p.add_argument("--exec-backend", default=None,
                   choices=["serial", "thread", "process"],
                   help="override the execution backend for the resumed run "
                        "(results are backend-independent)")
    p.add_argument("--workers", type=int, default=None,
                   help="override the worker count for the resumed run")
    p.add_argument("--kernels", default=None,
                   choices=["numpy", "numba", "cffi", "auto"],
                   help="override the kernel tier for the resumed run "
                        "(results are backend-independent)")
    p.add_argument("--faults", default=None,
                   help="chaos-test fault spec (same syntax as REPRO_FAULTS)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="RNG seed for fault payloads")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("tail", help="summarise a run's telemetry stream")
    p.add_argument("dir", help="run directory or telemetry.jsonl path")
    p.add_argument("-n", type=int, default=12, help="events to show")
    p.add_argument("-f", "--follow", action="store_true",
                   help="keep printing records as they are appended")
    p.set_defaults(fn=cmd_tail)

    p = sub.add_parser(
        "service", help="multi-tenant run service (see docs/SERVICE.md)")
    svc = p.add_subparsers(dest="service_command", required=True)

    q = svc.add_parser("start", help="run the daemon in the foreground")
    q.add_argument("--root", required=True, help="service root directory")
    q.add_argument("--workers", type=int, default=4,
                   help="shared worker budget the scheduler packs into")
    q.add_argument("--launcher", default="subprocess",
                   choices=["subprocess", "inprocess"],
                   help="run episodes as child processes (isolated, "
                        "default) or daemon threads")
    q.add_argument("--tick-interval", type=float, default=0.05,
                   help="seconds between scheduling rounds")
    q.add_argument("--no-supervision", action="store_true",
                   help="disable external stall/budget enforcement")
    q.add_argument("--stall-ceiling", type=float, default=900.0,
                   help="max seconds without a heartbeat before a run "
                        "is drained as stalled (see docs/ROBUSTNESS.md)")
    q.add_argument("--stall-grace", type=float, default=10.0,
                   help="seconds between the soft drain and the hard kill")
    q.add_argument("--max-strikes", type=int, default=3,
                   help="stall strikes before a run is quarantined")
    q.set_defaults(fn=cmd_service_start)

    q = svc.add_parser("submit", help="queue a run spec")
    q.add_argument("--root", required=True)
    q.add_argument("--spec", default=None, help="run spec JSON file")
    q.add_argument("--spec-json", default=None,
                   help="run spec as an inline JSON string")
    q.add_argument("--tenant", default="default")
    q.add_argument("--priority", type=int, default=0,
                   help="larger = more important; may preempt strictly "
                        "lower priorities")
    q.add_argument("--workers", type=int, default=1,
                   help="worker slots this run occupies while RUNNING")
    q.add_argument("--wait", action="store_true",
                   help="block until the run reaches a terminal state")
    q.add_argument("--timeout", type=float, default=600.0)
    q.set_defaults(fn=cmd_service_submit)

    q = svc.add_parser("ps", help="list runs and the worker budget")
    q.add_argument("--root", required=True)
    q.set_defaults(fn=cmd_service_ps)

    q = svc.add_parser("cancel", help="cancel a run (drains if RUNNING)")
    q.add_argument("--root", required=True)
    q.add_argument("run")
    q.set_defaults(fn=cmd_service_cancel)

    q = svc.add_parser(
        "preempt", help="drain a RUNNING run to checkpoint (resumable)")
    q.add_argument("--root", required=True)
    q.add_argument("run")
    q.set_defaults(fn=cmd_service_preempt)

    q = svc.add_parser("logs", help="show a run's telemetry")
    q.add_argument("--root", required=True)
    q.add_argument("run")
    q.add_argument("-n", type=int, default=20)
    q.add_argument("-f", "--follow", action="store_true",
                   help="keep printing records as they are appended")
    q.set_defaults(fn=cmd_service_logs)

    q = svc.add_parser("wait", help="block until runs are terminal")
    q.add_argument("--root", required=True)
    q.add_argument("runs", nargs="+")
    q.add_argument("--timeout", type=float, default=600.0)
    q.set_defaults(fn=cmd_service_wait)

    q = svc.add_parser("stop", help="shut the daemon down (runs drain)")
    q.add_argument("--root", required=True)
    q.set_defaults(fn=cmd_service_stop)

    p = sub.add_parser("service-worker")  # internal: launched by the daemon
    p.add_argument("--run-dir", required=True)
    p.add_argument("--spec", required=True)
    p.set_defaults(fn=cmd_service_worker)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
