"""Persistent run registry: one directory per run, a crash-safe state machine.

The registry is the service's durable truth.  Every submitted run owns a
directory under ``<service root>/runs/<run_id>/``::

    spec.json     — the immutable run spec (problem, kwargs, budgets)
    state.json    — the mutable RunRecord (state machine, counters), always
                    replaced atomically so a crash can never leave it torn
    run/          — the RunController's run_dir: checkpoints + telemetry

State machine::

    QUEUED ──────► RUNNING ──────► DONE | FAILED
      │               │
      │               ├──────────► PREEMPTED ──► RUNNING (resume)
      │               │                │
      ▼               ▼                ▼
    CANCELLED ◄── CANCELLED        CANCELLED

plus the crash-recovery edge ``RUNNING → QUEUED`` (daemon restarted and
found a RUNNING record with no live worker and no checkpoint to resume
from).  Any other transition raises :class:`IllegalTransitionError` —
including after a crash-restart, which is what the legality tests drive.

Every transition is appended to the service journal
(``<root>/journal.jsonl``) *after* the atomic state replace, so the
journal is a complete, ordered audit trail of what the registry believes.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.runtime.checkpoint_policy import CheckpointPolicy

# ----------------------------------------------------------------- states
QUEUED = "QUEUED"
RUNNING = "RUNNING"
PREEMPTED = "PREEMPTED"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

STATES = (QUEUED, RUNNING, PREEMPTED, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: legal edges; RUNNING -> QUEUED is the crash-requeue edge (no checkpoint)
LEGAL_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({PREEMPTED, DONE, FAILED, CANCELLED, QUEUED}),
    PREEMPTED: frozenset({RUNNING, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

_RUN_ID_RE = re.compile(r"^r(\d{6})$")


class IllegalTransitionError(RuntimeError):
    """A state change the run lifecycle does not allow."""

    def __init__(self, run_id: str, current: str, requested: str):
        self.run_id = run_id
        self.current = current
        self.requested = requested
        super().__init__(
            f"run {run_id}: illegal transition {current} -> {requested}"
        )


class UnknownRunError(KeyError):
    """No run with that id in the registry."""


@dataclass
class RunRecord:
    """The mutable per-run record behind ``state.json``.

    Scheduling inputs (``priority``, ``tenant``, ``workers``) are copied
    out of the spec at submit time so the scheduler never has to re-read
    spec files; counters accumulate across preempt/resume cycles.
    """

    run_id: str
    state: str = QUEUED
    tenant: str = "default"
    #: larger = more important; preemption needs a *strictly* larger value
    priority: int = 0
    #: workers this run occupies while RUNNING (its exec-pool share)
    workers: int = 1
    #: submission sequence number — total order for FIFO tie-breaks
    seq: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: RUNNING episodes so far (1 = never preempted)
    attempts: int = 0
    preemptions: int = 0
    #: wall seconds accumulated over completed RUNNING episodes
    wall: float = 0.0
    #: analytic size estimate (root cells) used before any run has been
    #: measured; the daemon feeds measured wall times into a WorkCalibrator
    cells: int = 0
    #: stall strikes accumulated by the supervisor; quarantine at the
    #: policy's max_strikes
    strikes: int = 0
    #: scheduler hold-down: a QUEUED/PREEMPTED run is not eligible to
    #: start before this wall-clock time (supervisor requeue backoff)
    not_before: float | None = None
    #: set when the run reaches a terminal state
    result: dict = field(default_factory=dict)
    #: why the last transition happened (preempt reason, failure message)
    note: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class RunRegistry:
    """Directory-backed registry of runs plus the service journal.

    All mutation goes through :meth:`submit` and :meth:`transition`; both
    write ``state.json`` atomically (temp + ``os.replace``) before
    journalling, so a crash between the two loses only the journal line,
    never the state.  The class is thread-safe: the daemon's socket
    threads and scheduler tick share one instance.
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.runs_dir = os.path.join(self.root, "runs")
        os.makedirs(self.runs_dir, exist_ok=True)
        self.journal_path = os.path.join(self.root, "journal.jsonl")
        self._lock = threading.RLock()
        self._seq = self._highest_existing() + 1

    # ------------------------------------------------------------- layout
    def run_dir(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, run_id)

    def spec_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), "spec.json")

    def state_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), "state.json")

    def controller_dir(self, run_id: str) -> str:
        """The RunController run_dir (checkpoints + telemetry.jsonl)."""
        return os.path.join(self.run_dir(run_id), "run")

    def _highest_existing(self) -> int:
        highest = 0
        for name in os.listdir(self.runs_dir):
            m = _RUN_ID_RE.match(name)
            if m is not None:
                highest = max(highest, int(m.group(1)))
        return highest

    # ------------------------------------------------------------ journal
    def journal(self, event: str, **payload) -> None:
        """Append one event to the service journal (append + flush)."""
        record = {"event": event, "ts": round(time.time(), 6)}
        record.update(payload)
        with self._lock:
            with open(self.journal_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------- submit
    def submit(self, spec: dict, *, tenant: str = "default",
               priority: int = 0, workers: int = 1) -> RunRecord:
        """Register a new run in QUEUED and journal the submission."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        with self._lock:
            seq = self._seq
            self._seq += 1
            run_id = f"r{seq:06d}"
            rdir = self.run_dir(run_id)
            os.makedirs(os.path.join(rdir, "run"), exist_ok=True)
            _atomic_write_json(self.spec_path(run_id), dict(spec))
            record = RunRecord(
                run_id=run_id, tenant=str(tenant), priority=int(priority),
                workers=int(workers), seq=seq, submitted_at=time.time(),
                cells=_spec_cells(spec),
            )
            self._write(record)
            self.journal("submit", run=run_id, tenant=record.tenant,
                         priority=record.priority, workers=record.workers)
            return record

    # -------------------------------------------------------------- reads
    def load(self, run_id: str) -> RunRecord:
        try:
            with open(self.state_path(run_id), encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise UnknownRunError(run_id) from None
        return RunRecord(**data)

    def load_spec(self, run_id: str) -> dict:
        try:
            with open(self.spec_path(run_id), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise UnknownRunError(run_id) from None

    def list_runs(self) -> list[RunRecord]:
        """Every registered run, in submission order."""
        records = []
        for name in sorted(os.listdir(self.runs_dir)):
            if _RUN_ID_RE.match(name) and \
                    os.path.exists(self.state_path(name)):
                records.append(self.load(name))
        records.sort(key=lambda r: r.seq)
        return records

    def has_checkpoint(self, run_id: str) -> bool:
        """A preempted/crashed run can resume iff a loadable pair exists."""
        return CheckpointPolicy.latest(self.controller_dir(run_id)) is not None

    # --------------------------------------------------------- transitions
    def transition(self, run_id: str, new_state: str, *, note: str = "",
                   **updates) -> RunRecord:
        """Atomically move a run to ``new_state``; journal the edge.

        ``updates`` are extra RunRecord fields to set in the same atomic
        write (e.g. ``result=...`` together with ``DONE``).  Raises
        :class:`IllegalTransitionError` for edges the lifecycle forbids.
        """
        if new_state not in STATES:
            raise ValueError(f"unknown state {new_state!r}")
        with self._lock:
            record = self.load(run_id)
            if new_state not in LEGAL_TRANSITIONS[record.state]:
                raise IllegalTransitionError(run_id, record.state, new_state)
            previous = record.state
            record.state = new_state
            record.note = str(note)
            now = time.time()
            if new_state == RUNNING:
                record.started_at = now
                record.attempts += 1
                record.not_before = None  # hold-down consumed
            if new_state == PREEMPTED:
                record.preemptions += 1
            if new_state in TERMINAL_STATES:
                record.finished_at = now
            for key, value in updates.items():
                if not hasattr(record, key):
                    raise AttributeError(f"RunRecord has no field {key!r}")
                setattr(record, key, value)
            self._write(record)
            self.journal("transition", run=run_id, **{"from": previous},
                         to=new_state, note=record.note,
                         attempts=record.attempts,
                         preemptions=record.preemptions)
            return record

    def recover(self) -> list[tuple[str, str]]:
        """Heal the registry after a daemon crash-restart.

        Any RUNNING record necessarily lost its worker when the daemon
        died.  With a loadable checkpoint it becomes PREEMPTED (it will
        resume bit-exactly); without one it is requeued from scratch.
        Returns the applied ``(run_id, new_state)`` edges.
        """
        healed = []
        with self._lock:
            for record in self.list_runs():
                if record.state != RUNNING:
                    continue
                target = PREEMPTED if self.has_checkpoint(record.run_id) \
                    else QUEUED
                self.transition(record.run_id, target,
                                note="daemon crash-restart")
                healed.append((record.run_id, target))
        return healed

    # ------------------------------------------------------------ plumbing
    def _write(self, record: RunRecord) -> None:
        _atomic_write_json(self.state_path(record.run_id), asdict(record))


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _spec_cells(spec: dict) -> int:
    """Analytic problem-size estimate (root cells) from a run spec."""
    kwargs = spec.get("kwargs", {})
    n_root = int(kwargs.get("n_root", 8))
    return n_root ** 3
