"""Client for the run-service socket: one JSON line out, one back.

:class:`ServiceClient` opens a fresh connection per request — the
protocol is stateless, so this keeps the client trivially robust against
daemon restarts — and raises :class:`ServiceError` whenever the daemon
answers ``{"ok": false}`` or cannot be reached at all.  The CLI
(``repro service ...``) and the tests are both thin layers over this.
"""

from __future__ import annotations

import json
import os
import socket
import time

from repro.service.daemon import socket_path
from repro.service.registry import TERMINAL_STATES


class ServiceError(RuntimeError):
    """The daemon refused a request or is unreachable."""


class ServiceClient:
    """Talk to a :class:`~repro.service.daemon.RunService` by root dir."""

    def __init__(self, root: str, timeout: float = 10.0):
        self.root = str(root)
        self.timeout = float(timeout)

    # ------------------------------------------------------------ transport
    def request(self, op: str, **payload) -> dict:
        """Send one op; return the daemon's reply dict (``ok`` is true)."""
        path = socket_path(self.root)
        if not os.path.exists(path):
            raise ServiceError(
                f"no service socket at {path} — is the daemon running? "
                f"(repro service start --root {self.root})"
            )
        message = dict(payload)
        message["op"] = op
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
                conn.settimeout(self.timeout)
                conn.connect(path)
                conn.sendall((json.dumps(message) + "\n").encode("utf-8"))
                reply = self._read_line(conn)
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServiceError(f"service request failed: {exc}") from exc
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request refused"))
        return reply

    @staticmethod
    def _read_line(conn: socket.socket) -> dict:
        chunks = []
        while True:
            chunk = conn.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        raw = b"".join(chunks).decode("utf-8").strip()
        if not raw:
            raise ServiceError("empty reply from daemon")
        return json.loads(raw)

    # -------------------------------------------------------------- helpers
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, spec: dict, *, tenant: str = "default",
               priority: int = 0, workers: int = 1) -> str:
        """Submit a run spec; returns the new run id."""
        reply = self.request("submit", spec=spec, tenant=tenant,
                             priority=priority, workers=workers)
        return reply["run"]

    def ps(self) -> dict:
        return self.request("ps")

    def status(self, run_id: str) -> dict:
        """One run's ``ps`` entry; raises if the run is unknown."""
        for entry in self.ps()["runs"]:
            if entry["run"] == run_id:
                return entry
        raise ServiceError(f"unknown run {run_id!r}")

    def cancel(self, run_id: str) -> dict:
        return self.request("cancel", run=run_id)

    def preempt(self, run_id: str) -> dict:
        return self.request("preempt", run=run_id)

    def logs(self, run_id: str, n: int = 20) -> dict:
        return self.request("logs", run=run_id, n=n)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def wait(self, run_ids, timeout: float = 120.0,
             poll_interval: float = 0.1,
             max_poll_interval: float = 2.0) -> dict:
        """Block until every listed run is terminal; returns id -> entry.

        Polls with exponential backoff from ``poll_interval`` (doubling
        per round, capped at ``max_poll_interval``) so a long wait does
        not hammer the daemon socket.  Raises :class:`ServiceError` on
        timeout naming each still-live run with its state and last
        heartbeat age, so a stuck run is diagnosable from the error
        alone.
        """
        if isinstance(run_ids, str):
            run_ids = [run_ids]
        wanted = list(run_ids)
        deadline = time.monotonic() + float(timeout)
        interval = max(float(poll_interval), 1e-3)
        cap = max(float(max_poll_interval), interval)
        while True:
            entries = {e["run"]: e for e in self.ps()["runs"]
                       if e["run"] in wanted}
            missing = [rid for rid in wanted if rid not in entries]
            if missing:
                raise ServiceError(f"unknown runs: {missing}")
            live = [rid for rid, e in entries.items()
                    if e["state"] not in TERMINAL_STATES]
            if not live:
                return entries
            now = time.monotonic()
            if now > deadline:
                parts = []
                for rid in live:
                    entry = entries[rid]
                    age = entry.get("heartbeat_age_seconds")
                    beat = (f"last heartbeat {age:.1f}s ago"
                            if age is not None else "no heartbeat")
                    parts.append(f"{rid} [{entry['state']}, {beat}]")
                raise ServiceError(
                    "timed out waiting for " + ", ".join(parts)
                )
            time.sleep(min(interval, max(deadline - now, 0.0)))
            interval = min(interval * 2.0, cap)
