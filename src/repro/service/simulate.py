"""Virtual-time cluster: replay a scheduler against synthetic runs.

The fair-share invariants worth testing — convergence of tenant shares,
absence of starvation, throughput of backfill vs FIFO — emerge over
hundreds of run lifetimes.  Executing real simulations for that would
take hours; this module replays the *decisions* under a virtual clock in
milliseconds, using the same :class:`~repro.service.scheduler.
FairShareScheduler` object and the same RunRecord shape the daemon feeds
it, so what the tests and ``benchmarks/bench_service.py`` measure is the
production decision logic, not a model of it.

Preemption semantics mirror the real service: a preempted job keeps its
completed virtual seconds (they are "in the checkpoint") and pays a fixed
``preempt_overhead`` on top of its remaining duration when it resumes —
the cost of the drain/restore cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.registry import (
    DONE,
    PREEMPTED,
    QUEUED,
    RUNNING,
    RunRecord,
)
from repro.service.scheduler import FairShareScheduler


@dataclass
class SimJob:
    """A synthetic run: how big it is and when it arrives."""

    name: str
    duration: float
    tenant: str = "default"
    priority: int = 0
    workers: int = 1
    arrival: float = 0.0
    #: analytic size estimate fed to the cost model (defaults to duration
    #: so the calibrator's seconds-per-cell converges to 1)
    cells: int | None = None


@dataclass
class SimResult:
    """Per-job outcome plus cluster-level aggregates."""

    makespan: float
    #: completed work / (total_workers * makespan)
    utilisation: float
    #: jobs per virtual hour
    runs_per_hour: float
    #: name -> {"start", "finish", "wait", "preemptions"}
    jobs: dict = field(default_factory=dict)
    #: tenant -> worker-seconds actually consumed
    tenant_usage: dict = field(default_factory=dict)
    #: virtual rounds the cluster ran
    rounds: int = 0


class VirtualCluster:
    """Discrete-time replay of scheduler decisions over synthetic jobs."""

    def __init__(self, scheduler: FairShareScheduler, total_workers: int,
                 tick: float = 1.0, preempt_overhead: float = 0.0):
        self.scheduler = scheduler
        self.total_workers = int(total_workers)
        self.tick = float(tick)
        self.preempt_overhead = float(preempt_overhead)

    def run(self, jobs: list[SimJob], max_time: float = 10_000_000.0
            ) -> SimResult:
        records: dict[str, RunRecord] = {}
        meta: dict[str, dict] = {}
        for seq, job in enumerate(sorted(jobs, key=lambda j: (j.arrival,))):
            rid = f"r{seq:06d}"
            records[rid] = RunRecord(
                run_id=rid, tenant=job.tenant, priority=job.priority,
                workers=min(job.workers, self.total_workers), seq=seq,
                cells=int(job.cells if job.cells is not None
                          else max(job.duration, 1.0)),
            )
            meta[rid] = {
                "job": job, "remaining": float(job.duration),
                "start": None, "finish": None, "episode_start": None,
            }

        t = 0.0
        rounds = 0
        busy_work = 0.0
        draining: set[str] = set()
        while t < max_time:
            rounds += 1
            # --- arrivals become schedulable -----------------------------
            queued = [
                r for rid, r in records.items()
                if r.state in (QUEUED, PREEMPTED)
                and meta[rid]["job"].arrival <= t
            ]
            running = [r for r in records.values() if r.state == RUNNING]
            if not queued and not running:
                if all(r.state == DONE for r in records.values()):
                    break
                t += self.tick  # waiting for a future arrival
                continue

            decision = self.scheduler.decide(
                queued, running, self.total_workers, draining=draining)
            for rid in decision.preempt:
                draining.add(rid)
            for rid in decision.start:
                record = records[rid]
                resumed = record.state == PREEMPTED
                record.state = RUNNING
                record.attempts += 1
                info = meta[rid]
                info["episode_start"] = t
                if info["start"] is None:
                    info["start"] = t
                if resumed:
                    info["remaining"] += self.preempt_overhead

            # --- advance one tick ---------------------------------------
            for record in records.values():
                if record.state != RUNNING:
                    continue
                info = meta[record.run_id]
                step = min(self.tick, info["remaining"])
                info["remaining"] -= step
                busy_work += step * record.workers
                self.scheduler.note_usage(record.tenant,
                                          step * record.workers)
                if info["remaining"] <= 1e-12:
                    record.state = DONE
                    info["finish"] = t + step
                    draining.discard(record.run_id)
                    wall = t + step - info["episode_start"]
                    record.wall += wall
                    self.scheduler.calibrator.observe(
                        "run", 0, record.cells, max(wall, 1e-9))
                    self.scheduler.forget(record.run_id)
                elif record.run_id in draining:
                    # drain completes at the tick boundary (the virtual
                    # analogue of "next root-step boundary")
                    record.state = PREEMPTED
                    record.preemptions += 1
                    record.wall += t + self.tick - info["episode_start"]
                    draining.discard(record.run_id)
            t += self.tick

        makespan = max(
            (info["finish"] for info in meta.values()
             if info["finish"] is not None),
            default=0.0,
        )
        # report the scheduler's own ledger (single source of truth)
        usage = dict(self.scheduler.usage)
        done = [r for r in records.values() if r.state == DONE]
        return SimResult(
            makespan=makespan,
            utilisation=(
                busy_work / (self.total_workers * makespan)
                if makespan > 0 else 0.0
            ),
            runs_per_hour=(
                len(done) / (makespan / 3600.0) if makespan > 0 else 0.0
            ),
            jobs={
                meta[rid]["job"].name: {
                    "start": meta[rid]["start"],
                    "finish": meta[rid]["finish"],
                    "wait": (
                        meta[rid]["start"] - meta[rid]["job"].arrival
                        if meta[rid]["start"] is not None else None
                    ),
                    "preemptions": records[rid].preemptions,
                }
                for rid in records
            },
            tenant_usage=usage,
            rounds=rounds,
        )
