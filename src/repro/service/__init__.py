"""Multi-tenant run service over the execution engine.

A persistent daemon (:class:`RunService`) that owns a service root
directory, accepts run specs over a unix socket, packs them onto a
shared worker budget with a :class:`FairShareScheduler`, launches each
RUNNING episode through a launcher (subprocess for isolation, threads
for tests), and preempts runs through the controller's standard
drain-to-checkpoint path so a preempted run resumes bit-exactly.

See ``docs/SERVICE.md`` for the architecture and CLI walk-through.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import RunService, socket_path
from repro.service.launcher import (
    InProcessLauncher,
    RunHandle,
    SubprocessLauncher,
    resolve_launcher,
    result_path,
)
from repro.service.registry import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    PREEMPTED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    IllegalTransitionError,
    RunRecord,
    RunRegistry,
    UnknownRunError,
)
from repro.service.scheduler import Decision, FairShareScheduler
from repro.service.simulate import SimJob, SimResult, VirtualCluster
from repro.service.specs import PRESETS, RunJob, SpecError, build_job

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "LEGAL_TRANSITIONS",
    "PREEMPTED",
    "PRESETS",
    "QUEUED",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "Decision",
    "FairShareScheduler",
    "IllegalTransitionError",
    "InProcessLauncher",
    "RunHandle",
    "RunJob",
    "RunRecord",
    "RunRegistry",
    "RunService",
    "ServiceClient",
    "ServiceError",
    "SimJob",
    "SimResult",
    "SpecError",
    "SubprocessLauncher",
    "UnknownRunError",
    "VirtualCluster",
    "build_job",
    "resolve_launcher",
    "result_path",
    "socket_path",
]
