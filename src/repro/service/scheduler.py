"""Fair-share run scheduler: packs many runs onto a shared worker budget.

The scheduler is a pure decision function over registry records — it owns
no threads, no sockets, no clocks.  Each call to :meth:`decide` looks at
the queued and running runs and returns two lists: runs to start (or
resume) now, and running runs to drain to checkpoint because something
strictly more important is waiting.  The daemon applies the actions; the
virtual cluster in :mod:`repro.service.simulate` replays them under a
synthetic clock, which is how the invariant tests and
``benchmarks/bench_service.py`` exercise years of scheduling in
milliseconds.

Policy, in decreasing precedence:

1. **Priority classes** — larger ``priority`` schedules first, and a
   queued run may preempt running runs of *strictly* lower base priority
   when the free budget cannot fit it.
2. **Weighted fair share** — within a priority class, tenants are ordered
   by accumulated usage (worker-seconds) divided by their weight, least
   served first, so two equal-weight tenants converge to equal shares and
   a weight-2 tenant to twice the share of a weight-1 tenant.
3. **Cost estimates** — remaining ties prefer the cheapest run first,
   using measured seconds-per-cell from the execution engine's
   :class:`~repro.exec.calibration.WorkCalibrator` (kind ``"run"``) once
   at least one run has completed, and the analytic cell count before
   that.  Shortest-first backfill is where the throughput win over FIFO
   comes from: a wide run at the queue head no longer blocks narrow runs
   that would fit the idle workers behind it.
4. **Aging** — a run's effective priority rises by one class every
   ``aging_rounds`` scheduling rounds it spends queued, so low-priority
   runs cannot starve behind a steady stream of high-priority arrivals.
   Aging affects admission order only, never preemption rights.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.exec.calibration import WorkCalibrator


@dataclass
class Decision:
    """One scheduling round's actions, in apply order."""

    #: run ids to start/resume now (budget already verified)
    start: list = field(default_factory=list)
    #: running run ids to drain to checkpoint (preemption)
    preempt: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.start or self.preempt)


class FairShareScheduler:
    """Priority + weighted-fair-share + cost-aware backfill scheduler.

    Parameters
    ----------
    weights:
        Tenant -> fair-share weight (default 1.0 each).
    aging_rounds:
        Queued rounds per effective-priority class gained (anti-starvation);
        ``0`` disables aging.
    backfill:
        Keep scanning the queue when the head does not fit.  ``False``
        gives strict head-of-line blocking (the FIFO baseline).
    preemption:
        Allow draining strictly-lower-priority running runs.
    fair_share / cost_aware:
        Toggle ordering terms 2 and 3 (the FIFO baseline disables both).
    calibrator:
        Shared :class:`WorkCalibrator`; completed runs are fed back via
        :meth:`observe_run` as kind ``"run"`` observations.
    """

    def __init__(self, weights: dict | None = None, *, aging_rounds: int = 25,
                 backfill: bool = True, preemption: bool = True,
                 fair_share: bool = True, cost_aware: bool = True,
                 calibrator: WorkCalibrator | None = None):
        self.weights = dict(weights or {})
        self.aging_rounds = int(aging_rounds)
        self.backfill = bool(backfill)
        self.preemption = bool(preemption)
        self.fair_share = bool(fair_share)
        self.cost_aware = bool(cost_aware)
        self.calibrator = calibrator or WorkCalibrator()
        #: tenant -> accumulated worker-seconds (the fair-share ledger)
        self.usage: dict[str, float] = defaultdict(float)
        #: run_id -> scheduling rounds spent queued (drives aging)
        self.wait_rounds: dict[str, int] = defaultdict(int)

    @classmethod
    def fifo(cls) -> "FairShareScheduler":
        """Strict submission-order baseline: no backfill, no preemption,
        no fair share, no cost awareness — the comparison anchor for
        ``benchmarks/bench_service.py``."""
        return cls(aging_rounds=0, backfill=False, preemption=False,
                   fair_share=False, cost_aware=False)

    # -------------------------------------------------------------- ledger
    def weight(self, tenant: str) -> float:
        return max(float(self.weights.get(tenant, 1.0)), 1e-9)

    def share(self, tenant: str) -> float:
        """Usage normalised by weight — the fair-share sort key."""
        return self.usage[tenant] / self.weight(tenant)

    def note_usage(self, tenant: str, worker_seconds: float) -> None:
        """Charge consumed capacity to a tenant's fair-share account."""
        if worker_seconds > 0.0:
            self.usage[tenant] += float(worker_seconds)

    def observe_run(self, record, wall_seconds: float) -> None:
        """Fold a finished RUNNING episode into the cost model."""
        self.note_usage(record.tenant, wall_seconds * record.workers)
        self.calibrator.observe("run", 0, max(record.cells, 1), wall_seconds)

    def estimate_seconds(self, record) -> float | None:
        """Predicted wall seconds for a run, None before any measurement."""
        rate = self.calibrator.rate("run", 0)
        if rate is None:
            return None
        return rate * max(record.cells, 1)

    # ------------------------------------------------------------ ordering
    def _effective_priority(self, record) -> int:
        if self.aging_rounds <= 0:
            return record.priority
        # .get, not [..]: read-only callers (queue_positions, ps) must not
        # seed defaultdict entries for runs decide() never saw
        return record.priority + self.wait_rounds.get(record.run_id, 0) \
            // self.aging_rounds

    def _order_key(self, record):
        cost_key = 0.0
        if self.cost_aware:
            cost = self.estimate_seconds(record)
            # analytic cell count stands in until a run has been measured
            cost_key = cost if cost is not None \
                else float(max(record.cells, 1))
        return (
            -self._effective_priority(record),
            self.share(record.tenant) if self.fair_share else 0.0,
            cost_key,
            record.seq,
        )

    def queue_positions(self, queued) -> dict[str, int]:
        """1-based admission-order position for each schedulable run.

        The same ordering :meth:`decide` scans in, computed without
        mutating any scheduler state — this feeds the ``ps`` display,
        not an actual scheduling round.
        """
        ordered = sorted(queued, key=self._order_key)
        return {r.run_id: i + 1 for i, r in enumerate(ordered)}

    # -------------------------------------------------------------- decide
    def decide(self, queued, running, total_workers: int,
               draining=frozenset()) -> Decision:
        """One scheduling round.

        ``queued``: RunRecords in QUEUED or PREEMPTED (schedulable).
        ``running``: RunRecords in RUNNING.  ``draining``: ids of running
        runs already asked to drain — their workers count as "freeing
        soon", so a pending preemption is never doubled up.
        """
        decision = Decision()
        total_workers = int(total_workers)
        running = list(running)
        free = total_workers - sum(r.workers for r in running)
        soon_free = sum(r.workers for r in running if r.run_id in draining)
        chosen_victims: set[str] = set()

        for record in sorted(queued, key=self._order_key):
            self.wait_rounds[record.run_id] += 1
            need = min(record.workers, total_workers)
            if need <= free:
                decision.start.append(record.run_id)
                free -= need
                self.wait_rounds.pop(record.run_id, None)
                continue
            if self.preemption:
                deficit = need - free - soon_free
                if deficit > 0:
                    victims = self._pick_victims(
                        record, running, draining | chosen_victims, deficit)
                    if victims:
                        for victim in victims:
                            chosen_victims.add(victim.run_id)
                            soon_free += victim.workers
                        decision.preempt.extend(
                            v.run_id for v in victims)
                # the preempted capacity is claimed on a later round, once
                # the victims have drained to checkpoint
            if not self.backfill:
                break
        return decision

    def _pick_victims(self, candidate, running, untouchable,
                      deficit: int) -> list:
        """Cheapest set of strictly-lower-priority runs covering ``deficit``.

        Victims are taken lowest base priority first, youngest first within
        a class (the least progress is thrown into its checkpoint), and
        only if the deficit is actually coverable — a partial preemption
        that still cannot seat the candidate would churn runs for nothing.
        """
        eligible = [
            r for r in running
            if r.priority < candidate.priority
            and r.run_id not in untouchable
        ]
        eligible.sort(key=lambda r: (r.priority, -r.seq))
        victims, freed = [], 0
        for victim in eligible:
            if freed >= deficit:
                break
            victims.append(victim)
            freed += victim.workers
        return victims if freed >= deficit else []

    # ------------------------------------------------------------ forget
    def forget(self, run_id: str) -> None:
        """Drop per-run scheduler state once a run reaches a terminal
        state (cancelled while queued, failed, done)."""
        self.wait_rounds.pop(run_id, None)
