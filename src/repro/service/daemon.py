"""The run-service daemon: socket API, scheduler tick, run supervision.

One :class:`RunService` owns a service root directory::

    <root>/service.sock    — newline-JSON control socket
    <root>/journal.jsonl   — registry transitions + multiplexed run telemetry
    <root>/runs/<id>/      — per-run registry entries (see registry.py)

and three responsibilities, all driven from a single tick thread so the
scheduler never races itself:

* **supervision** — poll every live run handle; map finished episodes
  onto registry transitions (``DONE`` / ``FAILED`` / ``PREEMPTED`` /
  ``CANCELLED``), release their worker leases, and feed measured wall
  times back into the scheduler's cost model;
* **scheduling** — hand the queued/running records to the
  :class:`~repro.service.scheduler.FairShareScheduler` and apply its
  decisions: start runs within the :class:`~repro.exec.WorkerLedger`
  budget, drain strictly-lower-priority runs when preemption is due;
* **telemetry multiplexing** — follow each running run's
  ``telemetry.jsonl`` with a :class:`~repro.runtime.JsonlFollower` and
  append the records into the service journal tagged with the run id, so
  one ``tail -f journal.jsonl`` watches the whole fleet.

The socket protocol is one JSON object per line, one response line per
request: ``{"op": "submit", "spec": {...}, "priority": 1}`` →
``{"ok": true, "run": "r000001"}``.  See :mod:`repro.service.client`.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

from repro.exec.accounting import LedgerError, WorkerLedger
from repro.runtime.checkpoint_policy import CheckpointPolicy
from repro.runtime.supervision import (
    SupervisionPolicy,
    Supervisor,
    heartbeat_age,
    read_heartbeat,
)
from repro.runtime.telemetry import JsonlFollower, read_events
from repro.service import registry as reg
from repro.service.launcher import resolve_launcher
from repro.service.registry import (
    IllegalTransitionError,
    RunRegistry,
    UnknownRunError,
)
from repro.service.scheduler import FairShareScheduler

SOCKET_NAME = "service.sock"


def socket_path(root: str) -> str:
    return os.path.join(root, SOCKET_NAME)


class RunService:
    """Multi-tenant run daemon over a service root directory.

    Parameters
    ----------
    root:
        Service root (created).  Holds the socket, journal and registry.
    total_workers:
        Shared worker budget the scheduler packs runs into.
    launcher:
        ``"subprocess"`` (default; isolation + signal-based preemption)
        or ``"inprocess"`` (threads; used by the tier-1 tests), or a
        launcher object.
    scheduler:
        Optional :class:`FairShareScheduler` override (weights, aging).
    tick_interval:
        Seconds between supervision/scheduling rounds.
    supervision:
        ``None`` (default) supervises with the default
        :class:`~repro.runtime.supervision.SupervisionPolicy`; pass a
        policy instance to tune deadlines/strikes, or ``False`` to
        disable external stall/budget enforcement entirely.
    """

    def __init__(self, root: str, total_workers: int = 4, *,
                 launcher="subprocess", scheduler=None,
                 tick_interval: float = 0.05, supervision=None):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.registry = RunRegistry(self.root)
        self.ledger = WorkerLedger(total_workers)
        self.scheduler = scheduler or FairShareScheduler()
        self.launcher = resolve_launcher(launcher)
        self.tick_interval = float(tick_interval)
        if supervision is False:
            self._supervisor = None
        elif supervision is None:
            self._supervisor = Supervisor(SupervisionPolicy())
        elif isinstance(supervision, SupervisionPolicy):
            self._supervisor = Supervisor(supervision)
        else:
            self._supervisor = supervision  # a Supervisor (tests)
        #: run_id -> supervision context for the live episode (budgets,
        #: last observed heartbeat step, per-step cost bookkeeping)
        self._run_meta: dict[str, dict] = {}
        self._handles: dict = {}
        #: run_id -> intent behind the live drain
        #: ("preempt" | "cancel" | "stall" | "budget")
        self._drain_intent: dict[str, str] = {}
        self._followers: dict[str, JsonlFollower] = {}
        self._started_at: dict[str, float] = {}
        self._stop = threading.Event()
        self._tick_thread: threading.Thread | None = None
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Recover the registry, bind the socket, start the tick loop."""
        healed = self.registry.recover()
        self.registry.journal(
            "service_start", pid=os.getpid(),
            workers=self.ledger.total, launcher=self.launcher.name,
            recovered=[{"run": rid, "state": state}
                       for rid, state in healed],
        )
        path = socket_path(self.root)
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="svc-accept", daemon=True)
        self._accept_thread.start()
        self._tick_thread = threading.Thread(
            target=self._tick_loop, name="svc-tick", daemon=True)
        self._tick_thread.start()

    def serve_forever(self) -> None:
        """start() then block until a ``shutdown`` request lands."""
        self.start()
        try:
            while not self._stop.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        self.shutdown()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop scheduling; drain (or kill) live runs; close the socket."""
        self._stop.set()
        with self._lock:
            for run_id, handle in list(self._handles.items()):
                if drain:
                    self._drain_intent.setdefault(run_id, "preempt")
                    handle.preempt("service shutdown")
                else:
                    handle.kill()
        deadline = time.monotonic() + timeout
        while self._handles and time.monotonic() < deadline:
            self._tick()
            time.sleep(self.tick_interval)
        with self._lock:
            # handles still alive at the deadline get an unambiguous
            # journal trail and their leases back: drain_timeout, hard
            # kill, explicit release, and a requeue-or-preempt record
            for run_id, handle in list(self._handles.items()):
                self.registry.journal("drain_timeout", run=run_id,
                                      timeout=float(timeout))
                handle.kill()
                self.ledger.release(run_id)
                self._followers.pop(run_id, None)
                self._drain_intent.pop(run_id, None)
                self._started_at.pop(run_id, None)
                self._run_meta.pop(run_id, None)
                if self._supervisor is not None:
                    self._supervisor.forget(run_id)
                has_checkpoint = CheckpointPolicy.latest(
                    self.registry.controller_dir(run_id)) is not None
                next_state = (reg.PREEMPTED if has_checkpoint
                              else reg.QUEUED)
                try:
                    self.registry.transition(
                        run_id, next_state,
                        note="killed at shutdown drain deadline")
                except (IllegalTransitionError, UnknownRunError):
                    pass
                del self._handles[run_id]
        if self._tick_thread is not None:
            self._tick_thread.join(timeout=5.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        try:
            os.unlink(socket_path(self.root))
        except FileNotFoundError:
            pass
        self.registry.journal("service_stop", pid=os.getpid(),
                              drained=drain)

    # ----------------------------------------------------------- tick loop
    def _tick_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception as exc:  # the daemon must outlive bad ticks
                self.registry.journal("tick_error", error=repr(exc))
            time.sleep(self.tick_interval)

    def _tick(self) -> None:
        with self._lock:
            self._multiplex_telemetry()
            self._supervise()
            self._reap()
            if not self._stop.is_set():
                self._schedule()

    # --------------------------------------------------- stall/budget watch
    def _supervise(self) -> None:
        """Heartbeat staleness + budget enforcement for live episodes.

        Non-blocking by construction: one heartbeat read per handle per
        tick, judged by the :class:`Supervisor` on the daemon's own
        clock.  An ``io_stall``-wedged worker simply stops beating — the
        tick loop itself never touches the stalled file.
        """
        if self._supervisor is None or self._stop.is_set():
            return
        policy = self._supervisor.policy
        now_wall = time.time()
        now_mono = time.monotonic()
        for run_id, handle in list(self._handles.items()):
            meta = self._run_meta.get(run_id)
            if meta is None:
                continue
            hb = read_heartbeat(self.registry.controller_dir(run_id))
            step = hb.get("step") if hb else None
            if isinstance(step, int):
                prev_step, prev_at = meta["hb_step"], meta["hb_at"]
                if prev_step is None or step > prev_step:
                    if prev_step is not None and step > prev_step:
                        per_step = (now_mono - prev_at) / (step - prev_step)
                        self.scheduler.calibrator.observe(
                            "step", 0, max(meta["cells"], 1),
                            per_step)
                    meta["hb_step"], meta["hb_at"] = step, now_mono
            budget_reason = None
            started = self._started_at.get(run_id)
            if meta["max_wall"] is not None and started is not None:
                wall_used = meta["wall0"] + (now_wall - started)
                if wall_used > meta["max_wall"]:
                    budget_reason = "budget_exceeded"
            if (budget_reason is None and meta["max_steps"] is not None
                    and isinstance(step, int)
                    and step > meta["max_steps"]):
                # the controller should have stopped itself; external
                # enforcement is for exactly the case where it didn't
                budget_reason = "budget_exceeded"
            rate = self.scheduler.calibrator.rate("step", 0)
            per_step_seconds = (None if rate is None
                                else rate * max(meta["cells"], 1))
            verdict = self._supervisor.check(
                run_id, hb, policy.deadline(per_step_seconds),
                budget_reason=budget_reason)
            if verdict is None:
                continue
            action, info = verdict
            if action == "drain":
                intent = ("budget" if info["reason"] == "budget_exceeded"
                          else "stall")
                self._drain_intent[run_id] = intent
                event = ("budget_exceeded" if intent == "budget"
                         else "stall_detected")
                self.registry.journal(event, run=run_id, **info)
                handle.preempt(info["reason"])
            elif action == "kill":
                self.registry.journal("supervisor_kill", run=run_id,
                                      **info)
                handle.kill()

    # ---------------------------------------------------------- supervision
    def _reap(self) -> None:
        for run_id, handle in list(self._handles.items()):
            result = handle.poll()
            if result is None:
                continue
            self._multiplex_telemetry(run_id)  # drain the final records
            del self._handles[run_id]
            self._followers.pop(run_id, None)
            self.ledger.release(run_id)
            intent = self._drain_intent.pop(run_id, None)
            started = self._started_at.pop(run_id, None)
            self._run_meta.pop(run_id, None)
            if self._supervisor is not None:
                self._supervisor.forget(run_id)
            wall = float(result.get("wall") or (
                time.time() - started if started else 0.0))
            try:
                record = self.registry.load(run_id)
            except UnknownRunError:
                continue
            self.scheduler.observe_run(record, wall)
            outcome = result.get("outcome", "failed")
            try:
                if intent in ("stall", "budget"):
                    self._reap_supervised(run_id, record, intent, result)
                elif outcome == "failed":
                    self.registry.transition(
                        run_id, reg.FAILED, result=result,
                        note=str(result.get("error", ""))[:500])
                    self.scheduler.forget(run_id)
                elif outcome == "preempted" and intent == "cancel":
                    self.registry.transition(
                        run_id, reg.CANCELLED, result=result,
                        note="cancelled while running")
                    self.scheduler.forget(run_id)
                elif outcome == "preempted":
                    self.registry.transition(
                        run_id, reg.PREEMPTED, result=result,
                        note=str(result.get("drain", "preempt")))
                else:
                    self.registry.transition(
                        run_id, reg.DONE, result=result)
                    self.scheduler.forget(run_id)
            except IllegalTransitionError as exc:
                self.registry.journal("reap_conflict", run=run_id,
                                      error=str(exc))

    def _reap_supervised(self, run_id: str, record, intent: str,
                         result: dict) -> None:
        """Registry bookkeeping for an episode the supervisor ended.

        ``budget`` quarantines immediately — re-running an over-budget
        run would just exceed the budget again.  ``stall`` walks the
        strike ladder: requeue with exponential backoff until the strike
        budget is exhausted, then quarantine so a poisoned run can never
        starve the queue.
        """
        policy = (self._supervisor.policy if self._supervisor is not None
                  else SupervisionPolicy())
        if result.get("outcome") == "done":
            # the episode finished in the window between the drain request
            # and the reap — completed work wins over the escalation
            self.registry.transition(run_id, reg.DONE, result=result)
            self.scheduler.forget(run_id)
            return
        if intent == "budget":
            self.registry.transition(
                run_id, reg.FAILED, result=result,
                note="budget_exceeded")
            self.scheduler.forget(run_id)
            return
        strikes = record.strikes + 1
        if strikes >= policy.max_strikes:
            self.registry.transition(
                run_id, reg.FAILED, result=result,
                note="stalled", strikes=strikes)
            self.registry.journal("quarantined", run=run_id,
                                  strikes=strikes,
                                  max_strikes=policy.max_strikes)
            self.scheduler.forget(run_id)
            return
        backoff = policy.backoff(strikes)
        not_before = time.time() + backoff
        has_checkpoint = CheckpointPolicy.latest(
            self.registry.controller_dir(run_id)) is not None
        next_state = reg.PREEMPTED if has_checkpoint else reg.QUEUED
        self.registry.transition(
            run_id, next_state, result=result,
            note=f"stalled (strike {strikes}/{policy.max_strikes})",
            strikes=strikes, not_before=not_before)
        self.registry.journal("stall_requeue", run=run_id,
                              strikes=strikes,
                              backoff_seconds=round(backoff, 3),
                              resumable=has_checkpoint)

    def _multiplex_telemetry(self, only: str | None = None) -> None:
        run_ids = [only] if only is not None else list(self._handles)
        for run_id in run_ids:
            follower = self._followers.get(run_id)
            if follower is None:
                follower = self._followers[run_id] = JsonlFollower(
                    os.path.join(self.registry.controller_dir(run_id),
                                 "telemetry.jsonl"))
            for record in follower.poll():
                self.registry.journal("run_telemetry", run=run_id,
                                      record=record)

    # ----------------------------------------------------------- scheduling
    def _schedule(self) -> None:
        records = self.registry.list_runs()
        now = time.time()
        queued = [r for r in records
                  if r.state in (reg.QUEUED, reg.PREEMPTED)
                  and r.run_id not in self._handles
                  and (r.not_before is None or r.not_before <= now)]
        running = [r for r in records if r.state == reg.RUNNING]
        decision = self.scheduler.decide(
            queued, running, self.ledger.total,
            draining=frozenset(self._drain_intent))
        for run_id in decision.preempt:
            handle = self._handles.get(run_id)
            if handle is None:
                continue
            self._drain_intent[run_id] = "preempt"
            handle.preempt("preempted by scheduler")
            self.registry.journal("preempt_requested", run=run_id)
        for run_id in decision.start:
            self._start_run(run_id)

    def _start_run(self, run_id: str) -> None:
        try:
            record = self.registry.load(run_id)
            spec = self.registry.load_spec(run_id)
        except UnknownRunError:
            return
        workers = min(record.workers, self.ledger.total)
        try:
            self.ledger.lease(run_id, workers)
        except LedgerError as exc:
            self.registry.journal("lease_denied", run=run_id,
                                  error=str(exc))
            return
        try:
            record = self.registry.transition(run_id, reg.RUNNING)
        except IllegalTransitionError:
            self.ledger.release(run_id)  # cancelled between tick and apply
            return
        try:
            handle = self.launcher.launch(
                run_id, spec, self.registry.controller_dir(run_id),
                attempt=record.attempts)
        except Exception as exc:
            self.ledger.release(run_id)
            self.registry.transition(
                run_id, reg.FAILED,
                note=f"launch failed: {exc}",
                result={"outcome": "failed", "error": str(exc)})
            self.scheduler.forget(run_id)
            return
        self._handles[run_id] = handle
        self._started_at[run_id] = time.time()
        max_wall = spec.get("max_wall_seconds")
        max_steps = spec.get("max_steps")
        self._run_meta[run_id] = {
            "cells": int(record.cells),
            "max_steps": None if max_steps is None else int(max_steps),
            "max_wall": None if max_wall is None else float(max_wall),
            #: wall seconds already burned by earlier episodes
            "wall0": float(record.wall),
            "hb_step": None,
            "hb_at": time.monotonic(),
        }
        if self._supervisor is not None:
            self._supervisor.watch(run_id)

    # ------------------------------------------------------------- requests
    def handle_request(self, request: dict) -> dict:
        """Dispatch one decoded client request; always returns a reply."""
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid(),
                        "workers": self.ledger.snapshot()}
            if op == "submit":
                return self._op_submit(request)
            if op == "ps":
                return self._op_ps()
            if op == "cancel":
                return self._op_cancel(request)
            if op == "preempt":
                return self._op_preempt(request)
            if op == "logs":
                return self._op_logs(request)
            if op == "shutdown":
                self._stop.set()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except UnknownRunError as exc:
            return {"ok": False, "error": f"unknown run {exc.args[0]!r}"}
        except (IllegalTransitionError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}

    def _op_submit(self, request: dict) -> dict:
        spec = request.get("spec")
        if not isinstance(spec, dict):
            return {"ok": False, "error": "submit needs a spec object"}
        workers = int(request.get("workers", 1))
        if workers > self.ledger.total:
            return {"ok": False,
                    "error": f"workers {workers} exceeds service budget "
                             f"{self.ledger.total}"}
        record = self.registry.submit(
            spec,
            tenant=str(request.get("tenant", "default")),
            priority=int(request.get("priority", 0)),
            workers=workers,
        )
        return {"ok": True, "run": record.run_id, "state": record.state}

    def _op_ps(self) -> dict:
        runs = []
        records = self.registry.list_runs()
        now = time.time()
        schedulable = [r for r in records
                       if r.state in (reg.QUEUED, reg.PREEMPTED)
                       and r.run_id not in self._handles]
        positions = self.scheduler.queue_positions(schedulable)
        for record in records:
            entry = {
                "run": record.run_id, "state": record.state,
                "tenant": record.tenant, "priority": record.priority,
                "workers": record.workers, "attempts": record.attempts,
                "preemptions": record.preemptions,
                "strikes": record.strikes,
                "note": record.note,
            }
            if record.state in (reg.QUEUED, reg.PREEMPTED):
                pos = positions.get(record.run_id)
                if pos is not None:
                    entry["queue_position"] = pos
                if record.not_before is not None \
                        and record.not_before > now:
                    entry["held_seconds"] = round(
                        record.not_before - now, 3)
                est = self.scheduler.estimate_seconds(record)
                if est is not None:
                    entry["eta_seconds"] = round(est, 3)
            if record.state == reg.RUNNING:
                hb = read_heartbeat(
                    self.registry.controller_dir(record.run_id))
                age = heartbeat_age(hb, now=now)
                if age is not None:
                    entry["heartbeat_age_seconds"] = round(age, 3)
                if hb is not None:
                    if hb.get("step") is not None:
                        entry["heartbeat_step"] = hb["step"]
                    if hb.get("phase"):
                        entry["heartbeat_phase"] = hb["phase"]
            if record.result:
                entry["result"] = {
                    k: record.result[k]
                    for k in ("outcome", "steps", "recoveries",
                              "fingerprint")
                    if k in record.result
                }
            runs.append(entry)
        return {"ok": True, "runs": runs,
                "workers": self.ledger.snapshot()}

    def _op_cancel(self, request: dict) -> dict:
        run_id = str(request.get("run"))
        with self._lock:
            record = self.registry.load(run_id)
            if record.terminal:
                return {"ok": True, "run": run_id, "state": record.state}
            if record.state == reg.RUNNING:
                handle = self._handles.get(run_id)
                self._drain_intent[run_id] = "cancel"
                if handle is not None:
                    handle.preempt("cancel")
                return {"ok": True, "run": run_id, "state": reg.RUNNING,
                        "draining": True}
            record = self.registry.transition(
                run_id, reg.CANCELLED, note="cancelled by client")
            self.scheduler.forget(run_id)
        return {"ok": True, "run": run_id, "state": record.state}

    def _op_preempt(self, request: dict) -> dict:
        run_id = str(request.get("run"))
        with self._lock:
            record = self.registry.load(run_id)
            if record.state != reg.RUNNING:
                return {"ok": False,
                        "error": f"run {run_id} is {record.state}, "
                                 f"not RUNNING"}
            self._drain_intent[run_id] = "preempt"
            handle = self._handles.get(run_id)
            if handle is not None:
                handle.preempt("preempted by client")
        return {"ok": True, "run": run_id, "draining": True}

    def _op_logs(self, request: dict) -> dict:
        run_id = str(request.get("run"))
        self.registry.load(run_id)  # raises UnknownRunError
        path = os.path.join(self.registry.controller_dir(run_id),
                            "telemetry.jsonl")
        events: list = []
        if os.path.exists(path):
            events = read_events(path)
        n = int(request.get("n", 20))
        return {"ok": True, "run": run_id, "path": path,
                "total": len(events), "events": events[-n:]}

    # --------------------------------------------------------------- socket
    def _accept_loop(self) -> None:
        while not self._stop.is_set() and self._sock is not None:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            reader = conn.makefile("r", encoding="utf-8")
            writer = conn.makefile("w", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    reply = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    reply = self.handle_request(request)
                try:
                    writer.write(json.dumps(reply) + "\n")
                    writer.flush()
                except (BrokenPipeError, OSError):
                    return
