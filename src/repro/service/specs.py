"""Run specs: the JSON contract between clients, registry and workers.

A run spec is the complete, self-contained recipe for a run::

    {"problem": "collapse",            # or "simulation"
     "kwargs": {"n_root": 8, ...},     # constructor kwargs
     "z_end": 80.0,                    # collapse: stop redshift
     "t_end": 0.5,                     # simulation: stop time (code units)
     "max_steps": 40,                  # root-step budget (optional)
     "max_wall_seconds": 3600,         # wall budget, enforced daemon-side
     "checkpoint_every": 2,            # checkpoint cadence
     "keep_last": 3,                   # checkpoint retention
     "preset": "blob",                 # simulation: named initial state
     "preset_args": {"seed": 3},       #   (specs must be pure JSON)
     "faults": "nan_cell:level=0,...", # chaos gate (subprocess runs only)
     "fault_seed": 7}

The same :func:`build_job` serves the in-process launcher (scheduler
tests) and the ``repro service-worker`` subprocess (production path), so
a run preempted under one launcher resumes identically under the other:
whether to ``run()`` fresh or ``resume()`` is decided by the presence of
a loadable checkpoint pair in the run directory, exactly like the
operator-facing ``repro resume`` CLI.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.checkpoint_policy import CheckpointPolicy


class SpecError(ValueError):
    """A run spec the service cannot build a problem from."""


# ------------------------------------------------------------------ presets
def _preset_blob(sim, args: dict) -> None:
    """Self-gravitating Gaussian overdensity with a cold particle cloud —
    the small deterministic workload the runtime tests evolve."""
    amplitude = float(args.get("amplitude", 10.0))
    width = float(args.get("width", 0.01))
    centre = args.get("centre", (0.5, 0.5, 0.5))
    cx, cy, cz = (float(c) for c in centre)
    sim.set_density(lambda x, y, z: 1 + amplitude * np.exp(
        -((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2) / width))
    sim.set_field("internal", lambda x, y, z: np.full_like(
        x, float(args.get("internal", 0.05))))
    n_particles = int(args.get("n_particles", 0))
    if n_particles > 0:
        from repro.nbody.particles import ParticleSet

        rng = np.random.default_rng(int(args.get("seed", 3)))
        sim.hierarchy.particles = ParticleSet.from_arrays(
            rng.random((n_particles, 3)),
            0.01 * rng.standard_normal((n_particles, 3)),
            np.full(n_particles, 1e-3),
        )


PRESETS = {"blob": _preset_blob}


# -------------------------------------------------------------------- build
def checkpoint_policy_of(spec: dict) -> CheckpointPolicy:
    return CheckpointPolicy(
        every_steps=int(spec.get("checkpoint_every", 2)),
        keep_last=int(spec.get("keep_last", 3)),
    )


def build_job(spec: dict, run_dir: str):
    """Build ``(problem, controller, t_end)`` from a run spec.

    ``t_end`` is in code time, already resolved (for collapse specs, from
    ``z_end``).  Raises :class:`SpecError` on anything unbuildable.
    """
    problem_kind = spec.get("problem")
    kwargs = dict(spec.get("kwargs", {}))
    policy = checkpoint_policy_of(spec)
    if problem_kind == "collapse":
        from repro.perf import ComponentTimers
        from repro.problems import PrimordialCollapse

        z_end = spec.get("z_end")
        if z_end is None:
            raise SpecError("collapse spec needs z_end")
        problem = PrimordialCollapse(timers=ComponentTimers(), **kwargs)
        problem.initial_rebuild()
        controller = problem.make_controller(
            run_dir, z_end=float(z_end), policy=policy)
        return problem, controller, problem.code_time_of_redshift(
            float(z_end))
    if problem_kind == "simulation":
        from repro import Simulation, SimulationConfig

        t_end = spec.get("t_end")
        if t_end is None:
            raise SpecError("simulation spec needs t_end")
        kwargs["advected"] = tuple(kwargs.get("advected", ()))
        sim = Simulation(SimulationConfig(**kwargs))
        preset = spec.get("preset")
        if preset is not None:
            fn = PRESETS.get(preset)
            if fn is None:
                raise SpecError(
                    f"unknown preset {preset!r}; have {sorted(PRESETS)}")
            fn(sim, dict(spec.get("preset_args", {})))
        sim.initialize()
        controller = sim.make_controller(run_dir, policy=policy)
        return sim, controller, float(t_end)
    raise SpecError(
        f"spec problem must be 'collapse' or 'simulation', "
        f"got {problem_kind!r}"
    )


class RunJob:
    """One RUNNING episode of a registered run (fresh start or resume).

    Thin ownership wrapper: builds the problem/controller pair lazily in
    :meth:`execute` (construction does real work — initial conditions,
    hierarchy rebuild) but accepts :meth:`request_drain` at any time, so
    a preemption that lands during construction still drains at the first
    root-step boundary.
    """

    def __init__(self, spec: dict, run_dir: str):
        self.spec = dict(spec)
        self.run_dir = str(run_dir)
        self.controller = None
        self._drain_reason: str | None = None

    def request_drain(self, reason: str = "preempt") -> None:
        self._drain_reason = str(reason)
        if self.controller is not None:
            self.controller.request_drain(reason)

    def execute(self) -> dict:
        """Run to completion, budget, or drain; returns the result record.

        ``outcome`` is ``"done"`` (finished or hit the step budget),
        ``"preempted"`` (drained to checkpoint) or ``"failed"``; the
        hierarchy fingerprint is included so clients can compare a
        preempted-and-resumed trajectory against an uninterrupted one
        without reloading checkpoints.
        """
        from repro.runtime.recovery import RunFailedError
        from repro.runtime.supervision import HeartbeatWriter

        # liveness during construction: initial conditions + the first
        # hierarchy rebuild can take a while, and a worker that wedges
        # there must still look alive-then-stalled to the supervisor
        HeartbeatWriter(self.run_dir).beat(phase="build", force=True)
        problem, controller, t_end = build_job(self.spec, self.run_dir)
        self.controller = controller
        if self._drain_reason is not None:
            controller.request_drain(self._drain_reason)
        max_steps = self.spec.get("max_steps")
        fresh = CheckpointPolicy.latest(self.run_dir) is None
        try:
            if fresh:
                summary = controller.run(t_end, max_root_steps=max_steps)
            else:
                summary = controller.resume()
        except RunFailedError as exc:
            return {"outcome": "failed", "error": str(exc),
                    "steps": controller.step,
                    "recoveries": controller.recoveries}
        outcome = ("preempted" if summary["status"] == "interrupted"
                   else "done")
        result = {
            "outcome": outcome,
            "status": summary["status"],
            "steps": summary["steps"],
            "t": summary["t"],
            "recoveries": summary["recoveries"],
            "wall": summary["wall"],
            "fingerprint": controller.hierarchy.fingerprint(),
        }
        if "drain" in summary:
            result["drain"] = summary["drain"]
        if "signal" in summary:
            result["signal"] = summary["signal"]
        return result
