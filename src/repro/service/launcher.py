"""Run launchers: how the daemon turns a scheduling decision into work.

Two interchangeable strategies behind one handle interface:

:class:`SubprocessLauncher` (production default)
    Each RUNNING episode is a ``repro service-worker`` child process.
    Preemption sends SIGINT, which the controller's
    :class:`~repro.runtime.recovery.SignalGuard` turns into the standard
    drain-to-checkpoint at the next root-step boundary.  Isolation is
    structural: an injected ``worker_kill`` or ``checkpoint_truncate``
    inside one run can only touch that child's process tree and files,
    and per-run fault specs travel in the child's environment
    (``REPRO_FAULTS``), never the daemon's.

:class:`InProcessLauncher` (tests, embedding)
    Episodes run on daemon threads via
    :meth:`~repro.runtime.controller.RunController.request_drain` — the
    same drain path minus the signal, with no interpreter start-up cost,
    which is what makes the preempt/resume bitwise-identity tests cheap
    enough for tier 1.  Fault-carrying specs are refused: the injector is
    process-global, so in-process chaos would leak into co-scheduled runs
    — exactly the blast radius the service exists to prevent.

A handle's :meth:`poll` is non-blocking and returns the result record
once the episode ended; the daemon maps it onto registry transitions.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading

from repro.service.specs import RunJob

RESULT_NAME = "result.json"


def result_path(run_dir: str) -> str:
    """The worker's result drop next to (not inside) the controller dir."""
    return os.path.join(os.path.dirname(run_dir), RESULT_NAME)


class RunHandle:
    """Common interface over a live RUNNING episode."""

    run_id: str

    def poll(self) -> dict | None:
        """Result record once finished, else None (never blocks)."""
        raise NotImplementedError

    def preempt(self, reason: str = "preempt") -> None:
        """Ask the episode to drain to checkpoint and stop."""
        raise NotImplementedError

    def kill(self) -> None:
        """Hard-stop the episode (no drain); used on daemon shutdown."""
        raise NotImplementedError


# ----------------------------------------------------------------- threads
class InProcessHandle(RunHandle):
    def __init__(self, run_id: str, job: RunJob):
        self.run_id = run_id
        self.job = job
        self._result: dict | None = None
        self._thread = threading.Thread(
            target=self._main, name=f"svc-{run_id}", daemon=True)
        self._thread.start()

    def _main(self) -> None:
        try:
            self._result = self.job.execute()
        except Exception as exc:  # spec/build error: the run failed
            self._result = {"outcome": "failed", "error": repr(exc)}

    def poll(self) -> dict | None:
        if self._thread.is_alive():
            return None
        self._thread.join()
        return self._result

    def preempt(self, reason: str = "preempt") -> None:
        self.job.request_drain(reason)

    def kill(self) -> None:
        # no hard-stop for a thread: request the cooperative drain and
        # let the daemon's shutdown join with a timeout
        self.job.request_drain("shutdown")


class InProcessLauncher:
    """Run episodes on daemon threads (fast, shared interpreter)."""

    name = "inprocess"

    def launch(self, run_id: str, spec: dict, run_dir: str,
               attempt: int | None = None) -> RunHandle:
        if spec.get("faults"):
            raise ValueError(
                "fault-carrying specs need the subprocess launcher: the "
                "injector is process-global and would poison co-scheduled "
                "runs"
            )
        return InProcessHandle(run_id, RunJob(spec, run_dir))


# -------------------------------------------------------------- subprocess
class SubprocessHandle(RunHandle):
    def __init__(self, run_id: str, proc: subprocess.Popen, run_dir: str):
        self.run_id = run_id
        self.proc = proc
        self.run_dir = str(run_dir)

    def poll(self) -> dict | None:
        if self.proc.poll() is None:
            return None
        path = result_path(self.run_dir)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            # the child died before writing a result (OOM, SIGKILL, bug)
            return {
                "outcome": "failed",
                "error": f"worker exited {self.proc.returncode} "
                         f"without a result",
            }

    def preempt(self, reason: str = "preempt") -> None:
        try:
            self.proc.send_signal(signal.SIGINT)
        except (ProcessLookupError, OSError):
            pass  # already gone; poll() will reap it

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (ProcessLookupError, OSError):
            pass


class SubprocessLauncher:
    """One ``repro service-worker`` child per RUNNING episode."""

    name = "subprocess"

    def __init__(self, python: str | None = None):
        self.python = python or sys.executable

    def launch(self, run_id: str, spec: dict, run_dir: str,
               attempt: int | None = None) -> RunHandle:
        # a stale result from a previous episode must never be mistaken
        # for this episode's outcome if the worker dies before writing
        try:
            os.unlink(result_path(run_dir))
        except FileNotFoundError:
            pass
        env = dict(os.environ)
        # per-run chaos gate: fault specs are scoped to this child only
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_SEED", None)
        env.pop("REPRO_FAULT_ATTEMPT", None)
        if spec.get("faults"):
            env["REPRO_FAULTS"] = str(spec["faults"])
            if spec.get("fault_seed") is not None:
                env["REPRO_FAULTS_SEED"] = str(spec["fault_seed"])
        if attempt is not None:
            # which RUNNING episode this is (1-based) — lets `attempt=N`
            # fault sites fire in one episode but not its resume
            env["REPRO_FAULT_ATTEMPT"] = str(int(attempt))
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        proc = subprocess.Popen(
            [self.python, "-m", "repro", "service-worker",
             "--run-dir", run_dir,
             "--spec", os.path.join(os.path.dirname(run_dir), "spec.json")],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # daemon signals never hit workers
        )
        return SubprocessHandle(run_id, proc, run_dir)


def resolve_launcher(name_or_obj):
    """``"subprocess"`` | ``"inprocess"`` | a launcher instance."""
    if hasattr(name_or_obj, "launch"):
        return name_or_obj
    if name_or_obj in (None, "subprocess", "process"):
        return SubprocessLauncher()
    if name_or_obj in ("inprocess", "thread"):
        return InProcessLauncher()
    raise ValueError(f"unknown launcher {name_or_obj!r}")
