"""Periodic FFT Poisson solve on the root grid.

We invert the eigenvalues of the *discrete* 7-point Laplacian rather than
the continuum -k^2, so that ``laplacian(solve_periodic(S)) == S`` holds to
machine precision — the property the root-grid tests and the multigrid
cross-checks rely on.  (The difference is an O(dx^2) discretisation choice,
not an accuracy loss.)
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=32)
def _inverse_eigenvalues(shape: tuple, dx: float) -> np.ndarray:
    """Reciprocal eigenvalues of the 7-point Laplacian on the rfft grid.

    This is the solver's Green's function; it depends only on (shape, dx),
    both of which repeat every step for every live grid, so it is cached.
    The zero mode is set to 0 (projects out the source mean).  The array is
    frozen read-only because it is shared between calls.
    """
    n0, n1, n2 = shape
    kx = np.fft.fftfreq(n0)[:, None, None]
    ky = np.fft.fftfreq(n1)[None, :, None]
    kz = np.fft.rfftfreq(n2)[None, None, :]
    # eigenvalues of the 7-point Laplacian: -(2/dx^2) sum (1 - cos(2 pi f))
    eig = (
        -2.0
        / dx**2
        * (
            (1.0 - np.cos(2.0 * np.pi * kx))
            + (1.0 - np.cos(2.0 * np.pi * ky))
            + (1.0 - np.cos(2.0 * np.pi * kz))
        )
    )
    inv = np.zeros_like(eig)
    nonzero = eig != 0.0
    inv[nonzero] = 1.0 / eig[nonzero]
    inv.flags.writeable = False
    return inv


def solve_periodic(source: np.ndarray, dx: float) -> np.ndarray:
    """Solve del^2 phi = source with periodic boundaries.

    The source must have zero mean (a periodic Poisson problem is only
    solvable up to that compatibility condition); any residual mean is
    projected out, which for cosmology is exactly the usual rho - rho_bar.
    Returns phi with zero mean.
    """
    if source.ndim != 3:
        raise ValueError("expected a 3-d source")
    inv = _inverse_eigenvalues(source.shape, float(dx))
    phi_hat = np.fft.rfftn(source) * inv  # zero mode annihilated by inv
    return np.fft.irfftn(phi_hat, s=source.shape, axes=(0, 1, 2))


def gravity_source(
    total_density: np.ndarray, g_code: float, a: float = 1.0
) -> np.ndarray:
    """Right-hand side of the comoving Poisson equation.

    del^2_x phi = (4 pi G / a) (rho - rho_bar) in code units, with rho the
    *total* (gas + dark matter) comoving density.  The mean is subtracted
    here (the periodic compatibility condition; physically, only
    fluctuations gravitate in the expanding background).
    """
    rho_bar = float(total_density.mean())
    return 4.0 * np.pi * g_code / a * (total_density - rho_bar)
