"""Multigrid relaxation for subgrid Poisson problems (Dirichlet boundaries).

The paper: "On subgrids, we interpolate the gravitational potential field
and then solve the Poisson equation using a traditional multi-grid
relaxation technique."

Geometric V-cycles with red-black Gauss–Seidel smoothing, full-weighting
restriction and trilinear prolongation.  The solution array carries a
one-cell Dirichlet rim holding the boundary values interpolated from the
parent grid (and corrected by sibling exchange at the AMR layer).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


@dataclass
class MultigridDiagnostics:
    """What one :meth:`MultigridSolver.solve` call actually did.

    ``residual`` is the final relative L2 residual (vs the source norm);
    ``converged`` records whether it reached ``tol`` within ``cycles`` of
    the ``budget`` V-cycles allowed for the call.
    """

    cycles: int
    budget: int
    residual: float
    tol: float
    converged: bool

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "budget": self.budget,
            "residual": self.residual,
            "tol": self.tol,
            "converged": self.converged,
        }


class MultigridConvergenceError(RuntimeError):
    """The V-cycle budget ran out above tolerance (strict mode only).

    Carries the full :class:`MultigridDiagnostics` plus the best-effort
    rim-padded solution (``phi``) so callers can retry with a larger
    budget — or, as a last resort, accept the unconverged potential with
    the residual on record instead of silently.
    """

    def __init__(self, diagnostics: MultigridDiagnostics, phi: np.ndarray,
                 site=None):
        self.diagnostics = diagnostics
        self.phi = phi
        self.site = site
        where = f" at {site}" if site is not None else ""
        super().__init__(
            f"multigrid failed to converge{where}: relative residual "
            f"{diagnostics.residual:.3e} > tol {diagnostics.tol:.1e} after "
            f"{diagnostics.cycles}/{diagnostics.budget} V-cycles"
        )

#: red/black checkerboard masks per interior shape.  The V-cycle smooths
#: the same handful of shapes thousands of times per solve; rebuilding
#: ``np.indices`` each call dominated small-grid smoothing cost.  Masks are
#: immutable once built, so the cache is safe to share across threads.
_MASK_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_MASK_LOCK = threading.Lock()

#: per-thread scratch buffers (neighbor sum + scaled source) keyed by
#: interior shape — the AMR layer may run several solvers concurrently
#: under the exec engine's thread backend, so scratch must not be shared.
_SCRATCH = threading.local()


def _checkerboard(shape: tuple) -> tuple[np.ndarray, np.ndarray]:
    masks = _MASK_CACHE.get(shape)
    if masks is None:
        idx = np.indices(shape).sum(axis=0)
        red = (idx % 2) == 0
        with _MASK_LOCK:
            masks = _MASK_CACHE.setdefault(shape, (red, ~red))
    return masks


def _scratch_pair(shape: tuple) -> tuple[np.ndarray, np.ndarray]:
    bufs = getattr(_SCRATCH, "bufs", None)
    if bufs is None:
        bufs = _SCRATCH.bufs = {}
    pair = bufs.get(shape)
    if pair is None:
        pair = bufs[shape] = (np.empty(shape), np.empty(shape))
    return pair


def _redblack_smooth(phi: np.ndarray, source: np.ndarray, dx: float, sweeps: int) -> None:
    """Red-black Gauss-Seidel on the interior of a rim-padded array.

    The update arithmetic is kept bitwise identical to the naive
    expression ``((((phi_E + phi_W) + phi_N) + phi_S) + ...  - h2*source)
    / 6.0`` — only the temporaries are preallocated (per thread, per
    shape) and the checkerboard masks are cached per interior shape.
    """
    h2 = dx * dx
    shape = tuple(s - 2 for s in phi.shape)
    red, black = _checkerboard(shape)
    nb, hs = _scratch_pair(shape)
    np.multiply(source, h2, out=hs)
    core = (slice(1, -1),) * 3
    interior = phi[core]
    for _ in range(sweeps):
        for mask in (red, black):
            # left-associated neighbor sum, fused into the scratch buffer
            np.add(phi[2:, 1:-1, 1:-1], phi[:-2, 1:-1, 1:-1], out=nb)
            nb += phi[1:-1, 2:, 1:-1]
            nb += phi[1:-1, :-2, 1:-1]
            nb += phi[1:-1, 1:-1, 2:]
            nb += phi[1:-1, 1:-1, :-2]
            nb -= hs
            nb /= 6.0
            interior[mask] = nb[mask]


def _residual(phi: np.ndarray, source: np.ndarray, dx: float) -> np.ndarray:
    """r = source - del^2 phi on the interior (same shape as source)."""
    lap = (
        phi[2:, 1:-1, 1:-1]
        + phi[:-2, 1:-1, 1:-1]
        + phi[1:-1, 2:, 1:-1]
        + phi[1:-1, :-2, 1:-1]
        + phi[1:-1, 1:-1, 2:]
        + phi[1:-1, 1:-1, :-2]
        - 6.0 * phi[1:-1, 1:-1, 1:-1]
    ) / (dx * dx)
    return source - lap


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Average 2x2x2 blocks (dimensions assumed even)."""
    s = fine.shape
    return fine.reshape(s[0] // 2, 2, s[1] // 2, 2, s[2] // 2, 2).mean(axis=(1, 3, 5))


def _prolong_constant(coarse_err: np.ndarray, fine_shape) -> np.ndarray:
    """Piecewise-constant (injection) prolongation — the legacy operator."""
    return np.repeat(np.repeat(np.repeat(coarse_err, 2, 0), 2, 1), 2, 2)[
        : fine_shape[0], : fine_shape[1], : fine_shape[2]
    ]


def _prolong_axis(padded: np.ndarray, axis: int) -> np.ndarray:
    """Cell-centered linear interpolation along one axis (2x refinement).

    ``padded`` carries a one-cell rim along ``axis`` (the coarse error's
    homogeneous Dirichlet rim); the output drops that axis's rim and has
    twice the interior length.  Fine cell centers sit a quarter coarse
    cell off the coarse centers, so the weights are 3/4 near, 1/4 far.
    """
    b = np.moveaxis(padded, axis, 0)
    m = b.shape[0] - 2
    out = np.empty((2 * m,) + b.shape[1:])
    out[0::2] = 0.25 * b[0:m] + 0.75 * b[1:m + 1]
    out[1::2] = 0.75 * b[1:m + 1] + 0.25 * b[2:m + 2]
    return np.moveaxis(out, 0, axis)


def _prolong_into(coarse_padded: np.ndarray, fine_shape) -> np.ndarray:
    """Trilinear prolongation of the rim-padded coarse error.

    Separable: one cell-centered linear pass per axis, each consuming that
    axis's rim.  The rim holds the error's Dirichlet boundary values
    (zero on coarse error grids), so edge fine cells interpolate toward
    the boundary instead of copying the nearest coarse cell — this is the
    trilinear operator the module docstring promises, and it cuts the
    V-cycle count vs piecewise-constant injection.
    """
    out = coarse_padded
    for axis in range(3):
        out = _prolong_axis(out, axis)
    return out[: fine_shape[0], : fine_shape[1], : fine_shape[2]]


class MultigridSolver:
    """Reusable V-cycle solver for del^2 phi = source with a Dirichlet rim.

    Parameters
    ----------
    pre_sweeps, post_sweeps:
        Gauss-Seidel sweeps before/after coarse-grid correction.
    tol:
        Relative residual (L2, vs source L2) convergence target.
    max_cycles:
        V-cycle budget; small grids converge in a handful.
    min_size:
        Grids at or below this size are smoothed directly.
    prolongation:
        ``"trilinear"`` (default) interpolates the coarse-grid correction;
        ``"constant"`` is the legacy piecewise-constant injection (kept
        for comparison — it needs measurably more V-cycles).
    strict:
        When True, exhausting the V-cycle budget above tolerance raises
        :class:`MultigridConvergenceError` (carrying the diagnostics and
        the best-effort solution) instead of returning silently.  Default
        False preserves the legacy silent behaviour; per-call override via
        ``solve(..., strict=...)``.
    """

    def __init__(self, pre_sweeps: int = 3, post_sweeps: int = 3, tol: float = 1e-8,
                 max_cycles: int = 60, min_size: int = 4,
                 prolongation: str = "trilinear", strict: bool = False):
        if prolongation not in ("trilinear", "constant"):
            raise ValueError(f"unknown prolongation {prolongation!r}")
        self.pre = pre_sweeps
        self.post = post_sweeps
        self.tol = tol
        self.max_cycles = max_cycles
        self.min_size = min_size
        self.prolongation = prolongation
        self.strict = bool(strict)
        self.last_cycles = 0
        self.last_residual = np.inf
        self.last_diagnostics: MultigridDiagnostics | None = None

    def solve(self, source: np.ndarray, dx: float, boundary: np.ndarray,
              strict: bool | None = None, max_cycles: int | None = None,
              site=None, force_diverge: bool = False) -> np.ndarray:
        """Solve with the given rim-padded boundary/initial-guess array.

        ``boundary`` has shape ``source.shape + 2`` in every dimension; its
        rim cells are held fixed (Dirichlet) and its interior is the initial
        guess.  Returns the rim-padded solution (a copy).

        ``strict``/``max_cycles`` override the instance defaults for this
        call; ``site`` labels any raised error (e.g. ``(level, grid_id)``);
        ``force_diverge`` is the fault-injection hook — the cycles run but
        convergence is reported as never reached.
        """
        if boundary.shape != tuple(s + 2 for s in source.shape):
            raise ValueError("boundary must pad source by one cell per side")
        strict = self.strict if strict is None else bool(strict)
        budget = self.max_cycles if max_cycles is None else int(max_cycles)
        phi = boundary.astype(float).copy()
        norm = float(np.sqrt((source**2).mean())) or 1.0
        converged = False
        for cycle in range(1, budget + 1):
            self._vcycle(phi, source, dx)
            res = float(np.sqrt((_residual(phi, source, dx) ** 2).mean()))
            self.last_cycles = cycle
            self.last_residual = res / norm
            if res <= self.tol * norm and not force_diverge:
                converged = True
                break
            if strict and not np.isfinite(res):
                break  # NaN/Inf never converges; fail fast, don't burn budget
        self.last_diagnostics = MultigridDiagnostics(
            cycles=self.last_cycles, budget=budget,
            residual=self.last_residual, tol=self.tol, converged=converged,
        )
        if strict and not converged:
            raise MultigridConvergenceError(self.last_diagnostics, phi,
                                            site=site)
        return phi

    def _vcycle(self, phi: np.ndarray, source: np.ndarray, dx: float) -> None:
        shape = source.shape
        if min(shape) <= self.min_size or any(s % 2 for s in shape):
            _redblack_smooth(phi, source, dx, self.pre + self.post + 10)
            return
        _redblack_smooth(phi, source, dx, self.pre)
        res = _residual(phi, source, dx)
        coarse_src = _restrict(res)
        coarse_phi = np.zeros(tuple(s + 2 for s in coarse_src.shape))
        # recursively solve the error equation with homogeneous Dirichlet rim
        self._vcycle(coarse_phi, coarse_src, 2.0 * dx)
        if self.prolongation == "trilinear":
            err = _prolong_into(coarse_phi, shape)
        else:
            err = _prolong_constant(coarse_phi[1:-1, 1:-1, 1:-1], shape)
        phi[1:-1, 1:-1, 1:-1] += err
        _redblack_smooth(phi, source, dx, self.post)


def solve_dirichlet(source: np.ndarray, dx: float, boundary: np.ndarray,
                    tol: float = 1e-8) -> np.ndarray:
    """One-shot convenience wrapper around :class:`MultigridSolver`."""
    return MultigridSolver(tol=tol).solve(source, dx, boundary)
