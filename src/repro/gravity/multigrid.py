"""Multigrid relaxation for subgrid Poisson problems (Dirichlet boundaries).

The paper: "On subgrids, we interpolate the gravitational potential field
and then solve the Poisson equation using a traditional multi-grid
relaxation technique."

Geometric V-cycles with red-black Gauss–Seidel smoothing, full-weighting
restriction and trilinear prolongation.  The solution array carries a
one-cell Dirichlet rim holding the boundary values interpolated from the
parent grid (and corrected by sibling exchange at the AMR layer).
"""

from __future__ import annotations

import numpy as np


def _redblack_smooth(phi: np.ndarray, source: np.ndarray, dx: float, sweeps: int) -> None:
    """Red-black Gauss-Seidel on the interior of a rim-padded array."""
    h2 = dx * dx
    # checkerboard masks over the interior
    shape = tuple(s - 2 for s in phi.shape)
    idx = np.indices(shape).sum(axis=0)
    red = (idx % 2) == 0
    core = (slice(1, -1),) * 3
    for _ in range(sweeps):
        for mask in (red, ~red):
            nb = (
                phi[2:, 1:-1, 1:-1]
                + phi[:-2, 1:-1, 1:-1]
                + phi[1:-1, 2:, 1:-1]
                + phi[1:-1, :-2, 1:-1]
                + phi[1:-1, 1:-1, 2:]
                + phi[1:-1, 1:-1, :-2]
            )
            new = (nb - h2 * source) / 6.0
            interior = phi[core]
            interior[mask] = new[mask]


def _residual(phi: np.ndarray, source: np.ndarray, dx: float) -> np.ndarray:
    """r = source - del^2 phi on the interior (same shape as source)."""
    lap = (
        phi[2:, 1:-1, 1:-1]
        + phi[:-2, 1:-1, 1:-1]
        + phi[1:-1, 2:, 1:-1]
        + phi[1:-1, :-2, 1:-1]
        + phi[1:-1, 1:-1, 2:]
        + phi[1:-1, 1:-1, :-2]
        - 6.0 * phi[1:-1, 1:-1, 1:-1]
    ) / (dx * dx)
    return source - lap


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Average 2x2x2 blocks (dimensions assumed even)."""
    s = fine.shape
    return fine.reshape(s[0] // 2, 2, s[1] // 2, 2, s[2] // 2, 2).mean(axis=(1, 3, 5))


def _prolong_into(coarse_err: np.ndarray, fine_shape) -> np.ndarray:
    """Piecewise-constant prolongation of the coarse error (smoothing follows)."""
    return np.repeat(np.repeat(np.repeat(coarse_err, 2, 0), 2, 1), 2, 2)[
        : fine_shape[0], : fine_shape[1], : fine_shape[2]
    ]


class MultigridSolver:
    """Reusable V-cycle solver for del^2 phi = source with a Dirichlet rim.

    Parameters
    ----------
    pre_sweeps, post_sweeps:
        Gauss-Seidel sweeps before/after coarse-grid correction.
    tol:
        Relative residual (L2, vs source L2) convergence target.
    max_cycles:
        V-cycle budget; small grids converge in a handful.
    min_size:
        Grids at or below this size are smoothed directly.
    """

    def __init__(self, pre_sweeps: int = 3, post_sweeps: int = 3, tol: float = 1e-8,
                 max_cycles: int = 60, min_size: int = 4):
        self.pre = pre_sweeps
        self.post = post_sweeps
        self.tol = tol
        self.max_cycles = max_cycles
        self.min_size = min_size
        self.last_cycles = 0
        self.last_residual = np.inf

    def solve(self, source: np.ndarray, dx: float, boundary: np.ndarray) -> np.ndarray:
        """Solve with the given rim-padded boundary/initial-guess array.

        ``boundary`` has shape ``source.shape + 2`` in every dimension; its
        rim cells are held fixed (Dirichlet) and its interior is the initial
        guess.  Returns the rim-padded solution (a copy).
        """
        if boundary.shape != tuple(s + 2 for s in source.shape):
            raise ValueError("boundary must pad source by one cell per side")
        phi = boundary.astype(float).copy()
        norm = float(np.sqrt((source**2).mean())) or 1.0
        for cycle in range(1, self.max_cycles + 1):
            self._vcycle(phi, source, dx)
            res = float(np.sqrt((_residual(phi, source, dx) ** 2).mean()))
            self.last_cycles = cycle
            self.last_residual = res / norm
            if res <= self.tol * norm:
                break
        return phi

    def _vcycle(self, phi: np.ndarray, source: np.ndarray, dx: float) -> None:
        shape = source.shape
        if min(shape) <= self.min_size or any(s % 2 for s in shape):
            _redblack_smooth(phi, source, dx, self.pre + self.post + 10)
            return
        _redblack_smooth(phi, source, dx, self.pre)
        res = _residual(phi, source, dx)
        coarse_src = _restrict(res)
        coarse_phi = np.zeros(tuple(s + 2 for s in coarse_src.shape))
        # recursively solve the error equation with homogeneous Dirichlet rim
        self._vcycle(coarse_phi, coarse_src, 2.0 * dx)
        err = _prolong_into(coarse_phi[1:-1, 1:-1, 1:-1], shape)
        phi[1:-1, 1:-1, 1:-1] += err
        _redblack_smooth(phi, source, dx, self.post)


def solve_dirichlet(source: np.ndarray, dx: float, boundary: np.ndarray,
                    tol: float = 1e-8) -> np.ndarray:
    """One-shot convenience wrapper around :class:`MultigridSolver`."""
    return MultigridSolver(tol=tol).solve(source, dx, boundary)
