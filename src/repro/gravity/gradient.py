"""Finite-difference gradients and Laplacians for the gravity couplers."""

from __future__ import annotations

import numpy as np


def laplacian(phi: np.ndarray, dx: float, periodic: bool = True) -> np.ndarray:
    """7-point Laplacian.  Periodic wraps; otherwise the 1-cell rim is invalid."""
    out = -6.0 * phi.copy()
    if periodic:
        for axis in range(3):
            out += np.roll(phi, 1, axis=axis) + np.roll(phi, -1, axis=axis)
    else:
        out = np.zeros_like(phi)
        core = (slice(1, -1),) * 3
        out[core] = -6.0 * phi[core]
        for axis in range(3):
            lo = [slice(1, -1)] * 3
            hi = [slice(1, -1)] * 3
            lo[axis] = slice(0, -2)
            hi[axis] = slice(2, None)
            out[core] += phi[tuple(lo)] + phi[tuple(hi)]
    return out / dx**2


def acceleration_from_potential(
    phi: np.ndarray, dx: float, a: float = 1.0, periodic: bool = True
) -> np.ndarray:
    """Peculiar acceleration g = -grad(phi) / a (code units).

    Central differences; with ``periodic=False`` the 1-cell rim uses
    one-sided differences (subgrid potentials carry ghost values, so the
    rim never reaches the dynamics).
    """
    g = np.empty((3,) + phi.shape)
    for axis in range(3):
        if periodic:
            g[axis] = -(np.roll(phi, -1, axis=axis) - np.roll(phi, 1, axis=axis)) / (
                2.0 * dx * a
            )
        else:
            g[axis] = -np.gradient(phi, dx, axis=axis) / a
    return g
