"""Poisson solvers for the self-gravity of gas + dark matter (paper Sec. 3.3).

"On the root grid, this is done with an FFT which naturally provides the
periodic boundary conditions required.  On subgrids, we interpolate the
gravitational potential field and then solve the Poisson equation using a
traditional multi-grid relaxation technique."

This package is purely numerical (arrays in, arrays out); the AMR layer
(:mod:`repro.amr.gravity`) owns the hierarchy orchestration and the
iterative sibling-boundary exchange.
"""

from repro.gravity.fft_poisson import solve_periodic, gravity_source
from repro.gravity.multigrid import (
    MultigridConvergenceError,
    MultigridDiagnostics,
    MultigridSolver,
    solve_dirichlet,
)
from repro.gravity.gradient import acceleration_from_potential, laplacian

__all__ = [
    "solve_periodic",
    "gravity_source",
    "MultigridConvergenceError",
    "MultigridDiagnostics",
    "MultigridSolver",
    "solve_dirichlet",
    "acceleration_from_potential",
    "laplacian",
]
