"""Collapsed-object finding and derived diagnostics (paper Sec. 6).

"These routines facilitate finding collapsed objects and other regions of
interest ... to derived quantities like cooling times, two-body relaxation
times, X-ray luminosities and inertial tensors."
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro import constants as const


def find_clumps(hierarchy, overdensity: float = 5.0, level: int = 0) -> list[dict]:
    """Connected overdense regions on one level's composite data.

    Returns one dict per clump: cell count, total gas mass (code),
    centre-of-mass position, peak density.
    """
    grids = hierarchy.level_grids(level)
    clumps = []
    for g in grids:
        rho = g.field_view("density")
        labels, n = ndimage.label(rho > overdensity)
        for i in range(1, n + 1):
            sel = labels == i
            mass = rho[sel].sum() * g.dx**3
            idx = np.argwhere(sel)
            com_w = rho[sel]
            com = (
                (g.start_index + idx + 0.5) * g.dx * com_w[:, None]
            ).sum(axis=0) / com_w.sum()
            clumps.append(
                {
                    "n_cells": int(sel.sum()),
                    "gas_mass": float(mass),
                    "position": com,
                    "peak_density": float(rho[sel].max()),
                    "level": level,
                }
            )
    return sorted(clumps, key=lambda c: -c["gas_mass"])


def freefall_time(density_cgs) -> np.ndarray:
    """t_ff = sqrt(3 pi / (32 G rho)) in seconds."""
    rho = np.maximum(np.asarray(density_cgs, dtype=float), 1e-300)
    return np.sqrt(3.0 * np.pi / (32.0 * const.GRAVITATIONAL_CONSTANT * rho))


def cooling_time(n: dict, temperature, rho_cgs, z: float = 0.0) -> np.ndarray:
    """t_cool = (3/2) n_tot k T / Lambda, in seconds."""
    from repro.chemistry.cooling import cooling_rate
    from repro.chemistry.species import SPECIES_NAMES

    n_tot = sum(n[s] for s in SPECIES_NAMES)
    thermal = 1.5 * n_tot * const.BOLTZMANN_CONSTANT * np.asarray(temperature)
    lam = np.maximum(cooling_rate(n, temperature, z), 1e-300)
    return thermal / lam


def two_body_relaxation_time(n_particles: int, crossing_time: float) -> float:
    """t_relax ~ (N / 8 ln N) t_cross — flags where particle noise matters."""
    n = max(int(n_particles), 2)
    return n / (8.0 * np.log(n)) * crossing_time


def inertia_tensor(positions, masses, centre=None) -> np.ndarray:
    """Second-moment tensor of a mass distribution (shape diagnostics)."""
    pos = np.asarray(positions, dtype=float)
    m = np.asarray(masses, dtype=float)
    if centre is None:
        centre = (pos * m[:, None]).sum(axis=0) / m.sum()
    d = pos - centre
    tensor = np.einsum("i,ij,ik->jk", m, d, d)
    return tensor / m.sum()


def axis_ratios(tensor: np.ndarray) -> tuple[float, float]:
    """b/a and c/a from the inertia tensor eigenvalues (sphericity check:
    the paper notes 'the protostar is still collapsing and not yet
    spherical')."""
    evals = np.sort(np.linalg.eigvalsh(tensor))[::-1]
    evals = np.maximum(evals, 1e-300)
    return float(np.sqrt(evals[1] / evals[0])), float(np.sqrt(evals[2] / evals[0]))


def xray_luminosity(ne_cgs, ni_cgs, temperature, volume_cm3) -> np.ndarray:
    """Bremsstrahlung X-ray luminosity, erg/s (hot-gas diagnostic)."""
    t = np.asarray(temperature, dtype=float)
    gff = 1.1 + 0.34 * np.exp(-((5.5 - np.log10(np.maximum(t, 1.0))) ** 2) / 3.0)
    emissivity = 1.43e-27 * np.sqrt(t) * gff * np.asarray(ne_cgs) * np.asarray(ni_cgs)
    return emissivity * np.asarray(volume_cm3)
