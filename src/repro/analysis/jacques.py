"""Jacques: the hierarchy navigator (paper Sec. 6).

"To allow interactive exploration of the full data sets ... we developed
Jacques, a GUI-based visualization tool which allows simultaneous
interactive analysis of tens of thousands of grids of the AMR hierarchy on
modest memory machines. ... (Jacques has a 'zoom in by 1e10 button'!)"

This is the programmatic equivalent: a stateful navigator holding a centre
and a field-of-view over a hierarchy, with zoom/pan/slice/projection/
profile verbs.  The original was IDL + GUI; the navigation semantics are
what the paper describes, and they are what this class reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.profiles import find_densest_point, radial_profiles
from repro.analysis.projections import ascii_render, column_density, composite_slice


class Jacques:
    """Stateful explorer of one hierarchy.

    State: ``centre`` (box units), ``width`` (field of view), ``axis``
    (slice normal).  All verbs return data; ``render()`` returns an ASCII
    view for terminal use.
    """

    def __init__(self, hierarchy, resolution: int = 32):
        self.hierarchy = hierarchy
        self.centre = np.array([0.5, 0.5, 0.5])
        self.width = 1.0
        self.axis = 2
        self.resolution = int(resolution)

    # ------------------------------------------------------------ navigation
    def goto(self, centre) -> "Jacques":
        self.centre = np.asarray(centre, dtype=float) % 1.0
        return self

    def goto_densest(self) -> "Jacques":
        """Navigate to the densest point (the needle in the haystack)."""
        return self.goto(find_densest_point(self.hierarchy))

    def zoom_in(self, factor: float = 10.0) -> "Jacques":
        """The 'zoom in by NNN button'."""
        self.width /= float(factor)
        return self

    def zoom_out(self, factor: float = 10.0) -> "Jacques":
        self.width = min(self.width * float(factor), 1.0)
        return self

    def pan(self, du: float, dv: float) -> "Jacques":
        """Shift the view in-plane by fractions of the current width."""
        in_plane = [d for d in range(3) if d != self.axis]
        self.centre[in_plane[0]] = (self.centre[in_plane[0]] + du * self.width) % 1.0
        self.centre[in_plane[1]] = (self.centre[in_plane[1]] + dv * self.width) % 1.0
        return self

    def look_along(self, axis: int) -> "Jacques":
        self.axis = int(axis) % 3
        return self

    # ----------------------------------------------------------------- views
    def _in_plane_centre(self):
        in_plane = [d for d in range(3) if d != self.axis]
        return (float(self.centre[in_plane[0]]), float(self.centre[in_plane[1]]))

    def slice(self, field: str = "density") -> np.ndarray:
        return composite_slice(
            self.hierarchy, field, self.axis, float(self.centre[self.axis]),
            self._in_plane_centre(), self.width, self.resolution,
        )

    def projection(self, field: str = "density", samples: int = 32) -> np.ndarray:
        """Line-of-sight integral through the view (surface density)."""
        return column_density(
            self.hierarchy, field, self.axis, self._in_plane_centre(),
            self.width, self.resolution, samples,
        )

    def velocity_slice(self) -> tuple[np.ndarray, np.ndarray]:
        """In-plane velocity components on the current view."""
        in_plane = [d for d in range(3) if d != self.axis]
        names = ("vx", "vy", "vz")
        u = composite_slice(self.hierarchy, names[in_plane[0]], self.axis,
                            float(self.centre[self.axis]),
                            self._in_plane_centre(), self.width, self.resolution)
        v = composite_slice(self.hierarchy, names[in_plane[1]], self.axis,
                            float(self.centre[self.axis]),
                            self._in_plane_centre(), self.width, self.resolution)
        return u, v

    def profile(self, nbins: int = 16, **kw) -> dict:
        return radial_profiles(
            self.hierarchy, centre=self.centre, nbins=nbins,
            rmax=max(self.width / 2, 1e-6), **kw,
        )

    def render(self, field: str = "density") -> str:
        header = (
            f"Jacques @ {np.round(self.centre, 5).tolist()} "
            f"width={self.width:g} axis={'xyz'[self.axis]}"
        )
        return header + "\n" + ascii_render(self.slice(field))

    def status(self) -> dict:
        h = self.hierarchy
        finest = h.finest_grid_at(self.centre)
        return {
            "centre": self.centre.copy(),
            "width": self.width,
            "finest_level_here": finest.level,
            "n_grids": h.n_grids,
            "max_level": h.max_level,
            "sdr": h.spatial_dynamic_range(),
        }
