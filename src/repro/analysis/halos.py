"""Dark-matter halo finding (paper Sec. 6: "finding collapsed objects").

Two standard finders over the particle set:

* friends-of-friends (FoF) with the usual linking length b ~ 0.2 of the
  mean interparticle spacing, grid-bucketed so it stays O(N) at these
  particle counts;
* spherical overdensity (SO): grow spheres around density peaks until the
  enclosed mean density falls to Delta_vir times the mean (18 pi^2 for the
  EdS top-hat, :mod:`repro.cosmology.tophat`).
"""

from __future__ import annotations

import numpy as np

from repro.cosmology.tophat import VIRIAL_OVERDENSITY


def _positions(particles) -> np.ndarray:
    return particles.positions.hi + particles.positions.lo


def friends_of_friends(particles, linking_length: float | None = None,
                       min_members: int = 8) -> list[dict]:
    """FoF groups in the periodic unit box.

    ``linking_length`` defaults to 0.2 * n^-1/3.  Returns one dict per
    group (members >= min_members): particle indices, mass, centre of
    mass, velocity dispersion.
    """
    n = len(particles)
    if n == 0:
        return []
    pos = _positions(particles) % 1.0
    if linking_length is None:
        linking_length = 0.2 * n ** (-1.0 / 3.0)
    b = float(linking_length)

    # bucket by cells of size >= b so neighbours are within adjacent cells
    n_cells = max(int(1.0 / b), 1)
    cell_size = 1.0 / n_cells
    cell_idx = np.minimum((pos / cell_size).astype(int), n_cells - 1)
    cell_key = (cell_idx[:, 0] * n_cells + cell_idx[:, 1]) * n_cells + cell_idx[:, 2]
    order = np.argsort(cell_key)
    keys_sorted = cell_key[order]
    starts = np.searchsorted(keys_sorted, np.arange(n_cells**3))

    # union-find
    parent = np.arange(n)

    def find(i):
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(i, j):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    b2 = b * b
    offsets = [np.array(o) for o in np.ndindex(3, 3, 3)]
    for ci in range(n_cells**3):
        lo = starts[ci]
        hi = starts[ci + 1] if ci + 1 < n_cells**3 else n
        if lo >= hi:
            continue
        mine = order[lo:hi]
        cz = ci % n_cells
        cy = (ci // n_cells) % n_cells
        cx = ci // (n_cells * n_cells)
        neigh_list = [mine]
        for off in offsets:
            if np.all(off == 1):
                continue
            nx = (cx + off[0] - 1) % n_cells
            ny = (cy + off[1] - 1) % n_cells
            nz = (cz + off[2] - 1) % n_cells
            cj = (nx * n_cells + ny) * n_cells + nz
            if cj <= ci:
                continue  # each pair of cells handled once
            lo2 = starts[cj]
            hi2 = starts[cj + 1] if cj + 1 < n_cells**3 else n
            if lo2 < hi2:
                neigh_list.append(order[lo2:hi2])
        base = neigh_list[0]
        for group in neigh_list:
            # pairwise distances (small buckets)
            d = pos[base][:, None, :] - pos[group][None, :, :]
            d -= np.round(d)
            close = (d**2).sum(axis=2) < b2
            ii, jj = np.nonzero(close)
            for a_, b_ in zip(base[ii], group[jj]):
                if a_ != b_:
                    union(int(a_), int(b_))

    roots = np.array([find(i) for i in range(n)])
    groups = []
    for root in np.unique(roots):
        members = np.nonzero(roots == root)[0]
        if len(members) < min_members:
            continue
        m = particles.masses[members]
        p = pos[members]
        # unwrap around the first member for a sensible centre of mass
        d = p - p[0]
        d -= np.round(d)
        com = (p[0] + (d * m[:, None]).sum(axis=0) / m.sum()) % 1.0
        vel = particles.velocities[members]
        vbar = (vel * m[:, None]).sum(axis=0) / m.sum()
        disp = np.sqrt((m * ((vel - vbar) ** 2).sum(axis=1)).sum() / m.sum())
        groups.append({
            "members": members,
            "n_members": int(len(members)),
            "mass": float(m.sum()),
            "position": com,
            "velocity_dispersion": float(disp),
        })
    return sorted(groups, key=lambda g: -g["mass"])


def spherical_overdensity(particles, centre, overdensity: float = VIRIAL_OVERDENSITY,
                          mean_density: float = 1.0, r_max: float = 0.5) -> dict:
    """SO halo about a centre: R_vir where <rho(<R)> = Delta * mean.

    Returns radius, enclosed mass, and member count (empty halo -> radius 0).
    """
    pos = _positions(particles)
    d = pos - np.asarray(centre)
    d -= np.round(d)
    r = np.sqrt((d**2).sum(axis=1))
    order = np.argsort(r)
    r_sorted = r[order]
    m_cum = np.cumsum(particles.masses[order])
    with np.errstate(divide="ignore", invalid="ignore"):
        mean_within = m_cum / (4.0 / 3.0 * np.pi * np.maximum(r_sorted, 1e-12) ** 3)
    target = overdensity * mean_density
    inside = (mean_within >= target) & (r_sorted <= r_max)
    if not inside.any():
        return {"radius": 0.0, "mass": 0.0, "n_members": 0}
    last = np.nonzero(inside)[0][-1]
    return {
        "radius": float(r_sorted[last]),
        "mass": float(m_cum[last]),
        "n_members": int(last + 1),
    }
