"""Phase diagrams: mass-weighted rho-T (and friends) histograms.

The classic way to read a multiphase simulation: where does the mass live
in density-temperature space?  The paper's narrative (cooling gas settling
behind the accretion shock, the cold 200 K "molecular cloud" core, the
adiabatic heating of the centre) is exactly a trajectory in this plane.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.analysis.profiles import _gather_cells


def phase_diagram(hierarchy, units=None, a: float = 1.0,
                  x_field: str = "density", y_field: str = "temperature",
                  bins: int = 32, x_range=None, y_range=None) -> dict:
    """Mass-weighted 2-d histogram over the composite solution.

    ``x_field``/``y_field``: 'density' | 'number_density' | 'temperature' |
    'specific_energy' | any raw grid field.  With ``units`` given,
    'number_density' is in cm^-3 and 'temperature' in K.
    Returns dict with 'x_edges', 'y_edges' (log10 space) and 'mass' (2-d).
    """
    data = _gather_cells(hierarchy, ["density", "internal"])
    mass = data["density"] * data["volume"]

    def resolve(name):
        if name == "density":
            return data["density"]
        if name == "specific_energy":
            return data["internal"]
        if name == "number_density":
            if units is None:
                raise ValueError("number_density needs units")
            return units.number_density_cgs(data["density"], a, const.MU_NEUTRAL)
        if name == "temperature":
            if units is None:
                raise ValueError("temperature needs units")
            return units.temperature_from_energy(data["internal"], const.MU_NEUTRAL, a)
        extra = _gather_cells(hierarchy, [name])
        return extra[name]

    x = np.log10(np.maximum(resolve(x_field), 1e-300))
    y = np.log10(np.maximum(resolve(y_field), 1e-300))
    if x_range is None:
        x_range = (x.min() - 1e-6, x.max() + 1e-6)
    if y_range is None:
        y_range = (y.min() - 1e-6, y.max() + 1e-6)
    hist, x_edges, y_edges = np.histogram2d(
        x, y, bins=bins, range=[x_range, y_range], weights=mass
    )
    return {
        "mass": hist,
        "x_edges": x_edges,
        "y_edges": y_edges,
        "x_field": x_field,
        "y_field": y_field,
        "total_mass": float(mass.sum()),
    }


def phase_summary(diagram: dict) -> dict:
    """Mass-weighted means/spreads of both axes (log10 space)."""
    m = diagram["mass"]
    xc = 0.5 * (diagram["x_edges"][:-1] + diagram["x_edges"][1:])
    yc = 0.5 * (diagram["y_edges"][:-1] + diagram["y_edges"][1:])
    total = max(m.sum(), 1e-300)
    x_mean = float((m.sum(axis=1) * xc).sum() / total)
    y_mean = float((m.sum(axis=0) * yc).sum() / total)
    x_var = float((m.sum(axis=1) * (xc - x_mean) ** 2).sum() / total)
    y_var = float((m.sum(axis=0) * (yc - y_mean) ** 2).sum() / total)
    return {
        "log_x_mean": x_mean,
        "log_y_mean": y_mean,
        "log_x_std": float(np.sqrt(x_var)),
        "log_y_std": float(np.sqrt(y_var)),
        "mass_fraction_in_peak_bin": float(m.max() / total),
    }
