"""Analysis tools (paper Sec. 4 and Sec. 6).

The paper's analysis pipeline "range[s] from computing direct
hydrodynamical quantities, such as temperatures and densities, to derived
quantities like cooling times, two-body relaxation times, X-ray
luminosities and inertial tensors", plus the "Jacques" zoom navigator used
for Fig. 3.  Here:

* :mod:`repro.analysis.profiles`    — densest-point finding and
  mass-weighted spherical radial profiles (Fig. 4 panels A-E).
* :mod:`repro.analysis.projections` — composite slices through the
  hierarchy at arbitrary resolution, and the x10 zoom stack (Fig. 3).
* :mod:`repro.analysis.clumps`      — collapsed-object finding and the
  derived quantities above.
"""

from repro.analysis.profiles import find_densest_point, radial_profiles, enclosed_mass_profile
from repro.analysis.projections import column_density, composite_slice, zoom_stack
from repro.analysis.clumps import find_clumps, cooling_time, freefall_time, inertia_tensor, xray_luminosity
from repro.analysis.jacques import Jacques
from repro.analysis.halos import friends_of_friends, spherical_overdensity
from repro.analysis.phase import phase_diagram, phase_summary

__all__ = [
    "find_densest_point",
    "radial_profiles",
    "enclosed_mass_profile",
    "column_density",
    "composite_slice",
    "zoom_stack",
    "find_clumps",
    "cooling_time",
    "freefall_time",
    "inertia_tensor",
    "xray_luminosity",
    "Jacques",
    "friends_of_friends",
    "spherical_overdensity",
    "phase_diagram",
    "phase_summary",
]
