"""Mass-weighted spherical radial profiles about the densest point (Fig. 4).

"Although the cloud and protostar are not spherical, it is instructive to
plot radial profiles of mass-weighted spherical averages of various
quantities" — panels A (number density), B (enclosed gas mass), C (H2/HI
mass fractions), D (temperature), E (radial velocity & sound speed).

Profiles always use the *finest available* data: each grid contributes only
its cells not covered by children, so the composite is exactly the solution
the hierarchy represents.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const


def find_densest_point(hierarchy) -> np.ndarray:
    """Position (box units) of the densest cell on the finest data."""
    best_rho = -np.inf
    best_pos = np.array([0.5, 0.5, 0.5])
    for level in range(hierarchy.max_level, -1, -1):
        for g in hierarchy.level_grids(level):
            covered = hierarchy.covering_mask(g)
            rho = g.field_view("density").copy()
            rho[covered] = -np.inf
            idx = np.unravel_index(np.argmax(rho), rho.shape)
            if rho[idx] > best_rho:
                best_rho = rho[idx]
                best_pos = (g.start_index + np.array(idx) + 0.5) * g.dx
        if np.isfinite(best_rho):
            # densest uncovered cell on the finest level wins outright
            return best_pos
    return best_pos


def _gather_cells(hierarchy, fields_wanted):
    """Flatten the composite solution into per-cell arrays.

    Returns dict with 'pos' (n,3), 'volume', plus requested field values.
    """
    out = {name: [] for name in fields_wanted}
    pos_list, vol_list = [], []
    for g in hierarchy.all_grids():
        covered = hierarchy.covering_mask(g)
        keep = ~covered
        if not keep.any():
            continue
        centres = np.meshgrid(*g.cell_centres(), indexing="ij")
        pos = np.stack([c[keep] for c in centres], axis=-1)
        pos_list.append(pos)
        vol_list.append(np.full(keep.sum(), g.dx**3))
        for name in fields_wanted:
            out[name].append(g.field_view(name)[keep])
    result = {name: np.concatenate(v) for name, v in out.items()}
    result["pos"] = np.concatenate(pos_list)
    result["volume"] = np.concatenate(vol_list)
    return result


def radial_profiles(hierarchy, centre=None, nbins: int = 24,
                    rmin: float | None = None, rmax: float = 0.5,
                    units=None, a: float = 1.0,
                    species: bool = False) -> dict:
    """Mass-weighted spherical profiles about ``centre`` (default: densest).

    Returns a dict of length-``nbins`` arrays (empty bins are NaN):

    ``radius`` (bin centres, box units), ``number_density`` (cm^-3 if
    ``units`` given else code), ``enclosed_gas_mass``, ``temperature``,
    ``radial_velocity``, ``sound_speed``, and with ``species=True`` the
    ``f_H2`` / ``f_HI`` mass fractions — i.e. every quantity in Fig. 4.
    """
    if centre is None:
        centre = find_densest_point(hierarchy)
    centre = np.asarray(centre, dtype=float)

    wanted = ["density", "internal", "vx", "vy", "vz"]
    if species:
        wanted += ["H2I", "HI"]
    data = _gather_cells(hierarchy, wanted)

    delta = data["pos"] - centre
    delta -= np.round(delta)  # periodic minimum image
    r = np.sqrt((delta**2).sum(axis=1))
    if rmin is None:
        finest_dx = 1.0 / (hierarchy.n_root * hierarchy.refine_factor**hierarchy.max_level)
        rmin = max(0.5 * finest_dx, 1e-12)
    edges = np.logspace(np.log10(rmin), np.log10(rmax), nbins + 1)
    which = np.digitize(r, edges) - 1

    mass = data["density"] * data["volume"]
    v_r = (delta * np.stack([data["vx"], data["vy"], data["vz"]], axis=-1)).sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        v_r = np.where(r > 0, v_r / np.maximum(r, 1e-300), 0.0)

    def bin_mass_weighted(q):
        num = np.bincount(which[(which >= 0) & (which < nbins)],
                          weights=(q * mass)[(which >= 0) & (which < nbins)],
                          minlength=nbins)
        den = np.bincount(which[(which >= 0) & (which < nbins)],
                          weights=mass[(which >= 0) & (which < nbins)],
                          minlength=nbins)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(den > 0, num / den, np.nan)

    sel = (which >= 0) & (which < nbins)
    vol_bin = np.bincount(which[sel], weights=data["volume"][sel], minlength=nbins)
    mass_bin = np.bincount(which[sel], weights=mass[sel], minlength=nbins)

    out = {
        "radius": np.sqrt(edges[:-1] * edges[1:]),
        "bin_edges": edges,
        "cell_count": np.bincount(which[sel], minlength=nbins),
        "density": np.where(vol_bin > 0, mass_bin / np.maximum(vol_bin, 1e-300), np.nan),
        "radial_velocity": bin_mass_weighted(v_r),
        "specific_energy": bin_mass_weighted(data["internal"]),
    }
    out["sound_speed"] = np.sqrt(
        const.GAMMA * (const.GAMMA - 1.0) * np.maximum(out["specific_energy"], 0.0)
    )
    # enclosed mass: cumulative including everything inside rmin
    inner = mass[r < edges[0]].sum()
    out["enclosed_gas_mass"] = inner + np.cumsum(np.nan_to_num(mass_bin))

    if species:
        with np.errstate(invalid="ignore", divide="ignore"):
            out["f_H2"] = bin_mass_weighted(data["H2I"] / np.maximum(data["density"], 1e-300))
            out["f_HI"] = bin_mass_weighted(data["HI"] / np.maximum(data["density"], 1e-300))

    if units is not None:
        mu = const.MU_NEUTRAL
        out["number_density"] = units.number_density_cgs(out["density"], a, mu)
        out["temperature"] = units.temperature_from_energy(out["specific_energy"], mu, a)
        out["radius_pc"] = out["radius"] * units.length_unit * a / const.PARSEC
        out["enclosed_gas_mass_msun"] = (
            out["enclosed_gas_mass"] * units.mass_unit / const.SOLAR_MASS
        )
        out["radial_velocity_kms"] = out["radial_velocity"] * units.velocity_unit / 1e5
        out["sound_speed_kms"] = out["sound_speed"] * units.velocity_unit / 1e5
    return out


def enclosed_mass_profile(hierarchy, centre=None, radii=None) -> tuple:
    """Enclosed gas mass at the given radii (box units)."""
    if centre is None:
        centre = find_densest_point(hierarchy)
    data = _gather_cells(hierarchy, ["density"])
    delta = data["pos"] - np.asarray(centre)
    delta -= np.round(delta)
    r = np.sqrt((delta**2).sum(axis=1))
    mass = data["density"] * data["volume"]
    if radii is None:
        radii = np.logspace(-3, np.log10(0.5), 16)
    enclosed = np.array([mass[r < rad].sum() for rad in radii])
    return np.asarray(radii), enclosed
