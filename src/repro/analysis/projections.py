"""Composite slices and the x10 zoom stack (Fig. 3 / the Jacques navigator).

"Each panel shows a slice of the logarithm of the gas density magnified by
a factor of ten relative to the previous frame" — and Jacques famously has
a "zoom in by 1e10 button".  :func:`zoom_stack` is that button.
"""

from __future__ import annotations

import numpy as np


def composite_slice(hierarchy, field: str = "density", axis: int = 2,
                    coord: float = 0.5, centre=(0.5, 0.5), width: float = 1.0,
                    resolution: int = 64) -> np.ndarray:
    """Sample a slice of the composite AMR solution onto a uniform image.

    Pixels take the value of the *finest* grid containing them (the
    composite solution in Fig. 1's sense).  ``axis`` is the normal;
    ``centre``/``width`` select the in-plane window (box units, periodic).
    """
    in_plane = [d for d in range(3) if d != axis]
    u = (np.arange(resolution) + 0.5) / resolution * width + centre[0] - width / 2
    v = (np.arange(resolution) + 0.5) / resolution * width + centre[1] - width / 2
    uu, vv = np.meshgrid(u % 1.0, v % 1.0, indexing="ij")
    points = np.zeros((resolution, resolution, 3))
    points[..., in_plane[0]] = uu
    points[..., in_plane[1]] = vv
    points[..., axis] = coord % 1.0

    image = np.full((resolution, resolution), np.nan)
    level_of = np.full((resolution, resolution), -1)
    for g in hierarchy.all_grids():
        inside = np.all(
            (points >= g.left_edge) & (points < g.right_edge), axis=-1
        )
        better = inside & (g.level > level_of)
        if not better.any():
            continue
        idx = np.floor(
            (points[better] - g.left_edge) / g.dx
        ).astype(int)
        idx = np.clip(idx, 0, np.asarray(g.dims) - 1)
        vals = g.field_view(field)[idx[:, 0], idx[:, 1], idx[:, 2]]
        image[better] = vals
        level_of[better] = g.level
    return image


def zoom_stack(hierarchy, centre=None, field: str = "density", axis: int = 2,
               n_frames: int = 4, zoom_factor: float = 10.0,
               resolution: int = 32) -> list[dict]:
    """Successive slices, each ``zoom_factor``x tighter (Fig. 3's frames).

    Returns one dict per frame: the image, its width, and summary stats
    (min/max of the field in frame).  Zooming stops adding information once
    the width falls below the finest cell — exactly like the real figure,
    frames are only produced while they still resolve structure.
    """
    from repro.analysis.profiles import find_densest_point

    if centre is None:
        centre = find_densest_point(hierarchy)
    centre = np.asarray(centre, dtype=float)
    in_plane = [d for d in range(3) if d != axis]
    frames = []
    width = 1.0
    for k in range(n_frames):
        img = composite_slice(
            hierarchy, field, axis, coord=float(centre[axis]),
            centre=(float(centre[in_plane[0]]), float(centre[in_plane[1]])),
            width=width, resolution=resolution,
        )
        finite = img[np.isfinite(img)]
        frames.append(
            {
                "image": img,
                "width": width,
                "log10_max": float(np.log10(finite.max())) if finite.size else np.nan,
                "log10_min": float(np.log10(max(finite.min(), 1e-300))) if finite.size else np.nan,
            }
        )
        width /= zoom_factor
    return frames


def column_density(hierarchy, field: str = "density", axis: int = 2,
                   centre=(0.5, 0.5), width: float = 1.0,
                   resolution: int = 32, samples: int = 32) -> np.ndarray:
    """Line-of-sight integral of a field through the box (surface density).

    The paper's analysis tools "derive projections, surface densities and
    other useful diagnostic quantities" for flattened objects; this is the
    projection primitive: the field is sampled at ``samples`` points along
    the normal through each image pixel (composite finest data) and
    integrated with the box-length measure.
    """
    zs = (np.arange(samples) + 0.5) / samples
    out = np.zeros((resolution, resolution))
    for z in zs:
        img = composite_slice(hierarchy, field, axis, float(z), centre,
                              width, resolution)
        out += np.nan_to_num(img)
    return out / samples


def ascii_render(image: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    """Tiny ASCII visualisation of a log-scaled slice (for bench output)."""
    finite = np.isfinite(image)
    if not finite.any():
        return "(empty)"
    with np.errstate(invalid="ignore", divide="ignore"):
        logimg = np.log10(np.maximum(image, 1e-300))
    lo, hi = logimg[finite].min(), logimg[finite].max()
    span = max(hi - lo, 1e-10)
    idx = ((logimg - lo) / span * (len(levels) - 1)).astype(int)
    idx = np.clip(idx, 0, len(levels) - 1)
    rows = []
    for row in idx:
        rows.append("".join(levels[i] for i in row))
    return "\n".join(rows)
