"""repro — reproduction of Bryan, Abel & Norman (SC2001):
"Achieving Extreme Resolution in Numerical Cosmology Using Adaptive Mesh
Refinement: Resolving Primordial Star Formation".

An Enzo-style structured-AMR cosmological hydrodynamics code in
Python/NumPy: PPM + ZEUS gas solvers, FFT/multigrid self-gravity,
adaptive particle-mesh dark matter, a 12-species primordial chemistry
network with radiative cooling, extended-precision (double-double)
positions and times, and a simulated distributed-memory layer implementing
the paper's parallelisation strategies.

Quick start::

    from repro import Simulation, SimulationConfig
    sim = Simulation(SimulationConfig(n_root=16, self_gravity=True,
                                      refine_overdensity=4.0))
    ...

or, for the paper's own problem::

    from repro.problems import PrimordialCollapse
    run = PrimordialCollapse(n_root=8, max_level=3)
    run.initial_rebuild()
    run.run_to_redshift(20.0)
"""

from repro.simulation import Simulation, SimulationConfig

__version__ = "1.0.0"

__all__ = ["Simulation", "SimulationConfig", "__version__"]
