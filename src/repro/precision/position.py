"""EPA positions: absolute coordinates that survive 1e-12 dynamic range.

The paper's discipline (Sec. 3.5): *absolute* positions and times carry
extended precision, while grid-local operations use cheap ``float64``
*relative* coordinates ``O(dx)``.  :class:`PositionDD` is the absolute
representation; :func:`relative_offset` converts a batch of absolute
positions into float64 offsets from a reference corner — the boundary where
high precision is dropped.
"""

from __future__ import annotations

import numpy as np

from repro.precision import core
from repro.precision.doubledouble import DDArray


class PositionDD:
    """A set of D-dimensional absolute positions in double-double precision.

    Stored as ``hi``/``lo`` arrays of shape ``(n, ndim)`` (or ``(ndim,)`` for
    a single point).  Provides exactly the operations the hierarchy needs:
    translation by float64 or DD offsets, scaling, midpoints, and containment
    tests against DD bounding boxes — all vectorised.
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi, lo=None):
        hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
        if lo is None:
            lo = np.zeros_like(hi)
        else:
            lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
        if lo.shape != hi.shape:
            raise ValueError(f"hi/lo shape mismatch: {hi.shape} vs {lo.shape}")
        self.hi = hi
        self.lo = lo

    @classmethod
    def from_dd(cls, arr: DDArray) -> "PositionDD":
        return cls(arr.hi, arr.lo)

    def as_dd(self) -> DDArray:
        return DDArray(self.hi, self.lo)

    @property
    def shape(self):
        return self.hi.shape

    def copy(self):
        return PositionDD(self.hi.copy(), self.lo.copy())

    def __getitem__(self, idx):
        return PositionDD(np.atleast_1d(self.hi[idx]), np.atleast_1d(self.lo[idx]))

    def __setitem__(self, idx, value):
        if isinstance(value, PositionDD):
            self.hi[idx], self.lo[idx] = value.hi, value.lo
        else:
            self.hi[idx] = np.asarray(value, dtype=np.float64)
            self.lo[idx] = 0.0

    def translate(self, offset_hi, offset_lo=None):
        """Return positions shifted by an offset (float64 or dd pair)."""
        if offset_lo is None:
            hi, lo = core.dd_add_f64(self.hi, self.lo, np.asarray(offset_hi, float))
        else:
            hi, lo = core.dd_add(self.hi, self.lo, np.asarray(offset_hi, float), np.asarray(offset_lo, float))
        return PositionDD(hi, lo)

    def translate_inplace(self, offset_hi, offset_lo=None):
        """In-place variant of :meth:`translate` (used by the leapfrog drift)."""
        if offset_lo is None:
            self.hi, self.lo = core.dd_add_f64(self.hi, self.lo, np.asarray(offset_hi, float))
        else:
            self.hi, self.lo = core.dd_add(
                self.hi, self.lo, np.asarray(offset_hi, float), np.asarray(offset_lo, float)
            )

    def scaled(self, factor):
        hi, lo = core.dd_mul_f64(self.hi, self.lo, float(factor))
        return PositionDD(hi, lo)

    def midpoint(self, other: "PositionDD") -> "PositionDD":
        s_hi, s_lo = core.dd_add(self.hi, self.lo, other.hi, other.lo)
        return PositionDD(*core.dd_mul_f64(s_hi, s_lo, 0.5))

    def wrap_periodic(self, lo_edge=0.0, hi_edge=1.0):
        """Wrap coordinates into [lo_edge, hi_edge) assuming at most one period off."""
        width = hi_edge - lo_edge
        above = core.dd_compare(self.hi, self.lo, *core.dd_from_f64(np.full_like(self.hi, hi_edge))) >= 0
        below = core.dd_compare(self.hi, self.lo, *core.dd_from_f64(np.full_like(self.hi, lo_edge))) < 0
        shift = np.zeros_like(self.hi)
        shift[above] = -width
        shift[below] = width
        hi, lo = core.dd_add_f64(self.hi, self.lo, shift)
        return PositionDD(hi, lo)

    def compare(self, other) -> np.ndarray:
        """Elementwise three-way comparison against another position/array."""
        if isinstance(other, PositionDD):
            return core.dd_compare(self.hi, self.lo, other.hi, other.lo)
        o = np.asarray(other, dtype=np.float64)
        return core.dd_compare(self.hi, self.lo, o, np.zeros_like(o))

    def __repr__(self):
        return f"PositionDD(hi={self.hi!r}, lo={self.lo!r})"


def relative_offset(positions: PositionDD, origin: PositionDD) -> np.ndarray:
    """Convert absolute DD positions to float64 offsets from a DD origin.

    This is the paper's precision boundary: the subtraction is carried out in
    double-double (so no catastrophic cancellation occurs even when
    ``|position - origin| / |position| ~ 1e-12``) and only the *result* — an
    O(dx) quantity — is rounded to float64 for use inside grid kernels.
    """
    d_hi, d_lo = core.dd_sub(positions.hi, positions.lo, origin.hi, origin.lo)
    return d_hi + d_lo
