"""Vectorised double-double kernels (error-free transformations).

All functions accept scalars or ndarrays of ``float64`` and broadcast like
ordinary NumPy ufunc expressions.  A double-double value is an unevaluated
sum ``hi + lo`` with ``|lo| <= ulp(hi)/2``; functions return ``(hi, lo)``
tuples in that normalised form.

The algorithms are the classical ones (Dekker 1971; Knuth; Bailey's DDFUN /
QD library): TwoSum, QuickTwoSum, Split and TwoProd, composed into add, mul,
div and sqrt with rigorously bounded error (~1e-31 relative).

These kernels are deliberately free of Python branching so they can be
applied to whole position arrays at once — the cost of EPA then scales with
the number of *particles/grids*, not with Python interpreter overhead.
"""

from __future__ import annotations

import numpy as np

#: Dekker splitting constant 2**27 + 1 for 53-bit doubles.
_SPLITTER = 134217729.0


def two_sum(a, b):
    """Error-free sum: return ``(s, e)`` with ``s = fl(a+b)`` and ``a+b = s+e``."""
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def quick_two_sum(a, b):
    """Error-free sum assuming ``|a| >= |b|`` (3 flops instead of 6)."""
    s = a + b
    e = b - (s - a)
    return s, e


def split(a):
    """Dekker split of ``a`` into high and low 26/27-bit halves."""
    t = _SPLITTER * a
    hi = t - (t - a)
    lo = a - hi
    return hi, lo


def two_prod(a, b):
    """Error-free product: return ``(p, e)`` with ``a*b = p + e`` exactly."""
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def dd_from_f64(a):
    """Promote float64 value(s) to a normalised double-double pair."""
    a = np.asarray(a, dtype=np.float64)
    return a, np.zeros_like(a)


def dd_add(a_hi, a_lo, b_hi, b_lo):
    """Double-double addition (the accurate ``ddadd`` variant, ~20 flops)."""
    s1, s2 = two_sum(a_hi, b_hi)
    t1, t2 = two_sum(a_lo, b_lo)
    s2 = s2 + t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 = s2 + t2
    return quick_two_sum(s1, s2)


def dd_neg(a_hi, a_lo):
    """Negation."""
    return -a_hi, -a_lo


def dd_sub(a_hi, a_lo, b_hi, b_lo):
    """Double-double subtraction."""
    return dd_add(a_hi, a_lo, -b_hi, -b_lo)


def dd_add_f64(a_hi, a_lo, b):
    """Add a plain float64 to a double-double (cheaper than full dd_add)."""
    s1, s2 = two_sum(a_hi, b)
    s2 = s2 + a_lo
    return quick_two_sum(s1, s2)


def dd_mul(a_hi, a_lo, b_hi, b_lo):
    """Double-double multiplication."""
    p1, p2 = two_prod(a_hi, b_hi)
    p2 = p2 + a_hi * b_lo + a_lo * b_hi
    return quick_two_sum(p1, p2)


def dd_mul_f64(a_hi, a_lo, b):
    """Multiply a double-double by a plain float64."""
    p1, p2 = two_prod(a_hi, b)
    p2 = p2 + a_lo * b
    return quick_two_sum(p1, p2)


def dd_div(a_hi, a_lo, b_hi, b_lo):
    """Double-double division via two Newton correction terms."""
    q1 = a_hi / b_hi
    # r = a - q1 * b
    m_hi, m_lo = dd_mul_f64(b_hi, b_lo, q1)
    r_hi, r_lo = dd_sub(a_hi, a_lo, m_hi, m_lo)
    q2 = r_hi / b_hi
    m_hi, m_lo = dd_mul_f64(b_hi, b_lo, q2)
    r_hi, r_lo = dd_sub(r_hi, r_lo, m_hi, m_lo)
    q3 = r_hi / b_hi
    q1, q2 = quick_two_sum(q1, q2)
    return dd_add_f64(q1, q2, q3)


def dd_sqrt(a_hi, a_lo):
    """Double-double square root (Karp's method).

    Negative inputs produce NaN like ``np.sqrt``; zero maps to zero.
    """
    a_hi = np.asarray(a_hi, dtype=np.float64)
    a_lo = np.asarray(a_lo, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = 1.0 / np.sqrt(a_hi)
        ax = a_hi * x
        # err = (a - ax^2) * x / 2
        sq_hi, sq_lo = two_prod(ax, ax)
        d_hi, d_lo = dd_sub(a_hi, a_lo, sq_hi, sq_lo)
        err = d_hi * x * 0.5
        hi, lo = quick_two_sum(ax, err)
    zero = a_hi == 0.0
    if np.any(zero):
        hi = np.where(zero, 0.0, hi)
        lo = np.where(zero, 0.0, lo)
    return hi, lo


def dd_abs(a_hi, a_lo):
    """Absolute value (sign decided by the high word)."""
    neg = np.asarray(a_hi) < 0.0
    sign = np.where(neg, -1.0, 1.0)
    return a_hi * sign, a_lo * sign


def dd_compare(a_hi, a_lo, b_hi, b_lo):
    """Three-way comparison: -1, 0 or +1 elementwise (as int8 ndarray)."""
    d_hi, d_lo = dd_sub(a_hi, a_lo, b_hi, b_lo)
    out = np.sign(d_hi)
    tie = d_hi == 0.0
    out = np.where(tie, np.sign(d_lo), out)
    return out.astype(np.int8)
