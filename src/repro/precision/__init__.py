"""Extended precision arithmetic (EPA) for absolute positions and times.

The paper (Sec. 3.5) requires ~128-bit precision to distinguish ``x + dx``
from ``x`` when ``dx/x ~ 1e-12`` and further headroom of ~100x is needed for
intermediate arithmetic.  Native 128-bit floats are unavailable in
NumPy/CPython, so — exactly as the paper proposes, citing Bailey (1993) — we
synthesise extended precision from pairs of 64-bit floats ("double-double"),
giving ~106 bits of mantissa (~31 decimal digits).

Two layers are provided:

* :mod:`repro.precision.core` — branch-free, vectorised kernels operating on
  ``(hi, lo)`` pairs of ``float64`` ndarrays (error-free transformations:
  TwoSum, TwoProd via Dekker splitting, renormalisation).
* :mod:`repro.precision.doubledouble` — the :class:`DDArray` user type with
  operator overloading, and the :class:`DoubleDouble` scalar convenience.

:mod:`repro.precision.position` applies EPA to the one place the paper says
it is needed: absolute grid-edge and particle positions, with cheap
``float64`` *relative* coordinates recovered for grid-local work (this is how
the paper keeps the EPA operation count to ~5 %).
"""

from repro.precision.core import (
    two_sum,
    quick_two_sum,
    two_prod,
    split,
    dd_add,
    dd_sub,
    dd_neg,
    dd_mul,
    dd_div,
    dd_add_f64,
    dd_mul_f64,
    dd_sqrt,
    dd_abs,
    dd_compare,
    dd_from_f64,
)
from repro.precision.doubledouble import DDArray, DoubleDouble, dd
from repro.precision.position import PositionDD, relative_offset

__all__ = [
    "two_sum",
    "quick_two_sum",
    "two_prod",
    "split",
    "dd_add",
    "dd_sub",
    "dd_neg",
    "dd_mul",
    "dd_div",
    "dd_add_f64",
    "dd_mul_f64",
    "dd_sqrt",
    "dd_abs",
    "dd_compare",
    "dd_from_f64",
    "DDArray",
    "DoubleDouble",
    "dd",
    "PositionDD",
    "relative_offset",
]
