"""User-facing double-double array and scalar types.

:class:`DDArray` wraps a pair of ``float64`` ndarrays and overloads the
arithmetic operators; :class:`DoubleDouble` is the rank-0 convenience with
exact-decimal construction and printing for tests and I/O.
"""

from __future__ import annotations

from decimal import Decimal, getcontext

import numpy as np

from repro.precision import core


def _coerce(other):
    """Return (hi, lo) for DDArray / DoubleDouble / float / ndarray operands."""
    if isinstance(other, DDArray):
        return other.hi, other.lo
    arr = np.asarray(other, dtype=np.float64)
    return arr, np.zeros_like(arr)


class DDArray:
    """An ndarray of double-double numbers stored as (hi, lo) float64 pairs.

    Supports elementwise ``+ - * /``, unary negation, ``abs``, comparisons,
    ``sqrt``, indexing/slicing and broadcasting against float64 operands.
    Mixed expressions with plain floats promote the float operand exactly.
    """

    __array_priority__ = 100.0  # win binary ops against ndarray

    __slots__ = ("hi", "lo")

    def __init__(self, hi, lo=None):
        hi = np.asarray(hi, dtype=np.float64)
        if lo is None:
            lo = np.zeros_like(hi)
        else:
            lo = np.asarray(lo, dtype=np.float64)
            if lo.shape != hi.shape:
                lo = np.broadcast_to(lo, hi.shape).copy()
        self.hi = hi
        self.lo = lo

    # --- construction helpers ------------------------------------------------
    @classmethod
    def zeros(cls, shape):
        return cls(np.zeros(shape), np.zeros(shape))

    @classmethod
    def from_pairs(cls, hi, lo):
        """Normalise an arbitrary (hi, lo) pair into a valid DDArray."""
        s, e = core.two_sum(np.asarray(hi, float), np.asarray(lo, float))
        return cls(s, e)

    # --- basic protocol -------------------------------------------------------
    @property
    def shape(self):
        return self.hi.shape

    @property
    def size(self):
        return self.hi.size

    @property
    def ndim(self):
        return self.hi.ndim

    def __len__(self):
        return len(self.hi)

    def __getitem__(self, idx):
        return DDArray(self.hi[idx], self.lo[idx])

    def __setitem__(self, idx, value):
        hi, lo = _coerce(value)
        self.hi[idx] = hi
        self.lo[idx] = lo

    def copy(self):
        return DDArray(self.hi.copy(), self.lo.copy())

    def reshape(self, *shape):
        return DDArray(self.hi.reshape(*shape), self.lo.reshape(*shape))

    def to_float64(self):
        """Round to nearest float64 (returns a copy of the hi words)."""
        return self.hi + self.lo

    def __float__(self):
        if self.size != 1:
            raise TypeError("only size-1 DDArrays convert to float")
        return float(self.hi) + float(self.lo)

    def __repr__(self):
        return f"DDArray(hi={self.hi!r}, lo={self.lo!r})"

    # --- arithmetic ------------------------------------------------------------
    def __add__(self, other):
        return DDArray(*core.dd_add(self.hi, self.lo, *_coerce(other)))

    __radd__ = __add__

    def __sub__(self, other):
        return DDArray(*core.dd_sub(self.hi, self.lo, *_coerce(other)))

    def __rsub__(self, other):
        b_hi, b_lo = _coerce(other)
        return DDArray(*core.dd_sub(b_hi, b_lo, self.hi, self.lo))

    def __mul__(self, other):
        return DDArray(*core.dd_mul(self.hi, self.lo, *_coerce(other)))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return DDArray(*core.dd_div(self.hi, self.lo, *_coerce(other)))

    def __rtruediv__(self, other):
        b_hi, b_lo = _coerce(other)
        return DDArray(*core.dd_div(b_hi, b_lo, self.hi, self.lo))

    def __neg__(self):
        return DDArray(-self.hi, -self.lo)

    def __abs__(self):
        return DDArray(*core.dd_abs(self.hi, self.lo))

    def sqrt(self):
        return DDArray(*core.dd_sqrt(self.hi, self.lo))

    def sum(self):
        """Exact-compensated sum of all elements, returned as a DoubleDouble."""
        s_hi, s_lo = 0.0, 0.0
        flat_hi = self.hi.ravel()
        flat_lo = self.lo.ravel()
        for h, l in zip(flat_hi, flat_lo):
            s_hi, s_lo = core.dd_add(s_hi, s_lo, float(h), float(l))
        return DoubleDouble(s_hi, s_lo)

    # --- comparisons -------------------------------------------------------------
    def _cmp(self, other):
        return core.dd_compare(self.hi, self.lo, *_coerce(other))

    def __lt__(self, other):
        return self._cmp(other) < 0

    def __le__(self, other):
        return self._cmp(other) <= 0

    def __gt__(self, other):
        return self._cmp(other) > 0

    def __ge__(self, other):
        return self._cmp(other) >= 0

    def __eq__(self, other):  # noqa: D105 — elementwise like ndarray
        try:
            return self._cmp(other) == 0
        except (TypeError, ValueError):
            return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return ~result

    __hash__ = None


class DoubleDouble(DDArray):
    """A scalar double-double value (rank-0 :class:`DDArray`).

    Construct from a float, an int, a decimal string (parsed exactly to
    ~31 significant digits) or a (hi, lo) pair.
    """

    def __init__(self, value=0.0, lo=None):
        if isinstance(value, DDArray) and lo is None:
            hi_arr, lo_arr = value.hi, value.lo
        elif isinstance(value, str):
            hi_arr, lo_arr = _parse_decimal_string(value)
        elif isinstance(value, int) and lo is None:
            hi = float(value)
            hi_arr, lo_arr = hi, float(value - int(hi))
        else:
            hi_arr = float(value)
            lo_arr = 0.0 if lo is None else float(lo)
        s, e = core.two_sum(np.float64(hi_arr), np.float64(lo_arr))
        super().__init__(np.asarray(s), np.asarray(e))

    def __float__(self):
        return float(self.hi) + float(self.lo)

    def to_decimal(self):
        """Exact Decimal value of hi + lo."""
        getcontext().prec = 60
        return Decimal(float(self.hi)) + Decimal(float(self.lo))

    def __str__(self):
        d = self.to_decimal()
        return f"{d:.31E}"

    def __repr__(self):
        return f"DoubleDouble('{self}')"


def _parse_decimal_string(text):
    """Parse a decimal literal into a (hi, lo) double-double pair exactly."""
    getcontext().prec = 60
    d = Decimal(text)
    hi = float(d)
    lo = float(d - Decimal(hi))
    return hi, lo


def dd(value, lo=None):
    """Shorthand constructor: ``dd('0.1')`` or ``dd(hi, lo)`` or ``dd(ndarray)``."""
    if isinstance(value, (str, int, float)) or lo is not None:
        return DoubleDouble(value, lo)
    return DDArray(np.asarray(value, dtype=np.float64))
