"""The paper's headline problem: primordial star formation, ab initio.

Assembles every subsystem: SCDM Zel'dovich initial conditions (optionally
with nested static meshes, Sec. 4), dark-matter particles, the 12-species
chemistry + cooling, self-gravity, and mass/Jeans refinement — then follows
the collapse of the first object through the hierarchy.

Scaled-run policy: the hero run used ~1e6 CPU-seconds on 64 processors;
configurations here default to laptop scale (8^3-16^3 roots, capped depth)
and an optional ``amplitude_boost`` that raises the realisation's sigma_8 so
the first peak collapses after an affordable number of root steps.  The
boost changes *when* the halo forms, not the physics of how it collapses
(the paper's own ICs are a rare-peak selection for the same reason).
"""

from __future__ import annotations

import numpy as np

from repro.amr import Hierarchy, HierarchyEvolver, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.evolve import CosmologyClock
from repro.amr.gravity import HierarchyGravity
from repro.amr.rebuild import rebuild_hierarchy
from repro.analysis.profiles import find_densest_point, radial_profiles
from repro.chemistry import ChemistryNetwork, primordial_initial_fractions
from repro.chemistry.species import ADVECTED_SPECIES
from repro.cosmology import (
    CodeUnits,
    FriedmannSolver,
    NestedGridIC,
    PowerSpectrum,
    STANDARD_CDM,
    ZeldovichIC,
)
from repro.hydro import PPMSolver
from repro.nbody.particles import ParticleSet
from repro.perf import ComponentTimers, HierarchyStats


class PrimordialCollapse:
    """End-to-end primordial star formation simulation (scaled).

    Parameters
    ----------
    n_root:
        Root-grid cells per dimension.
    box_kpc:
        Comoving box size (the paper: 256 kpc).
    z_init:
        Starting redshift ("a few million years after the big bang").
    max_level:
        Hierarchy depth cap (the run budget knob; the paper reached 34).
    jeans_number:
        N_J of the Jeans refinement criterion (paper: 4..64).
    static_levels:
        Nested static-mesh IC levels over the refined region (paper: 3).
    amplitude_boost:
        Multiplies sigma_8 of the realisation (see module docstring).
    with_chemistry / with_dark_matter:
        Toggle the expensive subsystems (ablations, quick runs).
    mass_refine_factor:
        Cells are refined when they exceed this multiple of the initial
        mean cell gas (or DM) mass.
    """

    def __init__(self, n_root: int = 8, box_kpc: float = 256.0,
                 z_init: float = 100.0, seed: int = 7, max_level: int = 4,
                 jeans_number: float = 4.0, static_levels: int = 0,
                 amplitude_boost: float = 4.0, with_chemistry: bool = True,
                 with_dark_matter: bool = True, mass_refine_factor: float = 4.0,
                 region_left=(0.25, 0.25, 0.25), region_right=(0.75, 0.75, 0.75),
                 timers: ComponentTimers | None = None, cfl: float = 0.4,
                 max_dims: int = 16, exec_backend: str | None = None,
                 workers: int | None = None):
        #: constructor spec (JSON-serialisable) — stored in every RunState
        #: so ``python -m repro resume`` can rebuild this exact problem
        self.spec = {
            "n_root": int(n_root), "box_kpc": float(box_kpc),
            "z_init": float(z_init), "seed": int(seed),
            "max_level": int(max_level), "jeans_number": float(jeans_number),
            "static_levels": int(static_levels),
            "amplitude_boost": float(amplitude_boost),
            "with_chemistry": bool(with_chemistry),
            "with_dark_matter": bool(with_dark_matter),
            "mass_refine_factor": float(mass_refine_factor),
            "region_left": list(region_left),
            "region_right": list(region_right),
            "cfl": float(cfl), "max_dims": int(max_dims),
            "exec_backend": exec_backend,
            "workers": None if workers is None else int(workers),
        }
        self.params = STANDARD_CDM.with_(sigma8=STANDARD_CDM.sigma8 * amplitude_boost)
        self.units = CodeUnits.for_cosmology(self.params, box_kpc, z_init)
        self.friedmann = FriedmannSolver(self.params)
        self.clock = CosmologyClock(self.friedmann, self.units)
        self.z_init = float(z_init)
        self.n_root = int(n_root)
        self.max_level = int(max_level)
        self.stats = HierarchyStats()
        self.timers = timers

        advected = list(ADVECTED_SPECIES) if with_chemistry else []
        self.hierarchy = Hierarchy(n_root=self.n_root, advected=advected)
        power = PowerSpectrum(self.params)

        # --- initial conditions -------------------------------------------------
        if static_levels > 0:
            nested = NestedGridIC(
                self.params, self.units, z_init, n_root,
                static_levels=static_levels, region_left=region_left,
                region_right=region_right, seed=seed, power=power,
            )
            gas_levels = nested.level_fields()
            particles = nested.particles() if with_dark_matter else None
        else:
            zel = ZeldovichIC(self.params, self.units, z_init, n_root,
                              seed=seed, power=power)
            gas_levels = [zel.gas()]
            particles = zel.particles() if with_dark_matter else None

        self._install_gas(gas_levels, with_chemistry)
        if particles is not None:
            self.hierarchy.particles = ParticleSet(
                particles.positions, particles.velocities, particles.masses
            )

        # --- physics modules ---------------------------------------------------------
        self.gravity = HierarchyGravity(
            g_code=self.units.gravity_constant_code, mean_density=1.0
        )
        self.chemistry = ChemistryNetwork() if with_chemistry else None
        baryon_frac = self.params.omega_baryon / self.params.omega_matter
        mean_cell_gas = baryon_frac * self.hierarchy.root.dx**3
        mean_cell_dm = (1.0 - baryon_frac) * self.hierarchy.root.dx**3
        self.criteria = RefinementCriteria(
            gas_mass_threshold=mass_refine_factor * mean_cell_gas,
            dm_mass_threshold=(
                mass_refine_factor * mean_cell_dm if with_dark_matter else None
            ),
            jeans_number=jeans_number,
            units=self.units,
            a=self.units.a_initial,
            max_level=self.max_level,
        )
        exec_config = None
        if exec_backend is not None or workers is not None:
            from repro.exec import ExecConfig

            exec_config = ExecConfig.resolve(
                backend=exec_backend, workers=workers
            )
        self.evolver = HierarchyEvolver(
            self.hierarchy, PPMSolver(), gravity=self.gravity,
            chemistry=self.chemistry, criteria=self.criteria,
            clock=self.clock, units=self.units, cfl=cfl,
            max_level=self.max_level, stats=self.stats, timers=timers,
            jeans_floor_cells=4.0, exec_config=exec_config,
        )
        self._max_dims = max_dims
        self.snapshots: list[dict] = []

    # ------------------------------------------------------------------ setup
    def _install_gas(self, gas_levels, with_chemistry: bool) -> None:
        from repro.amr.grid import Grid

        fractions = primordial_initial_fractions() if with_chemistry else {}
        root = self.hierarchy.root

        def fill(grid, gas):
            sl = grid.interior
            grid.fields["density"][sl] = gas.density
            for i, name in enumerate(("vx", "vy", "vz")):
                grid.fields[name][sl] = gas.velocity[i]
            grid.fields["internal"][sl] = gas.energy
            grid.fields["energy"][sl] = gas.energy + 0.5 * sum(
                gas.velocity[i] ** 2 for i in range(3)
            )
            for name, frac in fractions.items():
                grid.fields[name][sl] = frac * gas.density

        fill(root, gas_levels[0])
        set_boundary_values(self.hierarchy, 0)
        r = self.hierarchy.refine_factor
        for level, gas in enumerate(gas_levels[1:], start=1):
            n_lvl = self.n_root * r**level
            start = np.round(np.asarray(gas.left_edge) * n_lvl).astype(int)
            dims = np.asarray(gas.density.shape)
            parent = self.hierarchy.level_grids(level - 1)[0] if level > 1 else root
            # find the parent grid containing this static region
            for cand in self.hierarchy.level_grids(level - 1):
                probe = Grid(level, start, dims, self.n_root, r, self.hierarchy.nghost)
                if probe.is_nested_in(cand):
                    parent = cand
                    break
            g = Grid(level, start, dims, self.n_root, r, self.hierarchy.nghost)
            self.hierarchy.add_grid(g, parent)
            fill(g, gas)
            set_boundary_values(self.hierarchy, level)

    # --------------------------------------------------------------------- state
    @property
    def current_redshift(self) -> float:
        return self.clock.redshift_of(self.hierarchy.root.time)

    @property
    def peak_density_code(self) -> float:
        return max(g.field_view("density").max() for g in self.hierarchy.all_grids())

    @property
    def peak_number_density_cgs(self) -> float:
        a = self.clock.a_of(self.hierarchy.root.time)
        return float(
            self.units.number_density_cgs(self.peak_density_code, a, 1.22)
        )

    # ----------------------------------------------------------------------- run
    def initial_rebuild(self) -> None:
        """Seed the adaptive hierarchy from the initial conditions."""
        self.criteria.a = self.clock.a_of(self.hierarchy.root.time)
        rebuild_hierarchy(
            self.hierarchy, max(1, len(self.hierarchy.levels) - 0), self.criteria,
            self.evolver._dm_density, max_level=self.max_level,
            max_dims=self._max_dims,
        )

    def code_time_of_redshift(self, z: float) -> float:
        """Code time at which the background reaches redshift ``z``."""
        a = 1.0 / (1.0 + z)
        t_cgs = float(self.friedmann.time_of_a(a))
        return (t_cgs - self.clock.t0_cgs) / self.units.time_unit

    def make_controller(self, run_dir: str, z_end: float | None = None,
                        **opts):
        """A :class:`repro.runtime.RunController` wired for this problem.

        The controller's ``pre_step`` hook tracks ``criteria.a`` with the
        expansion (deterministically, from the restored clock, so resumed
        runs refine identically), and the stored config lets the CLI
        rebuild this problem on ``resume``.
        """
        from repro.runtime import RunController

        def track_expansion(controller) -> None:
            self.criteria.a = self.clock.a_of(self.hierarchy.root.time)

        opts.setdefault("pre_step", track_expansion)
        config = {"problem": "collapse", "kwargs": dict(self.spec)}
        if z_end is not None:
            config["z_end"] = float(z_end)
        opts.setdefault("config", config)
        return RunController(self.evolver, run_dir, problem=self, **opts)

    def run_to_redshift(self, z_end: float, max_root_steps: int = 10000,
                        snapshot_densities=None) -> dict:
        """Advance until redshift ``z_end``, snapshotting profiles on the way.

        ``snapshot_densities``: ascending list of central number densities
        (cm^-3) at which to record Fig.4-style radial profiles.
        """
        targets = list(snapshot_densities or [])
        t_end = self.code_time_of_redshift(z_end)
        steps = 0
        while float(self.hierarchy.root.time) < t_end and steps < max_root_steps:
            t_now = float(self.hierarchy.root.time)
            self.criteria.a = self.clock.a_of(t_now)
            # advance a few expansion times per outer iteration so snapshot
            # checks fire often enough without throttling the root timestep
            a_now = self.clock.a_of(t_now)
            adot_now = max(self.clock.adot_of(t_now), 1e-300)
            grain = max(t_end / 400.0, 0.1 * a_now / adot_now)
            t_next = min(t_end, t_now + grain)
            self.evolver.advance_to(t_next)
            steps += 1
            while targets and self.peak_number_density_cgs >= targets[0]:
                self.snapshot(label=f"n={targets[0]:.1e}")
                targets.pop(0)
        return {
            "redshift": self.current_redshift,
            "peak_n_cgs": self.peak_number_density_cgs,
            "max_level": self.hierarchy.max_level,
            "n_grids": self.hierarchy.n_grids,
            "root_steps": steps,
            "sdr": self.hierarchy.spatial_dynamic_range(),
        }

    def snapshot(self, label: str = "") -> dict:
        """Record Fig. 4-style profiles at the current state."""
        a = self.clock.a_of(self.hierarchy.root.time)
        prof = radial_profiles(
            self.hierarchy, nbins=20, units=self.units, a=a,
            species=self.chemistry is not None,
        )
        snap = {
            "label": label,
            "redshift": self.current_redshift,
            "time_code": float(self.hierarchy.root.time),
            "peak_n_cgs": self.peak_number_density_cgs,
            "profiles": prof,
        }
        self.snapshots.append(snap)
        return snap

    def densest_point(self) -> np.ndarray:
        return find_densest_point(self.hierarchy)


def find_collapse_site(n_root: int = 8, z_init: float = 100.0, z_survey: float = 25.0,
                       seed: int = 7, amplitude_boost: float = 4.0) -> np.ndarray:
    """The paper's first pass: "We first run a low-resolution simulation to
    determine where the first star will form" — returns that position.
    """
    survey = PrimordialCollapse(
        n_root=n_root, z_init=z_init, seed=seed, max_level=1,
        amplitude_boost=amplitude_boost, with_chemistry=False,
        static_levels=0,
    )
    survey.initial_rebuild()
    survey.run_to_redshift(z_survey, max_root_steps=300)
    return survey.densest_point()
