"""Isothermal sphere collapse: the fast deep-hierarchy driver.

A cold, overdense sphere undergoing runaway self-gravitating collapse —
the scale-free core of the paper's problem with the chemistry stripped
out.  Because refinement follows the Jeans/overdensity criteria into the
runaway, this problem grows hierarchies of (in principle) unlimited depth
quickly, which is what the Fig. 5 and zoom benchmarks need; the expected
quasi-static envelope approaches the rho ~ r^-2 profile the paper marks
in Fig. 4A (Larson-Penston / singular isothermal sphere behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.amr import Hierarchy, HierarchyEvolver, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.gravity import HierarchyGravity
from repro.amr.rebuild import rebuild_hierarchy
from repro.hydro import PPMSolver
from repro.perf import HierarchyStats


class SphereCollapse:
    """Cold sphere in a periodic box with self-gravity and AMR.

    Parameters
    ----------
    n_root:
        Root resolution per dimension.
    overdensity:
        Sphere central density relative to the background (=1).
    radius:
        Sphere radius in box units.
    temperature_ratio:
        Thermal energy relative to virial-ish; small = violent collapse.
    max_level:
        Hierarchy depth cap (the run budget knob).
    g_code:
        Newton's constant in code units (sets the free-fall time scale).
    """

    def __init__(self, n_root: int = 16, overdensity: float = 30.0,
                 radius: float = 0.15, temperature_ratio: float = 0.02,
                 max_level: int = 4, g_code: float = 1.0,
                 refine_overdensity: float | None = None,
                 jeans_number: float | None = None, units=None,
                 max_dims: int = 16, exec_config=None):
        self.n_root = int(n_root)
        self.max_level = int(max_level)
        self.g_code = float(g_code)
        self.hierarchy = Hierarchy(n_root=self.n_root)
        self.stats = HierarchyStats()
        self.max_dims = max_dims

        root = self.hierarchy.root
        c = [(np.arange(self.n_root) + 0.5) / self.n_root] * 3
        x, y, z = np.meshgrid(*c, indexing="ij")
        r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        profile = 1.0 + (overdensity - 1.0) * 0.5 * (
            1.0 - np.tanh((r - radius) / (0.25 * radius))
        )
        root.fields["density"][root.interior] = profile
        e = temperature_ratio * g_code * overdensity * radius**2
        root.fields["internal"][:] = e
        root.fields["energy"][:] = e
        set_boundary_values(self.hierarchy, 0)

        self.mean_density = float(root.field_view("density").mean())
        self.criteria = RefinementCriteria(
            overdensity_threshold=(
                refine_overdensity if refine_overdensity is not None
                else 2.0 * overdensity / 3.0
            ),
            jeans_number=jeans_number,
            units=units,
            max_level=self.max_level,
        )
        self.gravity = HierarchyGravity(
            g_code=self.g_code, mean_density=self.mean_density
        )
        self.evolver = HierarchyEvolver(
            self.hierarchy, PPMSolver(), gravity=self.gravity,
            criteria=self.criteria, cfl=0.3, max_level=self.max_level,
            stats=self.stats, jeans_floor_cells=4.0,
            exec_config=exec_config,
        )
        rebuild_hierarchy(self.hierarchy, 1, self.criteria,
                          max_level=self.max_level, max_dims=self.max_dims)

    @property
    def peak_density(self) -> float:
        return max(g.field_view("density").max() for g in self.hierarchy.all_grids())

    def free_fall_time(self, density: float | None = None) -> float:
        rho = density or self.peak_density
        return float(np.sqrt(3.0 * np.pi / (32.0 * self.g_code * rho)))

    def run(self, t_end: float | None = None, density_target: float | None = None,
            max_root_steps: int = 200) -> dict:
        """Advance until t_end, a density target, or a step budget."""
        if t_end is None:
            t_end = 1.5 * self.free_fall_time(self.peak_density)
        steps = 0
        while float(self.hierarchy.root.time) < t_end and steps < max_root_steps:
            a_step = min(
                t_end,
                float(self.hierarchy.root.time)
                + max(t_end / max_root_steps, 1e-12),
            )
            self.evolver.advance_to(a_step)
            steps += 1
            if density_target is not None and self.peak_density >= density_target:
                break
        return {
            "time": float(self.hierarchy.root.time),
            "peak_density": self.peak_density,
            "max_level": self.hierarchy.max_level,
            "n_grids": self.hierarchy.n_grids,
            "sdr": self.hierarchy.spatial_dynamic_range(),
        }
