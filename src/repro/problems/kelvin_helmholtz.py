"""Kelvin-Helmholtz shear instability with a passive dye scalar.

Two counter-flowing streams in a periodic unit box, a smoothed tanh
interface, and a small sinusoidal transverse velocity seed (the McNally
et al. 2012 setup, reduced to our solver's conventions).  The inner
stream is dyed with a passive scalar, so the problem simultaneously
exercises:

* passive-scalar advection through PPM/ZEUS (``n_scalars=1``),
* the vorticity refinement criterion (``refine_vorticity``),
* the chaos matrix — the run goes through the full
  :class:`repro.simulation.Simulation` stack, so fault injection and the
  defense ladder apply unmodified.

The measurable is the amplitude of the seeded transverse-velocity mode,
whose early-time e-folding rate is compared against the incompressible
linear rate ``sigma = k sqrt(rho1 rho2) |u1 - u2| / (rho1 + rho2)``.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.simulation import Simulation, SimulationConfig
from repro.validation.analytic import kh_growth_rate


class KelvinHelmholtz:
    """KH test in an ``n_root``^3 periodic box (flow varies in x-y).

    ``rho_inner``/``rho_outer`` are the stream densities, ``u_flow`` the
    half velocity difference, ``pressure`` the uniform initial pressure,
    ``shear_width`` the tanh interface thickness, ``perturb`` the seed
    amplitude (fraction of ``u_flow``) and ``kx`` the seeded mode count.
    """

    default_t_end = 1.0

    def __init__(self, n_root: int = 32, rho_inner: float = 2.0,
                 rho_outer: float = 1.0, u_flow: float = 1.0,
                 pressure: float = 2.5, shear_width: float = 0.05,
                 perturb: float = 0.05, kx: int = 1,
                 n_scalars: int = 1, max_level: int = 0,
                 refine_vorticity: float | None = None,
                 solver: str = "ppm", cfl: float = 0.4,
                 characteristic_tracing: bool = True, defense: bool = True,
                 exec_backend: str | None = None, workers: int | None = None,
                 max_grid_dims: int = 16):
        self._spec_kwargs = {
            "n_root": int(n_root), "rho_inner": float(rho_inner),
            "rho_outer": float(rho_outer), "u_flow": float(u_flow),
            "pressure": float(pressure), "shear_width": float(shear_width),
            "perturb": float(perturb), "kx": int(kx),
            "n_scalars": int(n_scalars), "max_level": int(max_level),
            "refine_vorticity": refine_vorticity, "solver": solver,
            "cfl": float(cfl),
            "characteristic_tracing": bool(characteristic_tracing),
            "defense": bool(defense),
            "exec_backend": exec_backend, "workers": workers,
            "max_grid_dims": int(max_grid_dims),
        }
        self.n = int(n_root)
        self.rho_inner = float(rho_inner)
        self.rho_outer = float(rho_outer)
        self.u_flow = float(u_flow)
        self.pressure = float(pressure)
        self.kx = int(kx)
        self.gamma = const.GAMMA
        solver_options = (
            {"characteristic_tracing": True}
            if (characteristic_tracing and solver == "ppm")
            else {}
        )
        self.sim = Simulation(SimulationConfig(
            n_root=int(n_root), max_level=int(max_level), solver=solver,
            solver_options=solver_options,
            cfl=cfl, n_scalars=int(n_scalars),
            refine_vorticity=refine_vorticity, defense=defense,
            exec_backend=exec_backend, workers=workers,
            max_grid_dims=max_grid_dims,
        ))
        self.steps = 0
        self.history: list[tuple[float, float]] = []  # (t, mode amplitude)
        self._setup(float(shear_width), float(perturb))

    def _setup(self, w: float, perturb: float) -> None:
        root = self.sim.hierarchy.root
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        # inner band 0.25 < y < 0.75 flows +x, outer flows -x
        band = 0.5 * (np.tanh((y - 0.25) / w) - np.tanh((y - 0.75) / w))
        rho = self.rho_outer + (self.rho_inner - self.rho_outer) * band
        vx = self.u_flow * (2.0 * band - 1.0)
        vy = perturb * self.u_flow * np.sin(2.0 * np.pi * self.kx * x) * (
            np.exp(-((y - 0.25) ** 2) / (2.0 * (2.0 * w) ** 2))
            + np.exp(-((y - 0.75) ** 2) / (2.0 * (2.0 * w) ** 2))
        )
        interior = root.interior
        root.fields["density"][interior] = rho
        root.fields["vx"][interior] = vx
        root.fields["vy"][interior] = vy
        root.fields["internal"][interior] = self.pressure / (
            (self.gamma - 1.0) * rho
        )
        from repro.hydro.state import total_energy

        root.fields["energy"][interior] = total_energy(root.fields)[interior]
        # dye the inner stream: scalar density = band mass density
        for name in self.sim.hierarchy.advected:
            root.fields[name][interior] = rho * band
        self.sim.initialize()
        self.history.append((0.0, self.mode_amplitude()))

    @property
    def time(self) -> float:
        return float(self.sim.hierarchy.root.time)

    # ------------------------------------------------------------------ run
    def run(self, t_end: float | None = None,
            max_root_steps: int | None = None) -> dict:
        t_end = self.default_t_end if t_end is None else float(t_end)
        evolver = self.sim.evolver
        while self.time < t_end:
            if max_root_steps is not None and self.steps >= max_root_steps:
                break
            if evolver.advance_root_step(t_end) is None:
                break
            self.steps += 1
            self.history.append((self.time, self.mode_amplitude()))
        return self.summary()

    def make_controller(self, run_dir: str, **opts):
        opts.setdefault("config", {
            "problem": "kelvin_helmholtz", "kwargs": dict(self._spec_kwargs),
        })
        return self.sim.make_controller(run_dir, **opts)

    # -------------------------------------------------------------- measure
    def mode_amplitude(self) -> float:
        """Amplitude of the seeded vy Fourier mode, density-weighted."""
        root = self.sim.hierarchy.root
        interior = root.interior
        vy = root.fields["vy"][interior]
        x = root.cell_centres()[0]
        phase = 2.0 * np.pi * self.kx * x
        # project onto the seeded mode along x, average over y-z
        sin_part = np.tensordot(np.sin(phase), vy, axes=([0], [0]))
        cos_part = np.tensordot(np.cos(phase), vy, axes=([0], [0]))
        nx = vy.shape[0]
        power = (sin_part / nx) ** 2 + (cos_part / nx) ** 2
        return float(2.0 * np.sqrt(power.mean()))

    def growth_rate(self, window: tuple[float, float] | None = None) -> float:
        """Fitted e-folding rate of the mode amplitude over ``window``."""
        if len(self.history) < 3:
            return 0.0
        t = np.array([h[0] for h in self.history])
        amp = np.array([h[1] for h in self.history])
        if window is None:
            # default: fit while the mode is linear (amplitude under 20%
            # of the velocity jump), skipping the initial transient
            lo, hi = 0.05 * t[-1], t[-1]
            linear = amp < 0.2 * (2.0 * self.u_flow)
            if linear.any():
                hi = min(hi, float(t[linear][-1]))
            window = (lo, hi)
        mask = (t >= window[0]) & (t <= window[1]) & (amp > 0.0)
        if int(mask.sum()) < 3:
            return 0.0
        return float(np.polyfit(t[mask], np.log(amp[mask]), 1)[0])

    def growth_rate_theory(self) -> float:
        return kh_growth_rate(
            2.0 * np.pi * self.kx, self.rho_inner, self.rho_outer,
            self.u_flow, -self.u_flow,
        )

    def solution_fields(self) -> dict[str, np.ndarray]:
        root = self.sim.hierarchy.root
        interior = root.interior
        out = {
            "density": root.fields["density"][interior].copy(),
            "vx": root.fields["vx"][interior].copy(),
            "vy": root.fields["vy"][interior].copy(),
        }
        for name in self.sim.hierarchy.advected:
            out[name] = root.fields[name][interior].copy()
        return out

    def reference_fields(self) -> None:
        return None  # self-convergence only

    def scalar_mass(self) -> float:
        """Total dye mass on the root interior (conservation diagnostic)."""
        root = self.sim.hierarchy.root
        total = 0.0
        for name in self.sim.hierarchy.advected:
            total += float(root.fields[name][root.interior].sum())
        return total * root.dx**3

    def summary(self) -> dict:
        return {
            "time": self.time,
            "steps": self.steps,
            "mode_amplitude": self.mode_amplitude(),
            "growth_rate": self.growth_rate(),
            "growth_rate_theory": self.growth_rate_theory(),
            "scalar_mass": self.scalar_mass(),
            "n_grids": self.sim.hierarchy.n_grids,
        }
