"""Problem setups: the paper's primordial-collapse run and validation tests."""

from repro.problems.shock_tube import SodShockTube
from repro.problems.zeldovich_pancake import ZeldovichPancake
from repro.problems.sphere_collapse import SphereCollapse
from repro.problems.collapse import PrimordialCollapse

__all__ = [
    "SodShockTube",
    "ZeldovichPancake",
    "SphereCollapse",
    "PrimordialCollapse",
]
