"""Problem setups: the paper's primordial-collapse run and validation tests.

Every problem here is also registered by name in
:mod:`repro.validation.registry` (``repro problems`` lists them); the
measurable ones feed the convergence harness (docs/VALIDATION.md).
"""

from repro.problems.shock_tube import SodShockTube
from repro.problems.zeldovich_pancake import ZeldovichPancake
from repro.problems.sphere_collapse import SphereCollapse
from repro.problems.collapse import PrimordialCollapse
from repro.problems.sedov import SedovBlast
from repro.problems.kelvin_helmholtz import KelvinHelmholtz
from repro.problems.rayleigh_taylor import RayleighTaylor

__all__ = [
    "SodShockTube",
    "ZeldovichPancake",
    "SphereCollapse",
    "PrimordialCollapse",
    "SedovBlast",
    "KelvinHelmholtz",
    "RayleighTaylor",
]
