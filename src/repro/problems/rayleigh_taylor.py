"""Rayleigh-Taylor instability: heavy fluid over light in constant gravity.

A thin 3-d box (n x 2n x 1 cells, domain 1 x 2), periodic in x, solid
walls in y, with a uniform downward acceleration applied through the
solvers' ``accel`` hook.  The initial state is a hydrostatic two-layer
atmosphere with a tanh density interface and a single-mode velocity
seed; the heavy layer is dyed with a passive scalar, whose horizontally
averaged profile gives the standard mixing-width diagnostic.

Linear theory bounds the early growth at sigma = sqrt(A g k) (Atwood
number A); like the Kelvin-Helmholtz problem this is a qualitative
bound — finite interface thickness and numerical diffusion only ever
slow the mode down.
"""

from __future__ import annotations

import numpy as np

from repro.hydro import PPMSolver, hydro_timestep
from repro.hydro.state import (
    fill_ghosts_outflow,
    fill_ghosts_periodic,
    fill_ghosts_reflecting,
    make_fields,
    scalar_names,
    total_energy,
)
from repro.validation.analytic import rt_growth_rate


class RayleighTaylor:
    """Single-mode RT test on an ``n x 2n`` (thin z) grid.

    ``rho_heavy``/``rho_light`` set the Atwood number, ``g`` the
    acceleration magnitude, ``interface_width`` the tanh thickness,
    ``perturb`` the seed velocity amplitude, ``kx`` the seeded mode
    count, ``p_top`` the pressure at the upper wall.
    """

    default_t_end = 3.0

    def __init__(self, n: int = 32, rho_heavy: float = 2.0,
                 rho_light: float = 1.0, g: float = 0.5,
                 interface_width: float = 0.05, perturb: float = 0.01,
                 kx: int = 1, p_top: float = 2.5, gamma: float = 5.0 / 3.0,
                 n_scalars: int = 1, nghost: int = 3):
        self.n = int(n)
        self.ny = 2 * self.n
        self.rho_heavy = float(rho_heavy)
        self.rho_light = float(rho_light)
        self.g = float(g)
        self.kx = int(kx)
        self.gamma = float(gamma)
        self.ng = int(nghost)
        self.dx = 1.0 / self.n
        self.time = 0.0
        self.steps = 0
        self.history: list[tuple[float, float]] = []  # (t, mixing width)
        self.scalars = scalar_names(n_scalars)
        self.fields = self._build(
            float(interface_width), float(perturb), float(p_top)
        )
        self._accel = self._build_accel()
        self.history.append((0.0, self.mixing_width()))

    # ---------------------------------------------------------------- setup
    def _coords(self):
        ng = self.ng
        x = (np.arange(self.n + 2 * ng) - ng + 0.5) * self.dx
        y = (np.arange(self.ny + 2 * ng) - ng + 0.5) * self.dx
        return x, y

    def _build(self, w: float, perturb: float, p_top: float):
        ng = self.ng
        shape = (self.n + 2 * ng, self.ny + 2 * ng, 1 + 2 * ng)
        f = make_fields(shape, advected=self.scalars)
        x, y = self._coords()
        xg, yg = np.meshgrid(x, y, indexing="ij")
        heavy = 0.5 * (1.0 + np.tanh((yg - 1.0) / w))  # heavy on top
        rho = self.rho_light + (self.rho_heavy - self.rho_light) * heavy

        # hydrostatic pressure: integrate rho g downward from the top wall
        rho_col = rho[ng, :]  # density varies only with y
        p_col = np.empty_like(rho_col)
        y_top = 2.0
        # pressure at the first cell below the top wall, then march down
        p_col[-1] = p_top + rho_col[-1] * self.g * (y_top - y[-1])
        for j in range(len(y) - 2, -1, -1):
            p_col[j] = p_col[j + 1] + 0.5 * (
                rho_col[j] + rho_col[j + 1]
            ) * self.g * (y[j + 1] - y[j])
        p = np.broadcast_to(p_col, (rho.shape[0], rho.shape[1])).copy()

        vy = perturb * np.cos(2.0 * np.pi * self.kx * xg) * np.exp(
            -((yg - 1.0) ** 2) / (2.0 * (2.0 * w) ** 2)
        )

        f["density"][:] = rho[:, :, None]
        f["vy"][:] = vy[:, :, None]
        f["internal"][:] = (p / ((self.gamma - 1.0) * rho))[:, :, None]
        f["energy"][:] = total_energy(f)
        for name in self.scalars:
            f[name][:] = (rho * heavy)[:, :, None]
        return f

    def _build_accel(self) -> np.ndarray:
        accel = np.zeros((3,) + self.fields["density"].shape)
        accel[1] = -self.g
        # mirror the acceleration in the y ghost zones: the reflecting fill
        # makes ghosts an inverted-gravity mirror image, so the kick must
        # flip sign there too or wall faces leak mass every step
        ng = self.ng
        accel[1, :, :ng, :] = self.g
        accel[1, :, -ng:, :] = self.g
        return accel

    def _fill_ghosts(self) -> None:
        fill_ghosts_periodic(self.fields, self.ng, axes=(0,))
        fill_ghosts_reflecting(self.fields, self.ng, axes=(1,))
        fill_ghosts_outflow(self.fields, self.ng, axes=(2,))

    # ------------------------------------------------------------------ run
    def run(self, t_end: float | None = None, solver=None, cfl: float = 0.4,
            max_steps: int | None = None) -> dict:
        t_end = self.default_t_end if t_end is None else float(t_end)
        solver = solver or PPMSolver(gamma=self.gamma,
                                     characteristic_tracing=True)
        dt_grav = cfl * np.sqrt(self.dx / self.g)
        while self.time < t_end:
            if max_steps is not None and self.steps >= max_steps:
                break
            self._fill_ghosts()
            dt = min(
                hydro_timestep(self.fields, self.dx, cfl=cfl,
                               gamma=self.gamma),
                dt_grav,
                t_end - self.time,
            )
            solver.step(self.fields, self.dx, dt, accel=self._accel,
                        permute=self.steps)
            self.time += dt
            self.steps += 1
            self.history.append((self.time, self.mixing_width()))
        return self.summary()

    # -------------------------------------------------------------- measure
    def _interior(self):
        ng = self.ng
        return (slice(ng, ng + self.n), slice(ng, ng + self.ny), ng)

    def heavy_fraction_profile(self) -> np.ndarray:
        """Horizontally averaged heavy-fluid mass fraction vs y."""
        sl = self._interior()
        rho = self.fields["density"][sl]
        if self.scalars:
            dye = self.fields[self.scalars[0]][sl]
        else:  # undyed fallback: infer from density
            dye = (rho - self.rho_light) / (self.rho_heavy - self.rho_light)
            dye = np.clip(dye, 0.0, 1.0) * rho
        return (dye / rho).mean(axis=0)

    def mixing_width(self) -> float:
        """Integral mixing width h = 4 * integral f(1-f) dy (Cabot-Cook)."""
        f = self.heavy_fraction_profile()
        return float(4.0 * (f * (1.0 - f)).sum() * self.dx)

    def growth_rate_theory(self) -> float:
        return rt_growth_rate(
            2.0 * np.pi * self.kx, self.rho_heavy, self.rho_light, self.g
        )

    def scalar_mass(self) -> float:
        sl = self._interior()
        return sum(
            float(self.fields[name][sl].sum()) for name in self.scalars
        ) * self.dx**2  # thin-z: per unit depth

    def solution_fields(self) -> dict[str, np.ndarray]:
        sl = self._interior()
        out = {
            "density": self.fields["density"][sl].copy(),
            "vy": self.fields["vy"][sl].copy(),
        }
        for name in self.scalars:
            out[name] = self.fields[name][sl].copy()
        return out

    def reference_fields(self) -> None:
        return None  # self-convergence only

    def summary(self) -> dict:
        return {
            "time": self.time,
            "steps": self.steps,
            "mixing_width": self.mixing_width(),
            "mixing_width_initial": self.history[0][1],
            "growth_rate_theory": self.growth_rate_theory(),
            "scalar_mass": self.scalar_mass(),
            "max_vy": float(np.abs(self.fields["vy"]).max()),
        }
