"""Zel'dovich pancake: the standard cosmological hydro validation.

A single plane-wave perturbation in an Einstein-de Sitter universe
collapses to a caustic at a chosen redshift z_c.  Before caustic formation
the exact solution is the Zel'dovich map

    x(q, a)  = q + (D(a)/D(a_c)) * A sin(2 pi q) / (2 pi)
    rho/rho0 = 1 / (1 + (D/D_c) A cos(2 pi q))

which this problem evaluates for comparison.  Exercises the comoving
source terms, cold-flow dual energy, and the gravity coupling all at once.
"""

from __future__ import annotations

import numpy as np

from repro.amr import Hierarchy, HierarchyEvolver
from repro.amr.boundary import set_boundary_values
from repro.amr.evolve import CosmologyClock
from repro.amr.gravity import HierarchyGravity
from repro.cosmology import CodeUnits, FriedmannSolver, STANDARD_CDM
from repro.hydro import PPMSolver


class ZeldovichPancake:
    """1-d pancake in a thin 3-d box (n x 1 x 1 root cells... actually
    n^3 with the perturbation along x only)."""

    def __init__(self, n: int = 32, z_init: float = 30.0, z_caustic: float = 5.0,
                 box_mpc: float = 64.0, temperature: float = 100.0):
        self.params = STANDARD_CDM
        self.friedmann = FriedmannSolver(self.params)
        self.units = CodeUnits.for_cosmology(
            self.params, box_mpc * 1e3, z_init
        )
        self.n = int(n)
        self.z_init = float(z_init)
        self.z_caustic = float(z_caustic)
        self.a_init = 1.0 / (1.0 + z_init)
        self.a_caustic = 1.0 / (1.0 + z_caustic)
        # EdS: D = a; amplitude chosen to caustic exactly at a_caustic
        self.amplitude = 1.0
        self.temperature = float(temperature)
        self.hierarchy = self._build()

    # --- analytic solution -------------------------------------------------------
    def growth_ratio(self, a: float) -> float:
        return float(self.friedmann.growth_factor(a) / self.friedmann.growth_factor(self.a_caustic))

    def exact_density(self, q: np.ndarray, a: float) -> np.ndarray:
        d = self.growth_ratio(a) * self.amplitude
        return 1.0 / np.maximum(1.0 - d * np.cos(2.0 * np.pi * q), 1e-10)

    def exact_position(self, q: np.ndarray, a: float) -> np.ndarray:
        d = self.growth_ratio(a) * self.amplitude
        return q - d * np.sin(2.0 * np.pi * q) / (2.0 * np.pi)

    def exact_velocity_code(self, q: np.ndarray, a: float) -> np.ndarray:
        """Proper peculiar velocity in code units (EdS: dD/dt = H D)."""
        h_a = float(self.friedmann.hubble(a))
        d = self.growth_ratio(a) * self.amplitude
        v_comoving_per_s = -h_a * d * np.sin(2.0 * np.pi * q) / (2.0 * np.pi)
        v_proper = a * v_comoving_per_s * self.units.length_unit
        return v_proper / self.units.velocity_unit

    # --- setup ----------------------------------------------------------------------
    def _build(self) -> Hierarchy:
        h = Hierarchy(n_root=self.n)
        root = h.root
        # Lagrangian sampling: deposit sheet masses via the exact map at a_init
        x_grid = (np.arange(self.n) + 0.5) / self.n
        # Eulerian density at a_init from the exact solution (low amplitude,
        # so direct evaluation at Eulerian positions is adequate at start)
        q = self._invert_map(x_grid, self.a_init)
        rho_1d = self.exact_density(q, self.a_init)
        v_1d = self.exact_velocity_code(q, self.a_init)
        root.fields["density"][root.interior] = rho_1d[:, None, None]
        root.fields["vx"][root.interior] = v_1d[:, None, None]
        e = float(
            self.units.energy_from_temperature(self.temperature, 1.22, self.a_init)
        )
        root.fields["internal"][:] = e
        root.fields["energy"][:] = (
            root.fields["internal"] + 0.5 * root.fields["vx"] ** 2
        )
        set_boundary_values(h, 0)
        return h

    def _invert_map(self, x: np.ndarray, a: float) -> np.ndarray:
        """Newton-invert x(q) for the Lagrangian coordinate q."""
        d = self.growth_ratio(a) * self.amplitude
        q = x.copy()
        for _ in range(50):
            f = q - d * np.sin(2 * np.pi * q) / (2 * np.pi) - x
            fp = 1.0 - d * np.cos(2 * np.pi * q)
            q = q - f / np.maximum(fp, 1e-3)
        return q

    # --- run -------------------------------------------------------------------------
    def run(self, z_end: float = 10.0, cfl: float = 0.3,
            exec_config=None) -> dict:
        """Evolve to z_end (must stay before the caustic for the comparison).

        ``exec_config`` selects the per-grid execution backend (see
        :mod:`repro.exec`); results are bitwise identical across backends.
        """
        clock = CosmologyClock(self.friedmann, self.units)
        grav = HierarchyGravity(
            g_code=self.units.gravity_constant_code, mean_density=1.0
        )
        ev = HierarchyEvolver(
            self.hierarchy, PPMSolver(), gravity=grav, clock=clock,
            units=self.units, cfl=cfl, exec_config=exec_config,
        )
        self.evolver = ev
        a_end = 1.0 / (1.0 + z_end)
        t_end_cgs = float(self.friedmann.time_of_a(a_end))
        t_end_code = (t_end_cgs - clock.t0_cgs) / self.units.time_unit
        ev.advance_to(t_end_code)
        return self.profiles(a_end)

    def profiles(self, a: float) -> dict:
        root = self.hierarchy.root
        sl = root.interior
        x = (np.arange(self.n) + 0.5) / self.n
        rho = root.fields["density"][sl].mean(axis=(1, 2))
        vx = root.fields["vx"][sl].mean(axis=(1, 2))
        q = self._invert_map(x, a)
        return {
            "x": x,
            "density": rho,
            "velocity": vx,
            "density_exact": self.exact_density(q, a),
            "velocity_exact": self.exact_velocity_code(q, a),
            "a": a,
        }
