"""Sod shock tube: the standard hydro validation problem.

The paper implements two solvers precisely so any result can be
cross-checked; this problem is the canonical cross-check, with the exact
Riemann solution as ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.hydro import PPMSolver, hydro_timestep
from repro.hydro.riemann import exact_riemann
from repro.hydro.state import fill_ghosts_outflow, make_fields


class SodShockTube:
    """1-d (in a thin 3-d box) Sod problem.

    Parameters: resolution ``n``, adiabatic index, and the left/right
    (rho, u, p) states (defaults are the classic Sod values).
    """

    def __init__(self, n: int = 128, gamma: float = 1.4,
                 left=(1.0, 0.0, 1.0), right=(0.125, 0.0, 0.1),
                 nghost: int = 3, characteristic_tracing: bool = True):
        self.n = int(n)
        self.gamma = float(gamma)
        self.left = left
        self.right = right
        self.ng = nghost
        #: the full CW84 predictor roughly halves the Sod L1 error and is
        #: what makes the measured convergence order reach ~1
        self.characteristic_tracing = bool(characteristic_tracing)
        self.fields = self._build()
        self.time = 0.0
        self.steps = 0

    def _build(self):
        ng, n = self.ng, self.n
        shape = (n + 2 * ng, 1 + 2 * ng, 1 + 2 * ng)
        f = make_fields(shape)
        x = (np.arange(n + 2 * ng) - ng + 0.5) / n
        is_left = x < 0.5
        rho = np.where(is_left, self.left[0], self.right[0])
        u = np.where(is_left, self.left[1], self.right[1])
        p = np.where(is_left, self.left[2], self.right[2])
        f["density"][:] = rho[:, None, None]
        f["vx"][:] = u[:, None, None]
        f["internal"][:] = (p / ((self.gamma - 1.0) * rho))[:, None, None]
        f["energy"][:] = f["internal"] + 0.5 * f["vx"] ** 2
        return f

    def run(self, t_end: float = 0.2, solver=None, cfl: float = 0.4) -> dict:
        """Advance to ``t_end``; returns the numerical and exact profiles."""
        solver = solver or PPMSolver(
            gamma=self.gamma,
            characteristic_tracing=self.characteristic_tracing,
        )
        dx = 1.0 / self.n
        while self.time < t_end:
            fill_ghosts_outflow(self.fields, self.ng)
            dt = min(
                hydro_timestep(self.fields, dx, cfl=cfl, gamma=self.gamma),
                t_end - self.time,
            )
            solver.step(self.fields, dx, dt, permute=self.steps)
            self.time += dt
            self.steps += 1
        return self.profiles()

    def profiles(self) -> dict:
        sl = (slice(self.ng, -self.ng), self.ng, self.ng)
        x = (np.arange(self.n) + 0.5) / self.n
        rho = self.fields["density"][sl]
        u = self.fields["vx"][sl]
        e = self.fields["internal"][sl]
        p = (self.gamma - 1.0) * rho * e
        out = {"x": x, "density": rho, "velocity": u, "pressure": p}
        if self.time > 0:
            xi = (x - 0.5) / self.time
            rho_ex, u_ex, p_ex = exact_riemann(self.left, self.right, self.gamma, xi)
            out.update(density_exact=rho_ex, velocity_exact=u_ex, pressure_exact=p_ex)
        return out

    def l1_error(self) -> float:
        p = self.profiles()
        trim = self.n // 16
        return float(np.abs(p["density"] - p["density_exact"])[trim:-trim].mean())

    # ---------------------------------------------- convergence protocol
    def solution_fields(self) -> dict[str, np.ndarray]:
        p = self.profiles()
        return {
            "density": p["density"].copy(),
            "velocity": p["velocity"].copy(),
            "pressure": p["pressure"].copy(),
        }

    def reference_fields(self) -> dict[str, np.ndarray]:
        p = self.profiles()
        return {
            "density": p["density_exact"],
            "velocity": p["velocity_exact"],
            "pressure": p["pressure_exact"],
        }
