"""Sedov-Taylor point explosion: the canonical 3-d blast-wave validation.

A finite pulse of thermal energy is deposited in a small sphere at the
centre of a uniform cold periodic box; the resulting spherical shock must
track the exact similarity solution ``R(t) = beta (E t^2 / rho0)^{1/5}``
(see :func:`repro.validation.analytic.sedov_solution`).

The problem runs through the :class:`repro.simulation.Simulation` facade,
so it inherits every subsystem the collapse workload uses — exec
backends, the defense ladder, shock-criterion AMR (``refine_shock``),
checkpointed run control via :meth:`make_controller` — and doubles as a
chaos-matrix / convergence-harness target.
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.simulation import Simulation, SimulationConfig
from repro.validation.analytic import sedov_solution


class SedovBlast:
    """Spherical blast in an ``n_root``^3 periodic unit box.

    ``energy`` is deposited uniformly inside ``deposit_radius_cells`` root
    cells of the centre (a smoothed source keeps the early evolution
    resolution-matched, which is what makes the L1 error converge at
    first order through the shock).  ``t_end`` defaults to the time the
    shock reaches roughly 70% of the half-box, before periodic images
    interact.
    """

    default_t_end = 0.05

    def __init__(self, n_root: int = 32, energy: float = 1.0,
                 rho0: float = 1.0, e_ambient: float = 1e-6,
                 deposit_radius_cells: float = 3.5,
                 max_level: int = 0, refine_shock: float | None = None,
                 solver: str = "ppm", cfl: float = 0.4,
                 characteristic_tracing: bool = True,
                 n_scalars: int = 0, defense: bool = True,
                 exec_backend: str | None = None, workers: int | None = None,
                 max_grid_dims: int = 16):
        self._spec_kwargs = {
            "n_root": int(n_root), "energy": float(energy),
            "rho0": float(rho0), "e_ambient": float(e_ambient),
            "deposit_radius_cells": float(deposit_radius_cells),
            "max_level": int(max_level), "refine_shock": refine_shock,
            "solver": solver, "cfl": float(cfl),
            "characteristic_tracing": bool(characteristic_tracing),
            "n_scalars": int(n_scalars),
            "defense": bool(defense), "exec_backend": exec_backend,
            "workers": workers, "max_grid_dims": int(max_grid_dims),
        }
        self.n = int(n_root)
        self.energy = float(energy)
        self.rho0 = float(rho0)
        self.gamma = const.GAMMA
        solver_options = (
            {"characteristic_tracing": True}
            if (characteristic_tracing and solver == "ppm")
            else {}
        )
        self.sim = Simulation(SimulationConfig(
            n_root=int(n_root), max_level=int(max_level), solver=solver,
            solver_options=solver_options,
            cfl=cfl, refine_shock=refine_shock, n_scalars=int(n_scalars),
            defense=defense, exec_backend=exec_backend, workers=workers,
            max_grid_dims=max_grid_dims,
        ))
        self.steps = 0
        self._setup(float(e_ambient), float(deposit_radius_cells))

    def _setup(self, e_ambient: float, deposit_radius_cells: float) -> None:
        root = self.sim.hierarchy.root
        dx = root.dx
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        inside = r < deposit_radius_cells * dx
        n_in = int(np.count_nonzero(inside))
        # specific energy that integrates to exactly `energy` on this grid
        e_blast = self.energy / (self.rho0 * n_in * dx**3)
        e = np.where(inside, e_blast, e_ambient)
        root.fields["density"][root.interior] = self.rho0
        root.fields["internal"][root.interior] = e
        root.fields["energy"][root.interior] = e  # velocities are zero
        if self.sim.hierarchy.advected:
            # dye the energy-deposit sphere so scalar transport is visible
            for name in self.sim.hierarchy.advected:
                root.fields[name][root.interior] = np.where(
                    inside, self.rho0, 0.0
                )
        self.sim.initialize()

    @property
    def time(self) -> float:
        return float(self.sim.hierarchy.root.time)

    # ------------------------------------------------------------------ run
    def run(self, t_end: float | None = None,
            max_root_steps: int | None = None) -> dict:
        t_end = self.default_t_end if t_end is None else float(t_end)
        evolver = self.sim.evolver
        while self.time < t_end:
            if max_root_steps is not None and self.steps >= max_root_steps:
                break
            if evolver.advance_root_step(t_end) is None:
                break
            self.steps += 1
        return self.summary()

    def make_controller(self, run_dir: str, **opts):
        """Checkpointed run control (CLI ``run --problem sedov --dir ...``)."""
        opts.setdefault("config", {
            "problem": "sedov", "kwargs": dict(self._spec_kwargs),
        })
        return self.sim.make_controller(run_dir, **opts)

    # -------------------------------------------------------------- measure
    def _radii(self) -> np.ndarray:
        root = self.sim.hierarchy.root
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        return np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)

    #: fixed radii count for the cumulative mass profile (resolution-
    #: independent, so profiles are comparable across the harness ladder)
    profile_bins = 32
    profile_r_max = 1.25  # in units of the exact shock radius

    def _profile_radii(self, exact) -> np.ndarray:
        return np.linspace(
            0.0, self.profile_r_max * exact.r_shock, self.profile_bins + 1
        )[1:]

    def mass_profile(self, exact=None) -> np.ndarray:
        """Normalised cumulative mass M(<r) at fixed radii r/R_exact.

        Cell membership is smoothed over one cell width, so the profile's
        error is dominated by the O(dx) shock-front smear rather than
        sphere-surface aliasing — this is the first-order-convergent
        Sedov diagnostic the validation floors pin.
        """
        exact = exact or sedov_solution(
            self.time, energy=self.energy, rho0=self.rho0, gamma=self.gamma
        )
        root = self.sim.hierarchy.root
        dx = root.dx
        r_cell = self._radii().ravel()
        m_cell = root.fields["density"][root.interior].ravel() * dx**3
        m_norm = (4.0 / 3.0) * np.pi * exact.r_shock**3 * self.rho0
        out = np.empty(self.profile_bins)
        for j, rj in enumerate(self._profile_radii(exact)):
            w = np.clip((rj - r_cell) / dx + 0.5, 0.0, 1.0)
            out[j] = float((w * m_cell).sum()) / m_norm
        return out

    def solution_fields(self) -> dict[str, np.ndarray]:
        """Root-grid interior fields plus the cumulative mass profile."""
        root = self.sim.hierarchy.root
        interior = root.interior
        rho = root.fields["density"][interior]
        e = root.fields["internal"][interior]
        return {
            "density": rho.copy(),
            "pressure": (self.gamma - 1.0) * rho * e,
            "mass_profile": self.mass_profile(),
        }

    def reference_fields(self) -> dict[str, np.ndarray]:
        """Exact similarity solution sampled at the root cell centres."""
        exact = sedov_solution(
            self.time, energy=self.energy, rho0=self.rho0, gamma=self.gamma
        )
        sampled = exact.sample(self._radii())
        # exact cumulative mass: integrate the similarity density, ambient
        # rho0 beyond the shock
        shell_mass = 4.0 * np.pi * exact.r**2 * exact.density
        m_in = np.concatenate([
            [0.0],
            np.cumsum(0.5 * (shell_mass[1:] + shell_mass[:-1])
                      * np.diff(exact.r)),
        ])
        m_norm = (4.0 / 3.0) * np.pi * exact.r_shock**3 * self.rho0
        radii = self._profile_radii(exact)
        m_exact = np.interp(radii, exact.r, m_in)
        outside = radii > exact.r_shock
        m_exact[outside] = m_in[-1] + (4.0 / 3.0) * np.pi * self.rho0 * (
            radii[outside]**3 - exact.r_shock**3
        )
        return {
            "density": sampled["density"],
            "pressure": sampled["pressure"],
            "mass_profile": m_exact / m_norm,
        }

    def shock_radius(self) -> float:
        """Numerical shock position: density-weighted radius of the peak."""
        r = self._radii().ravel()
        rho = self.sim.hierarchy.root.fields["density"][
            self.sim.hierarchy.root.interior
        ].ravel()
        excess = np.maximum(rho - self.rho0, 0.0)
        w = excess**2
        total = float(w.sum())
        return float((r * w).sum() / total) if total > 0 else 0.0

    def summary(self) -> dict:
        exact = sedov_solution(
            max(self.time, 1e-30), energy=self.energy, rho0=self.rho0,
            gamma=self.gamma,
        )
        return {
            "time": self.time,
            "steps": self.steps,
            "shock_radius": self.shock_radius(),
            "shock_radius_exact": exact.r_shock,
            "max_density": float(
                self.sim.hierarchy.root.field_view("density").max()
            ),
            "n_grids": self.sim.hierarchy.n_grids,
        }
