"""Cosmological parameter sets.

The paper simulates "standard" CDM (Sec. 2.1, citing Ostriker 1993): a flat,
matter-dominated universe whose power-spectrum amplitude reproduces the
statistics of present-day galaxies and clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import constants as const


@dataclass(frozen=True)
class CosmologyParameters:
    """A Friedmann world model plus power-spectrum normalisation.

    Attributes
    ----------
    omega_matter:
        Total matter density in units of critical (CDM + baryons).
    omega_lambda:
        Cosmological-constant density parameter.
    omega_baryon:
        Baryon density parameter (must not exceed ``omega_matter``).
    hubble:
        Dimensionless Hubble parameter h (H0 = 100 h km/s/Mpc).
    sigma8:
        rms linear density fluctuation in 8 Mpc/h top-hat spheres at z=0.
    spectral_index:
        Primordial power-law index n (n=1 is scale-invariant).
    cmb_temperature:
        Present CMB temperature in K (sets Compton cooling and the gas floor).
    """

    omega_matter: float = 1.0
    omega_lambda: float = 0.0
    omega_baryon: float = 0.06
    hubble: float = 0.5
    sigma8: float = 0.7
    spectral_index: float = 1.0
    cmb_temperature: float = const.CMB_TEMPERATURE_Z0

    def __post_init__(self):
        if not 0.0 < self.omega_matter:
            raise ValueError("omega_matter must be positive")
        if not 0.0 <= self.omega_baryon <= self.omega_matter:
            raise ValueError("omega_baryon must lie in [0, omega_matter]")
        if not 0.0 < self.hubble < 2.0:
            raise ValueError("hubble parameter h out of plausible range")

    @property
    def omega_cdm(self) -> float:
        return self.omega_matter - self.omega_baryon

    @property
    def omega_curvature(self) -> float:
        return 1.0 - self.omega_matter - self.omega_lambda

    @property
    def h0_cgs(self) -> float:
        """H0 in s^-1."""
        return self.hubble * const.HUBBLE_CGS

    @property
    def critical_density_z0(self) -> float:
        """Critical density today in g/cm^3."""
        return const.CRITICAL_DENSITY_H2 * self.hubble**2

    @property
    def mean_matter_density_z0(self) -> float:
        """Comoving mean total-matter density in g/cm^3."""
        return self.omega_matter * self.critical_density_z0

    @property
    def mean_baryon_density_z0(self) -> float:
        """Comoving mean baryon density in g/cm^3."""
        return self.omega_baryon * self.critical_density_z0

    def cmb_temperature_at(self, z: float) -> float:
        """CMB temperature at redshift z."""
        return self.cmb_temperature * (1.0 + z)

    def with_(self, **kwargs) -> "CosmologyParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's standard-CDM model: Omega = 1, h = 0.5, cluster-normalised
#: sigma_8, scale-invariant primordial spectrum.
STANDARD_CDM = CosmologyParameters()
