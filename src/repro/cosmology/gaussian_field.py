"""Periodic Gaussian random field realisations of P(k).

Fourier conventions (documented because every IC bug ever is a convention
bug): for a box of comoving volume V = L^3 sampled on n^3 cells of volume
dV, the discrete modes are ``delta_hat = fftn(delta)`` (NumPy,
unnormalised), and a field with target spectrum P(k) satisfies

    < |delta_hat_k|^2 > = N * P(k) / dV,        N = n^3.

A realisation is therefore ``fftn(white_noise) * sqrt(P(k)/dV)``, which is
exactly hermitian by construction (FFT of a real field) — no half-plane
bookkeeping needed.  The inverse estimator used by the tests is
``P_measured(k) = |delta_hat|^2 * dV / N``.
"""

from __future__ import annotations

import numpy as np


class GaussianRandomField:
    """A realisation of a 3-d periodic Gaussian density field.

    Parameters
    ----------
    n:
        Cells per dimension.
    box_mpc_h:
        Comoving box size in Mpc/h (the units P(k) is expressed in).
    power:
        Callable P(k) with k in h/Mpc returning (Mpc/h)^3.
    seed:
        RNG seed; fixed seeds give reproducible "universes".
    """

    def __init__(self, n: int, box_mpc_h: float, power, seed: int = 0):
        if n < 2:
            raise ValueError("need at least 2 cells per dimension")
        self.n = int(n)
        self.box = float(box_mpc_h)
        self.power = power
        self.seed = seed
        self._build()

    def _wavenumbers(self):
        """Return (kx, ky, kz, |k|) arrays in h/Mpc on the FFT grid."""
        k1 = 2.0 * np.pi * np.fft.fftfreq(self.n, d=self.box / self.n)
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        kk = np.sqrt(kx**2 + ky**2 + kz**2)
        return kx, ky, kz, kk

    def _build(self):
        rng = np.random.default_rng(self.seed)
        white = rng.standard_normal((self.n,) * 3)
        dv = (self.box / self.n) ** 3
        _, _, _, kk = self._wavenumbers()
        amp = np.sqrt(np.maximum(self.power(kk), 0.0) / dv)
        amp.flat[0] = 0.0  # zero mean
        self.delta_hat = np.fft.fftn(white) * amp
        self.delta = np.real(np.fft.ifftn(self.delta_hat))

    def measured_power(self, nbins: int = 16):
        """Binned power-spectrum estimate (k centres in h/Mpc, P in (Mpc/h)^3)."""
        _, _, _, kk = self._wavenumbers()
        p = np.abs(self.delta_hat) ** 2 * (self.box / self.n) ** 3 / self.n**3
        k_flat, p_flat = kk.ravel(), p.ravel()
        mask = k_flat > 0
        k_flat, p_flat = k_flat[mask], p_flat[mask]
        edges = np.logspace(np.log10(k_flat.min()), np.log10(k_flat.max()), nbins + 1)
        idx = np.digitize(k_flat, edges) - 1
        centres, means = [], []
        for i in range(nbins):
            sel = idx == i
            if sel.sum() >= 8:
                centres.append(np.exp(np.mean(np.log(k_flat[sel]))))
                means.append(p_flat[sel].mean())
        return np.array(centres), np.array(means)

    def displacement(self) -> np.ndarray:
        """Zel'dovich displacement field psi with psi_hat = i k / k^2 delta_hat.

        Returns shape (3, n, n, n) in comoving Mpc/h (same length units as
        the box), normalised so that x = q + D(a) * psi.
        """
        kx, ky, kz, kk = self._wavenumbers()
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_k2 = np.where(kk > 0, 1.0 / kk**2, 0.0)
        # The Nyquist planes are their own conjugate mirrors, so i*k*delta_hat
        # is anti-hermitian there and taking the real part would inject a
        # spurious, curl-carrying component.  Zero the potential on all
        # Nyquist planes (standard practice in IC generators); the lost modes
        # are the least-resolved ones anyway.
        if self.n % 2 == 0:
            nyq = self.n // 2
            inv_k2 = inv_k2.copy()
            inv_k2[nyq, :, :] = 0.0
            inv_k2[:, nyq, :] = 0.0
            inv_k2[:, :, nyq] = 0.0
        psi = np.empty((3, self.n, self.n, self.n))
        for axis, kvec in enumerate((kx, ky, kz)):
            psi_hat = 1j * kvec * inv_k2 * self.delta_hat
            psi[axis] = np.real(np.fft.ifftn(psi_hat))
        return psi

    def degraded(self, factor: int) -> np.ndarray:
        """Volume-average the field down by an integer factor per dimension.

        Used to build consistent multi-level nested initial conditions: the
        coarse level sees exactly the mean of the fine-level modes it contains.
        """
        if self.n % factor != 0:
            raise ValueError(f"{factor} does not divide n={self.n}")
        m = self.n // factor
        return (
            self.delta.reshape(m, factor, m, factor, m, factor).mean(axis=(1, 3, 5))
        )


def degrade_field(field: np.ndarray, factor: int) -> np.ndarray:
    """Volume-average any 3-d field down by an integer factor (free function)."""
    n = field.shape[0]
    if any(s != n for s in field.shape) or n % factor != 0:
        raise ValueError("field must be cubic and divisible by factor")
    m = n // factor
    return field.reshape(m, factor, m, factor, m, factor).mean(axis=(1, 3, 5))
