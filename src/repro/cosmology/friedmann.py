"""Friedmann expansion: a(t), t(z), H(a) and the growth factor.

The simulation is "carried out in a proper expanding cosmological background
spacetime" (paper Sec. 1).  Hydro and N-body solvers consume ``a`` and
``adot`` per timestep; initial-condition generation needs the linear growth
factor D(a).

For the paper's Einstein–de Sitter model everything is analytic
(a proportional to t^(2/3)); for general (open / Lambda) models the solver
integrates the Friedmann equation once at construction and interpolates.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad, solve_ivp
from scipy.interpolate import interp1d

from repro.cosmology.parameters import CosmologyParameters


class FriedmannSolver:
    """Expansion history of a Friedmann model.

    Times are in seconds since the big bang; ``a`` is normalised to 1 at z=0.
    """

    def __init__(self, params: CosmologyParameters, a_min: float = 1e-6):
        self.params = params
        self.a_min = a_min
        self._eds = (
            abs(params.omega_matter - 1.0) < 1e-12 and abs(params.omega_lambda) < 1e-12
        )
        if not self._eds:
            self._tabulate()

    # --- core relations ---------------------------------------------------------
    def hubble(self, a) -> np.ndarray:
        """H(a) in s^-1."""
        p = self.params
        a = np.asarray(a, dtype=float)
        e2 = p.omega_matter / a**3 + p.omega_curvature / a**2 + p.omega_lambda
        return p.h0_cgs * np.sqrt(e2)

    def adot(self, a) -> np.ndarray:
        """da/dt in s^-1."""
        return np.asarray(a, dtype=float) * self.hubble(a)

    def addot(self, a) -> np.ndarray:
        """d^2a/dt^2 (acceleration), used by some comoving source terms."""
        p = self.params
        a = np.asarray(a, dtype=float)
        return p.h0_cgs**2 * (-0.5 * p.omega_matter / a**2 + p.omega_lambda * a)

    @staticmethod
    def redshift(a) -> np.ndarray:
        return 1.0 / np.asarray(a, dtype=float) - 1.0

    @staticmethod
    def scale_factor(z) -> np.ndarray:
        return 1.0 / (1.0 + np.asarray(z, dtype=float))

    # --- time <-> a ----------------------------------------------------------------
    def time_of_a(self, a) -> np.ndarray:
        """Cosmic time t(a) in seconds."""
        a = np.asarray(a, dtype=float)
        if self._eds:
            # a = (3 H0 t / 2)^(2/3)  =>  t = 2 a^(3/2) / (3 H0)
            return 2.0 * a**1.5 / (3.0 * self.params.h0_cgs)
        return self._t_of_a(np.log(a))

    def a_of_time(self, t) -> np.ndarray:
        """Scale factor a(t)."""
        t = np.asarray(t, dtype=float)
        if self._eds:
            return (1.5 * self.params.h0_cgs * t) ** (2.0 / 3.0)
        return np.exp(self._lna_of_t(t))

    def time_of_z(self, z) -> np.ndarray:
        return self.time_of_a(self.scale_factor(z))

    def age_today(self) -> float:
        return float(self.time_of_a(1.0))

    def _tabulate(self):
        """Integrate dt/dlna = 1/H from a_min to beyond a=1 and build splines."""
        lna = np.linspace(np.log(self.a_min), np.log(4.0), 4096)

        def rhs(ln_a, t):
            return 1.0 / self.hubble(np.exp(ln_a))

        # time at a_min: matter/curvature-dominated early limit ~ EdS
        t0 = 2.0 * self.a_min**1.5 / (3.0 * self.params.h0_cgs * np.sqrt(self.params.omega_matter))
        sol = solve_ivp(rhs, (lna[0], lna[-1]), [t0], t_eval=lna, rtol=1e-10, atol=1e-30)
        t = sol.y[0]
        self._t_of_a = interp1d(lna, t, kind="cubic")
        self._lna_of_t = interp1d(t, lna, kind="cubic")

    # --- linear growth ---------------------------------------------------------------
    def growth_factor(self, a) -> np.ndarray:
        """Linear growth factor D(a), normalised so D(1) = 1.

        EdS: D = a exactly.  General models use the standard integral
        D(a) ~ H(a) * Integral[ da' / (a' H(a'))^3 ].
        """
        a = np.asarray(a, dtype=float)
        if self._eds:
            return a
        return np.vectorize(self._growth_one)(a) / self._growth_one(1.0)

    def _growth_one(self, a: float) -> float:
        p = self.params

        def integrand(ap):
            e2 = p.omega_matter / ap**3 + p.omega_curvature / ap**2 + p.omega_lambda
            return ap**-3 * e2**-1.5

        val, _ = quad(integrand, 1e-8, a, limit=200)
        return np.sqrt(
            p.omega_matter / a**3 + p.omega_curvature / a**2 + p.omega_lambda
        ) * val

    def growth_rate(self, a) -> np.ndarray:
        """f = dlnD/dlna, used for Zel'dovich velocities (EdS: f = 1)."""
        a = np.asarray(a, dtype=float)
        if self._eds:
            return np.ones_like(a)
        eps = 1e-5
        lo = self.growth_factor(a * (1 - eps))
        hi = self.growth_factor(a * (1 + eps))
        return (np.log(hi) - np.log(lo)) / (2 * eps)
