"""Cosmological background, units and initial conditions.

Implements the "standard CDM" world model the paper simulates (Sec. 2.1):
the Friedmann expansion a(t), the CDM power spectrum of density fluctuations
P(k) with sigma_8 normalisation, Gaussian random field realisations, and
Zel'dovich-approximation initial conditions for gas and dark matter —
including the paper's nested static-subgrid ICs (64^3 root + 3 static levels
equivalent to 512^3 over the box).
"""

from repro.cosmology.parameters import CosmologyParameters, STANDARD_CDM
from repro.cosmology.friedmann import FriedmannSolver
from repro.cosmology.units import CodeUnits
from repro.cosmology.power_spectrum import PowerSpectrum, bbks_transfer, eisenstein_hu_transfer
from repro.cosmology.gaussian_field import GaussianRandomField
from repro.cosmology.zeldovich import ZeldovichIC, NestedGridIC
from repro.cosmology.tophat import DELTA_COLLAPSE, VIRIAL_OVERDENSITY, collapse_redshift, virial_temperature
from repro.cosmology.mass_function import PressSchechter

__all__ = [
    "CosmologyParameters",
    "STANDARD_CDM",
    "FriedmannSolver",
    "CodeUnits",
    "PowerSpectrum",
    "bbks_transfer",
    "eisenstein_hu_transfer",
    "GaussianRandomField",
    "ZeldovichIC",
    "NestedGridIC",
    "DELTA_COLLAPSE",
    "VIRIAL_OVERDENSITY",
    "collapse_redshift",
    "virial_temperature",
    "PressSchechter",
]
