"""Spherical top-hat collapse: the semi-analytic halo-formation model.

The standard analytic companion to N-body/hydro structure formation: a
uniform overdense sphere in an Einstein-de Sitter background follows the
cycloid solution, turns around when its linear-theory overdensity reaches
delta_lin ~ 1.062, and collapses at delta_c = 1.686 — the number the
paper's "protogalactic halo ... at z ~ 20" timing rests on.  Used by the
tests to validate when the simulation's first object should form, and by
:func:`collapse_redshift` to predict it from a realisation's peak height.
"""

from __future__ import annotations

import numpy as np

#: Linear overdensity at collapse (EdS): 3/20 * (12 pi)^(2/3).
DELTA_COLLAPSE = 3.0 / 20.0 * (12.0 * np.pi) ** (2.0 / 3.0)
#: Linear overdensity at turnaround: 3/20 * (6 pi)^(2/3) * ... = 1.0624.
DELTA_TURNAROUND = 3.0 / 20.0 * (6.0 * np.pi) ** (2.0 / 3.0)
#: Virial overdensity relative to the mean at collapse (18 pi^2).
VIRIAL_OVERDENSITY = 18.0 * np.pi**2


def cycloid_radius(theta):
    """Top-hat radius in units of r_max/2: r = (1 - cos theta)."""
    return 1.0 - np.cos(np.asarray(theta, dtype=float))


def cycloid_time(theta):
    """Time in units of t_max/pi: t = (theta - sin theta)."""
    th = np.asarray(theta, dtype=float)
    return th - np.sin(th)


def nonlinear_overdensity(theta):
    """Exact 1+delta of the top hat vs development angle theta."""
    th = np.asarray(theta, dtype=float)
    return 9.0 * (th - np.sin(th)) ** 2 / (2.0 * (1.0 - np.cos(th)) ** 3)


def linear_overdensity(theta):
    """Linear-theory delta extrapolated to the same time."""
    th = np.asarray(theta, dtype=float)
    return 3.0 / 20.0 * (6.0 * (th - np.sin(th))) ** (2.0 / 3.0)


def collapse_redshift(delta_lin_at_z: float, z: float) -> float:
    """Redshift at which a peak of linear overdensity delta (at z) collapses.

    EdS: delta grows as 1/(1+z), so collapse (delta_lin = 1.686) happens at
    1 + z_c = (1 + z) * delta / delta_c.
    """
    if delta_lin_at_z <= 0:
        return -1.0
    return (1.0 + z) * delta_lin_at_z / DELTA_COLLAPSE - 1.0


def peak_collapse_redshift(sigma: float, nu: float, z_of_sigma: float) -> float:
    """Collapse redshift of a nu-sigma peak given sigma at z_of_sigma."""
    return collapse_redshift(nu * sigma, z_of_sigma)


def virial_temperature(mass_msun: float, z: float, hubble: float = 0.5,
                       mu: float = 1.22) -> float:
    """Virial temperature of a halo (K), the standard EdS scaling.

    T_vir ~ 1.98e4 * (mu/0.6) * (M / 1e8 h^-1 Msun)^(2/3) * (1+z)/10 K —
    for the paper's 5e5 Msun halo at z=19 this is a few hundred to ~1000 K,
    which is why H2 (not atomic) cooling controls the collapse.
    """
    m8 = mass_msun * hubble / 1e8
    return 1.98e4 * (mu / 0.6) * m8 ** (2.0 / 3.0) * (1.0 + z) / 10.0
