"""Zel'dovich-approximation initial conditions for gas and dark matter.

Produces the paper's starting state (Sec. 4): a periodic box seeded from the
CDM power spectrum at high redshift, as grid fields for the baryons and a
particle lattice for the CDM — including the nested static-subgrid scheme
("we restart the calculation including three additional levels of static
meshes ... equivalent to 512^3 initial conditions over the entire box").

All fields come out in code units (:class:`repro.cosmology.units.CodeUnits`):
comoving density with cosmic-mean-total = 1, comoving peculiar velocity in
code velocities, comoving specific internal energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants as const
from repro.cosmology.friedmann import FriedmannSolver
from repro.cosmology.gaussian_field import GaussianRandomField, degrade_field
from repro.cosmology.parameters import CosmologyParameters
from repro.cosmology.units import CodeUnits
from repro.precision.position import PositionDD


@dataclass
class GasIC:
    """Gas fields on one uniform mesh covering ``region`` of the unit box."""

    density: np.ndarray  # comoving code density
    velocity: np.ndarray  # (3, n, n, n) code peculiar velocity
    energy: np.ndarray  # comoving specific internal energy (code)
    left_edge: np.ndarray = field(default_factory=lambda: np.zeros(3))
    right_edge: np.ndarray = field(default_factory=lambda: np.ones(3))


@dataclass
class ParticleIC:
    """Dark-matter particle load: EPA positions, code velocities, masses."""

    positions: PositionDD  # (n_p, 3) in [0,1)
    velocities: np.ndarray  # (n_p, 3) code units
    masses: np.ndarray  # (n_p,) code mass


class ZeldovichIC:
    """Single-level Zel'dovich initial conditions.

    Parameters
    ----------
    params, units:
        World model and unit system (box size lives in ``units``).
    z_init:
        Starting redshift (the paper begins "a few million years after the
        big bang", z ~ 100).
    n:
        Cells (and particles) per dimension.
    seed:
        Realisation seed.
    temperature_init:
        Initial gas temperature in K.  Default follows the post-decoupling
        adiabatic relation T ~ 2.73 (1+z)^2 / (1+z_dec) with z_dec ~ 137.
    transfer:
        'bbks' (default) or 'eisenstein_hu'.
    """

    def __init__(
        self,
        params: CosmologyParameters,
        units: CodeUnits,
        z_init: float,
        n: int,
        seed: int = 0,
        temperature_init: float | None = None,
        transfer: str = "bbks",
        power=None,
    ):
        from repro.cosmology.power_spectrum import PowerSpectrum

        self.params = params
        self.units = units
        self.z_init = float(z_init)
        self.n = int(n)
        self.seed = seed
        self.friedmann = FriedmannSolver(params)
        self.a_init = 1.0 / (1.0 + z_init)
        self.power = power or PowerSpectrum(params, transfer=transfer)
        if temperature_init is None:
            z_dec = 137.0
            temperature_init = (
                params.cmb_temperature * (1.0 + z_init) ** 2 / (1.0 + z_dec)
                if z_init < z_dec
                else params.cmb_temperature * (1.0 + z_init)
            )
        self.temperature_init = float(temperature_init)
        box_mpc_h = units.length_unit / const.MEGAPARSEC * params.hubble
        self.box_mpc_h = box_mpc_h
        self.field = GaussianRandomField(
            n, box_mpc_h, lambda k: self.power.at_redshift(k, z_init), seed=seed
        )

    # --- scalar helpers ----------------------------------------------------------
    def _velocity_scale(self) -> float:
        """Convert displacement (Mpc/h comoving) to code peculiar velocity.

        Zel'dovich: proper peculiar velocity v = a H(a) f(a) * D psi with psi
        comoving.  Code velocity *is* proper peculiar velocity (units.py), so
        the scale is a H f expressed in code units.  D is already folded into
        the field (realised *at* z_init).
        """
        a = self.a_init
        h_a = float(self.friedmann.hubble(a))
        f = float(self.friedmann.growth_rate(a))
        mpc_h_to_code = const.MEGAPARSEC / self.params.hubble / self.units.length_unit
        return a * h_a * f * mpc_h_to_code * self.units.length_unit / self.units.velocity_unit

    def mean_molecular_weight_init(self) -> float:
        return const.MU_NEUTRAL

    def gas_energy_code(self) -> float:
        """Uniform comoving specific internal energy in code units."""
        return float(
            self.units.energy_from_temperature(
                self.temperature_init, self.mean_molecular_weight_init(), self.a_init
            )
        )

    # --- products ----------------------------------------------------------------------
    def gas(self) -> GasIC:
        """Baryon fields on the full box at this resolution."""
        delta = self.field.delta
        baryon_fraction = self.params.omega_baryon / self.params.omega_matter
        density = baryon_fraction * np.clip(1.0 + delta, 0.05, None)
        psi = self.field.displacement()
        vel = psi * self._velocity_scale()
        energy = np.full_like(density, self.gas_energy_code())
        return GasIC(density=density, velocity=vel, energy=energy)

    def particles(self) -> ParticleIC:
        """CDM particle lattice displaced by the Zel'dovich field."""
        n = self.n
        psi = self.field.displacement()  # Mpc/h comoving
        mpc_h_to_code = const.MEGAPARSEC / self.params.hubble / self.units.length_unit
        # lattice of cell centres in [0,1)
        q1 = (np.arange(n) + 0.5) / n
        qx, qy, qz = np.meshgrid(q1, q1, q1, indexing="ij")
        q = np.stack([qx, qy, qz], axis=-1).reshape(-1, 3)
        disp = np.stack(
            [psi[0].ravel(), psi[1].ravel(), psi[2].ravel()], axis=-1
        ) * mpc_h_to_code
        pos = PositionDD(q).translate(disp)
        # periodic wrap component-wise
        pos = pos.wrap_periodic(0.0, 1.0)
        vel = disp / mpc_h_to_code * self._velocity_scale()  # psi * scale
        cdm_fraction = self.params.omega_cdm / self.params.omega_matter
        mass = cdm_fraction / n**3  # code mass per particle (total matter mean = 1)
        masses = np.full(n**3, mass)
        return ParticleIC(positions=pos, velocities=vel, masses=masses)


class NestedGridIC:
    """Nested static-subgrid initial conditions (paper Sec. 4).

    Generates one realisation at the finest IC resolution over the whole box,
    then volume-averages downward, so every level sees mutually consistent
    modes.  The refined region (``region_left``/``region_right``, in box
    units, snapped to coarse cells) receives ``static_levels`` levels of
    static meshes; particles are drawn at fine resolution inside the region
    and at root resolution outside, boosting mass resolution by
    ``refine_factor**(3*static_levels)`` exactly as the paper's factor 512.
    """

    def __init__(
        self,
        params: CosmologyParameters,
        units: CodeUnits,
        z_init: float,
        n_root: int,
        static_levels: int = 1,
        refine_factor: int = 2,
        region_left=(0.25, 0.25, 0.25),
        region_right=(0.75, 0.75, 0.75),
        seed: int = 0,
        temperature_init: float | None = None,
        transfer: str = "bbks",
        power=None,
    ):
        self.n_root = int(n_root)
        self.static_levels = int(static_levels)
        self.r = int(refine_factor)
        n_fine = n_root * self.r**static_levels
        if n_fine > 512:
            raise ValueError(f"fine IC grid {n_fine}^3 too large for this build")
        self.fine = ZeldovichIC(
            params,
            units,
            z_init,
            n_fine,
            seed=seed,
            temperature_init=temperature_init,
            transfer=transfer,
            power=power,
        )
        self.params = params
        self.units = units
        # snap region to root cells
        self.region_left = np.floor(np.asarray(region_left) * n_root) / n_root
        self.region_right = np.ceil(np.asarray(region_right) * n_root) / n_root

    def level_fields(self) -> list[GasIC]:
        """GasIC per level: level 0 covers the box, deeper levels the region."""
        fine_gas = self.fine.gas()
        out = []
        for level in range(self.static_levels + 1):
            factor = self.r ** (self.static_levels - level)
            density = degrade_field(fine_gas.density, factor) if factor > 1 else fine_gas.density
            vel = np.stack(
                [degrade_field(fine_gas.velocity[i], factor) if factor > 1 else fine_gas.velocity[i] for i in range(3)]
            )
            energy = degrade_field(fine_gas.energy, factor) if factor > 1 else fine_gas.energy
            if level == 0:
                out.append(GasIC(density, vel, energy))
            else:
                n_lvl = self.n_root * self.r**level
                lo = np.round(self.region_left * n_lvl).astype(int)
                hi = np.round(self.region_right * n_lvl).astype(int)
                sl = tuple(slice(lo[d], hi[d]) for d in range(3))
                out.append(
                    GasIC(
                        density[sl],
                        vel[(slice(None),) + sl],
                        energy[sl],
                        left_edge=lo / n_lvl,
                        right_edge=hi / n_lvl,
                    )
                )
        return out

    def particles(self) -> ParticleIC:
        """Multi-mass particle load: fine inside the region, coarse outside."""
        fine = self.fine.particles()
        n_fine = self.fine.n
        # lattice coordinates decide membership (not displaced positions),
        # so the split is deterministic and mass-conserving.
        q1 = (np.arange(n_fine) + 0.5) / n_fine
        qx, qy, qz = np.meshgrid(q1, q1, q1, indexing="ij")
        q = np.stack([qx, qy, qz], axis=-1).reshape(-1, 3)
        inside = np.all((q >= self.region_left) & (q < self.region_right), axis=1)

        pos_in = fine.positions[inside]
        vel_in = fine.velocities[inside]
        mass_in = fine.masses[inside]

        # outside: average fine particles in blocks of r^static_levels per dim
        factor = self.r**self.static_levels
        m = n_fine // factor
        block = (
            np.floor(q * m).astype(int) @ np.array([m * m, m, 1])
        )  # coarse cell id per fine particle
        outside = ~inside
        ids = block[outside]
        order = np.argsort(ids, kind="stable")
        ids_sorted = ids[order]
        uniq, starts = np.unique(ids_sorted, return_index=True)

        def _block_mean(arr):
            arr_s = arr[order]
            sums = np.add.reduceat(arr_s, starts, axis=0)
            counts = np.diff(np.append(starts, len(ids_sorted)))
            return sums / counts[:, None]

        pos_flat = np.stack([fine.positions.hi[outside], fine.positions.lo[outside]])
        # average hi and lo words separately then renormalise via PositionDD
        hi_mean = _block_mean(pos_flat[0])
        lo_mean = _block_mean(pos_flat[1])
        vel_mean = _block_mean(fine.velocities[outside])
        mass_s = fine.masses[outside][order]
        mass_sum = np.add.reduceat(mass_s, starts)

        pos_out = PositionDD(hi_mean, lo_mean)
        positions = PositionDD(
            np.concatenate([pos_in.hi, pos_out.hi]),
            np.concatenate([pos_in.lo, pos_out.lo]),
        )
        velocities = np.concatenate([vel_in, vel_mean])
        masses = np.concatenate([mass_in, mass_sum])
        return ParticleIC(positions=positions, velocities=velocities, masses=masses)
