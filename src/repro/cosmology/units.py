"""Comoving code units (Enzo conventions).

The hierarchy works in dimensionless comoving coordinates x in [0,1), with
comoving gas density and peculiar velocity.  This module owns every
conversion between those code quantities and cgs, so physics modules
(chemistry rates, cooling, Jeans length) can be written in physical units
and driven from code-unit fields.

Conventions
-----------
* ``length_unit``   — comoving cm per code length (the box size).
* ``density_unit``  — g/cm^3 of *comoving* density per code density, chosen
  as the mean matter density, so the cosmic mean is rho_code = 1.
* ``time_unit``     — seconds per code time, chosen as the gravitational
  dynamical time of the mean density at the initial redshift
  (1 / sqrt(4 pi G rho_mean_proper(z_init))); collapse then unfolds over
  O(1..100) code times.
* proper density  = comoving density / a^3;  proper length = a * comoving.
* code velocity is the *proper peculiar* velocity v = a dx/dt (Enzo's
  choice), in units of ``velocity_unit``; comoving coordinate drift is
  therefore dx/dt_code = v_code / a.
* code specific energy is the *proper* specific internal energy in units of
  ``energy_unit`` — with this choice the adiabatic expansion source term is
  the clean exponential exp(-3(gamma-1) (adot/a) dt).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants as const
from repro.cosmology.parameters import CosmologyParameters


@dataclass(frozen=True)
class CodeUnits:
    """Conversion factors between code units and cgs for one simulation."""

    length_unit: float  # comoving cm
    density_unit: float  # comoving g/cm^3
    time_unit: float  # s
    a_initial: float  # scale factor at initialisation (a=1 today)

    @classmethod
    def for_cosmology(
        cls,
        params: CosmologyParameters,
        box_comoving_kpc: float,
        z_initial: float,
    ) -> "CodeUnits":
        """Build the unit system the paper uses: a 256 comoving-kpc box."""
        a_i = 1.0 / (1.0 + z_initial)
        rho_mean_comoving = params.mean_matter_density_z0
        rho_mean_proper_init = rho_mean_comoving / a_i**3
        t_dyn = 1.0 / np.sqrt(
            4.0 * np.pi * const.GRAVITATIONAL_CONSTANT * rho_mean_proper_init
        )
        return cls(
            length_unit=box_comoving_kpc * const.KILOPARSEC,
            density_unit=rho_mean_comoving,
            time_unit=t_dyn,
            a_initial=a_i,
        )

    @classmethod
    def simple(cls, length_cm: float = 1.0, density_cgs: float = 1.0, time_s: float = 1.0):
        """Trivial unit system for non-cosmological test problems."""
        return cls(length_cm, density_cgs, time_s, a_initial=1.0)

    # --- derived units ---------------------------------------------------------
    @property
    def mass_unit(self) -> float:
        """g per code mass."""
        return self.density_unit * self.length_unit**3

    @property
    def velocity_unit(self) -> float:
        """cm/s (comoving) per code velocity."""
        return self.length_unit / self.time_unit

    @property
    def energy_unit(self) -> float:
        """erg/g per code specific energy."""
        return self.velocity_unit**2

    @property
    def gravity_constant_code(self) -> float:
        """G expressed in code units (for the Poisson solve)."""
        return (
            const.GRAVITATIONAL_CONSTANT
            * self.density_unit
            * self.time_unit**2
        )

    # --- proper/comoving helpers ---------------------------------------------------
    def proper_density_cgs(self, rho_code, a: float) -> np.ndarray:
        """Proper mass density in g/cm^3 from comoving code density."""
        return np.asarray(rho_code) * self.density_unit / a**3

    def proper_length_cm(self, x_code, a: float) -> np.ndarray:
        return np.asarray(x_code) * self.length_unit * a

    def comoving_length_code(self, length_cm: float) -> float:
        return length_cm / self.length_unit

    # --- thermodynamics ---------------------------------------------------------------
    def temperature_from_energy(self, e_code, mu, a: float = 1.0, gamma: float = const.GAMMA):
        """Gas temperature in K from proper specific internal energy in code units.

        The ``a`` argument is accepted for interface symmetry but unused:
        code energy is already proper.
        """
        del a
        e_proper = np.asarray(e_code) * self.energy_unit
        return (gamma - 1.0) * np.asarray(mu) * const.HYDROGEN_MASS * e_proper / const.BOLTZMANN_CONSTANT

    def energy_from_temperature(self, temperature, mu, a: float = 1.0, gamma: float = const.GAMMA):
        """Inverse of :meth:`temperature_from_energy`."""
        del a
        e_proper = (
            const.BOLTZMANN_CONSTANT
            * np.asarray(temperature)
            / ((gamma - 1.0) * np.asarray(mu) * const.HYDROGEN_MASS)
        )
        return e_proper / self.energy_unit

    def number_density_cgs(self, rho_code, a: float, mean_mass_amu: float = 1.0):
        """Particle number density in cm^-3 from comoving code density."""
        return self.proper_density_cgs(rho_code, a) / (mean_mass_amu * const.HYDROGEN_MASS)

    def sound_speed_code(self, e_code, gamma: float = const.GAMMA):
        """Proper sound speed in code velocity units from code specific energy."""
        return np.sqrt(gamma * (gamma - 1.0) * np.asarray(e_code))

    def jeans_length_code(self, rho_code, e_code, a: float, gamma: float = const.GAMMA):
        """Comoving Jeans length in code units.

        L_J = c_s * sqrt(pi / (G rho_proper)); everything converted so the
        result is directly comparable to comoving cell widths.
        """
        cs_proper = np.sqrt(gamma * (gamma - 1.0) * np.asarray(e_code)) * self.velocity_unit
        rho_proper = self.proper_density_cgs(rho_code, a)
        lj_proper_cm = cs_proper * np.sqrt(
            np.pi / (const.GRAVITATIONAL_CONSTANT * np.maximum(rho_proper, 1e-300))
        )
        return lj_proper_cm / (a * self.length_unit)
