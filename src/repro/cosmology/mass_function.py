"""Press-Schechter halo mass function.

The analytic abundance companion to the paper's setup: with sigma(M) from
the CDM power spectrum and the top-hat collapse threshold delta_c, the
Press-Schechter (1974) formula predicts how many haloes of the paper's
~5e5 Msun class exist per comoving volume at z ~ 20 — the quantity that
makes the "first star" ab-initio problem well-posed (rare peaks, but not
too rare to simulate with a 256-kpc box plus rare-peak initial conditions).
"""

from __future__ import annotations

import numpy as np

from repro import constants as const
from repro.cosmology.power_spectrum import PowerSpectrum
from repro.cosmology.tophat import DELTA_COLLAPSE


class PressSchechter:
    """dn/dlnM and cumulative abundances for a given spectrum."""

    def __init__(self, power: PowerSpectrum):
        self.power = power
        self.params = power.params

    def sigma(self, mass_msun_h: float, z: float = 0.0) -> float:
        return self.power.sigma_mass(mass_msun_h, z)

    def nu(self, mass_msun_h: float, z: float) -> float:
        """Peak height nu = delta_c / sigma(M, z)."""
        return DELTA_COLLAPSE / self.sigma(mass_msun_h, z)

    def multiplicity(self, nu) -> np.ndarray:
        """PS multiplicity f(nu) = sqrt(2/pi) nu exp(-nu^2/2)."""
        nu = np.asarray(nu, dtype=float)
        return np.sqrt(2.0 / np.pi) * nu * np.exp(-0.5 * nu**2)

    def dn_dlnM(self, mass_msun_h, z: float) -> np.ndarray:
        """Comoving number density per ln M, in (Mpc/h)^-3.

        dn/dlnM = (rho_m / M) f(nu) |dln sigma / dln M|.
        """
        masses = np.atleast_1d(np.asarray(mass_msun_h, dtype=float))
        rho_m = (
            self.params.mean_matter_density_z0
            * (const.MEGAPARSEC / self.params.hubble) ** 3
            / (const.SOLAR_MASS / self.params.hubble)
        )  # Msun/h per (Mpc/h)^3
        out = np.empty_like(masses)
        for i, m in enumerate(masses):
            lnm = np.log(m)
            eps = 0.05
            s1 = self.sigma(np.exp(lnm - eps), z)
            s2 = self.sigma(np.exp(lnm + eps), z)
            dlns_dlnm = (np.log(s2) - np.log(s1)) / (2 * eps)
            nu = self.nu(m, z)
            out[i] = rho_m / m * self.multiplicity(nu) * abs(dlns_dlnm)
        return out if out.size > 1 else float(out[0])

    def collapsed_fraction(self, mass_msun_h: float, z: float) -> float:
        """Fraction of mass in haloes above M (the PS erfc form)."""
        from scipy.special import erfc

        nu = self.nu(mass_msun_h, z)
        return float(erfc(nu / np.sqrt(2.0)))

    def expected_halos_in_box(self, mass_msun_h: float, z: float,
                              box_mpc_h: float) -> float:
        """Expected count of haloes within a decade of mass M in a box."""
        m_grid = np.exp(np.linspace(np.log(mass_msun_h / 3), np.log(mass_msun_h * 3), 16))
        dn = self.dn_dlnM(m_grid, z)
        integral = np.trapezoid(dn, np.log(m_grid))
        return float(integral * box_mpc_h**3)
