"""CDM power spectrum of density fluctuations P(k).

The paper's initial conditions come from "an inflation-inspired cosmological
model" whose power spectrum P(k) is "known or calculable once a Friedmann
world model is specified" (Sec. 2.1).  We implement the classic BBKS
(Bardeen, Bond, Kaiser & Szalay 1986) transfer function — the standard
choice for SCDM work of that era — plus the Eisenstein & Hu (1998)
zero-baryon form as an alternative, with top-hat sigma_8 normalisation.

The key property the paper relies on — logarithmically divergent rms
fluctuations toward small mass scales, driving bottom-up hierarchical
collapse — is tested in the suite via sigma(M) monotonicity.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad

from repro import constants as const
from repro.cosmology.friedmann import FriedmannSolver
from repro.cosmology.parameters import CosmologyParameters


def bbks_transfer(k_over_hmpc: np.ndarray, gamma_shape: float) -> np.ndarray:
    """BBKS CDM transfer function T(k).

    Parameters
    ----------
    k_over_hmpc:
        Wavenumber in h/Mpc (comoving).
    gamma_shape:
        Shape parameter, Gamma = Omega_m * h for pure CDM.
    """
    k = np.asarray(k_over_hmpc, dtype=float)
    q = k / gamma_shape
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (
            np.log(1.0 + 2.34 * q)
            / (2.34 * q)
            * (1.0 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4)
            ** -0.25
        )
    return np.where(q <= 0, 1.0, t)


def eisenstein_hu_transfer(
    k_over_hmpc: np.ndarray, omega_m: float, omega_b: float, h: float, theta_cmb: float = 2.725 / 2.7
) -> np.ndarray:
    """Eisenstein & Hu (1998) zero-baryon ("no-wiggle") transfer function."""
    k = np.asarray(k_over_hmpc, dtype=float) * h  # 1/Mpc
    om_h2 = omega_m * h * h
    ob_h2 = omega_b * h * h
    # sound horizon fit (Eq. 26)
    s = 44.5 * np.log(9.83 / om_h2) / np.sqrt(1.0 + 10.0 * ob_h2**0.75)
    alpha_gamma = (
        1.0
        - 0.328 * np.log(431.0 * om_h2) * (ob_h2 / om_h2)
        + 0.38 * np.log(22.3 * om_h2) * (ob_h2 / om_h2) ** 2
    )
    gamma_eff = omega_m * h * (
        alpha_gamma + (1.0 - alpha_gamma) / (1.0 + (0.43 * k * s) ** 4)
    )
    q = k * theta_cmb**2 / (gamma_eff * h)
    l0 = np.log(2.0 * np.e + 1.8 * q)
    c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = l0 / (l0 + c0 * q * q)
    return np.where(q <= 0, 1.0, t)


def _tophat_window(x: np.ndarray) -> np.ndarray:
    """Fourier transform of a real-space top-hat, W(kR)."""
    x = np.asarray(x, dtype=float)
    small = np.abs(x) < 1e-6
    with np.errstate(divide="ignore", invalid="ignore"):
        w = 3.0 * (np.sin(x) - x * np.cos(x)) / x**3
    return np.where(small, 1.0 - x**2 / 10.0, w)


class PowerSpectrum:
    """sigma_8-normalised linear matter power spectrum at any redshift.

    ``P(k)`` returns the z=0 spectrum in (Mpc/h)^3 for k in h/Mpc; use
    ``at_redshift`` scaling (via the growth factor) for initial conditions.
    """

    def __init__(
        self,
        params: CosmologyParameters,
        transfer: str = "bbks",
        friedmann: FriedmannSolver | None = None,
    ):
        self.params = params
        self.friedmann = friedmann or FriedmannSolver(params)
        if transfer == "bbks":
            gamma_shape = params.omega_matter * params.hubble
            self._transfer = lambda k: bbks_transfer(k, gamma_shape)
        elif transfer == "eisenstein_hu":
            self._transfer = lambda k: eisenstein_hu_transfer(
                k, params.omega_matter, params.omega_baryon, params.hubble
            )
        else:
            raise ValueError(f"unknown transfer function '{transfer}'")
        self._norm = 1.0
        self._norm = (params.sigma8 / self.sigma_r(8.0)) ** 2

    def transfer(self, k_over_hmpc) -> np.ndarray:
        return self._transfer(np.asarray(k_over_hmpc, dtype=float))

    def __call__(self, k_over_hmpc) -> np.ndarray:
        """z=0 power P(k) in (Mpc/h)^3; k in h/Mpc."""
        k = np.asarray(k_over_hmpc, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            p = self._norm * k**self.params.spectral_index * self.transfer(k) ** 2
        return np.where(k <= 0.0, 0.0, p)

    def at_redshift(self, k_over_hmpc, z: float) -> np.ndarray:
        """Linear power spectrum at redshift z."""
        d = float(self.friedmann.growth_factor(1.0 / (1.0 + z)))
        return self(k_over_hmpc) * d * d

    def sigma_r(self, radius_mpc_h: float, z: float = 0.0) -> float:
        """rms linear fluctuation in a top-hat of comoving radius R (Mpc/h)."""

        def integrand(lnk):
            k = np.exp(lnk)
            return k**3 * self(k) * _tophat_window(k * radius_mpc_h) ** 2 / (2.0 * np.pi**2)

        val, _ = quad(integrand, np.log(1e-5), np.log(1e5), limit=400)
        d = 1.0 if z == 0.0 else float(self.friedmann.growth_factor(1.0 / (1.0 + z)))
        return float(np.sqrt(val)) * d

    def sigma_mass(self, mass_msun_h: float, z: float = 0.0) -> float:
        """rms fluctuation on mass scale M (Msun/h), via the top-hat radius."""
        rho_mean = self.params.mean_matter_density_z0  # g/cm^3 comoving
        mass_g = mass_msun_h * const.SOLAR_MASS / self.params.hubble
        r_cm = (3.0 * mass_g / (4.0 * np.pi * rho_mean)) ** (1.0 / 3.0)
        r_mpc_h = r_cm / const.MEGAPARSEC * self.params.hubble
        return self.sigma_r(r_mpc_h, z)
