"""Section 5 table: fraction of compute time per science component.

Paper's measured fractions (64-processor hero run):

    hydrodynamics        36 %
    Poisson solver       17 %
    chemistry & cooling  11 %
    N-body                1 %
    hierarchy rebuild     9 %
    boundary conditions  15 %
    other overhead       11 %

The bench runs the full-physics collapse under the component timers and
prints measured-vs-paper.  Absolute fractions depend on the platform
(NumPy kernels vs F77), but the *ordering* the paper emphasises —
hydro dominant; gravity, boundary, chemistry as the middle tier; N-body
near-negligible — is asserted.
"""

PAPER_TABLE = {
    "hydro": 0.36,
    "gravity": 0.17,
    "chemistry": 0.11,
    "nbody": 0.01,
    "rebuild": 0.09,
    "boundary": 0.15,
    "other overhead": 0.11,
}


def test_component_usage_table(benchmark, collapse_run):
    run = benchmark.pedantic(lambda: collapse_run, rounds=1, iterations=1)
    measured = dict(run.final_fractions)  # frozen at run completion
    # fold the small AMR bookkeeping entries the paper groups as overhead
    measured.setdefault("flux_correction", 0.0)
    measured.setdefault("projection", 0.0)
    overhead = (
        measured.pop("flux_correction") + measured.pop("projection")
        + measured.get("other overhead", 0.0)
    )
    measured["other overhead"] = overhead

    print(f"\n{'component':<18} {'paper':>8} {'measured':>10}")
    for name, paper_frac in PAPER_TABLE.items():
        got = measured.get(name, 0.0)
        print(f"{name:<18} {100 * paper_frac:7.0f}% {100 * got:9.1f}%")

    # the orderings the paper's table expresses
    assert measured["hydro"] == max(
        measured.get(k, 0.0) for k in PAPER_TABLE
    ), "hydrodynamics must dominate"
    assert measured.get("nbody", 0.0) < measured["hydro"] * 0.5, \
        "N-body must be a minor component"
    assert measured.get("gravity", 0.0) > 0, "Poisson solver must register"
    assert measured.get("chemistry", 0.0) > 0, "chemistry must register"
    assert measured.get("boundary", 0.0) > 0
    assert measured.get("rebuild", 0.0) > 0

    # middle tier (gravity/boundary/chemistry/rebuild) between nbody & hydro
    mid = ["gravity", "boundary", "chemistry", "rebuild"]
    for name in mid:
        assert measured[name] < measured["hydro"]
    total = sum(measured.get(k, 0.0) for k in PAPER_TABLE)
    assert abs(total - 1.0) < 0.05
    print("\nordering reproduced: hydro > {gravity, boundary, chemistry, "
          "rebuild} >> nbody")
