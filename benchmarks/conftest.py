"""Shared fixtures for the reproduction benchmarks.

Heavy simulation states are built once per session and reused by every
bench that reads them; `benchmark.pedantic(..., rounds=1)` keeps the
actual simulations from being re-run by the timing machinery.
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def collapse_run():
    """A scaled primordial-collapse run with full physics, shared by the
    Fig. 3/4/5 and component-table benches."""
    from repro.perf import ComponentTimers
    from repro.problems import PrimordialCollapse

    timers = ComponentTimers()
    run = PrimordialCollapse(
        n_root=8, max_level=2, z_init=100.0, seed=7, amplitude_boost=4.0,
        jeans_number=4.0, mass_refine_factor=8.0,
        with_chemistry=True, with_dark_matter=True, timers=timers,
    )
    run.initial_rebuild()
    for z_stop in (75.0, 65.0, 58.0):
        run.run_to_redshift(z_stop, max_root_steps=250)
        run.snapshot(label=f"z={run.current_redshift:.1f}")
    # freeze the component fractions now: the timers' wall clock keeps
    # ticking while unrelated benches run, which would dilute them
    run.final_fractions = timers.fractions()
    return run


@pytest.fixture(scope="session")
def sphere_run():
    """A deep isothermal-collapse hierarchy (fast driver for Fig. 3/5)."""
    from repro.problems import SphereCollapse

    sc = SphereCollapse(n_root=16, max_level=3, overdensity=25.0, max_dims=8)
    sc.stats.snapshot_levels(sc.hierarchy, 0.0)
    sc.run(max_root_steps=25)
    sc.stats.snapshot_levels(sc.hierarchy, float(sc.hierarchy.root.time))
    return sc
