"""Section 3.5: extended precision arithmetic costs and coverage.

The paper's three EPA claims, each measured here:

1. **Necessity** — at dynamic range 1e12, float64 cannot distinguish
   x + dx from x (the paper: need dx/x ~ 1e-12 with ~100x headroom).
2. **Cost** — native 128-bit was "some 30 times slower than 64 bit" (SGI).
   Our double-double kernels have a software-emulation overhead of the
   same order; the bench times dd vs f64 kernels.
3. **Containment** — "we have identified only those operations which
   require high precision ... this reduced the total high-precision
   operation count to ~5 % of the total."  The bench censuses a real
   collapse step: EPA ops (position/time updates) vs total field ops.
"""

import numpy as np

from repro.precision import DDArray, core


def test_epa_necessity(benchmark):
    """float64 loses deep-hierarchy offsets; double-double keeps them."""

    def demo():
        base = 2.0 / 3.0
        results = {}
        for level in (20, 30, 44, 50):
            dx = 2.0 ** -level * 1.3  # non-dyadic offset at this depth
            f64_ok = ((base + dx) - base) == dx
            hi, lo = core.dd_add_f64(base, 0.0, dx)
            d_hi, d_lo = core.dd_sub(hi, lo, base, 0.0)
            dd_ok = (d_hi + d_lo) == dx
            results[level] = (f64_ok, dd_ok)
        return results

    results = benchmark.pedantic(demo, rounds=1, iterations=1)
    print("\nlevel   dx/x        float64 exact?   double-double exact?")
    for level, (f64_ok, dd_ok) in results.items():
        print(f"{level:5d}   2^-{level:<6d}  {str(f64_ok):<15} {dd_ok}")
        assert dd_ok, "EPA must always resolve the offset"
    # float64 must fail somewhere in the paper's regime (1e-12 ~ 2^-40
    # with 100x headroom -> ~2^-46)
    assert not results[50][0], "float64 should fail at depth 50"


def test_epa_cost_ratio(benchmark):
    """dd arithmetic vs f64 arithmetic throughput (paper: ~30x on SGI)."""
    import time

    n = 200_000
    rng = np.random.default_rng(0)
    a = rng.random(n) + 0.5
    b = rng.random(n) + 0.5
    z = np.zeros(n)

    def time_it(fn, reps=20):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    t_f64 = time_it(lambda: (a + b) * b / a)
    def dd_work():
        s = core.dd_add(a, z, b, z)
        p = core.dd_mul(*s, b, z)
        core.dd_div(*p, a, z)
    t_dd = benchmark.pedantic(lambda: time_it(dd_work), rounds=1, iterations=1)
    ratio = t_dd / t_f64
    print(f"\nf64 kernel : {1e3 * t_f64:.2f} ms")
    print(f"dd kernel  : {1e3 * t_dd:.2f} ms")
    print(f"overhead   : {ratio:.1f}x  (paper: ~30x for native 128-bit on "
          f"the Origin2000; Bailey-style software dd is the same order)")
    assert 3 < ratio < 300


def test_epa_operation_containment(benchmark):
    """EPA ops stay a small fraction of total ops in a real AMR step."""
    from repro.problems import SphereCollapse

    def census():
        sc = SphereCollapse(n_root=8, max_level=2, overdensity=20.0)
        # particles make the EPA count realistic
        from repro.nbody.particles import ParticleSet
        from repro.precision.position import PositionDD

        rng = np.random.default_rng(1)
        n_p = 8**3
        sc.hierarchy.particles = ParticleSet(
            PositionDD(rng.random((n_p, 3))),
            0.01 * rng.standard_normal((n_p, 3)),
            np.full(n_p, 1e-6),
        )
        sc.run(max_root_steps=4)
        # census: EPA ops = particle drifts (3 dd ops each) + per-grid time
        # updates; total ops = field-cell updates across all level steps
        epa_ops = 0
        total_ops = 0
        for level, n_steps in sc.evolver.step_counter.items():
            cells = sum(g.n_cells for g in sc.hierarchy.level_grids(level))
            total_ops += cells * n_steps * 750  # hydro flops/cell
            epa_ops += n_steps * (len(sc.hierarchy.particles) * 3 * 20 + 20)
        return epa_ops, total_ops

    epa_ops, total_ops = benchmark.pedantic(census, rounds=1, iterations=1)
    frac = epa_ops / (epa_ops + total_ops)
    print(f"\nEPA operations   : {epa_ops:.3e}")
    print(f"total operations : {total_ops:.3e}")
    print(f"EPA fraction     : {100 * frac:.2f} % (paper: ~5 %)")
    assert frac < 0.15, "EPA must stay a small fraction of the work"


def test_epa_memory_confinement(benchmark):
    """Grid geometry holds integer indices + dd edges only — field arrays
    stay float64 (the paper's memory-consumption argument)."""
    from repro.amr import Grid

    def measure():
        g = Grid(30, (2**33, 2**33, 2**33), (16, 16, 16), n_root=8)
        g.allocate()
        field_bytes = g.memory_bytes()
        # EPA state: start_index (int64) + the derived dd edges
        epa_bytes = g.start_index.nbytes + 2 * 3 * 8
        return epa_bytes, field_bytes

    epa_bytes, field_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nEPA geometry bytes : {epa_bytes}")
    print(f"field bytes        : {field_bytes}")
    print(f"EPA memory fraction: {100 * epa_bytes / field_bytes:.4f} %")
    assert epa_bytes < 0.001 * field_bytes
