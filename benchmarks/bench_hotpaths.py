"""Hot-path microbenchmark: cached hierarchy topology vs. the seed's scans.

The paper's hero run holds >8000 subgrids across 34 levels; every boundary
fill and every gravity sibling-exchange pass needs each grid's sibling
list.  The seed recomputed it per call — an O(N^2) all-pairs scan with
full overlap tests — while the topology layer (``repro.amr.topology``)
builds per-level maps with precomputed slices once per structural epoch.

This bench builds a deep hierarchy of many small subgrids (the paper's
"generally small (~20^3) and numerous" regime), times

* ``set_boundary_values`` on the crowded level,
* ``HierarchyGravity.solve_level`` on the crowded level, and
* the root-grid FFT solve with / without the Green's-function cache,

against a faithful re-implementation of the seed's uncached algorithms
(per-pair sibling scans, per-call slice arithmetic, and the seed's
always-"improved" sibling exchange that never detects convergence), and
writes ``BENCH_hotpaths.json`` next to this file — the perf trajectory's
first datapoint.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--smoke] [--out X.json]

or via pytest (smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpaths.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import (
    copy_from_siblings,
    interpolate_from_parent,
    set_boundary_values,
)
from repro.amr.gravity import HierarchyGravity, _exchange_rim
from repro.gravity.fft_poisson import _inverse_eigenvalues, solve_periodic


# --------------------------------------------------------------- hierarchy
def build_hierarchy(children_per_dim: int, child_cells: int,
                    deep_levels: int) -> Hierarchy:
    """Tile level 1 with children_per_dim^3 subgrids of child_cells^3 cells,
    then refine a corner chain deep_levels further (one small grid each) so
    the hierarchy is deep as well as crowded."""
    n_root = children_per_dim * child_cells // 2
    h = Hierarchy(n_root=n_root)
    rng = np.random.default_rng(42)
    root = h.root
    root.fields["density"][root.interior] = 1.0 + 0.5 * rng.random(
        tuple(int(d) for d in root.dims)
    )
    for i in range(children_per_dim):
        for j in range(children_per_dim):
            for k in range(children_per_dim):
                start = (i * child_cells, j * child_cells, k * child_cells)
                g = Grid(1, start, (child_cells,) * 3, n_root, 2, h.nghost)
                h.add_grid(g, root)
                g.fields["density"][...] = 1.0 + 0.5 * rng.random(
                    g.shape_with_ghosts
                )
    parent = h.level_grids(1)[0]
    dims = max(child_cells, 4)
    for lvl in range(2, 2 + deep_levels):
        g = Grid(lvl, tuple(2 * s for s in parent.start_index), (dims,) * 3,
                 n_root, 2, h.nghost)
        h.add_grid(g, parent)
        g.fields["density"][...] = 1.0
        parent = g
    return h


# ------------------------------------------------- seed (uncached) baselines
def _scan_siblings(h: Hierarchy, grid: Grid) -> list[Grid]:
    """The seed's Hierarchy.siblings: per-pair overlap tests, every call."""
    return [
        other for other in h.level_grids(grid.level)
        if other is not grid and grid.ghost_overlap_with(other) is not None
    ]


def baseline_set_boundary_values(h: Hierarchy, level: int) -> None:
    """Seed set_boundary_values: re-scan siblings + per-call slice math."""
    grids = h.level_grids(level)
    for g in grids:
        interpolate_from_parent(g, g.parent)
    for g in grids:
        copy_from_siblings(g, _scan_siblings(h, g))


def baseline_solve_level(grav: HierarchyGravity, h: Hierarchy, level: int,
                         a: float = 1.0) -> None:
    """Seed solve_level: sibling scan per pass and the stalled exit
    (any overlap counted as 'improved', so every pass always runs)."""
    grids = h.level_grids(level)
    sources = {g.grid_id: grav.source(h, g, a) for g in grids}
    boundaries = {g.grid_id: grav._parent_boundary(g) for g in grids}
    for _ in range(grav.sibling_iterations):
        for g in grids:
            sol = grav.mg.solve(sources[g.grid_id], g.dx, boundaries[g.grid_id])
            grav._store_phi(g, sol)
        improved = False
        for g in grids:
            for other in _scan_siblings(h, g):
                _exchange_rim(g, other, boundaries[g.grid_id])
                improved = True  # the seed's bug: overlap == progress
        if not improved:
            break


# ------------------------------------------------------------------ timing
def _time(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(config: dict) -> dict:
    h = build_hierarchy(config["children_per_dim"], config["child_cells"],
                        config["deep_levels"])
    n_sub = h.n_grids - 1
    grav = HierarchyGravity(
        g_code=1.0,
        mean_density=float(h.root.field_view("density").mean()),
        sibling_iterations=config["sibling_iterations"],
        mg_tol=1e-4,
    )
    grav.solve_level(h, 0)  # root potential feeds the level-1 rims
    set_boundary_values(h, 1)  # warm ghost zones for both variants
    reps = config["repeats"]

    h.topology_cache_enabled = True
    h.sibling_map(1)  # build outside the timed region: steady-state cost
    t_bc_cached = _time(lambda: set_boundary_values(h, 1), reps)
    t_sl_cached = _time(lambda: grav.solve_level(h, 1), reps)

    h.topology_cache_enabled = False
    t_bc_base = _time(lambda: baseline_set_boundary_values(h, 1), reps)
    t_sl_base = _time(lambda: baseline_solve_level(grav, h, 1), reps)
    h.topology_cache_enabled = True

    # FFT Green's-function cache on the root solve
    src = grav.source(h, h.root, 1.0)
    dx = h.root.dx
    solve_periodic(src, dx)  # prime
    t_fft_cached = _time(lambda: solve_periodic(src, dx), reps)

    def fft_cold():
        _inverse_eigenvalues.cache_clear()
        solve_periodic(src, dx)

    t_fft_base = _time(fft_cold, reps)

    combined_base = t_bc_base + t_sl_base
    combined_cached = t_bc_cached + t_sl_cached
    return {
        "n_subgrids": n_sub,
        "max_level": h.max_level,
        "set_boundary_values": {
            "uncached_s": t_bc_base,
            "cached_s": t_bc_cached,
            "speedup": t_bc_base / t_bc_cached,
        },
        "solve_level": {
            "uncached_s": t_sl_base,
            "cached_s": t_sl_cached,
            "speedup": t_sl_base / t_sl_cached,
        },
        "combined": {
            "uncached_s": combined_base,
            "cached_s": combined_cached,
            "speedup": combined_base / combined_cached,
        },
        "fft_green_cache": {
            "uncached_s": t_fft_base,
            "cached_s": t_fft_cached,
            "speedup": t_fft_base / t_fft_cached,
        },
    }


# 8^3 = 512 subgrids of 4^3 cells: the "small and numerous" regime where
# the seed's O(N^2) per-call sibling scans dominate the level's physics.
SMOKE = {"children_per_dim": 8, "child_cells": 4, "deep_levels": 2,
         "sibling_iterations": 4, "repeats": 1}
FULL = {"children_per_dim": 8, "child_cells": 4, "deep_levels": 4,
        "sibling_iterations": 4, "repeats": 3}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small configuration for CI (64 subgrids)")
    ap.add_argument("--out", default=str(Path(__file__).parent / "BENCH_hotpaths.json"))
    args = ap.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    results = run(config)
    payload = {
        "bench": "hotpaths",
        "mode": "smoke" if args.smoke else "full",
        "config": config,
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_hotpaths_smoke():
    """Pytest entry: the cached hot paths beat the seed's scans >= 3x."""
    results = run(SMOKE)
    assert results["n_subgrids"] >= 64
    assert results["combined"]["speedup"] >= 3.0, results["combined"]
    assert results["set_boundary_values"]["speedup"] >= 1.5, \
        results["set_boundary_values"]


if __name__ == "__main__":
    raise SystemExit(main())
