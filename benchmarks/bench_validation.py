"""Validation-suite benchmark: convergence orders + harness throughput.

Runs the two analytic problems (Sod shock tube, Sedov-Taylor blast)
through the convergence harness (``repro.validation.run_convergence``),
checks every fitted L1 order against the floors stored in
``validation_floors.json``, and records the error norms plus a
cells-advanced-per-second throughput figure for each resolution.  The
floors are deliberately below the deterministic measured orders (the
margin absorbs cross-platform FP drift); a regression that smears a
shock front or breaks the solver's reconstruction drops the fitted order
straight through them.

Writes ``BENCH_validation.json`` next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_validation.py [--smoke] [--out X.json]

or via pytest (smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_validation.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

FLOORS_PATH = Path(__file__).parent / "validation_floors.json"

#: full mode adds a third resolution per problem to each smoke ladder
FULL_EXTRA = {"shock_tube": (256,), "sedov": (32,)}


def load_floors() -> dict:
    with open(FLOORS_PATH, encoding="utf-8") as fh:
        return {k: v for k, v in json.load(fh).items() if k != "comment"}


def run_problem(name: str, spec: dict, full: bool) -> dict:
    from repro.validation import get_problem, run_convergence, validate_report

    resolutions = tuple(spec["resolutions"])
    if full:
        resolutions += tuple(FULL_EXTRA.get(name, ()))
    t0 = time.perf_counter()
    report = run_convergence(
        name, resolutions=resolutions,
        fields=tuple(spec["floors"]), t_end=spec["t_end"],
    )
    wall = time.perf_counter() - t0
    # schema round-trip: what CI consumes must survive serialisation
    validate_report(json.loads(report.to_json()))

    # throughput: cell-updates per second across the whole ladder
    prob_spec = get_problem(name)
    steps = report.meta.get("steps", {})
    ndim = 3 if "3d" in prob_spec.tags else 1
    cell_updates = sum(
        int(steps.get(str(n), steps.get(n, 0))) * n**ndim
        for n in resolutions
    )

    orders = {f: report.order(f) for f in report.fields}
    checks = {
        f: {"order": orders[f], "floor": spec["floors"][f],
            "ok": orders[f] >= spec["floors"][f]}
        for f in spec["floors"]
    }
    return {
        "resolutions": list(resolutions),
        "t_end": spec["t_end"],
        "orders": orders,
        "pairwise_orders": report.pairwise_orders,
        "l1": {f: [row["l1"] for row in report.norms[f]]
               for f in report.fields},
        "floors": checks,
        "all_floors_met": all(c["ok"] for c in checks.values()),
        "wall_s": wall,
        "cell_updates_per_s": cell_updates / wall if wall > 0 else 0.0,
    }


def run(full: bool) -> dict:
    return {name: run_problem(name, spec, full)
            for name, spec in load_floors().items()}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="floor ladders only (the CI configuration)")
    ap.add_argument("--out",
                    default=str(Path(__file__).parent / "BENCH_validation.json"))
    args = ap.parse_args(argv)
    results = run(full=not args.smoke)
    payload = {
        "bench": "validation",
        "mode": "smoke" if args.smoke else "full",
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0 if all(r["all_floors_met"] for r in results.values()) else 1


def test_validation_bench_smoke():
    """Pytest entry: every stored convergence-order floor holds."""
    results = run(full=False)
    for name, res in results.items():
        assert res["all_floors_met"], (name, res["floors"])


if __name__ == "__main__":
    raise SystemExit(main())
