"""Run-service scheduling benchmark: fair-share + backfill vs FIFO.

A 12-run mixed queue on a 4-worker budget — the shape of a night of
parameter-study collapses: two tenants, a couple of wide high-priority
runs, a tail of narrow cheap ones, arrivals staggered over the first
"hour".  The queue is replayed through the *production*
:class:`~repro.service.scheduler.FairShareScheduler` twice — once with
every feature on, once as the strict-FIFO baseline — under the
virtual-time cluster, so the comparison measures the decision logic
itself rather than simulation noise.  Reported per scheduler: makespan,
utilisation of the worker budget, runs per hour, mean wait, preemptions.

Writes ``BENCH_service.json`` next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--out X.json]

or via pytest (asserts the scheduled queue beats FIFO)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.service import FairShareScheduler, SimJob, VirtualCluster

TOTAL_WORKERS = 4


def mixed_queue() -> list[SimJob]:
    """12 runs, two tenants, mixed widths/priorities, staggered arrivals.

    Durations are in virtual minutes; ``cells`` carries the analytic size
    estimate the cost model sees before any run has been measured.
    """
    jobs = [
        # tenant A: a wide long survey run, then narrow follow-ups
        SimJob("a-survey", duration=90.0, tenant="alice", workers=4,
               arrival=0.0, cells=4096),
        SimJob("a-follow1", duration=12.0, tenant="alice", workers=1,
               arrival=5.0, cells=512),
        SimJob("a-follow2", duration=12.0, tenant="alice", workers=1,
               arrival=5.0, cells=512),
        SimJob("a-follow3", duration=12.0, tenant="alice", workers=1,
               arrival=10.0, cells=512),
        SimJob("a-hero", duration=60.0, tenant="alice", workers=2,
               priority=5, arrival=30.0, cells=2048),
        SimJob("a-follow4", duration=8.0, tenant="alice", workers=1,
               arrival=45.0, cells=256),
        # tenant B: a steady stream of medium runs plus one urgent one
        SimJob("b-sweep1", duration=25.0, tenant="bob", workers=2,
               arrival=0.0, cells=1024),
        SimJob("b-sweep2", duration=25.0, tenant="bob", workers=2,
               arrival=15.0, cells=1024),
        SimJob("b-sweep3", duration=25.0, tenant="bob", workers=2,
               arrival=30.0, cells=1024),
        SimJob("b-urgent", duration=10.0, tenant="bob", workers=1,
               priority=5, arrival=40.0, cells=512),
        SimJob("b-tail1", duration=6.0, tenant="bob", workers=1,
               arrival=50.0, cells=256),
        SimJob("b-tail2", duration=6.0, tenant="bob", workers=1,
               arrival=55.0, cells=256),
    ]
    assert len(jobs) == 12
    return jobs


def replay(scheduler: FairShareScheduler, tick: float) -> dict:
    result = VirtualCluster(
        scheduler, TOTAL_WORKERS, tick=tick, preempt_overhead=1.0,
    ).run(mixed_queue())
    waits = [j["wait"] for j in result.jobs.values()
             if j["wait"] is not None]
    return {
        "makespan_min": round(result.makespan, 2),
        "utilisation": round(result.utilisation, 4),
        "runs_per_hour": round(12 / (result.makespan / 60.0), 3),
        "mean_wait_min": round(sum(waits) / len(waits), 2),
        "max_wait_min": round(max(waits), 2),
        "preemptions": sum(j["preemptions"]
                           for j in result.jobs.values()),
        "completed": sum(1 for j in result.jobs.values()
                         if j["finish"] is not None),
        "tenant_usage": {t: round(u, 1)
                         for t, u in result.tenant_usage.items()},
    }


def run_bench(smoke: bool = False) -> dict:
    tick = 2.0 if smoke else 0.5
    scheduled = replay(
        FairShareScheduler({"alice": 1.0, "bob": 1.0}, aging_rounds=25),
        tick)
    fifo = replay(FairShareScheduler.fifo(), tick)
    return {
        "bench": "service_scheduler",
        "workers": TOTAL_WORKERS,
        "queue": "12-run mixed (2 tenants, wide+narrow, 2 priority-5)",
        "tick_min": tick,
        "scheduled": scheduled,
        "fifo": fifo,
        "speedup": {
            "makespan": round(
                fifo["makespan_min"] / scheduled["makespan_min"], 3),
            "runs_per_hour": round(
                scheduled["runs_per_hour"] / fifo["runs_per_hour"], 3),
            "mean_wait": round(
                fifo["mean_wait_min"] / scheduled["mean_wait_min"], 3),
        },
    }


def test_scheduled_beats_fifo():
    payload = run_bench(smoke=True)
    scheduled, fifo = payload["scheduled"], payload["fifo"]
    assert scheduled["completed"] == 12
    assert fifo["completed"] == 12
    # the headline win is responsiveness: shortest-first backfill slashes
    # queue waits several-fold while staying work-conserving...
    assert scheduled["mean_wait_min"] < 0.5 * fifo["mean_wait_min"]
    assert scheduled["max_wait_min"] < fifo["max_wait_min"]
    # ...at a throughput cost bounded to a few percent (the preemption
    # overhead plus deferring the wide survey behind cheap runs)
    assert scheduled["runs_per_hour"] >= 0.9 * fifo["runs_per_hour"]
    # the urgent priority-5 arrival displaced a lower-priority run
    assert scheduled["preemptions"] >= 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="coarser virtual tick (CI-sized)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "BENCH_service.json"))
    args = parser.parse_args()
    payload = run_bench(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
