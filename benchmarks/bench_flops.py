"""Section 5: sustained and virtual flop rates.

Reproduces the paper's two performance estimates:

1. **Sustained rate** — "we have estimated the flop rate in the following
   way": count the operations of a representative section (they used the
   R10000 hardware counter; we use the analytic per-module operation
   model), divide by the wall-clock time of that same section.  The paper
   got ~13 Gflop/s on 64 SP2 processors; a single-core NumPy run lands
   where a single-core interpreted stack lands — the bench prints both and
   the per-processor comparison.

2. **Virtual rate** — the equivalent-unigrid arithmetic: 1e12^3 cells x
   1e10 steps ~ 1e50 operations in ~1e6 s -> ~1e44 flop/s, plus the
   Moore's-law infeasibility estimate ("not until about 2200").
"""

import time

import numpy as np

from repro.perf import OperationCounts, sustained_flop_rate, virtual_flop_rate
from repro.perf.flops import unigrid_infeasibility


def _representative_section():
    """Run a representative mid-collapse section under op counting."""
    from repro.problems import SphereCollapse

    sc = SphereCollapse(n_root=16, max_level=2, overdensity=25.0, max_dims=8)
    ops = OperationCounts()
    t0 = time.perf_counter()
    # count work as the evolver performs it
    steps_before = dict(sc.evolver.step_counter)
    sc.run(max_root_steps=8)
    wall = time.perf_counter() - t0
    # tally: every level step touched every cell of its level
    for level, grids in enumerate(sc.hierarchy.levels):
        cells = sum(g.n_cells for g in grids)
        n_steps = sc.evolver.step_counter.get(level, 0) - steps_before.get(level, 0)
        ops.add_hydro(cells * n_steps)
        ops.add_gravity(cells * n_steps)
        ops.add_boundary(cells * n_steps)
    ops.add_rebuild(sum(g.n_cells for g in sc.hierarchy.all_grids())
                    * sc.evolver.step_counter.get(0, 0))
    return ops, wall


def test_sustained_flop_rate(benchmark):
    ops, wall = benchmark.pedantic(_representative_section, rounds=1, iterations=1)
    rate = sustained_flop_rate(ops.total, wall)
    print(f"\nestimated operations : {ops.total:.3e}")
    print(f"wall time            : {wall:.2f} s")
    print(f"sustained rate       : {rate / 1e6:.1f} Mflop/s (this machine, 1 core)")
    print(f"paper                : 13 Gflop/s on 64 SP2 processors "
          f"(~200 Mflop/s per processor)")
    print("fractions by module  :", {k: f"{v:.2f}" for k, v in ops.fractions().items()})
    assert rate > 1e5  # sanity: the estimate is a real number of useful size
    assert 0 < ops.fractions()["hydrodynamics"] < 1


def test_virtual_flop_rate(benchmark):
    rate = benchmark.pedantic(
        lambda: virtual_flop_rate(sdr=1e12, n_steps=1e10, wall_seconds=1e6),
        rounds=1, iterations=1,
    )
    print(f"\nvirtual flop rate for the hero run: {rate:.2e} flop/s "
          f"(paper: ~1e44)")
    assert 1e43 < rate < 1e45

    years = unigrid_infeasibility(sdr=1e12)
    print(f"Moore's-law years until an SDR=1e12 unigrid fits in memory: "
          f"{years:.0f} (paper: 'not ... until about 2200', ~200 years)")
    assert 100 < years < 350


def test_own_run_virtual_rate(benchmark, sphere_run):
    """The same arithmetic applied to our scaled run's own numbers."""
    sc = benchmark.pedantic(lambda: sphere_run, rounds=1, iterations=1)
    sdr = sc.hierarchy.spatial_dynamic_range()
    root_steps = sc.evolver.step_counter[0]
    # unigrid equivalent: sdr^3 cells, stepped at the finest dt
    finest_steps = root_steps * sc.hierarchy.refine_factor ** sc.hierarchy.max_level
    virtual_ops = sdr**3 * finest_steps * 1e4
    actual_cells = sum(g.n_cells for g in sc.hierarchy.all_grids())
    print(f"\nscaled run: SDR={sdr:.0f}, {root_steps} root steps, "
          f"{actual_cells} cells held vs {sdr**3:.2e} unigrid cells")
    print(f"equivalent unigrid operations: {virtual_ops:.2e}")
    ratio = sdr**3 / actual_cells
    print(f"memory advantage of AMR here: {ratio:.1f}x "
          f"(the hero run's was ~1e30)")
    assert ratio > 10
