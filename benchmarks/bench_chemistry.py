"""Chemistry-engine benchmark: tabulated + active-set vs the seed path.

The paper (Sec. 3.3) integrates the stiff 12-species network with the
Anninos et al. backward-difference sub-cycling method; in the hero run the
chemistry/cooling solve is a dominant per-cell cost on every level.  The
seed implementation paid far more than it had to:

* every analytic rate fit (~25 ``exp``/``sqrt``/``pow`` expressions) and
  the full cooling function were re-evaluated *twice* per substep, and
* a single grid-global ``np.min`` timescale forced **all** cells to
  subcycle at the worst cell's pace.

The engine now interpolates log-spaced log-T tables for every rate and
cooling channel (one shared lookup per substep) and integrates an active
set: each cell advances on its own cooling/electron timescale and drops
out of the working set as soon as it has covered the step.  This bench
times ``ChemistryNetwork.advance`` on a collapse-like mixed-timescale
grid (a mostly cool, molecular background with a hot ionised subset that
forces the worst-case pacing) against a faithful re-implementation of
the seed integrator, checks the physics agreement of the two results,
the tabulated-vs-analytic rate accuracy, and (full mode) that a small
PrimordialCollapse thermal track is unchanged within test tolerance.
Writes ``BENCH_chemistry.json`` next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_chemistry.py [--smoke] [--out X.json]

or via pytest (smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_chemistry.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import constants as const
from repro.chemistry import cooling as cool_mod
from repro.chemistry.network import ChemistryNetwork, primordial_initial_fractions
from repro.chemistry.rates import RateTable
from repro.chemistry.species import SPECIES, SPECIES_NAMES, electron_density


# ------------------------------------------------------------ seed baseline
class SeedChemistryNetwork(ChemistryNetwork):
    """The seed integrator, verbatim: analytic rates, global-min pacing.

    ``advance`` below is the seed implementation (grid-global limiting
    timescale, duplicated rate/cooling evaluation via the un-hoisted
    ``_substep`` path); the analytic ``RateTable`` mode makes every
    coefficient evaluation bitwise the seed's.
    """

    def __init__(self, **kw):
        kw.setdefault("rates", RateTable(mode="analytic"))
        super().__init__(**kw)

    def advance(self, n, e_specific, rho, dt, z=0.0):
        n = {s: np.array(n[s], dtype=float, copy=True) for s in SPECIES_NAMES}
        e = np.array(e_specific, dtype=float, copy=True)
        rho = np.asarray(rho, dtype=float)
        if self.renormalise:
            h0 = n["HI"] + n["HII"] + n["HM"] + 2.0 * (n["H2I"] + n["H2II"]) + n["HDI"]
            he0 = n["HeI"] + n["HeII"] + n["HeIII"]
            d0 = n["DI"] + n["DII"] + n["HDI"]
        t_done = 0.0
        substeps = 0
        while t_done < dt and substeps < self.max_substeps:
            T = self.temperature(n, e, rho)
            lam = cool_mod.cooling_rate(n, T, z)
            edot = np.abs(lam) / np.maximum(rho, 1e-300)
            t_cool = np.min(np.where(edot > 0, e / np.maximum(edot, 1e-300), np.inf))
            k = self.rates(T)
            ne = np.maximum(electron_density(n), 1e-300)
            ne_dot = np.abs(k["k1"] * n["HI"] * ne - k["k2"] * n["HII"] * ne)
            t_elec = np.min(np.where(ne_dot > 0, ne / np.maximum(ne_dot, 1e-300), np.inf))
            limit = min(t_cool, t_elec)
            dt_sub = min(dt - t_done, max(self.safety * limit, dt / self.max_substeps))
            if substeps == self.max_substeps - 1:
                dt_sub = dt - t_done
            self._substep(n, e, rho, dt_sub, z)
            if self.renormalise:
                self._renormalise(n, h0, he0, d0)
            t_done += dt_sub
            substeps += 1
        if t_done < dt:
            self._substep(n, e, rho, dt - t_done, z)
            if self.renormalise:
                self._renormalise(n, h0, he0, d0)
            substeps += 1
        self.last_substeps = substeps
        return n, e


# --------------------------------------------------------------- test state
def build_state(size: int, hot_fraction: float, seed: int = 11):
    """Collapse-like mixed-timescale grid (proper cgs).

    Mostly a cool (a few hundred K), lightly-ionised molecular background —
    the paper's "primordial molecular cloud" — with a ``hot_fraction``
    subset of hot, denser, strongly-ionised cells (accretion-shock-like)
    whose cooling/electron timescales are orders of magnitude shorter.
    Under the seed's global pacing the hot subset forces the whole grid to
    the substep cap; the active set retires the background quickly.
    """
    rng = np.random.default_rng(seed)
    n_cells = size**3
    T = 10 ** rng.uniform(2.3, 3.0, n_cells)
    rho = 10 ** rng.uniform(-23.0, -21.0, n_cells)
    x_e = 10 ** rng.uniform(-4.5, -3.5, n_cells)
    f_h2 = 10 ** rng.uniform(-6.0, -5.0, n_cells)
    n_hot = max(int(hot_fraction * n_cells), 1)
    hot = rng.choice(n_cells, n_hot, replace=False)
    T[hot] = 10 ** rng.uniform(4.2, 6.0, n_hot)
    rho[hot] = 10 ** rng.uniform(-21.5, -19.5, n_hot)
    x_e[hot] = 10 ** rng.uniform(-1.2, -0.3, n_hot)

    shape = (size, size, size)
    fr = primordial_initial_fractions(x_e=x_e, f_h2=f_h2)
    n = {
        s: (fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS)).reshape(shape)
        for s in SPECIES_NAMES
    }
    rho = rho.reshape(shape)
    e = ChemistryNetwork.energy_from_temperature(n, T.reshape(shape), rho)
    return n, e, rho


def _time(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rel(a, b, floor):
    return float(np.max(np.abs(a - b) / np.maximum(np.abs(b), floor)))


# ------------------------------------------------------------------- checks
def rate_accuracy(n_draws: int = 20000, seed: int = 5) -> dict:
    """Tabulated vs analytic coefficients on random log-T draws."""
    rng = np.random.default_rng(seed)
    T = 10 ** rng.uniform(0.0, 9.0, n_draws)
    ana = RateTable(mode="analytic")
    tab = RateTable()
    ka, ca = ana.channels(T)
    kt, ct = tab.channels(T)
    worst_rate = max(_rel(kt[m], ka[m], 1e-280) for m in RateTable.RATE_NAMES)
    worst_cool = max(_rel(ct[m], ca[m], 1e-280) for m in ca)
    return {
        "n_draws": n_draws,
        "max_rate_rel_err": worst_rate,
        "max_cooling_rel_err": worst_cool,
        "rtol_target": 1e-3,
    }


def collapse_track(max_root_steps: int) -> dict:
    """PrimordialCollapse thermal track: new engine vs the seed integrator."""
    from repro.problems.collapse import PrimordialCollapse

    tracks = {}
    for label, network in (
        ("engine", None),  # the stock (tabulated, active-set) network
        ("seed", SeedChemistryNetwork()),
    ):
        pc = PrimordialCollapse(
            n_root=8, max_level=1, amplitude_boost=4.0,
            mass_refine_factor=8.0, with_chemistry=True,
        )
        if network is not None:
            pc.chemistry = pc.evolver.chemistry = network
        pc.initial_rebuild()
        track_e, track_xe = [], []
        for k in range(max_root_steps):
            # step the target down one redshift unit at a time: an absurd
            # far-future target would trip the remaining*1e-12 dt floor
            # (and DoubleDouble(inf) is NaN, a silent no-op)
            pc.evolver.advance_root_step(pc.code_time_of_redshift(99.0 - k))
            root = pc.hierarchy.root
            internal = root.field_view("internal")
            density = root.field_view("density")
            mass = density.sum()
            track_e.append(float((internal * density).sum() / mass))
            # ionised-H mass fraction: a quantity chemistry actually moves
            # even while the CMB floor pins the thermal track
            track_xe.append(float(root.field_view("HII").sum() / mass))
        tracks[label] = {"internal": track_e, "x_HII": track_xe}
    out = {"root_steps": max_root_steps, "mass_weighted_tracks": tracks}
    for key in ("internal", "x_HII"):
        eng = np.array(tracks["engine"][key])
        ref = np.array(tracks["seed"][key])
        out[f"max_rel_diff_{key}"] = _rel(eng, ref, 1e-300)
    return out


# ---------------------------------------------------------------------- run
def run(config: dict) -> dict:
    n, e, rho = build_state(config["size"], config["hot_fraction"])
    dt, z = config["dt_s"], config["z"]
    seed_net = SeedChemistryNetwork()
    new_net = ChemistryNetwork()

    # warm both paths (primes the rate table) and keep results for checks
    n_seed, e_seed = seed_net.advance(n, e, rho, dt, z)
    n_new, e_new = new_net.advance(n, e, rho, dt, z)

    reps = config["repeats"]
    t_seed = _time(lambda: seed_net.advance(n, e, rho, dt, z), reps)
    t_new = _time(lambda: new_net.advance(n, e, rho, dt, z), reps)

    T_seed = ChemistryNetwork.temperature(n_seed, e_seed, rho)
    T_new = ChemistryNetwork.temperature(n_new, e_new, rho)
    n_h = n["HI"] + n["HII"]  # abundance scale for species comparisons
    species_diff = {
        s: float(np.max(np.abs(n_new[s] - n_seed[s]) / np.maximum(n_h, 1e-300)))
        for s in SPECIES_NAMES
    }
    h0 = n["HI"] + n["HII"] + n["HM"] + 2.0 * (n["H2I"] + n["H2II"]) + n["HDI"]
    h1 = (n_new["HI"] + n_new["HII"] + n_new["HM"]
          + 2.0 * (n_new["H2I"] + n_new["H2II"]) + n_new["HDI"])
    stats = dict(new_net.last_stats)
    results = {
        "cells": int(np.prod(np.shape(rho))),
        "seed_s": t_seed,
        "engine_s": t_new,
        "speedup": t_seed / t_new,
        "seed_substeps": int(seed_net.last_substeps),
        "engine_stats": stats,
        "physics": {
            "max_temperature_rel_diff": _rel(T_new, T_seed, 1.0),
            "max_species_diff_vs_nH": species_diff,
            "nuclei_conservation_rel_err": _rel(h1, h0, 1e-300),
            "all_positive": bool(
                all(np.all(n_new[s] >= 0.0) for s in SPECIES_NAMES)
                and np.all(e_new > 0.0)
            ),
        },
        "rate_accuracy": rate_accuracy(),
    }
    if config.get("collapse_steps"):
        results["collapse_track"] = collapse_track(config["collapse_steps"])
    return results


SMOKE = {"size": 16, "hot_fraction": 0.1, "dt_s": 3.0e12, "z": 20.0,
         "repeats": 1, "collapse_steps": 0}
FULL = {"size": 32, "hot_fraction": 0.1, "dt_s": 3.0e12, "z": 20.0,
        "repeats": 3, "collapse_steps": 3}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small configuration for CI (16^3 grid)")
    ap.add_argument("--out", default=str(Path(__file__).parent / "BENCH_chemistry.json"))
    args = ap.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    results = run(config)
    payload = {
        "bench": "chemistry",
        "mode": "smoke" if args.smoke else "full",
        "config": config,
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_chemistry_bench_smoke():
    """Pytest entry: the engine path is no slower than the seed path and
    stays physically equivalent on the mixed-timescale grid."""
    results = run(SMOKE)
    assert results["speedup"] >= 1.0, results
    assert results["rate_accuracy"]["max_rate_rel_err"] <= 1e-3, \
        results["rate_accuracy"]
    assert results["rate_accuracy"]["max_cooling_rel_err"] <= 1e-3, \
        results["rate_accuracy"]
    phys = results["physics"]
    assert phys["all_positive"]
    assert phys["nuclei_conservation_rel_err"] <= 1e-9, phys
    assert phys["max_temperature_rel_diff"] <= 0.05, phys


if __name__ == "__main__":
    raise SystemExit(main())
