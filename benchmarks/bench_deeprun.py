"""Deep-run rebuild benchmark: incremental reuse vs from-scratch regrids.

The paper's hero run rebuilds the grid hierarchy thousands of times while
— between any two rebuilds — most of the tree is unchanged: refinement
tracks the collapsing core, and the quiescent bulk of the subgrids keeps
the same flagged-cell sets epoch after epoch.  The incremental rebuild
(:mod:`repro.amr.rebuild`) exploits that by reusing every parent whose
flag signature is unchanged (the whole subtree under it survives, only
ghost shells are refreshed from thin coarse slabs), and recycling retired
field arrays through the hierarchy's
:class:`~repro.amr.pool.FieldArrayPool`.

This bench grows a three-level hierarchy over a lattice of Gaussian
blobs, using a mass threshold that tightens with level
(``gas_mass_threshold`` + negative ``level_exponent``) so each blob
carries an L2 patch with a deep L3 subtree under it — the regime where
reuse pays most, since one unchanged level-1 signature keeps an entire
multi-million-cell subtree alive.  Each round it perturbs a ~25% subset
of the level-1 parents and rebuilds levels 2..3 — once on a hierarchy
using the incremental path and once on a mirror forced through the
from-scratch path — asserting after every round that the two
hierarchies' ``fingerprint()`` digests are identical (the bitwise
correctness gate).  Round 0 is a cold round (allocators and caches warm
up); the report uses **medians over the warm rounds**, which is what
keeps the numbers stable on noisy hosts.  Writes ``BENCH_deeprun.json``
next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_deeprun.py [--smoke] [--out X.json]

or via pytest (smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_deeprun.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.amr import Hierarchy, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.rebuild import rebuild_hierarchy

# base gas-mass threshold in units of the mean root-cell mass; with
# level_exponent = -1.84 the effective density threshold per level is
# ~3, ~6.7, ~15 — each blob's core clears all three, its skirt only the
# first, which is what builds the nested three-level tower
BASE_THRESHOLD = 3.0
LEVEL_EXPONENT = -1.84
MAX_LEVEL = 3
PERTURB_HI = 8.0  # above the level-1 threshold (~6.7) ...
PERTURB_LO = 1.0  # ... and back below it


def _criteria(n_root: int) -> RefinementCriteria:
    return RefinementCriteria(gas_mass_threshold=BASE_THRESHOLD / n_root**3,
                              level_exponent=LEVEL_EXPONENT,
                              max_level=MAX_LEVEL)


# --------------------------------------------------------------- hierarchy
def build_hierarchy(blobs_per_dim: int, tile_cells: int, amplitude: float,
                    efficiency: float, min_size: int,
                    max_dims: int) -> Hierarchy:
    """A lattice of ``blobs_per_dim^3`` Gaussian blobs, one per tile of
    ``tile_cells^3`` root cells, each overdense enough to refine three
    levels deep — grown through the production rebuild path so flag
    signatures exist on every parent."""
    n_root = blobs_per_dim * tile_cells
    h = Hierarchy(n_root=n_root)
    root = h.root
    x = (np.arange(n_root) + 0.5) / n_root
    xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
    rho = np.ones_like(xx)
    width = (0.2 * tile_cells / n_root) ** 2
    for i in range(blobs_per_dim):
        for j in range(blobs_per_dim):
            for k in range(blobs_per_dim):
                cx = (i + 0.5) / blobs_per_dim
                cy = (j + 0.5) / blobs_per_dim
                cz = (k + 0.5) / blobs_per_dim
                r2 = (xx - cx) ** 2 + (yy - cy) ** 2 + (zz - cz) ** 2
                rho += amplitude * np.exp(-r2 / width)
    root.fields["density"][root.interior] = rho
    set_boundary_values(h, 0)
    rebuild_hierarchy(h, 1, _criteria(n_root), efficiency=efficiency,
                      min_size=min_size, max_dims=max_dims)
    return h


def perturb_parents(h: Hierarchy, fraction: float, round_idx: int) -> int:
    """Toggle one corner-interior cell of every ``1/fraction``-th level-1
    grid between overdense and quiet, so that subset's flagged sets (and
    only theirs) change each round.  Deterministic in (parent order,
    round), so mirrored hierarchies stay bit-identical inputs."""
    parents = h.level_grids(1)
    stride = max(int(round(1.0 / fraction)), 1)
    touched = 0
    for idx, g in enumerate(parents):
        if idx % stride:
            continue
        cell = (g.nghost, g.nghost, g.nghost)  # interior corner, off-blob
        g.fields["density"][cell] = (
            PERTURB_HI if round_idx % 2 == 0 else PERTURB_LO
        )
        touched += 1
    return touched


# ------------------------------------------------------------------ timing
def run(config: dict) -> dict:
    kwargs = dict(blobs_per_dim=config["blobs_per_dim"],
                  tile_cells=config["tile_cells"],
                  amplitude=config["amplitude"],
                  efficiency=config["efficiency"],
                  min_size=config["min_size"],
                  max_dims=config["max_dims"])
    h_inc = build_hierarchy(**kwargs)
    h_raw = build_hierarchy(**kwargs)
    assert h_inc.fingerprint() == h_raw.fingerprint()
    n_root = config["blobs_per_dim"] * config["tile_cells"]
    crit = _criteria(n_root)
    regrid_kwargs = dict(efficiency=config["efficiency"],
                         min_size=config["min_size"],
                         max_dims=config["max_dims"])

    n_sub = h_inc.n_grids - 1
    fine_cells = int(sum(g.n_cells for lvl in (2, 3)
                         for g in h_inc.level_grids(lvl)))
    inc_times = []
    raw_times = []
    reuse_rates = []
    touched = 0
    for rnd in range(config["rounds"]):
        touched = perturb_parents(h_inc, config["fraction"], rnd)
        perturb_parents(h_raw, config["fraction"], rnd)

        t0 = time.perf_counter()
        rebuild_hierarchy(h_inc, 2, crit, incremental=True, **regrid_kwargs)
        inc_times.append(time.perf_counter() - t0)
        reuse_rates.append(h_inc.last_rebuild_stats["reuse_rate"])

        t0 = time.perf_counter()
        rebuild_hierarchy(h_raw, 2, crit, incremental=False, **regrid_kwargs)
        raw_times.append(time.perf_counter() - t0)

        # the correctness gate: bitwise-identical hierarchies every round
        assert h_inc.fingerprint() == h_raw.fingerprint(), \
            f"incremental rebuild diverged from from-scratch at round {rnd}"

    # round 0 is cold (first regrid after the build pays allocator and
    # cache warm-up for both paths); report medians over the warm rounds
    warm_inc = inc_times[1:] or inc_times
    warm_raw = raw_times[1:] or raw_times
    t_inc = float(np.median(warm_inc))
    t_raw = float(np.median(warm_raw))
    return {
        "n_subgrids": n_sub,
        "max_level": h_inc.max_level,
        "level1_parents": len(h_inc.level_grids(1)),
        "parents_perturbed_per_round": touched,
        "rebuilt_cells": fine_cells,
        "fingerprints_match": True,
        "rebuild": {
            "from_scratch_s": t_raw,
            "incremental_s": t_inc,
            "speedup": t_raw / t_inc,
            "reuse_rate": float(np.mean(reuse_rates)),
            "cells_per_s_incremental": fine_cells / t_inc,
            "cells_per_s_from_scratch": fine_cells / t_raw,
            "per_round_incremental_s": [round(t, 4) for t in inc_times],
            "per_round_from_scratch_s": [round(t, 4) for t in raw_times],
        },
        "pool": h_inc.pool.stats(),
    }


# ~25% of level-1 parents perturbed per round: the quiescent-bulk regime
# the incremental rebuild targets.  FULL uses fat boxes (low efficiency,
# large max_dims) so reused subtrees are volume-heavy while the refresh
# cost stays surface-bound.
SMOKE = {"blobs_per_dim": 2, "tile_cells": 12, "amplitude": 100.0,
         "efficiency": 0.30, "min_size": 4, "max_dims": 12,
         "fraction": 0.25, "rounds": 3}
FULL = {"blobs_per_dim": 2, "tile_cells": 24, "amplitude": 100.0,
        "efficiency": 0.30, "min_size": 8, "max_dims": 24,
        "fraction": 0.25, "rounds": 7}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small configuration for CI (24^3 root)")
    ap.add_argument("--out",
                    default=str(Path(__file__).parent / "BENCH_deeprun.json"))
    args = ap.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    results = run(config)
    payload = {
        "bench": "deeprun",
        "mode": "smoke" if args.smoke else "full",
        "config": config,
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_deeprun_smoke():
    """Pytest entry: reuse happens, pool recycles, hashes match bitwise."""
    results = run(SMOKE)
    assert results["fingerprints_match"]
    assert results["rebuild"]["reuse_rate"] > 0.5, results["rebuild"]
    assert results["pool"]["hits"] > 0, results["pool"]


if __name__ == "__main__":
    raise SystemExit(main())
