"""Figure 2: the W-cycle ordering of timesteps across levels.

"First the root grid is advanced, and then the subgrids 'catch-up'.  This
permits the calculation of time-centered subgrid boundary conditions for
higher temporal accuracy."

This bench instruments EvolveLevel on a 3-level hierarchy, records the
(level, time) sequence of every hydro step, prints it, and verifies the
defining W-cycle properties.
"""

import numpy as np

from repro.amr import Grid, Hierarchy, HierarchyEvolver
from repro.amr.boundary import set_boundary_values
from repro.hydro import PPMSolver


class RecordingSolver(PPMSolver):
    """PPM solver that logs (level-resolution, start-time, dt) per step."""

    def __init__(self, log, **kw):
        super().__init__(**kw)
        self.log = log

    def step(self, fields, dx, dt, a=1.0, adot=0.0, accel=None, permute=0):
        self.log.append({"dx": dx, "dt": dt})
        return super().step(fields, dx, dt, a, adot, accel, permute)


def build_and_run():
    h = Hierarchy(n_root=8)
    g1 = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
    h.add_grid(g1, h.root)
    g2 = Grid(2, (12, 12, 12), (8, 8, 8), n_root=8)
    h.add_grid(g2, g1)
    set_boundary_values(h, 0)
    log = []
    ev = HierarchyEvolver(h, RecordingSolver(log), cfl=0.4)
    ev.advance_to(0.04)
    return h, log


def test_fig2_wcycle_ordering(benchmark):
    h, log = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    dx_to_level = {1.0 / 8: 0, 1.0 / 16: 1, 1.0 / 32: 2}
    seq = [dx_to_level[entry["dx"]] for entry in log]
    print("\nstep sequence by level (paper Fig. 2):")
    print("  " + " ".join(str(s) for s in seq))

    # 1. the root advances first
    assert seq[0] == 0
    # 2. every root step is followed by finer-level catch-up steps
    assert 1 in seq and 2 in seq
    # 3. level l+1 never runs before level l has stepped at least once
    first_seen = {}
    for i, lvl in enumerate(seq):
        first_seen.setdefault(lvl, i)
    assert first_seen[0] < first_seen[1] < first_seen[2]
    # 4. finer levels take more, smaller steps (the W shape)
    counts = {lvl: seq.count(lvl) for lvl in (0, 1, 2)}
    print(f"  steps per level: {counts}")
    assert counts[1] >= counts[0]
    assert counts[2] >= counts[1]
    dts = {lvl: np.mean([e["dt"] for e, s in zip(log, seq) if s == lvl])
           for lvl in (0, 1, 2)}
    print(f"  mean dt per level: { {k: f'{v:.2e}' for k, v in dts.items()} }")
    assert dts[1] <= dts[0] and dts[2] <= dts[1]
    # 5. all levels end at the same time
    times = [float(g.time) for g in h.all_grids()]
    assert np.allclose(times, times[0])
    print(f"  all grids synchronised at t = {times[0]:.3f}")
