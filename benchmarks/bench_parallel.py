"""Section 3.4: the parallelisation strategies, quantified.

The paper's three claims, each measured on the virtual cluster against a
hierarchy produced by a real collapse run:

* distributed objects balance load ("grids are generally small and
  numerous") — greedy work-aware placement beats naive round-robin;
* sterile objects remove probe traffic ("almost all messages are direct
  data sends; very few probes are required");
* pipelined ordered asynchronous sends give "a large decrease in wait
  times" over blocking exchange.

Also prints the strategy matrix (paper config = sterile + pipelined) and a
strong-scaling table of modelled parallel efficiency, whose shape matches
the paper's observation that 64 processors ran at ~60 % compute fraction.
"""

import numpy as np

from repro.parallel import (
    SterileHierarchy,
    VirtualCluster,
    balance_grids,
    boundary_exchange_transfers,
    load_imbalance,
    run_blocking_exchange,
    run_pipelined_exchange,
    simulate_level_update,
)


def _steriles_and_level(sphere_run):
    sh = SterileHierarchy.from_hierarchy(sphere_run.hierarchy)
    steriles = [s for lvl in sh.by_level.values() for s in lvl]
    level = max(
        sh.by_level, key=lambda l: sum(s.n_cells for s in sh.by_level[l])
    )
    return sh, steriles, level


def test_load_balancing_strategies(benchmark, sphere_run):
    sh, steriles, _ = benchmark.pedantic(
        lambda: _steriles_and_level(sphere_run), rounds=1, iterations=1
    )
    print(f"\nhierarchy: {len(steriles)} grids over "
          f"{len(sh.by_level)} levels")
    results = {}
    for n_ranks in (4, 8, 16, 64):
        row = {}
        for strategy in ("round_robin", "greedy"):
            a = balance_grids(steriles, n_ranks, strategy)
            row[strategy] = load_imbalance(steriles, a, n_ranks)
        results[n_ranks] = row
        print(f"  {n_ranks:3d} ranks: round_robin imbalance "
              f"{row['round_robin']:.2f}, greedy {row['greedy']:.2f} "
              f"(efficiency {100 / row['greedy']:.0f} %)")
    for n_ranks, row in results.items():
        assert row["greedy"] <= row["round_robin"] + 1e-9
    # the paper ran at ~60 % compute fraction on 64 procs; our modelled
    # efficiency on 64 ranks should be in a comparable (imperfect) regime
    eff64 = 1.0 / results[64]["greedy"]
    print(f"modelled 64-rank efficiency: {100 * eff64:.0f} % "
          f"(paper: ~60 % of wall time was compute)")
    assert 0.05 < eff64 <= 1.0


def test_sterile_objects_eliminate_probes(benchmark, sphere_run):
    sh, steriles, level = _steriles_and_level(sphere_run)
    assignment = balance_grids(steriles, 8, "greedy")

    def run_both():
        with_probes = simulate_level_update(
            sh, assignment, 8, level=level, use_sterile=False)
        with_sterile = simulate_level_update(
            sh, assignment, 8, level=level, use_sterile=True)
        return with_probes, with_sterile

    with_probes, with_sterile = benchmark.pedantic(run_both, rounds=1, iterations=1)
    n_grids_on_level = len(sh.level(level))
    print(f"\nlevel {level}: {n_grids_on_level} grids, "
          f"{with_probes['n_transfers']} boundary transfers")
    print(f"probe-based lookup : {with_probes['probes']} probes, "
          f"makespan {1e3 * with_probes['makespan']:.2f} ms")
    print(f"sterile objects    : {with_sterile['probes']} probes, "
          f"makespan {1e3 * with_sterile['makespan']:.2f} ms")
    assert with_sterile["probes"] == 0
    assert with_probes["probes"] >= n_grids_on_level
    assert with_sterile["makespan"] <= with_probes["makespan"]

    # the memory argument: replicating metadata is cheap
    meta = sh.nbytes
    data = sum(s.data_nbytes() for lvl in sh.by_level.values() for s in lvl)
    print(f"sterile metadata: {meta / 1e3:.1f} kB vs full data "
          f"{data / 1e6:.1f} MB ({data / meta:.0f}x)")
    assert data / meta > 100


def test_pipelined_sends_cut_wait_time(benchmark, sphere_run):
    sh, steriles, level = _steriles_and_level(sphere_run)
    assignment = balance_grids(steriles, 8, "greedy")
    transfers = boundary_exchange_transfers(sh, assignment, level)

    def run_both():
        c_block = VirtualCluster(8)
        t_block = run_blocking_exchange(c_block, transfers)
        c_pipe = VirtualCluster(8)
        t_pipe = run_pipelined_exchange(c_pipe, transfers)
        return (t_block, c_block.stats), (t_pipe, c_pipe.stats)

    (t_block, s_block), (t_pipe, s_pipe) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    print(f"\n{len(transfers)} ghost-zone transfers on level {level}")
    print(f"blocking : makespan {1e3 * t_block:.2f} ms, "
          f"wait {1e3 * s_block.wait_time:.2f} ms")
    print(f"pipelined: makespan {1e3 * t_pipe:.2f} ms, "
          f"wait {1e3 * s_pipe.wait_time:.2f} ms")
    if len(transfers) > 2:
        assert t_pipe < t_block
        reduction = 1.0 - s_pipe.wait_time / max(s_block.wait_time, 1e-30)
        print(f"wait-time reduction: {100 * reduction:.0f} % "
              f"('a large decrease in wait times')")
        assert reduction > 0.3


def test_dynamic_load_balancing(benchmark, sphere_run):
    """Paper ref [22] (Lan, Taylor & Bryan): dynamic balancing across
    rebuilds.  Replays the collapse run's recorded hierarchy evolution
    through the incremental balancer and compares against a static initial
    placement left untouched."""
    from repro.parallel import DynamicLoadBalancer
    from repro.parallel.distribution import grid_work
    from repro.parallel.sterile import SterileGrid

    def replay():
        # reconstruct a growing-grid-population sequence from the run's
        # recorded per-step snapshots (grids/level counts)
        h = sphere_run.hierarchy
        final = [SterileGrid.from_grid(g) for g in h.all_grids()]
        # build epochs: start with the level<=1 population, then add the
        # deeper grids in stages (a faithful coarse replay of the collapse)
        epochs = []
        for depth in range(h.max_level + 1):
            epochs.append([s for s in final if s.level <= depth])
        bal = DynamicLoadBalancer(8, threshold=1.25)
        for pop in epochs:
            bal.update(pop)
        # static comparison: freeze the first-epoch placement, extend it
        # round-robin for newcomers, never migrate
        static = {s.grid_id: i % 8 for i, s in enumerate(epochs[-1])}
        import numpy as np

        loads = np.zeros(8)
        for s in epochs[-1]:
            loads[static[s.grid_id]] += grid_work(s)
        static_imb = loads.max() / loads.mean()
        return bal, float(static_imb), epochs[-1]

    bal, static_imb, final_pop = benchmark.pedantic(replay, rounds=1, iterations=1)
    rep = bal.report()
    print(f"\ncollapse replay over {len(bal.history)} rebuild epochs, "
          f"{len(final_pop)} final grids")
    print(f"dynamic balancer : final imbalance {rep['final_imbalance']:.2f}, "
          f"mean {rep['mean_imbalance']:.2f}, "
          f"{rep['migration_events']} migrations "
          f"({rep['migrated_bytes'] / 1e6:.1f} MB moved)")
    print(f"static round-robin: imbalance {static_imb:.2f}")
    assert rep["final_imbalance"] <= static_imb + 0.05
    # indivisible grids bound what any balancer can do: a single grid whose
    # work exceeds the mean rank load sets the imbalance floor
    from repro.parallel.distribution import grid_work as _gw

    total = sum(_gw(s) for s in final_pop)
    floor = max(_gw(s) for s in final_pop) / (total / 8)
    assert rep["final_imbalance"] < max(1.6, 1.2 * floor)
    print(f"granularity floor (largest grid / mean rank load): {floor:.2f}")
