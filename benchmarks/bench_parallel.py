"""Section 3.4: the parallelisation strategies, quantified.

The paper's three claims, each measured on the virtual cluster against a
hierarchy produced by a real collapse run:

* distributed objects balance load ("grids are generally small and
  numerous") — greedy work-aware placement beats naive round-robin;
* sterile objects remove probe traffic ("almost all messages are direct
  data sends; very few probes are required");
* pipelined ordered asynchronous sends give "a large decrease in wait
  times" over blocking exchange.

Also prints the strategy matrix (paper config = sterile + pipelined) and a
strong-scaling table of modelled parallel efficiency, whose shape matches
the paper's observation that 64 processors ran at ~60 % compute fraction.

Executor benchmark (``main``)
-----------------------------
Running this file as a script benchmarks the *real* execution engine
(:mod:`repro.exec`) on a multi-level self-gravitating collapse::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--out X.json]

It times serial / thread / process backends at 1/2/4 workers, verifies
every variant produces bitwise-identical hierarchies, and closes the
Sec. 3.4 loop: the analytic ``cells * r^level`` work model and the
measured-rate :class:`~repro.exec.calibration.WorkCalibrator` each predict
a load imbalance, which is compared against what the workers actually
measured.  Both the measured wall-clock speedup and the *scheduled*
speedup (measured per-task times replayed through the worker schedule —
the capacity number, independent of how many CPUs this host happens to
expose) are reported in ``BENCH_exec.json``.
"""

import argparse
import hashlib
import json
import os
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.parallel import (
    SterileHierarchy,
    VirtualCluster,
    balance_grids,
    boundary_exchange_transfers,
    load_imbalance,
    run_blocking_exchange,
    run_pipelined_exchange,
    simulate_level_update,
)


def _steriles_and_level(sphere_run):
    sh = SterileHierarchy.from_hierarchy(sphere_run.hierarchy)
    steriles = [s for lvl in sh.by_level.values() for s in lvl]
    level = max(
        sh.by_level, key=lambda l: sum(s.n_cells for s in sh.by_level[l])
    )
    return sh, steriles, level


def test_load_balancing_strategies(benchmark, sphere_run):
    sh, steriles, _ = benchmark.pedantic(
        lambda: _steriles_and_level(sphere_run), rounds=1, iterations=1
    )
    print(f"\nhierarchy: {len(steriles)} grids over "
          f"{len(sh.by_level)} levels")
    results = {}
    for n_ranks in (4, 8, 16, 64):
        row = {}
        for strategy in ("round_robin", "greedy"):
            a = balance_grids(steriles, n_ranks, strategy)
            row[strategy] = load_imbalance(steriles, a, n_ranks)
        results[n_ranks] = row
        print(f"  {n_ranks:3d} ranks: round_robin imbalance "
              f"{row['round_robin']:.2f}, greedy {row['greedy']:.2f} "
              f"(efficiency {100 / row['greedy']:.0f} %)")
    for n_ranks, row in results.items():
        assert row["greedy"] <= row["round_robin"] + 1e-9
    # the paper ran at ~60 % compute fraction on 64 procs; our modelled
    # efficiency on 64 ranks should be in a comparable (imperfect) regime
    eff64 = 1.0 / results[64]["greedy"]
    print(f"modelled 64-rank efficiency: {100 * eff64:.0f} % "
          f"(paper: ~60 % of wall time was compute)")
    assert 0.05 < eff64 <= 1.0


def test_sterile_objects_eliminate_probes(benchmark, sphere_run):
    sh, steriles, level = _steriles_and_level(sphere_run)
    assignment = balance_grids(steriles, 8, "greedy")

    def run_both():
        with_probes = simulate_level_update(
            sh, assignment, 8, level=level, use_sterile=False)
        with_sterile = simulate_level_update(
            sh, assignment, 8, level=level, use_sterile=True)
        return with_probes, with_sterile

    with_probes, with_sterile = benchmark.pedantic(run_both, rounds=1, iterations=1)
    n_grids_on_level = len(sh.level(level))
    print(f"\nlevel {level}: {n_grids_on_level} grids, "
          f"{with_probes['n_transfers']} boundary transfers")
    print(f"probe-based lookup : {with_probes['probes']} probes, "
          f"makespan {1e3 * with_probes['makespan']:.2f} ms")
    print(f"sterile objects    : {with_sterile['probes']} probes, "
          f"makespan {1e3 * with_sterile['makespan']:.2f} ms")
    assert with_sterile["probes"] == 0
    assert with_probes["probes"] >= n_grids_on_level
    assert with_sterile["makespan"] <= with_probes["makespan"]

    # the memory argument: replicating metadata is cheap
    meta = sh.nbytes
    data = sum(s.data_nbytes() for lvl in sh.by_level.values() for s in lvl)
    print(f"sterile metadata: {meta / 1e3:.1f} kB vs full data "
          f"{data / 1e6:.1f} MB ({data / meta:.0f}x)")
    assert data / meta > 100


def test_pipelined_sends_cut_wait_time(benchmark, sphere_run):
    sh, steriles, level = _steriles_and_level(sphere_run)
    assignment = balance_grids(steriles, 8, "greedy")
    transfers = boundary_exchange_transfers(sh, assignment, level)

    def run_both():
        c_block = VirtualCluster(8)
        t_block = run_blocking_exchange(c_block, transfers)
        c_pipe = VirtualCluster(8)
        t_pipe = run_pipelined_exchange(c_pipe, transfers)
        return (t_block, c_block.stats), (t_pipe, c_pipe.stats)

    (t_block, s_block), (t_pipe, s_pipe) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    print(f"\n{len(transfers)} ghost-zone transfers on level {level}")
    print(f"blocking : makespan {1e3 * t_block:.2f} ms, "
          f"wait {1e3 * s_block.wait_time:.2f} ms")
    print(f"pipelined: makespan {1e3 * t_pipe:.2f} ms, "
          f"wait {1e3 * s_pipe.wait_time:.2f} ms")
    if len(transfers) > 2:
        assert t_pipe < t_block
        reduction = 1.0 - s_pipe.wait_time / max(s_block.wait_time, 1e-30)
        print(f"wait-time reduction: {100 * reduction:.0f} % "
              f"('a large decrease in wait times')")
        assert reduction > 0.3


def test_dynamic_load_balancing(benchmark, sphere_run):
    """Paper ref [22] (Lan, Taylor & Bryan): dynamic balancing across
    rebuilds.  Replays the collapse run's recorded hierarchy evolution
    through the incremental balancer and compares against a static initial
    placement left untouched."""
    from repro.parallel import DynamicLoadBalancer
    from repro.parallel.distribution import grid_work
    from repro.parallel.sterile import SterileGrid

    def replay():
        # reconstruct a growing-grid-population sequence from the run's
        # recorded per-step snapshots (grids/level counts)
        h = sphere_run.hierarchy
        final = [SterileGrid.from_grid(g) for g in h.all_grids()]
        # build epochs: start with the level<=1 population, then add the
        # deeper grids in stages (a faithful coarse replay of the collapse)
        epochs = []
        for depth in range(h.max_level + 1):
            epochs.append([s for s in final if s.level <= depth])
        bal = DynamicLoadBalancer(8, threshold=1.25)
        for pop in epochs:
            bal.update(pop)
        # static comparison: freeze the first-epoch placement, extend it
        # round-robin for newcomers, never migrate
        static = {s.grid_id: i % 8 for i, s in enumerate(epochs[-1])}
        import numpy as np

        loads = np.zeros(8)
        for s in epochs[-1]:
            loads[static[s.grid_id]] += grid_work(s)
        static_imb = loads.max() / loads.mean()
        return bal, float(static_imb), epochs[-1]

    bal, static_imb, final_pop = benchmark.pedantic(replay, rounds=1, iterations=1)
    rep = bal.report()
    print(f"\ncollapse replay over {len(bal.history)} rebuild epochs, "
          f"{len(final_pop)} final grids")
    print(f"dynamic balancer : final imbalance {rep['final_imbalance']:.2f}, "
          f"mean {rep['mean_imbalance']:.2f}, "
          f"{rep['migration_events']} migrations "
          f"({rep['migrated_bytes'] / 1e6:.1f} MB moved)")
    print(f"static round-robin: imbalance {static_imb:.2f}")
    assert rep["final_imbalance"] <= static_imb + 0.05
    # indivisible grids bound what any balancer can do: a single grid whose
    # work exceeds the mean rank load sets the imbalance floor
    from repro.parallel.distribution import grid_work as _gw

    total = sum(_gw(s) for s in final_pop)
    floor = max(_gw(s) for s in final_pop) / (total / 8)
    assert rep["final_imbalance"] < max(1.6, 1.2 * floor)
    print(f"granularity floor (largest grid / mean rank load): {floor:.2f}")


# ======================================================================
# Executor benchmark: the real engine on a real collapse (script entry)
# ======================================================================

FULL = {
    "n_root": 32, "max_level": 2, "max_dims": 16, "overdensity": 25.0,
    "warmup_steps": 1, "timed_steps": 3,
    "variants": [("serial", 1), ("thread", 1), ("thread", 2),
                 ("thread", 4), ("process", 2), ("process", 4)],
}
SMOKE = {
    "n_root": 16, "max_level": 1, "max_dims": 8, "overdensity": 25.0,
    "warmup_steps": 1, "timed_steps": 2,
    "variants": [("serial", 1), ("thread", 2), ("thread", 4),
                 ("process", 2)],
}


def _build_problem(config, exec_config=None):
    from repro.problems import SphereCollapse

    return SphereCollapse(
        n_root=config["n_root"], max_level=config["max_level"],
        overdensity=config["overdensity"], max_dims=config["max_dims"],
        exec_config=exec_config,
    )


def _instrument(engine, store):
    """Capture (tasks, report) for every dispatch the engine runs."""
    orig = engine.run

    def run(tasks, level=None, timers=None):
        tasks = list(tasks)
        report = orig(tasks, level=level, timers=timers)
        store.append((tasks, report))
        return report

    engine.run = run


def _hierarchy_digest(h) -> str:
    """Bitwise fingerprint of every grid's fields (equivalence check)."""
    digest = hashlib.sha256()
    for g in h.all_grids():
        digest.update(np.float64(g.time.hi).tobytes())
        digest.update(np.float64(g.time.lo).tobytes())
        for _name, arr in g.fields.array_items():
            digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def _lpt_makespan(times, workers: int) -> float:
    """Longest-processing-time-first makespan of `times` on `workers`."""
    loads = [0.0] * workers
    for t in sorted(times, reverse=True):
        i = min(range(workers), key=loads.__getitem__)
        loads[i] += t
    return max(loads)


def _scheduled_speedup(dispatches, workers: int) -> dict:
    """Replay measured per-task seconds through the worker schedule.

    Dispatches are barriers, so per-dispatch makespans add.  This is the
    engine's *capacity* speedup — what the schedule admits given the real
    task-time distribution — and is meaningful even on a host with fewer
    CPUs than workers (where measured wall speedup physically cannot
    exceed 1).
    """
    serial = parallel = 0.0
    for _tasks, report in dispatches:
        times = [seconds for (_k, _l, _c, seconds) in report.task_times]
        serial += sum(times)
        parallel += _lpt_makespan(times, workers)
    return {
        "workers": workers,
        "serial_task_seconds": round(serial, 4),
        "makespan_seconds": round(parallel, 4),
        "speedup": round(serial / parallel, 3) if parallel > 0 else 1.0,
    }


class _GridWorkRecord:
    """A grid's measured whole-run cost, shaped like a sterile grid."""

    __slots__ = ("grid_id", "level", "n_cells", "start_index", "seconds")

    def __init__(self, grid_id, level, n_cells, start_index):
        self.grid_id = grid_id
        self.level = level
        self.n_cells = n_cells
        self.start_index = start_index
        self.seconds = 0.0


def _imbalance_study(dispatches, calibrator, workers: int = 4) -> dict:
    """Satellite of Sec. 3.4: grid_work calibrated against wall times.

    Aggregates every measured task time into a per-grid total (the grid's
    real cost over the timed window — all kinds, all substeps) and places
    the grids on `workers` ranks twice: once costed by the analytic
    ``cells * r^level`` model, once by the measured-rate calibrator.  For
    each placement it reports the imbalance the model *predicted* and the
    imbalance *realised* when the measured per-grid seconds land on that
    assignment.  Within one task kind the two models agree (cost scales
    with cells either way); across levels and kinds they differ, which is
    exactly what whole-grid distribution — the paper's actual use case —
    exercises.
    """
    per_grid: dict = {}
    for tasks, report in dispatches:
        for task, (_k, _l, _c, seconds) in zip(tasks, report.task_times):
            rec = per_grid.get(task.grid_id)
            if rec is None:
                rec = per_grid[task.grid_id] = _GridWorkRecord(
                    task.grid_id, task.level, task.n_cells,
                    task.start_index)
            rec.seconds += seconds
    grids = list(per_grid.values())

    def replay(assignment):
        loads = np.zeros(workers)
        for g in grids:
            loads[assignment[g.grid_id]] += g.seconds
        return float(loads.max() / loads.mean()) if loads.mean() > 0 else 1.0

    out = {"n_grids": len(grids), "workers": workers,
           "levels": sorted({int(g.level) for g in grids})}
    for label, model in (("analytic", None), ("calibrated", calibrator)):
        assignment = balance_grids(grids, workers, "greedy",
                                   cost_model=model)
        out[label] = {
            "predicted_imbalance": round(
                load_imbalance(grids, assignment, workers,
                               cost_model=model), 4),
            "realised_imbalance": round(replay(assignment), 4),
        }
    return out


def run_exec_bench(config) -> dict:
    from repro.exec import ExecConfig

    results = {"variants": [], "problem": {}}
    digests = {}
    serial_dispatches = None
    serial_wall = None
    serial_calibrator = None

    for backend, workers in config["variants"]:
        sphere = _build_problem(
            config, ExecConfig(backend=backend, workers=workers))
        engine = sphere.evolver.engine
        dispatches: list = []
        _instrument(engine, dispatches)
        t_end = 1.5 * sphere.free_fall_time(sphere.peak_density)

        for _ in range(config["warmup_steps"]):
            sphere.evolver.advance_root_step(t_end)
        dispatches.clear()
        t0 = perf_counter()
        for _ in range(config["timed_steps"]):
            engine.begin_root_step()
            sphere.evolver.advance_root_step(t_end)
        wall = perf_counter() - t0

        key = f"{backend}x{workers}"
        digests[key] = _hierarchy_digest(sphere.hierarchy)
        if backend == "serial":
            serial_wall = wall
            serial_dispatches = list(dispatches)
            serial_calibrator = engine.calibrator
            results["problem"] = {
                "grids_per_level": sphere.hierarchy.grids_per_level(),
                "cells": int(sum(
                    int(np.prod(g.dims)) for g in
                    sphere.hierarchy.all_grids())),
            }
        kernel = sum(
            sum(s for (_k, _l, _c, s) in rep.task_times)
            for _t, rep in dispatches
        )
        results["variants"].append({
            "backend": backend,
            "workers": workers,
            "wall_seconds": round(wall, 3),
            "kernel_seconds": round(kernel, 3),
            "wall_speedup": (
                round(serial_wall / wall, 3) if serial_wall else None
            ),
            "exec": engine.step_snapshot(),
        })
        print(f"{key:>10s}: wall {wall:6.2f} s  kernel {kernel:6.2f} s  "
              f"util {results['variants'][-1]['exec']['utilisation']}")

    # every backend/worker count must have produced identical bits
    assert len(set(digests.values())) == 1, digests
    results["bitwise_identical"] = True
    results["hierarchy_digest"] = next(iter(digests.values()))

    results["scheduled_speedup"] = {
        str(w): _scheduled_speedup(serial_dispatches, w) for w in (2, 4)
    }
    results["imbalance_study"] = _imbalance_study(
        serial_dispatches, serial_calibrator)
    results["calibrated_rates"] = serial_calibrator.summary()
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="benchmark the repro.exec backends on a collapse run")
    ap.add_argument("--smoke", action="store_true",
                    help="small configuration for CI")
    ap.add_argument("--out",
                    default=str(Path(__file__).parent / "BENCH_exec.json"))
    args = ap.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    results = run_exec_bench(config)
    sched4 = results["scheduled_speedup"]["4"]["speedup"]
    best_wall = max(
        v["wall_speedup"] or 0.0
        for v in results["variants"] if v["workers"] == 4
    ) if any(v["workers"] == 4 for v in results["variants"]) else None
    payload = {
        "bench": "exec",
        "mode": "smoke" if args.smoke else "full",
        "host_cpus": os.cpu_count(),
        "config": {
            k: v for k, v in config.items() if k != "variants"
        } | {"variants": [list(v) for v in config["variants"]]},
        "results": results,
        "summary": {
            "best_wall_speedup_4_workers": best_wall,
            "scheduled_speedup_4_workers": sched4,
            "note": (
                "wall_speedup is bounded by host_cpus; scheduled_speedup "
                "replays measured task times through the worker schedule "
                "and reflects engine capacity on an unconstrained host"
            ),
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["summary"], indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_exec_bench_smoke():
    """Pytest entry: backends agree bitwise; schedule admits >=1.5x at 4."""
    results = run_exec_bench(SMOKE)
    assert results["bitwise_identical"]
    assert results["scheduled_speedup"]["4"]["speedup"] >= 1.5, \
        results["scheduled_speedup"]
    study = results["imbalance_study"]
    # the calibrated model must not schedule worse than the analytic one
    assert study["calibrated"]["realised_imbalance"] <= \
        study["analytic"]["realised_imbalance"] * 1.25, study


if __name__ == "__main__":
    raise SystemExit(main())
